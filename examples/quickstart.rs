//! Quickstart: the paper's running example, end to end.
//!
//! Builds the university schemas `D₁`/`D₂` from the introduction of
//! *XML Schema Mappings* (PODS 2009), the order-preserving std with the
//! `cn₁ ≠ cn₂` condition, checks membership, and constructs a canonical
//! solution for a simpler (chaseable) variant of the mapping.
//!
//! Run with: `cargo run --example quickstart`

use xmlmap::prelude::*;

fn main() {
    // ── Schemas ────────────────────────────────────────────────────────
    let d1 = xmlmap::gen::university_dtd();
    let d2 = xmlmap::gen::university_target_dtd();
    println!("Source DTD D1:\n{d1}");
    println!("Target DTD D2:\n{d2}");

    // ── A source document (2 professors, 1 student each) ───────────────
    let source = xmlmap::gen::university_tree(2, 1);
    assert!(d1.conforms(&source));
    println!(
        "Source document ({} nodes):\n{}",
        source.size(),
        xmlmap::trees::xml::to_string(&source)
    );

    // ── The paper's third intro mapping: order + inequality ────────────
    let std = Std::parse(
        "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], \
                   supervise[student(s)]]] ; cn1 != cn2 \
         --> r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)], \
               student(s)[supervisor(x)]]",
    )
    .expect("std parses");
    println!("Std: {std}\n");
    let mapping = Mapping::new(d1.clone(), d2.clone(), vec![std]);
    println!("Signature: {}", mapping.signature());

    // ── Membership: build a correct target by hand and check it ────────
    let mut target = Tree::new("r");
    for p in 0..2u32 {
        for c in 0..2u32 {
            let course = target.add_child(
                Tree::ROOT,
                "course",
                [
                    ("cno", Value::str(format!("c{}", 2 * p + c))),
                    ("year", Value::str(format!("y{}", p % 4))),
                ],
            );
            target.add_child(
                course,
                "taughtby",
                [("teacher", Value::str(format!("p{p}")))],
            );
        }
    }
    for p in 0..2u32 {
        let student = target.add_child(
            Tree::ROOT,
            "student",
            [("sid", Value::str(format!("s{p}_0")))],
        );
        target.add_child(
            student,
            "supervisor",
            [("name", Value::str(format!("p{p}")))],
        );
    }
    assert!(d2.conforms(&target));
    println!(
        "(source, target) ∈ ⟦M⟧?  {}",
        mapping.is_solution(&source, &target)
    );
    assert!(mapping.is_solution(&source, &target));

    // Reversing course order breaks the →* constraint.
    let mut reversed = Tree::new("r");
    for p in (0..2u32).rev() {
        for c in (0..2u32).rev() {
            let course = reversed.add_child(
                Tree::ROOT,
                "course",
                [
                    ("cno", Value::str(format!("c{}", 2 * p + c))),
                    ("year", Value::str(format!("y{}", p % 4))),
                ],
            );
            reversed.add_child(
                course,
                "taughtby",
                [("teacher", Value::str(format!("p{p}")))],
            );
        }
    }
    for p in 0..2u32 {
        let student = reversed.add_child(
            Tree::ROOT,
            "student",
            [("sid", Value::str(format!("s{p}_0")))],
        );
        reversed.add_child(
            student,
            "supervisor",
            [("name", Value::str(format!("p{p}")))],
        );
    }
    println!(
        "(source, reversed) ∈ ⟦M⟧?  {}",
        mapping.is_solution(&source, &reversed)
    );
    assert!(!mapping.is_solution(&source, &reversed));

    // ── Canonical solutions (the chase) for a fully-specified variant ──
    let chaseable = Mapping::new(
        d1,
        d2,
        vec![
            Std::parse(
                "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]]]] \
                 --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)]]",
            )
            .unwrap(),
            Std::parse("r[prof(x)[supervise[student(s)]]] --> r[student(s)[supervisor(x)]]")
                .unwrap(),
        ],
    );
    let solution = canonical_solution(&chaseable, &source).expect("chase succeeds");
    println!(
        "Canonical solution ({} nodes):\n{}",
        solution.size(),
        xmlmap::trees::xml::to_string(&solution)
    );
    assert!(chaseable.is_solution(&source, &solution));
    println!("canonical solution verified: (source, chase(source)) ∈ ⟦M⟧");
}
