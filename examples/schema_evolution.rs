//! Schema evolution via composition (paper §7–§8).
//!
//! A personnel database evolves through three schema versions; the v1→v2
//! and v2→v3 mappings are Skolemised and composed **syntactically**
//! (Theorem 8.2), and the composed mapping is validated against the
//! *semantic* composition on concrete documents.
//!
//! Run with: `cargo run --example schema_evolution`

use xmlmap::prelude::*;
use xmlmap::trees::tree;

fn main() {
    // ── Version 1: flat employee list ──────────────────────────────────
    let v1 = xmlmap::dtd::parse(
        "root company
         company -> emp*
         emp @ name, dept",
    )
    .unwrap();

    // ── Version 2: employees get generated ids; departments tracked ────
    let v2 = xmlmap::dtd::parse(
        "root company
         company -> emp*, dept*
         emp @ id, name
         dept @ dname",
    )
    .unwrap();

    // ── Version 3: personnel records keyed by the v2 id ────────────────
    let v3 = xmlmap::dtd::parse(
        "root hr
         hr -> person*
         person @ pid, pname",
    )
    .unwrap();

    // v1 → v2: assign each employee an id (a Skolem function of the
    // name+dept tuple, like the paper's §8 employee example), and record
    // the department.
    let m12 = Mapping::new(
        v1.clone(),
        v2.clone(),
        vec![
            Std::parse("company/emp(n, d) --> company/emp(id, n)").unwrap(),
            Std::parse("company/emp(n, d) --> company/dept(d)").unwrap(),
        ],
    );
    // v2 → v3: carry (id, name) into person records.
    let m23 = Mapping::new(
        v2,
        v3,
        vec![Std::parse("company/emp(i, n) --> hr/person(i, n)").unwrap()],
    );

    let s12 = SkolemMapping::from_mapping(&m12).expect("closed class");
    let s23 = SkolemMapping::from_mapping(&m23).expect("closed class");
    println!("M12 (Skolemised):");
    for s in &s12.stds {
        println!("  {s}");
    }
    println!("M23 (Skolemised):");
    for s in &s23.stds {
        println!("  {s}");
    }

    // ── Syntactic composition (Thm 8.2) ────────────────────────────────
    let s13 = compose(&s12, &s23).expect("composable");
    println!("\nComposed M13 = M12 ∘ M23 ({} stds):", s13.stds.len());
    for s in &s13.stds {
        println!("  {s}");
    }

    // ── Validate against semantic composition on documents ─────────────
    let source = tree! {
        "company" [
            "emp"("name" = "ada", "dept" = "eng"),
            "emp"("name" = "bob", "dept" = "ops"),
        ]
    };
    // Target where both employees appear with *some* ids.
    let good = tree! {
        "hr" [
            "person"("pid" = "i1", "pname" = "ada"),
            "person"("pid" = "i2", "pname" = "bob"),
        ]
    };
    // Target missing bob.
    let bad = tree! {
        "hr" [ "person"("pid" = "i1", "pname" = "ada") ]
    };

    // One engine context carries every compiled cache (middle-schema
    // shapes, the m12 chase plan) across the probes.
    let ctx = EngineContext::new();
    for (name, t3) in [("good", &good), ("bad", &bad)] {
        let semantic = ctx.composition_member(&m12, &m23, &source, t3, 8).is_some();
        let syntactic = s13.is_solution(&source, t3);
        println!("\n{name}: semantic composition = {semantic}, composed mapping = {syntactic}");
        assert_eq!(semantic, syntactic, "Thm 8.2: ⟦M13⟧ = ⟦M12⟧ ∘ ⟦M23⟧");
    }

    // ── Composition consistency (Thm 7.1) ──────────────────────────────
    let ok = ctx.composition_consistent(&m12, &m23, 1_000_000).unwrap();
    println!("\nComposition consistent? {ok}");
    assert!(ok);
    println!("Theorem 8.2 verified on this instance: composed mapping ≡ composition.");
}
