//! Static-analysis audit: the problems of Figures 1 and 2, on a suite of
//! mappings.
//!
//! For each mapping, reports the signature class `SM(σ)`, consistency
//! (exact where decidable, bounded otherwise), absolute consistency (the
//! PTIME fragment, the Π₂ᵖ value-free procedure, or the bounded oracle),
//! and which of the paper's results applies.
//!
//! Run with: `cargo run --example consistency_audit`

use xmlmap::core::bounded::{self, BoundedOutcome};
use xmlmap::core::{abscons_nr_ptime, consistent_nr_ptime};
use xmlmap::prelude::*;

const BUDGET: usize = 1_000_000;

struct Case {
    name: &'static str,
    note: &'static str,
    mapping: Mapping,
}

fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
    Mapping::new(
        xmlmap::dtd::parse(ds).unwrap(),
        xmlmap::dtd::parse(dt).unwrap(),
        stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
    )
}

fn suite() -> Vec<Case> {
    vec![
        Case {
            name: "intro-misplaced-course",
            note: "§1: course must be a grandchild of the target root — inconsistent",
            mapping: mapping(
                "root r\nr -> prof+\nprof -> course\ncourse @ cno",
                "root r\nr -> courses\ncourses -> course*\ncourse @ cno",
                &["r/prof/course(c) --> r/course(c)"],
            ),
        },
        Case {
            name: "intro-fixed",
            note: "the corrected mapping routes through <courses>",
            mapping: mapping(
                "root r\nr -> prof+\nprof -> course\ncourse @ cno",
                "root r\nr -> courses\ncourses -> course*\ncourse @ cno",
                &["r/prof/course(c) --> r/courses/course(c)"],
            ),
        },
        Case {
            name: "sec6-counterexample",
            note: "§6: consistent but NOT absolutely consistent (a* into a)",
            mapping: mapping(
                "root r\nr -> a*\na @ v",
                "root r\nr -> a\na @ v",
                &["r/a(x) --> r/a(x)"],
            ),
        },
        Case {
            name: "copy-into-star",
            note: "absolutely consistent: the starred target slot absorbs all tuples",
            mapping: mapping(
                "root r\nr -> a*\na @ v",
                "root r\nr -> b*\nb @ w",
                &["r/a(x) --> r/b(x)"],
            ),
        },
        Case {
            name: "order-flip",
            note: "horizontal: source forces a→b, target demands b→*a — inconsistent",
            mapping: mapping(
                "root r\nr -> a, b\na @ v\nb @ v",
                "root r\nr -> a, b\na @ v\nb @ v",
                &["r[a(x) -> b(y)] --> r[b(y) ->* a(x)]"],
            ),
        },
        Case {
            name: "join-on-inequality",
            note: "SM(⇓,≠): undecidable in general — bounded analysis only (Thm 5.4)",
            mapping: mapping(
                "root r\nr -> a*\na @ v",
                "root r\nr -> b\nb @ w",
                &["r[a(x) ->* a(y)] ; x != y --> r/b(x)"],
            ),
        },
    ]
}

fn main() {
    // Several cases share schemas; one context compiles each SatCache once
    // and serves both the CONS and ABSCONS columns (and the witness pass).
    let ctx = EngineContext::new();
    println!(
        "{:<24} {:<14} {:>13} {:>13}  note",
        "mapping", "class", "CONS", "ABSCONS"
    );
    println!("{}", "-".repeat(100));
    for case in suite() {
        let m = &case.mapping;
        let sig = m.signature().to_string();

        // Consistency: exact procedure where applicable, bounded otherwise.
        let cons = match ctx.consistent(m, BUDGET) {
            Ok(ans) => {
                // Cross-check the PTIME fragment where it applies.
                if let Some(fast) = consistent_nr_ptime(m) {
                    assert_eq!(fast, ans.is_consistent(), "{}", case.name);
                }
                if ans.is_consistent() { "yes" } else { "NO" }.to_string()
            }
            Err(_) => match bounded::consistent_bounded(m, 3, 4) {
                BoundedOutcome::Witness(_) => "yes (bounded)".to_string(),
                BoundedOutcome::ExhaustedBounds => "? (bounded)".to_string(),
            },
        };

        // Absolute consistency: PTIME fragment → SM° structural → bounded.
        let abscons = if let Some(ans) = abscons_nr_ptime(m) {
            if ans.holds() { "yes" } else { "NO" }.to_string()
        } else if let Ok(Ok(ans)) = ctx.abscons_structural(m, BUDGET) {
            if ans.holds() { "yes" } else { "NO" }.to_string()
        } else {
            match bounded::abscons_violation_bounded(m, 3, 4) {
                BoundedOutcome::Witness(_) => "NO (bounded)".to_string(),
                BoundedOutcome::ExhaustedBounds => "yes≤bound".to_string(),
            }
        };

        println!(
            "{:<24} {:<14} {:>13} {:>13}  {}",
            case.name, sig, cons, abscons, case.note
        );
    }

    println!("\nWitness documents for the consistent cases:");
    for case in suite() {
        if let Ok(ConsAnswer::Consistent { source, target }) = ctx.consistent(&case.mapping, BUDGET)
        {
            assert!(case.mapping.is_solution(&source, &target));
            println!(
                "  {:<24} source {} nodes, solution {} nodes (verified)",
                case.name,
                source.size(),
                target.size()
            );
        }
    }
}
