//! Bibliography exchange: a fuller data-exchange pipeline.
//!
//! A publisher's catalogue (books with authors and editions) is exchanged
//! into a citation database, exercising the query-side toolkit:
//!
//! * pattern **minimisation** against the source schema;
//! * the **chase** and **solution reduction**;
//! * **certain answers** over the exchanged data;
//! * a follow-up **composition** into an analytics schema.
//!
//! Run with: `cargo run --example bibliography`

use xmlmap::prelude::*;
use xmlmap::trees::tree;

fn main() {
    // ── Source: publisher catalogue ────────────────────────────────────
    let catalogue = xmlmap::dtd::parse(
        "root catalogue
         catalogue -> book*
         book -> author+, edition*
         book @ title
         author @ name
         edition @ year",
    )
    .unwrap();

    // ── Target: citation database ──────────────────────────────────────
    let citations = xmlmap::dtd::parse(
        "root db
         db -> work*
         work -> credit*
         work @ title
         credit @ who",
    )
    .unwrap();

    let exchange = Mapping::new(
        catalogue.clone(),
        citations.clone(),
        vec![Std::parse("catalogue/book(t)[author(a)] --> db/work(t)/credit(a)").unwrap()],
    );
    println!("exchange mapping class: {}", exchange.signature());

    // ── Pattern minimisation against the source schema ─────────────────
    // `book` always has an author (author+), so the extra //author probe
    // is redundant; minimisation strips it.
    let verbose = xmlmap::patterns::parse("catalogue[book(t)[author(a)], //author]").unwrap();
    let minimal =
        xmlmap::patterns::minimize(&catalogue, &verbose, xmlmap::patterns::DEFAULT_BUDGET).unwrap();
    println!("minimised query: {verbose}  ⇒  {minimal}");
    assert_eq!(minimal.to_string(), "catalogue[book(t)[author(a)]]");

    // ── A catalogue document ───────────────────────────────────────────
    let source = tree! {
        "catalogue" [
            "book"("title" = "Elements of Finite Model Theory") [
                "author"("name" = "Libkin"),
                "edition"("year" = "2004"),
            ],
            "book"("title" = "Data Exchange") [
                "author"("name" = "Arenas"),
                "author"("name" = "Libkin"),
            ],
        ]
    };
    assert!(catalogue.conforms(&source));

    // ── Chase + reduction + nesting ────────────────────────────────────
    let solution = canonical_solution(&exchange, &source).expect("chaseable");
    let reduced = xmlmap::core::reduce_solution(&exchange, &solution);
    let nested = xmlmap::core::nest_solution(&exchange, &reduced);
    println!(
        "chase: {} nodes, reduced: {} nodes, nested: {} nodes",
        solution.size(),
        reduced.size(),
        nested.size()
    );
    assert!(exchange.is_solution(&source, &nested));
    println!("{}", xmlmap::trees::xml::to_string(&nested));
    // Nesting groups both credits of "Data Exchange" under ONE work node.
    let works = nested.children(Tree::ROOT).len();
    assert_eq!(works, 2, "one work per distinct title");

    // ── Certain answers ────────────────────────────────────────────────
    let who_wrote = xmlmap::patterns::parse("db/work(t)/credit(a)").unwrap();
    let answers = xmlmap::core::certain_answers(&exchange, &source, &who_wrote).unwrap();
    println!("certain (title, author) pairs:");
    for a in &answers {
        println!("  {} — {}", a[&Name::new("t")], a[&Name::new("a")]);
    }
    assert_eq!(answers.len(), 3);

    // ── Composition into an analytics schema ───────────────────────────
    let analytics = xmlmap::dtd::parse(
        "root stats
         stats -> entry*
         entry @ who",
    )
    .unwrap();
    let roll_up = Mapping::new(
        citations,
        analytics,
        vec![Std::parse("db/work(t)/credit(a) --> stats/entry(a)").unwrap()],
    );
    let s13 = compose(
        &SkolemMapping::from_mapping(&exchange).unwrap(),
        &SkolemMapping::from_mapping(&roll_up).unwrap(),
    )
    .expect("closed class");
    println!("\ncomposed catalogue→stats mapping:");
    for s in &s13.stds {
        println!("  {s}");
    }
    // The composed mapping sends every author straight to stats.
    let stats_doc = tree! {
        "stats" [
            "entry"("who" = "Libkin"),
            "entry"("who" = "Arenas"),
        ]
    };
    assert!(s13.is_solution(&source, &stats_doc));
    let missing = tree!("stats"["entry"("who" = "Libkin")]);
    assert!(!s13.is_solution(&source, &missing));
    println!("composition verified on the sample documents ✓");
}
