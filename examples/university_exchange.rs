//! The paper's full introduction scenario as a data-exchange pipeline.
//!
//! Restructures teaching data from `D₁` (professors → teaching/supervision)
//! to `D₂` (courses and students at a university), exercising all three
//! mappings from §1:
//!
//! 1. the plain restructuring mapping (child navigation only);
//! 2. the deduplicating variant guarded by `cn₁ ≠ cn₂`;
//! 3. the order-preserving variant (`→` on the source, `→*` on the target).
//!
//! Run with: `cargo run --example university_exchange`

use xmlmap::core::bounded;
use xmlmap::prelude::*;

fn main() {
    let d1 = xmlmap::gen::university_dtd();
    let d2 = xmlmap::gen::university_target_dtd();

    // ── Mapping 1: plain restructuring (first figure of §1) ────────────
    let m1 = Mapping::new(
        d1.clone(),
        d2.clone(),
        vec![Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]], supervise[student(s)]]] \
             --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)], \
                   student(s)[supervisor(x)]]",
        )
        .unwrap()],
    );

    // ── Mapping 2: don't replicate a repeated course (second figure) ───
    let m2 = Mapping::new(
        d1.clone(),
        d2.clone(),
        vec![Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]], supervise[student(s)]]] \
             ; cn1 != cn2 \
             --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)], \
                   student(s)[supervisor(x)]]",
        )
        .unwrap()],
    );

    // ── Mapping 3: order preservation (third figure) ───────────────────
    let m3 = Mapping::new(
        d1.clone(),
        d2.clone(),
        vec![Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]] \
             ; cn1 != cn2 \
             --> r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)], \
                   student(s)[supervisor(x)]]",
        )
        .unwrap()],
    );

    for (name, m) in [
        ("plain", &m1),
        ("dedup (≠)", &m2),
        ("ordered (→, →*, ≠)", &m3),
    ] {
        println!("mapping {name}: class {}", m.signature());
    }

    // ── A professor teaching the same course twice ─────────────────────
    let dup_source = xmlmap::trees::tree! {
        "r" [ "prof"("name" = "Ada") [
            "teach" [ "year"("y" = "2008") [
                "course"("cno" = "ml"),
                "course"("cno" = "ml"),
            ] ],
            "supervise" [ "student"("sid" = "Sue") ],
        ] ]
    };
    assert!(d1.conforms(&dup_source));

    // Mapping 1 fires (cn1 = cn2 = "ml" is a legal match), mapping 2 does
    // not — exactly the distinction the paper introduces ≠ for.
    assert_eq!(m1.stds[0].firings(&dup_source).len(), 1);
    assert_eq!(m2.stds[0].firings(&dup_source).len(), 0);
    println!(
        "\nduplicate-course source: plain fires {} time(s), dedup fires {}",
        m1.stds[0].firings(&dup_source).len(),
        m2.stds[0].firings(&dup_source).len()
    );

    // ── Chase mapping 1 and inspect the exchanged document ─────────────
    let source = xmlmap::gen::university_tree(3, 2);
    let solution = canonical_solution(&m1, &source).expect("chaseable fragment");
    assert!(m1.is_solution(&source, &solution));
    println!(
        "\nchase: {}-node source → {}-node canonical solution (verified)",
        source.size(),
        solution.size()
    );

    // ── Order preservation under mapping 3 ─────────────────────────────
    // cs-first target vs. flipped target for one professor.
    let ordered_source = xmlmap::trees::tree! {
        "r" [ "prof"("name" = "Ada") [
            "teach" [ "year"("y" = "2008") [
                "course"("cno" = "algo"),
                "course"("cno" = "logic"),
            ] ],
            "supervise" [ "student"("sid" = "Sue") ],
        ] ]
    };
    let in_order = xmlmap::trees::tree! {
        "r" [
            "course"("cno" = "algo", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "course"("cno" = "logic", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "student"("sid" = "Sue") [ "supervisor"("name" = "Ada") ],
        ]
    };
    let flipped = xmlmap::trees::tree! {
        "r" [
            "course"("cno" = "logic", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "course"("cno" = "algo", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "student"("sid" = "Sue") [ "supervisor"("name" = "Ada") ],
        ]
    };
    println!("\norder-preserving mapping:");
    println!(
        "  courses in source order:  {}",
        m3.is_solution(&ordered_source, &in_order)
    );
    println!(
        "  courses flipped:          {}",
        m3.is_solution(&ordered_source, &flipped)
    );
    assert!(m3.is_solution(&ordered_source, &in_order));
    assert!(!m3.is_solution(&ordered_source, &flipped));
    // The order-insensitive mapping 2 accepts both.
    assert!(m2.is_solution(&ordered_source, &in_order));
    assert!(m2.is_solution(&ordered_source, &flipped));

    // ── Solution existence per document (the ABSCONS perspective) ──────
    // Mapping 1 is absolutely consistent on this pair of schemas: every
    // target slot it writes sits under a starred element. The chase is the
    // per-document decision procedure (it fails iff no solution exists),
    // and the bounded oracle agrees on a small document.
    let every = [
        xmlmap::gen::university_tree(0, 0),
        xmlmap::gen::university_tree(1, 0),
        xmlmap::gen::university_tree(4, 3),
        dup_source.clone(),
        ordered_source.clone(),
    ];
    for t in &every {
        let sol = canonical_solution(&m1, t).expect("every source has a solution");
        assert!(m1.is_solution(t, &sol));
    }
    assert!(bounded::solution_exists(&m1, &xmlmap::gen::university_tree(1, 0), 8).is_some());
    println!("\nall sampled sources have solutions under the plain mapping ✓");
}
