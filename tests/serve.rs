//! End-to-end tests for the `xmlmap serve` daemon, driven in-process
//! through the library API (`core::serve`): correctness under concurrent
//! clients, per-request deadlines, malformed-frame recovery, graceful
//! drain, and warm-restart cache provenance.
#![cfg(unix)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;
use xmlmap::core::{
    parse_jobfile, render_batch, render_results, run_batch, serve, Endpoint, EngineContext,
    JobResult, ServeClient, ServeConfig, ServeSummary, ShutdownHandle,
};

const COPY_MAP: &str = "[source]\nroot r\nr -> a*\na @ v\n\
                        [target]\nroot r\nr -> b*\nb @ w\n\
                        [stds]\nr/a(x) --> r/b(x)\n";

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        static UNIQUE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "xmlmap-serve-{name}-{}-{}",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let fx = Fixture { dir };
        fx.file("copy.map", COPY_MAP);
        fx.file("d.dtd", "root r\nr -> a*\na @ v");
        fx.file("src.xml", r#"<r><a v="1"/><a v="2"/></r>"#);
        fx.file("tgt.xml", r#"<r><b w="1"/><b w="2"/></r>"#);
        fx
    }

    fn file(&self, name: &str, contents: &str) {
        std::fs::write(self.dir.join(name), contents).unwrap();
    }

    fn endpoint(&self) -> Endpoint {
        Endpoint::parse(self.dir.join("sock").to_str().unwrap(), false).unwrap()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Runs `body` against a live in-process daemon, then drains it and
/// returns the summary.
fn with_server(
    fx: &Fixture,
    ctx: &EngineContext,
    configure: impl FnOnce(&mut ServeConfig),
    body: impl FnOnce(&Endpoint, &ShutdownHandle),
) -> ServeSummary {
    let mut cfg = ServeConfig {
        root: fx.dir.clone(),
        ..ServeConfig::default()
    };
    configure(&mut cfg);
    let endpoint = fx.endpoint();
    let shutdown = ShutdownHandle::new();
    std::thread::scope(|scope| {
        let handle = {
            let endpoint = endpoint.clone();
            let shutdown = shutdown.clone();
            let cfg = &cfg;
            scope.spawn(move || serve(&endpoint, ctx, cfg, &shutdown))
        };
        body(&endpoint, &shutdown);
        shutdown.raise();
        handle.join().expect("server thread").expect("serve result")
    })
}

fn connect(endpoint: &Endpoint) -> ServeClient {
    ServeClient::connect_with_retry(endpoint, Duration::from_secs(10)).expect("daemon reachable")
}

const JOBFILE: &str = "member copy.map src.xml tgt.xml\n\
                       consistent copy.map\n\
                       abscons copy.map\n\
                       subschema d.dtd d.dtd\n\
                       # comments and blanks are filtered on both paths\n\
                       \n\
                       consistent copy.map\n";

#[test]
fn round_trip_is_byte_equivalent_to_batch() {
    let fx = Fixture::new("roundtrip");
    // Reference rendering: the batch driver over a fresh context.
    let jobs = parse_jobfile(JOBFILE, &fx.dir).unwrap();
    let batch_ctx = EngineContext::new();
    let expected = render_batch(&jobs, &run_batch(&batch_ctx, &jobs, 1));

    let ctx = EngineContext::new();
    with_server(
        &fx,
        &ctx,
        |_| {},
        |endpoint, _| {
            let mut client = connect(endpoint);
            let lines: Vec<&str> = JOBFILE
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .collect();
            // Pipeline everything, then collect and reorder by id.
            for line in &lines {
                client.send(line, 0).unwrap();
            }
            let mut results: Vec<Option<JobResult>> = vec![None; lines.len()];
            for _ in 0..lines.len() {
                let response = client.recv().unwrap();
                let slot = &mut results[response.id as usize - 1];
                assert!(slot.is_none(), "duplicate response id {}", response.id);
                *slot = Some(response.result);
            }
            let labeled: Vec<(String, JobResult)> = lines
                .iter()
                .map(|l| l.to_string())
                .zip(results.into_iter().map(Option::unwrap))
                .collect();
            assert_eq!(render_results(&labeled), expected);
        },
    );
}

#[test]
fn concurrent_clients_get_correct_interleaved_responses() {
    let fx = Fixture::new("concurrent");
    let ctx = EngineContext::new();
    let summary = with_server(
        &fx,
        &ctx,
        |cfg| cfg.workers = 4,
        |endpoint, _| {
            std::thread::scope(|scope| {
                for client_no in 0..4 {
                    let endpoint = endpoint.clone();
                    scope.spawn(move || {
                        let mut client = connect(&endpoint);
                        // Distinct interleavings per client: a mix of
                        // yes-answers, no-answers, and service pings.
                        let lines: Vec<String> = (0..12)
                            .map(|i| match (client_no + i) % 4 {
                                0 => "consistent copy.map".to_string(),
                                1 => "member copy.map src.xml src.xml".to_string(),
                                2 => "subschema d.dtd d.dtd".to_string(),
                                _ => "PING".to_string(),
                            })
                            .collect();
                        for line in &lines {
                            client.send(line, 0).unwrap();
                        }
                        let mut seen = vec![false; lines.len()];
                        for _ in 0..lines.len() {
                            let response = client.recv().unwrap();
                            let idx = response.id as usize - 1;
                            assert!(!seen[idx], "duplicate id {}", response.id);
                            seen[idx] = true;
                            match response.result {
                                JobResult::Answer { yes, ref detail } => {
                                    match lines[idx].split_whitespace().next().unwrap() {
                                        "consistent" => {
                                            assert!(yes, "copy mapping is consistent")
                                        }
                                        "member" => {
                                            // A source document is not a
                                            // valid target document.
                                            assert!(!yes, "src.xml is not a solution")
                                        }
                                        "subschema" => assert!(yes && detail.contains("subschema")),
                                        "PING" => assert_eq!(detail, "pong"),
                                        other => panic!("unexpected op {other}"),
                                    }
                                }
                                JobResult::Failed { ref error } => {
                                    panic!("job `{}` failed: {error}", lines[idx])
                                }
                            }
                        }
                        assert!(seen.into_iter().all(|s| s));
                    });
                }
            });
        },
    );
    assert_eq!(summary.connections, 4);
    assert_eq!(summary.requests, 4 * 12);
    assert_eq!(summary.failed, 0);
}

#[test]
fn deadline_gives_budget_style_error_without_poisoning_caches() {
    let fx = Fixture::new("deadline");
    let ctx = EngineContext::new();
    with_server(
        &fx,
        &ctx,
        |cfg| cfg.workers = 1,
        |endpoint, _| {
            let mut client = connect(endpoint);
            // One worker: the 400ms ping occupies it, so the consistency
            // probe's 50ms deadline expires while it waits in the queue.
            let ping_id = client.send("PING 400", 0).unwrap();
            let probe_id = client.send("consistent copy.map", 50).unwrap();
            let (mut ping_ok, mut probe_err) = (false, None);
            for _ in 0..2 {
                let response = client.recv().unwrap();
                if response.id == ping_id {
                    ping_ok = matches!(response.result, JobResult::Answer { yes: true, .. });
                } else {
                    assert_eq!(response.id, probe_id);
                    match response.result {
                        JobResult::Failed { error } => probe_err = Some(error),
                        other => panic!("expected a deadline error, got {other:?}"),
                    }
                }
            }
            assert!(ping_ok, "the slow ping itself succeeds");
            let error = probe_err.expect("probe response arrived");
            assert!(
                error.contains("deadline of 50ms exceeded"),
                "budget-style deadline error, got: {error}"
            );
            // The same request without a deadline now gets the real
            // answer — the failed attempt did not poison any cache.
            let retry = client.roundtrip("consistent copy.map", 0).unwrap();
            match retry.result {
                JobResult::Answer { yes, detail } => {
                    assert!(yes, "copy mapping is consistent: {detail}")
                }
                other => panic!("retry should succeed, got {other:?}"),
            }
        },
    );
}

#[test]
fn malformed_frames_get_error_responses_not_a_dropped_connection() {
    use xmlmap::codec::frame;

    let fx = Fixture::new("malformed");
    let ctx = EngineContext::new();
    with_server(
        &fx,
        &ctx,
        |_| {},
        |endpoint, _| {
            let Endpoint::Unix(path) = endpoint.clone() else {
                panic!("unix endpoint expected")
            };
            let mut stream = loop {
                match std::os::unix::net::UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            };
            // A well-framed but garbage payload: error response, stream lives.
            let mut reader = stream.try_clone().unwrap();
            frame::write(&mut stream, b"not a request record").unwrap();
            let payload = match frame::read(&mut reader, frame::MAX_FRAME).unwrap() {
                frame::ReadFrame::Frame(p) => p,
                other => panic!("expected an error frame, got {other:?}"),
            };
            let response = xmlmap::core::Response::parse(&payload).unwrap();
            assert_eq!(response.id, 0, "protocol errors use the reserved id 0");
            match response.result {
                JobResult::Failed { error } => {
                    assert!(error.contains("malformed request frame"), "got: {error}")
                }
                other => panic!("expected an error, got {other:?}"),
            }
            // An unknown operation is a per-request error, same connection.
            let mut client_frame = xmlmap::core::serve::encode_request(9, 0, "frobnicate copy.map");
            frame::write(&mut stream, &client_frame).unwrap();
            let payload = match frame::read(&mut reader, frame::MAX_FRAME).unwrap() {
                frame::ReadFrame::Frame(p) => p,
                other => panic!("expected a frame, got {other:?}"),
            };
            let response = xmlmap::core::Response::parse(&payload).unwrap();
            assert_eq!(response.id, 9);
            assert!(matches!(response.result, JobResult::Failed { .. }));
            // And the connection still answers real work afterwards.
            client_frame = xmlmap::core::serve::encode_request(10, 0, "consistent copy.map");
            frame::write(&mut stream, &client_frame).unwrap();
            let payload = match frame::read(&mut reader, frame::MAX_FRAME).unwrap() {
                frame::ReadFrame::Frame(p) => p,
                other => panic!("expected a frame, got {other:?}"),
            };
            let response = xmlmap::core::Response::parse(&payload).unwrap();
            assert_eq!(response.id, 10);
            assert!(matches!(
                response.result,
                JobResult::Answer { yes: true, .. }
            ));
        },
    );
}

#[test]
fn shutdown_mid_request_drains_in_flight_work() {
    let fx = Fixture::new("drain");
    let ctx = EngineContext::new();
    let endpoint = fx.endpoint();
    let summary = with_server(
        &fx,
        &ctx,
        |cfg| cfg.workers = 2,
        |_, shutdown| {
            let mut client = connect(&endpoint);
            // Six slow pings: two run, four queue. Shutdown arrives while
            // all six are in flight; every one must still be answered.
            for _ in 0..6 {
                client.send("PING 150", 0).unwrap();
            }
            std::thread::sleep(Duration::from_millis(60));
            shutdown.raise();
            let mut answered = 0;
            for _ in 0..6 {
                let response = client.recv().unwrap();
                match response.result {
                    JobResult::Answer {
                        yes: true,
                        ref detail,
                    } if detail == "pong" => answered += 1,
                    other => panic!("expected pong, got {other:?}"),
                }
            }
            assert_eq!(answered, 6, "drain answers every accepted request");
        },
    );
    assert_eq!(summary.requests, 6);
    assert_eq!(summary.failed, 0);
    let Endpoint::Unix(path) = fx.endpoint() else {
        panic!()
    };
    assert!(!path.exists(), "socket file removed after drain");
}

#[test]
fn delta_sessions_live_across_requests_and_match_a_full_chase() {
    use xmlmap::core::{canonical_solution, reduce_solution, Mapping};
    use xmlmap::trees::xml;

    let fx = Fixture::new("delta");
    fx.file(
        "upd.txt",
        "insert . 2 <a v=\"3\"/>\ndelete 0\nsettext 0 v 9\n",
    );
    // The same edits by hand: [a1, a2] -> insert a3 -> drop a1 -> a2.v = 9.
    let final_source = xml::parse(r#"<r><a v="9"/><a v="3"/></r>"#).unwrap();
    let mapping = Mapping::parse(COPY_MAP).unwrap();
    let expected = xml::to_string(&reduce_solution(
        &mapping,
        &canonical_solution(&mapping, &final_source).unwrap(),
    ));

    let ctx = EngineContext::new();
    with_server(
        &fx,
        &ctx,
        |_| {},
        |endpoint, _| {
            let mut client = connect(endpoint);
            let open = client
                .roundtrip("DELTA OPEN s1 copy.map src.xml", 0)
                .unwrap();
            match open.result {
                JobResult::Answer { yes: true, detail } => {
                    assert!(detail.contains("opened `s1`"), "got: {detail}")
                }
                other => panic!("OPEN failed: {other:?}"),
            }
            // Opening the same name again is refused.
            let dup = client
                .roundtrip("DELTA OPEN s1 copy.map src.xml", 0)
                .unwrap();
            assert!(
                matches!(dup.result, JobResult::Failed { ref error } if error.contains("already open")),
                "duplicate open must fail: {dup:?}"
            );
            // The pristine solution first, then the updated one.
            let before = client.roundtrip("DELTA SOLUTION s1", 0).unwrap();
            match before.result {
                JobResult::Answer { yes: true, detail } => {
                    assert!(detail.contains("w=\"1\"") && detail.contains("w=\"2\""));
                }
                other => panic!("SOLUTION failed: {other:?}"),
            }
            let apply = client.roundtrip("DELTA APPLY s1 upd.txt", 0).unwrap();
            match apply.result {
                JobResult::Answer { yes: true, detail } => {
                    assert!(detail.contains("applied 3 update(s)"), "got: {detail}")
                }
                other => panic!("APPLY failed: {other:?}"),
            }
            let after = client.roundtrip("DELTA SOLUTION s1", 0).unwrap();
            match after.result {
                JobResult::Answer { yes: true, detail } => assert_eq!(
                    detail, expected,
                    "incremental solution equals a full re-chase"
                ),
                other => panic!("SOLUTION failed: {other:?}"),
            }
            // Ordinary job lines interleave with session traffic.
            let probe = client.roundtrip("consistent copy.map", 0).unwrap();
            assert!(matches!(probe.result, JobResult::Answer { yes: true, .. }));
            // Close tallies the session into the engine stats.
            let close = client.roundtrip("DELTA CLOSE s1", 0).unwrap();
            match close.result {
                JobResult::Answer { yes: true, detail } => {
                    assert!(detail.contains("closed `s1` after 3 update(s)"), "{detail}")
                }
                other => panic!("CLOSE failed: {other:?}"),
            }
            let gone = client.roundtrip("DELTA SOLUTION s1", 0).unwrap();
            assert!(
                matches!(gone.result, JobResult::Failed { ref error } if error.contains("no delta session")),
                "closed session must be gone: {gone:?}"
            );
            let stats = client.stats().unwrap();
            assert!(stats.contains("\"delta_sessions\":1"), "stats: {stats}");
            assert!(stats.contains("\"delta_updates\":3"), "stats: {stats}");
            // Malformed verbs are per-request errors, not dropped frames.
            let bad = client.roundtrip("DELTA FROB s1", 0).unwrap();
            assert!(
                matches!(bad.result, JobResult::Failed { ref error } if error.contains("bad DELTA request")),
                "got: {bad:?}"
            );
        },
    );
}

#[test]
fn stats_reports_provenance_and_warm_restart_compiles_nothing() {
    let fx = Fixture::new("warm");
    let store = fx.dir.join("cache");
    let jobs = ["consistent copy.map", "subschema d.dtd d.dtd"];

    // Cold run: compiles, writes the artifact store.
    let cold_ctx = EngineContext::new().with_disk_cache(&store).unwrap();
    with_server(
        &fx,
        &cold_ctx,
        |_| {},
        |endpoint, _| {
            let mut client = connect(endpoint);
            for job in jobs {
                let response = client.roundtrip(job, 0).unwrap();
                assert!(matches!(
                    response.result,
                    JobResult::Answer { yes: true, .. }
                ));
            }
            let stats = client.stats().unwrap();
            assert!(
                !stats.contains("\"total_compiled\":0"),
                "cold run compiled something: {stats}"
            );
            assert!(stats.contains("\"requests\":"), "server tallies exposed");
        },
    );

    // Warm restart against the same store: zero compiles, all disk loads.
    let warm_ctx = EngineContext::new().with_disk_cache(&store).unwrap();
    with_server(
        &fx,
        &warm_ctx,
        |_| {},
        |endpoint, _| {
            let mut client = connect(endpoint);
            for job in jobs {
                let response = client.roundtrip(job, 0).unwrap();
                assert!(matches!(
                    response.result,
                    JobResult::Answer { yes: true, .. }
                ));
                assert_eq!(response.compiled, 0, "warm restart must not compile");
            }
            let stats = client.stats().unwrap();
            assert!(
                stats.contains("\"total_compiled\":0"),
                "warm restart compiled: {stats}"
            );
        },
    );
}
