//! Every concrete example in the paper, as an executable test.
//!
//! Section by section: the introduction's three mappings, the relational
//! encoding of §3, the inconsistency example of §5, the absolute-consistency
//! counterexample of §6, and the two composition counterexamples of §8
//! (Prop 8.1) that motivate the closed class of Thm 8.2.

use xmlmap::core::bounded;
use xmlmap::prelude::*;
use xmlmap::trees::tree;

fn dtd(s: &str) -> Dtd {
    xmlmap::dtd::parse(s).unwrap()
}

fn pat(s: &str) -> Pattern {
    xmlmap::patterns::parse(s).unwrap()
}

// ───────────────────────── §1: the three intro mappings ─────────────────

fn d1() -> Dtd {
    xmlmap::gen::university_dtd()
}

fn d2() -> Dtd {
    xmlmap::gen::university_target_dtd()
}

fn ada() -> Tree {
    tree! {
        "r" [ "prof"("name" = "Ada") [
            "teach" [ "year"("y" = "2008") [
                "course"("cno" = "cs1"),
                "course"("cno" = "cs2"),
            ] ],
            "supervise" [ "student"("sid" = "Sue") ],
        ] ]
    }
}

#[test]
fn intro_first_mapping_restructures() {
    // π₁ → π₂ (first figure): plain restructuring.
    let m = Mapping::new(
        d1(),
        d2(),
        vec![Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]], supervise[student(s)]]] \
             --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)], \
                   student(s)[supervisor(x)]]",
        )
        .unwrap()],
    );
    let solution = canonical_solution(&m, &ada()).unwrap();
    assert!(m.is_solution(&ada(), &solution));
    // Both courses appear with Ada as the teacher.
    let courses = pat("r/course(c, y)/taughtby(t)");
    let ms = xmlmap::patterns::all_matches(&solution, &courses);
    let teachers: Vec<_> = ms.iter().map(|v| v[&Name::new("t")].to_string()).collect();
    assert!(teachers.iter().all(|t| t == "Ada"));
    let cnos: std::collections::BTreeSet<String> =
        ms.iter().map(|v| v[&Name::new("c")].to_string()).collect();
    assert_eq!(cnos, ["cs1", "cs2"].iter().map(|s| s.to_string()).collect());
}

#[test]
fn intro_second_mapping_inequality() {
    // The ≠ guard stops replication of a twice-taught course.
    let m = Mapping::new(
        d1(),
        d2(),
        vec![Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]], supervise[student(s)]]] \
             ; cn1 != cn2 \
             --> r[course(cn1, y)[taughtby(x)], course(cn2, y)[taughtby(x)], \
                   student(s)[supervisor(x)]]",
        )
        .unwrap()],
    );
    let twice = tree! {
        "r" [ "prof"("name" = "Ada") [
            "teach" [ "year"("y" = "2008") [
                "course"("cno" = "ml"), "course"("cno" = "ml") ] ],
            "supervise" [ "student"("sid" = "Sue") ],
        ] ]
    };
    // No firings ⇒ the empty-ish target is a solution.
    assert!(m.stds[0].firings(&twice).is_empty());
    assert!(m.is_solution(&twice, &Tree::new("r")));
    // With distinct courses it fires (both orders).
    assert_eq!(m.stds[0].firings(&ada()).len(), 2);
}

#[test]
fn intro_third_mapping_preserves_order() {
    let m = Mapping::new(
        d1(),
        d2(),
        vec![Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]] \
             ; cn1 != cn2 \
             --> r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)], \
                   student(s)[supervisor(x)]]",
        )
        .unwrap()],
    );
    let ordered = tree! {
        "r" [
            "course"("cno" = "cs1", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "course"("cno" = "cs2", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "student"("sid" = "Sue") [ "supervisor"("name" = "Ada") ],
        ]
    };
    let reversed = tree! {
        "r" [
            "course"("cno" = "cs2", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "course"("cno" = "cs1", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
            "student"("sid" = "Sue") [ "supervisor"("name" = "Ada") ],
        ]
    };
    assert!(m.is_solution(&ada(), &ordered));
    assert!(!m.is_solution(&ada(), &reversed));
}

// ───────────────────────── §3: relational encoding ──────────────────────

#[test]
fn relational_schemas_embed() {
    // S = {S1(A,B), S2(C,D)}: r → s1, s2; s1 → t1*; s2 → t2*.
    use xmlmap::dtd::{instance_to_tree, schema_to_dtd, Relation};
    let rels = vec![
        Relation::new("S1", ["A", "B"]),
        Relation::new("S2", ["C", "D"]),
    ];
    let d = schema_to_dtd(&rels).unwrap();
    assert!(d.is_strictly_nested_relational());

    // The join S1(x,y), S2(y,z) as a pattern with an equality.
    let m = Mapping::new(
        d.clone(),
        schema_to_dtd(&[Relation::new("T", ["A", "D"])]).unwrap(),
        vec![Std::parse(
            "r[s1[tuple_s1(x, y1)], s2[tuple_s2(y2, z)]] ; y1 = y2 --> r/t/tuple_t(x, z)",
        )
        .unwrap()],
    );
    let inst = vec![
        (
            rels[0].clone(),
            vec![
                vec![Value::str("a"), Value::str("j")],
                vec![Value::str("b"), Value::str("k")],
            ],
        ),
        (
            rels[1].clone(),
            vec![vec![Value::str("j"), Value::str("out")]],
        ),
    ];
    let source = instance_to_tree(&inst);
    assert!(d.conforms(&source));
    // The join fires exactly once: (a, j) ⋈ (j, out).
    assert_eq!(m.stds[0].firings(&source).len(), 1);
    let sol = canonical_solution(&m, &source).unwrap();
    assert!(m.is_solution(&source, &sol));
    assert!(xmlmap::patterns::matches_with(
        &sol,
        &pat("r/t/tuple_t(x, z)"),
        &[
            (Name::new("x"), Value::str("a")),
            (Name::new("z"), Value::str("out"))
        ]
        .into_iter()
        .collect(),
    ));
}

// ───────────────────────── §5: consistency example ──────────────────────

#[test]
fn sec5_changed_target_dtd_is_inconsistent() {
    // "Suppose the DTD D2 changes to r → courses, students; …" — the first
    // intro mapping becomes inconsistent: course nodes must be
    // grandchildren. (prof+ forces the std to fire.)
    let changed_d2 = dtd("root r
         r -> courses, students
         courses -> course*
         students -> student*
         course @ cno, year
         student @ sid");
    let forced_d1 = dtd("root r
         r -> prof+
         prof -> teach, supervise
         teach -> year
         year -> course, course
         supervise -> student*
         prof @ name
         student @ sid
         year @ y
         course @ cno");
    let m = Mapping::new(
        forced_d1,
        changed_d2,
        vec![Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1), course(cn2)]]]] \
             --> r[course(cn1, y), course(cn2, y)]",
        )
        .unwrap()],
    );
    let ans = xmlmap::core::consistent(&m, 1_000_000).unwrap();
    assert!(!ans.is_consistent());
}

// ───────────────────────── §6: absolute consistency ─────────────────────

#[test]
fn sec6_abscons_counterexample() {
    // Source r → a*, target r → a, std r/a(x) → r/a(x): consistent but not
    // absolutely consistent; the stripped version IS absolutely consistent.
    let m = Mapping::new(
        dtd("root r\nr -> a*\na @ v"),
        dtd("root r\nr -> a\na @ v"),
        vec![Std::parse("r/a(x) --> r/a(x)").unwrap()],
    );
    assert!(xmlmap::core::consistent(&m, 1_000_000)
        .unwrap()
        .is_consistent());
    assert!(!xmlmap::core::abscons_nr_ptime(&m).unwrap().holds());

    // The paper's concrete counterexample: two distinct attribute values.
    let two = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
    assert!(bounded::solution_exists(&m, &two, 4).is_none());
    assert!(matches!(
        canonical_solution(&m, &two),
        Err(xmlmap::core::ChaseError::ValueConflict(_))
    ));

    // Stripped: r/a → r/a.
    let stripped = Mapping::new(
        dtd("root r\nr -> a*"),
        dtd("root r\nr -> a"),
        vec![Std::parse("r/a --> r/a").unwrap()],
    );
    assert!(xmlmap::core::abscons_structural(&stripped, 1_000_000)
        .unwrap()
        .unwrap()
        .holds());
}

// ───────────────────────── §8: composition counterexamples ──────────────

#[test]
fn sec8_first_example_composition_needs_disjunction() {
    // D1 = {r → ε}, D2 = {r → b1|b2; b1,b2 → b3}, D3 = {r → c1?c2?c3?};
    // Σ12 = {r → r/_/b3}, Σ23 = {r/b1 → r/c1, r/b2 → r/c2}.
    // The composition contains (r, T) iff T matches r/c1 or r/c2.
    let m12 = Mapping::new(
        dtd("root r\nr -> "),
        dtd("root r\nr -> b1|b2\nb1 -> b3\nb2 -> b3"),
        vec![Std::parse("r --> r/_/b3").unwrap()],
    );
    let m23 = Mapping::new(
        dtd("root r\nr -> b1|b2\nb1 -> b3\nb2 -> b3"),
        dtd("root r\nr -> c1?, c2?, c3?"),
        vec![
            Std::parse("r/b1 --> r/c1").unwrap(),
            Std::parse("r/b2 --> r/c2").unwrap(),
        ],
    );
    let r = Tree::new("r");
    let c1 = tree!("r"["c1"]);
    let c2 = tree!("r"["c2"]);
    let c3 = tree!("r"["c3"]);
    let c12 = tree!("r" [ "c1", "c2" ]);

    // Exactly the c1-or-c2 disjunction (one shared context for all probes):
    let ctx = EngineContext::new();
    let member = |t3: &Tree| ctx.composition_member(&m12, &m23, &r, t3, 4);
    assert!(member(&c1).is_some());
    assert!(member(&c2).is_some());
    assert!(member(&c12).is_some());
    assert!(member(&c3).is_none());
    assert!(member(&r).is_none());

    // And the class of Thm 8.2 rightly rejects these mappings: the middle
    // DTD has a disjunction (not nested-relational).
    let s12 = SkolemMapping::from_mapping(&m12);
    assert!(
        s12.is_err()
            || xmlmap::core::compose(&s12.unwrap(), &SkolemMapping::from_mapping(&m23).unwrap())
                .is_err()
    );
}

#[test]
fn sec8_second_example_value_counting() {
    // D1 = {r → a*}, D2 = {r → b, b}, D3 = {r → ε}; Σ12 = {r/a(x) → r/b(x)},
    // Σ23 = {r → r}. Composition = pairs (T, r) with ≤ 2 distinct a-values.
    let m12 = Mapping::new(
        dtd("root r\nr -> a*\na @ v"),
        dtd("root r\nr -> b, b\nb @ w"),
        vec![Std::parse("r/a(x) --> r/b(x)").unwrap()],
    );
    let m23 = Mapping::new(
        dtd("root r\nr -> b, b\nb @ w"),
        dtd("root r\nr -> "),
        vec![Std::parse("r --> r").unwrap()],
    );
    let target = Tree::new("r");

    let one = tree!("r"["a"("v" = "1")]);
    let two = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
    let three = tree!("r" [ "a"("v" = "1"), "a"("v" = "2"), "a"("v" = "3") ]);
    let two_dup = tree!("r" [ "a"("v" = "1"), "a"("v" = "2"), "a"("v" = "1") ]);

    let ctx = EngineContext::new();
    let member = |t1: &Tree| ctx.composition_member(&m12, &m23, t1, &target, 3);
    assert!(member(&one).is_some());
    assert!(member(&two).is_some());
    assert!(member(&two_dup).is_some());
    assert!(member(&three).is_none());
}

// ───────────────────────── §8: the employee Skolem example ──────────────

#[test]
fn sec8_employee_skolem_example() {
    // S(empl_name, project) → T(empl_id, empl_name, office) with
    // empl_id = f(empl_name): the same employee keeps one id. The
    // functional constraint is observable where f(x) is *required* in two
    // places — here a second std publishes the id in a directory element.
    use xmlmap::core::{SkolemStd, Term, TermPattern};
    let source_dtd = dtd("root r\nr -> s*\ns @ empl_name, project");
    let target_dtd = dtd("root r\nr -> t*, dir*\nt @ empl_id, empl_name\ndir @ empl_id");
    let f = || Term::App(Name::new("f"), vec![Term::Var(Name::new("x"))]);
    let m = SkolemMapping {
        source_dtd,
        target_dtd,
        stds: vec![
            SkolemStd {
                source: pat("r/s(x, y)"),
                source_cond: vec![],
                source_term_eqs: vec![],
                target: TermPattern::leaf("r", vec![])
                    .child(TermPattern::leaf("t", vec![f(), Term::Var(Name::new("x"))])),
                target_term_eqs: vec![],
            },
            SkolemStd {
                source: pat("r/s(x, y)"),
                source_cond: vec![],
                source_term_eqs: vec![],
                target: TermPattern::leaf("r", vec![]).child(TermPattern::leaf("dir", vec![f()])),
                target_term_eqs: vec![],
            },
        ],
    };
    let source = tree! {
        "r" [
            "s"("empl_name" = "ada", "project" = "p1"),
            "s"("empl_name" = "ada", "project" = "p2"),
        ]
    };
    // One id, consistently used in both places: a solution.
    let consistent_ids = tree! {
        "r" [
            "t"("empl_id" = "7", "empl_name" = "ada"),
            "dir"("empl_id" = "7"),
        ]
    };
    assert!(m.is_solution(&source, &consistent_ids));
    // The directory lists a different id than the t tuple: f(ada) cannot
    // be both 7 and 8.
    let inconsistent_ids = tree! {
        "r" [
            "t"("empl_id" = "7", "empl_name" = "ada"),
            "dir"("empl_id" = "8"),
        ]
    };
    assert!(!m.is_solution(&source, &inconsistent_ids));
    // Without Skolem functions (plain existentials), the same pair IS a
    // solution — this is why §8 adds Skolem functions.
    let plain = Mapping::new(
        m.source_dtd.clone(),
        m.target_dtd.clone(),
        vec![
            Std::parse("r/s(x, y) --> r/t(z, x)").unwrap(),
            Std::parse("r/s(x, y) --> r/dir(z)").unwrap(),
        ],
    );
    assert!(plain.is_solution(&source, &inconsistent_ids));
}
