//! Differential tests for the incremental delta-chase
//! (`core::chase::delta`): after **every** update in a storm, the live
//! session's [`IncrementalChase::canonical_solution`] must equal a
//! from-scratch [`canonical_solution`] of the mutated document —
//! byte-identical trees (same null labels), identical `ChaseError`
//! verdicts — across random nested-relational mappings, random update
//! storms, adversarial retraction scenarios, and the batch driver's
//! `delta-apply` jobs under different worker counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use xmlmap::core::{
    canonical_solution, canonical_solution_cached, parse_updates, render_batch, run_batch,
    BatchJob, ChaseCache, ChaseError, EngineContext, IncrementalChase, JobKind, Mapping, Update,
};
use xmlmap::gen::{self, MappingGenConfig, TreeGenConfig};
use xmlmap::trees::{xml, NodeId, Tree, Value};

/// Child-index path of `n` (the delta update addressing scheme).
fn path_of(t: &Tree, mut n: NodeId) -> Vec<usize> {
    let mut path = Vec::new();
    while let Some(p) = t.parent(n) {
        let i = t.children(p).iter().position(|&c| c == n).unwrap();
        path.push(i);
        n = p;
    }
    path.reverse();
    path
}

/// Deep copy of the subtree rooted at `n` as a standalone tree.
fn subtree_of(t: &Tree, n: NodeId) -> Tree {
    fn copy(t: &Tree, from: NodeId, sub: &mut Tree, to: NodeId) {
        for &c in t.children(from) {
            let nc = sub.add_child(to, t.label(c).clone(), t.attrs(c).iter().cloned());
            copy(t, c, sub, nc);
        }
    }
    let mut sub = Tree::with_root_attrs(t.label(n).clone(), t.attrs(n).iter().cloned());
    copy(t, n, &mut sub, Tree::ROOT);
    sub
}

/// One random structurally-valid update against the current document:
/// delete a non-root subtree, duplicate a subtree as a new sibling, or
/// rewrite an attribute. Duplications routinely break DTD conformance
/// (a `One`/`Opt` slot gains a second child) — deliberately, so storms
/// exercise the error-verdict path too.
fn random_update(doc: &Tree, rng: &mut StdRng) -> Option<Update> {
    let non_root: Vec<NodeId> = doc.nodes().filter(|&n| n != Tree::ROOT).collect();
    match rng.gen_range(0..4u32) {
        0 => {
            let n = *non_root.get(rng.gen_range(0..non_root.len().max(1)))?;
            Some(Update::DeleteSubtree {
                path: path_of(doc, n),
            })
        }
        1 => {
            let n = *non_root.get(rng.gen_range(0..non_root.len().max(1)))?;
            let parent = doc.parent(n).unwrap();
            let pos = rng.gen_range(0..=doc.children(parent).len());
            Some(Update::InsertSubtree {
                parent: path_of(doc, parent),
                pos,
                subtree: subtree_of(doc, n),
            })
        }
        _ => {
            let with_attrs: Vec<NodeId> =
                doc.nodes().filter(|&n| !doc.attrs(n).is_empty()).collect();
            let n = *with_attrs.get(rng.gen_range(0..with_attrs.len().max(1)))?;
            let attrs = doc.attrs(n);
            let (attr, _) = &attrs[rng.gen_range(0..attrs.len())];
            Some(Update::ReplaceText {
                path: path_of(doc, n),
                attr: attr.clone(),
                value: Value::str(format!("v{}", rng.gen_range(0..6u32))),
            })
        }
    }
}

/// The main differential sweep: ~400 random (mapping, document, storm)
/// cases, parity with a full re-chase asserted after **every** operation.
#[test]
fn random_update_storms_track_the_full_chase() {
    let mut storm_rng = StdRng::seed_from_u64(0xD317A);
    let mut cases = 0usize;
    let mut ops_applied = 0usize;
    let mut err_verdicts = 0usize;
    let mut seed = 0u64;
    while cases < 400 {
        seed += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = gen::random_nr_dtd(3, 2, 0.6, &mut rng);
        let dt = gen::random_nr_dtd(3, 2, 0.6, &mut rng);
        let config = MappingGenConfig {
            stds: 3,
            depth: 3,
            branch_probability: 0.6,
        };
        let Some(m) = gen::random_nr_mapping(&ds, &dt, &config, &mut rng) else {
            continue;
        };
        let doc = gen::random_tree(
            &ds,
            &TreeGenConfig {
                continue_probability: 0.6,
                max_nodes: 80,
                ..Default::default()
            },
            &mut rng,
        );
        let cache = ChaseCache::new(&m);
        let mut session = IncrementalChase::new(&m, doc);
        for _ in 0..storm_rng.gen_range(1..=50usize) {
            let Some(u) = random_update(session.doc(), &mut storm_rng) else {
                break;
            };
            session
                .apply(&u)
                .expect("structurally valid updates are accepted");
            ops_applied += 1;
            let full = canonical_solution_cached(&m, session.doc(), &cache);
            err_verdicts += usize::from(full.is_err());
            let incremental = session.canonical_solution();
            assert_eq!(
                incremental, full,
                "case {seed}: delta chase diverged from full re-chase"
            );
        }
        cases += 1;
    }
    assert!(ops_applied >= 2_000, "storms were real: {ops_applied} ops");
    assert!(
        err_verdicts > 0,
        "storms never hit an error verdict — coverage regressed"
    );
}

/// Deleting a subtree and reinserting the identical subtree restores the
/// original canonical solution byte-for-byte: no stale nulls leak out of
/// the retraction, and the replayed firings reproduce the exact labels a
/// from-scratch chase invents.
#[test]
fn delete_then_reinsert_restores_the_solution_without_null_leaks() {
    let m = gen::exchange_mapping();
    let original = gen::exchange_tree(5, 2, 8);
    let prof = subtree_of(&original, original.children(Tree::ROOT)[2]);
    let mut session = IncrementalChase::new(&m, original.clone());
    let before = session.canonical_solution().expect("exchange doc chases");

    session
        .apply(&Update::DeleteSubtree { path: vec![2] })
        .unwrap();
    assert_eq!(
        session.canonical_solution(),
        canonical_solution(&m, session.doc()),
        "parity holds mid-flight, with the professor gone"
    );
    session
        .apply(&Update::InsertSubtree {
            parent: vec![],
            pos: 2,
            subtree: prof,
        })
        .unwrap();
    assert_eq!(
        xml::to_string(session.doc()),
        xml::to_string(&original),
        "the reinsert restored the document"
    );
    let after = session.canonical_solution().expect("chases again");
    assert_eq!(after, before, "solution restored byte-for-byte");
}

/// An update can retract a unification that merged two slot cursors: two
/// constants forced into one rigid slot is a `ValueConflict`, and deleting
/// one of the sources must heal the session back to a solution — the same
/// verdict trajectory a from-scratch chase reports at every step.
#[test]
fn retracting_a_merging_update_heals_a_value_conflict() {
    let m = Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> b\nb @ w\n\
         [stds]\nr/a(x) --> r/b(x)\n",
    )
    .unwrap();
    let mut session = IncrementalChase::new(&m, xml::parse(r#"<r><a v="1"/></r>"#).unwrap());
    assert!(session.canonical_solution().is_ok());

    session
        .apply(&Update::InsertSubtree {
            parent: vec![],
            pos: 1,
            subtree: xml::parse(r#"<a v="2"/>"#).unwrap(),
        })
        .unwrap();
    let conflict = session.canonical_solution();
    assert!(
        matches!(conflict, Err(ChaseError::ValueConflict(_))),
        "two constants in one rigid slot: {conflict:?}"
    );
    assert_eq!(conflict, canonical_solution(&m, session.doc()));

    session
        .apply(&Update::DeleteSubtree { path: vec![1] })
        .unwrap();
    let healed = session.canonical_solution().expect("conflict retracted");
    assert_eq!(healed, canonical_solution(&m, session.doc()).unwrap());
    assert_eq!(healed.attrs(healed.children(Tree::ROOT)[0])[0].1, {
        Value::str("1")
    });
}

/// Updates that break DTD conformance flip the verdict to
/// `SourceNotConforming` — identically on both engines — and conformance-
/// restoring updates flip it back.
#[test]
fn conformance_verdicts_agree_through_break_and_repair() {
    let m = Mapping::parse(
        "[source]\nroot r\nr -> a\na @ v\n\
         [target]\nroot r\nr -> b*\nb @ w\n\
         [stds]\nr/a(x) --> r/b(x)\n",
    )
    .unwrap();
    let mut session = IncrementalChase::new(&m, xml::parse(r#"<r><a v="7"/></r>"#).unwrap());
    assert!(session.source_conforms());

    session
        .apply(&Update::DeleteSubtree { path: vec![0] })
        .unwrap();
    assert!(!session.source_conforms());
    assert_eq!(
        session.canonical_solution(),
        Err(ChaseError::SourceNotConforming)
    );
    assert_eq!(
        canonical_solution(&m, session.doc()),
        Err(ChaseError::SourceNotConforming)
    );

    session
        .apply(&Update::InsertSubtree {
            parent: vec![],
            pos: 0,
            subtree: xml::parse(r#"<a v="8"/>"#).unwrap(),
        })
        .unwrap();
    assert!(session.source_conforms());
    let healed = session.canonical_solution().expect("conforms again");
    assert_eq!(healed, canonical_solution(&m, session.doc()).unwrap());
}

/// `delta-apply` batch jobs render byte-identically on 1, 2, and 8
/// workers: each job owns its session, so scheduling order cannot bleed
/// into results.
#[test]
fn delta_apply_batches_are_deterministic_across_worker_counts() {
    let mapping = Arc::new(gen::exchange_mapping());
    let mut jobs = Vec::new();
    for seed in 0..12u64 {
        let mut script = Vec::new();
        gen::write_exchange_updates(4, 2, 10, 21, seed, &mut script).unwrap();
        let updates = parse_updates(std::str::from_utf8(&script).unwrap()).unwrap();
        jobs.push(BatchJob {
            label: format!("delta storm {seed}"),
            kind: JobKind::DeltaApply {
                mapping: mapping.clone(),
                source: gen::exchange_tree(4, 2, 10),
                updates: Arc::new(updates),
            },
        });
    }
    let render = |workers: usize| {
        let ctx = EngineContext::new();
        render_batch(&jobs, &run_batch(&ctx, &jobs, workers))
    };
    let one = render(1);
    assert!(one.contains("delta-chased"), "jobs ran: {one}");
    assert_eq!(one, render(2), "2 workers diverge from serial");
    assert_eq!(one, render(8), "8 workers diverge from serial");
}
