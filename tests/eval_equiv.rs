//! Differential tests: the optimized evaluation kernel
//! (`xmlmap_patterns::compiled`, reached through `xmlmap_patterns::eval`)
//! against the naive reference evaluator (`xmlmap_patterns::reference`),
//! on randomly generated trees × patterns.
//!
//! The generators deliberately favour the tricky corners of the kernel:
//! repeated variables (implicit equality — both inside one tuple and
//! across pattern nodes), wildcard labels, deep `//` descent, `->` vs
//! `->*` sequences, seeded valuations that disagree with the document,
//! and `≠`-bearing STD conditions. Every disagreement with the reference
//! is a kernel bug.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlmap::patterns::{self, reference, Pattern, SeqOp, Valuation, Var};
use xmlmap::prelude::*;

/// Random data tree over labels {a,b,c,d} under root `r`, with 0–2
/// attributes per node drawn from a 3-value pool — small enough that
/// repeated-variable equalities both succeed and fail often.
fn random_tree(rng: &mut StdRng) -> Tree {
    let labels = ["a", "b", "c", "d"];
    let mut t = Tree::new("r");
    let budget = rng.gen_range(1..=14);
    let mut nodes = vec![Tree::ROOT];
    for _ in 0..budget {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let label = labels[rng.gen_range(0..labels.len())];
        let n_attrs = rng.gen_range(0..=2);
        let attrs: Vec<(&str, Value)> = (0..n_attrs)
            .map(|i| {
                let v = rng.gen_range(0..3u8);
                (["p", "q"][i], Value::str(format!("{v}")))
            })
            .collect();
        nodes.push(t.add_child(parent, label, attrs));
    }
    t
}

/// Random sub-pattern of depth ≤ `depth`. Variables come from a pool of
/// three and repeat freely; labels include the wildcard.
fn random_sub(rng: &mut StdRng, depth: usize) -> Pattern {
    let labels = ["a", "b", "c", "d"];
    let vars = ["x", "y", "z"];
    let n_vars = rng.gen_range(0..=2);
    let tuple: Vec<Var> = (0..n_vars)
        .map(|_| Var::from(vars[rng.gen_range(0..vars.len())]))
        .collect();
    let mut p = if rng.gen_bool(0.2) {
        Pattern::wildcard(tuple)
    } else {
        Pattern::leaf(labels[rng.gen_range(0..labels.len())], tuple)
    };
    if depth == 0 {
        return p;
    }
    for _ in 0..rng.gen_range(0..=2) {
        match rng.gen_range(0..3u8) {
            0 => p = p.child(random_sub(rng, depth - 1)),
            1 => p = p.descendant(random_sub(rng, depth - 1)),
            _ => {
                let k = rng.gen_range(2..=3);
                let members: Vec<Pattern> = (0..k).map(|_| random_sub(rng, depth - 1)).collect();
                let ops: Vec<SeqOp> = (1..k)
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            SeqOp::Next
                        } else {
                            SeqOp::Following
                        }
                    })
                    .collect();
                p = p.seq(members, ops);
            }
        }
    }
    p
}

/// Random full pattern anchored at the root (occasionally by wildcard).
fn random_pattern(rng: &mut StdRng) -> Pattern {
    let root = if rng.gen_bool(0.15) {
        Pattern::wildcard(Vec::<Var>::new())
    } else {
        Pattern::leaf("r", Vec::<Var>::new())
    };
    root.child(random_sub(rng, 2))
}

/// Random partial valuation over the pattern's variables: values from the
/// tree's pool plus a foreign value no document carries (so seeded probes
/// exercise both the satisfiable and the unsatisfiable direction).
fn random_seed(rng: &mut StdRng, pattern: &Pattern) -> Valuation {
    let mut vars: Vec<Var> = pattern.variables();
    vars.sort();
    vars.dedup();
    let mut seed = Valuation::new();
    for v in vars {
        if rng.gen_bool(0.4) {
            let val = match rng.gen_range(0..4u8) {
                3 => Value::str("foreign"),
                d => Value::str(format!("{d}")),
            };
            seed.insert(v, val);
        }
    }
    seed
}

proptest! {
    // 1100 random (tree, pattern) cases through every public entry point.
    #![proptest_config(ProptestConfig::with_cases(1100))]

    /// The kernel agrees with the reference on `π(T)` (full enumeration,
    /// including result order), boolean matching, seeded matching, and
    /// anchored matching.
    #[test]
    fn kernel_matches_reference(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let tree = random_tree(&mut rng);
        let pattern = random_pattern(&mut rng);

        // Full enumeration, order included (the kernel reproduces the
        // reference's BTreeSet ordering).
        let fast = patterns::all_matches(&tree, &pattern);
        let slow = reference::all_matches(&tree, &pattern);
        prop_assert_eq!(
            &fast, &slow,
            "all_matches diverges on {} over\n{:?}", pattern, tree
        );

        // Boolean matching is consistent with the enumeration.
        prop_assert_eq!(patterns::matches(&tree, &pattern), !slow.is_empty());

        // Seeded probes: empty seed, a random partial seed, and (when
        // possible) a full seed taken from a genuine match.
        let empty = Valuation::new();
        prop_assert_eq!(
            patterns::matches_with(&tree, &pattern, &empty),
            reference::matches_with(&tree, &pattern, &empty)
        );
        let seed = random_seed(&mut rng, &pattern);
        prop_assert_eq!(
            patterns::matches_with(&tree, &pattern, &seed),
            reference::matches_with(&tree, &pattern, &seed),
            "matches_with diverges under seed {:?} on {} over\n{:?}", seed, pattern, tree
        );
        if let Some(m) = slow.first() {
            prop_assert!(patterns::matches_with(&tree, &pattern, m));
        }

        // Anchored matching at a random node.
        let nodes: Vec<_> = tree.nodes().collect();
        let at = nodes[rng.gen_range(0..nodes.len())];
        prop_assert_eq!(
            patterns::matches_at(&tree, at, &pattern, &seed),
            reference::matches_at(&tree, at, &pattern, &seed)
        );

        // Streaming enumeration: one callback per witnessing derivation
        // (duplicates allowed), whose deduplicated set is exactly π(T);
        // early termination is honoured.
        let mut seen = std::collections::BTreeSet::new();
        let stopped = patterns::for_each_match(&tree, &pattern, &empty, &mut |m| {
            seen.insert(m.clone());
            true
        });
        prop_assert!(!stopped);
        prop_assert_eq!(seen.into_iter().collect::<Vec<_>>(), slow.clone());
        let stopped_early =
            patterns::for_each_match(&tree, &pattern, &empty, &mut |_| false);
        prop_assert_eq!(stopped_early, !slow.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `Std::satisfied` (the dense-kernel path) agrees with the spec-level
    /// check built from the reference evaluator, on STDs carrying `=` and
    /// `≠` side conditions — including conditions over variables the
    /// target pattern never binds.
    #[test]
    fn std_satisfied_matches_reference_spec(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let catalogue = [
            "r/a(x) --> r/c(x, z)",
            "r[a(x), a(y)] ; x != y --> r[c(x, z) ->* c(y, z)]",
            "r/b(x, y) ; x != y --> r/c(x, z) ; z != y",
            "r[a(x) -> a(y)] ; x = y --> r[c(x, q), c(y, q)]",
            "r//c(x, y) --> r/d(x) ; x != u",
            "r/a(x) --> r//c(x, x)",
        ];
        let std = Std::parse(catalogue[rng.gen_range(0..catalogue.len())]).unwrap();
        // Source/target documents from the same generator: labels overlap,
        // so both vacuous and contentful satisfaction arise.
        let t1 = random_tree(&mut rng);
        let t2 = random_tree(&mut rng);

        let shared: std::collections::BTreeSet<_> = std.shared_vars().into_iter().collect();
        let spec = reference::all_matches(&t1, &std.source)
            .into_iter()
            .filter(|m| xmlmap::core::all_hold(&std.source_cond, m))
            .all(|m| {
                reference::all_matches(&t2, &std.target).into_iter().any(|tm| {
                    shared.iter().all(|v| tm.get(v) == m.get(v))
                        && xmlmap::core::all_hold(&std.target_cond, &tm)
                })
            });
        prop_assert_eq!(
            std.satisfied(&t1, &t2), spec,
            "satisfied diverges on {}\nsource:\n{:?}\ntarget:\n{:?}", std, t1, t2
        );
    }
}
