//! Differential testing of the pattern evaluator.
//!
//! `xmlmap_patterns::eval` uses a callback-driven backtracking visitor.
//! This file implements the §3 semantics a *second* time, directly as
//! set-valued denotational clauses (each construct returns its full set of
//! valuations; conjunction is a relational join), and property-checks the
//! two implementations against each other on random documents and
//! patterns. Any divergence flags a semantics bug in one of them.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use xmlmap::gen::TreeGenConfig;
use xmlmap::patterns::{ListItem, Pattern, SeqOp, Valuation, Var};
use xmlmap::trees::{NodeId, Tree};

/// Join two valuation sets: pairs that agree on shared variables.
fn join(xs: &BTreeSet<Valuation>, ys: &BTreeSet<Valuation>) -> BTreeSet<Valuation> {
    let mut out = BTreeSet::new();
    for x in xs {
        'next: for y in ys {
            let mut merged = x.clone();
            for (k, v) in y {
                match merged.get(k) {
                    Some(existing) if existing != v => continue 'next,
                    _ => {
                        merged.insert(k.clone(), v.clone());
                    }
                }
            }
            out.insert(merged);
        }
    }
    out
}

/// Denotation of a pattern at a node: all witnessing valuations.
fn sem(tree: &Tree, node: NodeId, p: &Pattern) -> BTreeSet<Valuation> {
    // Label and arity clauses.
    if !p.label.accepts(tree.label(node)) {
        return BTreeSet::new();
    }
    let attrs: Vec<_> = tree.attr_values(node).collect();
    if !p.vars.is_empty() && attrs.len() != p.vars.len() {
        return BTreeSet::new();
    }
    let mut base = Valuation::new();
    for (var, value) in p.vars.iter().zip(&attrs) {
        match base.get(var) {
            Some(existing) if existing != *value => return BTreeSet::new(),
            _ => {
                base.insert(var.clone(), (*value).clone());
            }
        }
    }
    let mut acc = BTreeSet::from([base]);
    for item in &p.list {
        let item_set = sem_item(tree, node, item);
        acc = join(&acc, &item_set);
        if acc.is_empty() {
            return acc;
        }
    }
    acc
}

fn sem_item(tree: &Tree, node: NodeId, item: &ListItem) -> BTreeSet<Valuation> {
    match item {
        ListItem::Descendant(sub) => {
            let mut out = BTreeSet::new();
            for d in tree.descendants(node) {
                out.extend(sem(tree, d, sub));
            }
            out
        }
        ListItem::Seq { members, ops } => {
            let children = tree.children(node);
            let mut out = BTreeSet::new();
            for start in 0..children.len() {
                out.extend(sem_seq(tree, children, start, members, ops, 0));
            }
            out
        }
    }
}

/// `members[m..]` with `members[m]` anchored at `children[i]`.
fn sem_seq(
    tree: &Tree,
    children: &[NodeId],
    i: usize,
    members: &[Pattern],
    ops: &[SeqOp],
    m: usize,
) -> BTreeSet<Valuation> {
    let head = sem(tree, children[i], &members[m]);
    if m + 1 == members.len() || head.is_empty() {
        return head;
    }
    let mut rest = BTreeSet::new();
    match ops[m] {
        SeqOp::Next => {
            if i + 1 < children.len() {
                rest = sem_seq(tree, children, i + 1, members, ops, m + 1);
            }
        }
        SeqOp::Following => {
            for j in i + 1..children.len() {
                rest.extend(sem_seq(tree, children, j, members, ops, m + 1));
            }
        }
    }
    join(&head, &rest)
}

// ── random inputs ───────────────────────────────────────────────────────

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        Just(Pattern::leaf("a", Vec::<Var>::new())),
        Just(Pattern::leaf("b", Vec::<Var>::new())),
        Just(Pattern::leaf("c", ["x"])),
        Just(Pattern::leaf("c", ["y"])),
        Just(Pattern::leaf("d", ["x", "y"])),
        Just(Pattern::wildcard(Vec::<Var>::new())),
        Just(Pattern::wildcard(["z"])),
    ];
    let sub = leaf.prop_recursive(3, 10, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.child(q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.descendant(q)),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(p, q, s, nx)| {
                    p.seq(
                        vec![q, s],
                        vec![if nx { SeqOp::Next } else { SeqOp::Following }],
                    )
                }
            ),
        ]
    });
    sub.prop_map(|body| Pattern::leaf("r", Vec::<Var>::new()).child(body))
}

fn random_document(seed: u64) -> Tree {
    let dtd = xmlmap::dtd::parse(
        "root r
         r -> (a|b|c|d)*
         a -> (a|c)*
         b -> (b|d)*
         c @ v
         d @ v, w",
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    xmlmap::gen::random_tree(
        &dtd,
        &TreeGenConfig {
            continue_probability: 0.55,
            value_pool: 2,
            max_nodes: 14,
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The production evaluator and the denotational reference agree on
    /// the full valuation set π(T).
    #[test]
    fn evaluator_matches_denotational_reference(p in arb_pattern(), seed in any::<u64>()) {
        let t = random_document(seed);
        let fast: BTreeSet<Valuation> =
            xmlmap::patterns::all_matches(&t, &p).into_iter().collect();
        let reference = sem(&t, Tree::ROOT, &p);
        prop_assert_eq!(
            &fast, &reference,
            "evaluators disagree on {} over\n{:?}", p, t
        );
        // Boolean and seeded variants agree too.
        prop_assert_eq!(xmlmap::patterns::matches(&t, &p), !reference.is_empty());
        if let Some(witness) = reference.iter().next() {
            prop_assert!(xmlmap::patterns::matches_with(&t, &p, witness));
        }
    }

    /// Matching under a partial valuation equals filtering the full set.
    #[test]
    fn seeded_matching_is_filtering(p in arb_pattern(), seed in any::<u64>()) {
        let t = random_document(seed);
        let all = sem(&t, Tree::ROOT, &p);
        // Seed x to the first document value (if x is used at all).
        let seed_val: Valuation =
            [(Var::new("x"), xmlmap::trees::Value::str("v0"))].into_iter().collect();
        let expected = all.iter().any(|v| {
            v.get(&Var::new("x")).is_none_or(|x| x == &xmlmap::trees::Value::str("v0"))
        });
        prop_assert_eq!(
            xmlmap::patterns::matches_with(&t, &p, &seed_val),
            expected,
            "seeded matching disagrees on {} over\n{:?}", p, t
        );
    }
}
