//! Differential tests: the compiled automata engine (reached through the
//! public `HedgeAutomaton` / `inclusion_counterexample` / `subschema` /
//! `AutomataCache` entry points) against the pre-optimization reference
//! implementations preserved in `xmlmap::automata::reference`, on randomly
//! generated DTDs and documents.
//!
//! The engines must agree on every verdict — membership bit, product
//! emptiness, inclusion `None`/`Some` — and every counterexample or witness
//! tree must be *genuine*, i.e. checked against the reference engine (a
//! tree returned by the compiled inclusion need not equal the reference's
//! tree, but it must be accepted by `A` and rejected by `B`). The DTD
//! generator deliberately draws productions over a tiny shared label pool
//! with alternation, nesting, and all four multiplicities, and leaves some
//! referenced labels undeclared (exercising the ε-production path); the
//! antichain pruning and pre-determinization in the compiled engine must
//! never change an answer, only how fast it is found.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlmap::automata::{
    inclusion_counterexample, reference, subschema, AutomataCache, HedgeAutomaton,
    SubschemaViolation,
};
use xmlmap::dtd::Dtd;
use xmlmap::gen::TreeGenConfig;
use xmlmap::trees::{Name, Tree};

/// Exploration cap for the generated cases. Inclusion is EXPTIME-complete
/// and the generator does occasionally produce genuinely explosive pairs;
/// when *either* engine overruns this cap the case is skipped (verdicts
/// can only be compared where both engines finish).
const BUDGET: usize = 50_000;

/// Labels that random productions draw from. `r` is always the root;
/// labels may be referenced without being declared (ε production).
const POOL: &[&str] = &["a", "b", "c", "d"];

/// An atom for the production of the label at stratification `level`
/// (`r` is level 0, `POOL[i]` is level `i + 1`). Self- and backward
/// references are forced optional so every *mandatory* occurrence points
/// strictly forward: the mandatory dependency graph stays acyclic, every
/// language is nonempty, and document sampling terminates — while optional
/// recursion (`a -> a?`, `a -> (a|b)*`) is still generated.
fn rand_atom(rng: &mut StdRng, level: usize) -> String {
    let j = rng.gen_range(0..POOL.len());
    let label = POOL[j];
    let suffix = if j < level {
        ["?", "*"][rng.gen_range(0..2usize)]
    } else {
        ["", "?", "*", "+"][rng.gen_range(0..4usize)]
    };
    format!("{label}{suffix}")
}

fn rand_regex(rng: &mut StdRng, depth: usize, level: usize) -> String {
    if depth == 0 {
        return rand_atom(rng, level);
    }
    match rng.gen_range(0..4usize) {
        0 => rand_atom(rng, level),
        1 => format!(
            "{}, {}",
            rand_regex(rng, depth - 1, level),
            rand_regex(rng, depth - 1, level)
        ),
        2 => {
            let suffix = ["", "?", "*"][rng.gen_range(0..3usize)];
            format!(
                "({}|{}){suffix}",
                rand_regex(rng, depth - 1, level),
                rand_regex(rng, depth - 1, level)
            )
        }
        _ => format!("({})*", rand_atom(rng, level)),
    }
}

/// A random DTD over the shared pool: the root always has a production;
/// each pool label gets one with probability 2/3 (otherwise it is ε if
/// referenced).
fn rand_dtd(rng: &mut StdRng) -> Dtd {
    let mut text = format!("root r\nr -> {}\n", rand_regex(rng, 2, 0));
    for (i, label) in POOL.iter().enumerate() {
        if rng.gen_range(0..3) < 2 {
            text.push_str(&format!("{label} -> {}\n", rand_regex(rng, 1, i + 1)));
        }
    }
    xmlmap::dtd::parse(&text).expect("generated DTD parses")
}

/// A conforming document of `d`, with a chance of an extra-child mutation
/// that usually breaks conformance.
fn rand_doc(d: &Dtd, rng: &mut StdRng) -> Tree {
    let config = TreeGenConfig {
        continue_probability: 0.4,
        value_pool: 2,
        max_nodes: 40,
    };
    let mut t = xmlmap::gen::random_tree(d, &config, rng);
    if rng.gen_bool(0.4) {
        let nodes: Vec<_> = t.nodes().collect();
        let node = nodes[rng.gen_range(0..nodes.len())];
        t.add_elem(node, Name::new(POOL[rng.gen_range(0..POOL.len())]));
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Membership: the compiled bitset/DFA simulation agrees with the
    /// reference `HashSet` simulation on conforming and mutated documents.
    #[test]
    fn membership_matches_reference(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let d = rand_dtd(&mut rng);
        let auto = HedgeAutomaton::from_dtd(&d);
        for _ in 0..4 {
            let doc = rand_doc(&d, &mut rng);
            let compiled = auto.accepts(&doc);
            let expected = reference::accepts(&auto, &doc);
            prop_assert_eq!(
                compiled, expected,
                "membership disagrees on {:?} for DTD {:?}", doc, d
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    /// Inclusion: verdicts agree with the reference fixpoint in both
    /// directions, and every counterexample is genuine per the reference
    /// engine. Also checks the memoizing `AutomataCache` path.
    #[test]
    fn inclusion_matches_reference(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let d1 = rand_dtd(&mut rng);
        let d2 = rand_dtd(&mut rng);
        let a = HedgeAutomaton::from_dtd(&d1);
        let b = HedgeAutomaton::from_dtd(&d2);
        let mut alphabet: Vec<Name> = d1.alphabet().cloned().collect();
        for l in d2.alphabet() {
            if !alphabet.contains(l) {
                alphabet.push(l.clone());
            }
        }
        let cache = AutomataCache::new(&d1, &d2);
        for (x, y) in [(&a, &b), (&b, &a)] {
            let compiled = inclusion_counterexample(x, y, &alphabet, BUDGET);
            let expected = reference::inclusion_counterexample(x, y, &alphabet, BUDGET);
            let (Ok(compiled), Ok(expected)) = (compiled, expected) else {
                continue; // one engine overran the cap; nothing to compare
            };
            prop_assert_eq!(
                compiled.is_some(), expected.is_some(),
                "inclusion verdicts differ: compiled {:?} vs reference {:?}\n\
                 d1: {:?}\nd2: {:?}", compiled, expected, d1, d2
            );
            if let Some(t) = &compiled {
                prop_assert!(
                    reference::accepts(x, t),
                    "counterexample not accepted by A: {:?}", t
                );
                prop_assert!(
                    !reference::accepts(y, t),
                    "counterexample accepted by B: {:?}", t
                );
            }
        }
        // The cache is the same engine with compilation hoisted; repeated
        // calls hit the memo and must return the same verdict.
        if let Ok(first) = cache.inclusion(BUDGET) {
            let second = cache.inclusion(BUDGET).unwrap();
            prop_assert_eq!(&first, &second);
            prop_assert_eq!(
                first.is_some(),
                inclusion_counterexample(&a, &b, &alphabet, BUDGET).unwrap().is_some()
            );
        }
        // Subschema layers attribute checks on inclusion; the violation
        // document must separate the two DTDs for real.
        if let (Ok(sub), Ok(free)) = (cache.subschema(BUDGET), subschema(&d1, &d2, BUDGET)) {
            prop_assert_eq!(sub.is_some(), free.is_some());
            if let Some(SubschemaViolation::Document(t)) = &sub {
                prop_assert!(d1.conforms(t) && !d2.conforms(t));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// Product: the inhabited-pairs construction accepts the same trees as
    /// the reference full-pair-space construction, agrees on emptiness,
    /// and produces genuine witnesses.
    #[test]
    fn product_matches_reference(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let d1 = rand_dtd(&mut rng);
        let d2 = rand_dtd(&mut rng);
        let a = HedgeAutomaton::from_dtd(&d1);
        let b = HedgeAutomaton::from_dtd(&d2);
        let compiled_prod = a.product(&b);
        let reference_prod = reference::product(&a, &b);

        let compiled_witness = compiled_prod.witness();
        let reference_empty = reference::is_empty(&reference_prod);
        prop_assert_eq!(
            compiled_witness.is_none(), reference_empty,
            "product emptiness differs\nd1: {:?}\nd2: {:?}", d1, d2
        );
        if let Some(w) = &compiled_witness {
            prop_assert!(
                reference::accepts(&a, w) && reference::accepts(&b, w),
                "product witness not in the intersection: {:?}", w
            );
        }
        // Language agreement on sampled documents, with both membership
        // engines run against both product automata.
        for _ in 0..3 {
            let doc = rand_doc(&d1, &mut rng);
            let expected = reference::accepts(&reference_prod, &doc);
            prop_assert_eq!(compiled_prod.accepts(&doc), expected);
            prop_assert_eq!(reference::accepts(&compiled_prod, &doc), expected);
        }
    }
}

/// Recursive DTDs, which the generator deliberately keeps out of the
/// *mandatory* dependency graph (their languages can be empty, so no
/// conforming document can be sampled): both engines must still agree on
/// emptiness, inclusion, and witnesses for them.
#[test]
fn recursive_dtds_match_reference() {
    // `a -> a` has no finite derivation: L(empty) = ∅.
    let empty = xmlmap::dtd::parse("root r\nr -> a\na -> a").unwrap();
    // Mutual mandatory recursion, likewise empty.
    let mutual = xmlmap::dtd::parse("root r\nr -> a\na -> b\nb -> a+").unwrap();
    // Optional recursion: unary `item` chains of any depth.
    let chain = xmlmap::dtd::parse("root r\nr -> item\nitem -> item?").unwrap();
    // Optional recursion: arbitrary `item` trees — a strict superlanguage.
    let tree = xmlmap::dtd::parse("root r\nr -> item\nitem -> item*").unwrap();
    let alphabet: Vec<Name> = ["r", "a", "b", "item"].iter().map(Name::new).collect();
    let autos: Vec<HedgeAutomaton> = [&empty, &mutual, &chain, &tree]
        .iter()
        .map(|d| HedgeAutomaton::from_dtd(d))
        .collect();

    for (i, x) in autos.iter().enumerate() {
        // Emptiness and witnesses agree engine-to-engine.
        let w = x.witness();
        assert_eq!(
            w.is_none(),
            reference::is_empty(x),
            "emptiness differs ({i})"
        );
        assert_eq!(w.is_none(), i < 2, "wrong emptiness verdict ({i})");
        for (j, y) in autos.iter().enumerate() {
            // Inclusion: the empty languages are included in everything;
            // `chain` ⊆ `tree` but not conversely.
            let verdict = inclusion_counterexample(x, y, &alphabet, BUDGET).unwrap();
            let expected = reference::inclusion_counterexample(x, y, &alphabet, BUDGET).unwrap();
            assert_eq!(
                verdict.is_some(),
                expected.is_some(),
                "inclusion verdicts differ ({i} ⊆ {j})"
            );
            let included = i < 2 || i == j || (i, j) == (2, 3);
            assert_eq!(verdict.is_none(), included, "wrong verdict ({i} ⊆ {j})");
            if let Some(t) = &verdict {
                assert!(reference::accepts(x, t) && !reference::accepts(y, t));
            }
            // Product: intersection with an empty language is empty;
            // `chain` ∩ `tree` = `chain`, which is inhabited.
            let prod = x.product(y);
            let pw = prod.witness();
            assert_eq!(pw.is_none(), reference::is_empty(&reference::product(x, y)));
            assert_eq!(
                pw.is_none(),
                i < 2 || j < 2,
                "wrong product emptiness ({i} × {j})"
            );
            if let Some(t) = &pw {
                assert!(reference::accepts(x, t) && reference::accepts(y, t));
            }
        }
    }
}

/// Budget exhaustion reports the right operation and a truthful
/// exploration count, through both entry points.
#[test]
fn tiny_budget_reports_operation_and_exploration() {
    let d1 = xmlmap::dtd::parse("root r\nr -> (a|b)*, a, (a|b), (a|b), (a|b)").unwrap();
    let d2 = xmlmap::dtd::parse("root r\nr -> (b|a)*, a, (a|b), (a|b), (a|b)").unwrap();
    let a = HedgeAutomaton::from_dtd(&d1);
    let b = HedgeAutomaton::from_dtd(&d2);
    let alphabet: Vec<Name> = vec![Name::new("r"), Name::new("a"), Name::new("b")];
    for budget in [1, 2, 5] {
        let err = inclusion_counterexample(&a, &b, &alphabet, budget).unwrap_err();
        assert_eq!(err.operation, "inclusion check");
        assert_eq!(err.budget, budget);
        assert!(
            err.states_explored >= err.budget,
            "explored {} under budget {}",
            err.states_explored,
            err.budget
        );

        let err = subschema(&d1, &d2, budget).unwrap_err();
        assert_eq!(err.operation, "subschema check");
        assert_eq!(err.budget, budget);
        assert!(err.states_explored >= err.budget);

        // The cache path reports identically and does not memoize overruns:
        // a retry with a real budget still computes the verdict (the two
        // DTDs describe the same language, so inclusion holds).
        let cache = AutomataCache::new(&d1, &d2);
        let err = cache.subschema(budget).unwrap_err();
        assert_eq!(err.operation, "subschema check");
        assert!(cache.subschema(BUDGET).unwrap().is_none());
        let err2 = cache.inclusion(budget).unwrap_err();
        assert_eq!(err2.operation, "inclusion check");
        assert!(cache.inclusion(BUDGET).unwrap().is_none());
    }
}
