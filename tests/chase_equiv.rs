//! Differential tests: the compiled chase engine (`chase::compiled`,
//! reached through `canonical_solution`) against the naive reference
//! chaser (`chase::reference`), on randomly generated mappings × documents.
//!
//! The two engines must agree on the *outcome variant* — success, or which
//! [`ChaseError`] the chase fails with — and, on success, produce solutions
//! that are identical up to a renaming of the fresh nulls
//! ([`isomorphic_mod_nulls`]). The generated block drives fully-specified
//! downward mappings sampled from random nested-relational DTDs with a
//! deliberately tiny value pool (so rigid-slot `ValueConflict`s and α′₌
//! merges actually happen); the catalogue block adds hand-written stds with
//! source `=`/`≠` filters and target `=`/`≠` conditions, which the
//! generator never emits. Every disagreement is a bug in one engine.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmlmap::core::chase::{reference, ChaseCache};
use xmlmap::core::{canonical_solution, canonical_solution_cached};
use xmlmap::gen::{MappingGenConfig, TreeGenConfig};
use xmlmap::prelude::*;
use xmlmap::trees::isomorphic_mod_nulls;

/// Checks one (mapping, source) case against the reference engine, using
/// `cache` for the compiled side (callers reuse it across sources to also
/// exercise cache sharing).
fn check_case(m: &Mapping, source: &xmlmap::trees::Tree, cache: &ChaseCache) {
    let expected = reference::canonical_solution(m, source);
    let got = canonical_solution_cached(m, source, cache);
    match (&expected, &got) {
        (Ok(a), Ok(b)) => {
            assert!(
                isomorphic_mod_nulls(a, b),
                "solutions differ beyond null renaming\nmapping: {m:?}\n\
                 source: {source:?}\nreference:\n{a:?}\ncompiled:\n{b:?}"
            );
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                std::mem::discriminant(a),
                std::mem::discriminant(b),
                "error variants differ\nmapping: {m:?}\nsource: {source:?}\n\
                 reference: {a}\ncompiled: {b}"
            );
        }
        _ => panic!(
            "outcome mismatch\nmapping: {m:?}\nsource: {source:?}\n\
             reference: {expected:?}\ncompiled: {got:?}"
        ),
    }
    // The uncached wrapper is the same engine with a fresh cache.
    let uncached = canonical_solution(m, source);
    match (&got, &uncached) {
        (Ok(a), Ok(b)) => assert!(isomorphic_mod_nulls(a, b)),
        (Err(a), Err(b)) => {
            assert_eq!(std::mem::discriminant(a), std::mem::discriminant(b))
        }
        _ => panic!("cached and uncached compiled runs disagree"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// Generated nested-relational mappings over generated documents.
    #[test]
    fn compiled_chase_matches_reference(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let ds = xmlmap::gen::random_nr_dtd(2, 2, 0.7, &mut rng);
        let dt = xmlmap::gen::random_nr_dtd(rng.gen_range(1..=3), 2, 0.7, &mut rng);
        let Some(m) = xmlmap::gen::random_nr_mapping(
            &ds,
            &dt,
            &MappingGenConfig {
                stds: rng.gen_range(1..=3),
                depth: 3,
                branch_probability: 0.7,
            },
            &mut rng,
        ) else {
            return Ok(());
        };
        let config = TreeGenConfig {
            continue_probability: 0.6,
            value_pool: 2, // collisions galore: rigid slots conflict often
            max_nodes: 60,
        };
        let cache = ChaseCache::new(&m);
        for _ in 0..3 {
            let source = xmlmap::gen::random_tree(&ds, &config, &mut rng);
            check_case(&m, &source, &cache);
        }
    }
}

/// Hand-written stds covering what the generator never produces: source
/// `=`/`≠` filters, target `=`/`≠` conditions, repeated labels in
/// productions, rigid (non-repeatable) target slots, unembeddable and
/// outside-fragment target patterns.
const CATALOGUE: &[(&str, &str, &[&str])] = &[
    // Source ≠ filter into a rigid slot: fires 0, 1 or 2 times.
    (
        "root r\nr -> a*\na @ v",
        "root r\nr -> b\nb @ w",
        &["r[a(x) ->* a(y)] ; x != y --> r/b(x)"],
    ),
    // Source = filter, repeatable target.
    (
        "root r\nr -> a*\na @ v, w",
        "root r\nr -> b*\nb @ u",
        &["r/a(x, y) ; x = y --> r/b(x)"],
    ),
    // Target equality chains an existential to a source value.
    (
        "root r\nr -> a*\na @ v",
        "root r\nr -> b*\nb @ x, y",
        &["r/a(x) --> r[b(x, z)] ; z = x"],
    ),
    // Target inequality: violated exactly when the chain closes.
    (
        "root r\nr -> a*\na @ v",
        "root r\nr -> b*\nb @ x, y",
        &["r/a(x) --> r[b(x, z)] ; z = x, z != x"],
    ),
    // Satisfiable target inequality between two existentials.
    (
        "root r\nr -> a*\na @ v",
        "root r\nr -> b*\nb @ x, y",
        &["r/a(x) --> r[b(x, z)] ; z != x"],
    ),
    // Two stds sharing a rigid slot: cross-std value conflicts.
    (
        "root r\nr -> a*, c?\na @ v\nc @ u",
        "root r\nr -> b\nb @ w",
        &["r/a(x) --> r/b(x)", "r/c(y) --> r/b(y)"],
    ),
    // Equalities forced by α′₌ between two shared variables.
    (
        "root r\nr -> a*\na @ v, w",
        "root r\nr -> b*\nb @ u",
        &["r/a(x, y) --> r[b(x)] ; x = y"],
    ),
    // Unembeddable target pattern (only reached if the std fires).
    (
        "root r\nr -> a*\na @ v",
        "root r\nr -> b\nb @ w",
        &["r/a(x) --> r/nosuch(x)"],
    ),
    // Outside the fragment: descendant in the target.
    (
        "root r\nr -> a*\na @ v",
        "root r\nr -> b*\nb @ w",
        &["r/a(x) --> r//b(x)"],
    ),
    // Deep completion: mandatory grandchildren materialize unfired.
    (
        "root r\nr -> a*\na @ v",
        "root r\nr -> b, c?\nb -> d\nd @ w\nc @ u",
        &["r/a(x) --> r/b/d(x)"],
    ),
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Catalogue mappings over random conforming documents.
    #[test]
    fn catalogue_chase_matches_reference(case_seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(case_seed);
        let (ds, dt, stds) = CATALOGUE[rng.gen_range(0..CATALOGUE.len())];
        let m = Mapping::new(
            xmlmap::dtd::parse(ds).unwrap(),
            xmlmap::dtd::parse(dt).unwrap(),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        );
        let config = TreeGenConfig {
            continue_probability: 0.55,
            value_pool: 2,
            max_nodes: 30,
        };
        let cache = ChaseCache::new(&m);
        for _ in 0..3 {
            let source = xmlmap::gen::random_tree(&m.source_dtd, &config, &mut rng);
            check_case(&m, &source, &cache);
        }
    }
}
