//! Concurrency determinism suite for the shared [`EngineContext`].
//!
//! The batch driver's contract is that the worker count is a throughput
//! knob, never a semantics knob: the same job list over a shared context
//! must produce byte-identical results on 1, 2, and 8 workers, budget
//! errors included, and interleaved threads hammering all three cache
//! families must see exactly the answers a fresh single-threaded run
//! computes. Every batch here uses *uniform budgets per cache key* — the
//! one documented determinism carve-out is same-key jobs with different
//! budgets (see `xmlmap_core::batch` module docs), which these tests
//! deliberately avoid and `budget_errors_are_deterministic_across_worker_counts`
//! pins from the safe side.

use std::sync::Arc;
use xmlmap::core::{
    canonical_solution, consistent, render_batch, run_batch, BatchJob, ConsAnswer, EngineContext,
    JobKind, JobResult,
};
use xmlmap::gen::hard;
use xmlmap::prelude::*;

/// Uniform state budget for every budgeted job (never hit by these inputs).
const BUDGET: usize = 10_000_000;

/// Uniform middle-document bound for composition-membership jobs.
const MAX_MIDDLE: usize = 5;

fn copy_mapping() -> Mapping {
    Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> b*\nb @ w\n\
         [stds]\nr/a(x) --> r/b(x)\n",
    )
    .unwrap()
}

/// A chain instance for `hard::compose_chain(0)`: `r` with `k` `a0(v·)`
/// children and `w` with the same values under `c0(u·)` — in the
/// composition with a `k+1`-node middle document.
fn chain_instance(k: usize, shift: usize) -> (Tree, Tree) {
    let mut t1 = Tree::new("r");
    let mut t3 = Tree::new("w");
    for i in 0..k {
        t1.add_child(
            Tree::ROOT,
            "a0",
            [("v", Value::str(format!("v{}", i + shift)))],
        );
        t3.add_child(
            Tree::ROOT,
            "c0",
            [("u", Value::str(format!("v{}", i + shift)))],
        );
    }
    (t1, t3)
}

/// ≥200 mixed jobs over a handful of schemas/mappings — cache-heavy by
/// construction (every iteration reuses the same `Arc`-shared artifacts,
/// only the documents vary), and hitting all four cache families: sat
/// (consistency), chase + shapes (composition membership), automata
/// (subschema).
fn job_list() -> Vec<BatchJob> {
    let copy = Arc::new(copy_mapping());
    let mv2 = Arc::new(hard::membership_vars(2));
    let ce = Arc::new(hard::cons_exptime(4));
    let cn = Arc::new(hard::cons_nextsib(3));
    let ac2 = Arc::new(hard::abscons_chain(2));
    let (c12, c23) = hard::compose_chain(0);
    let (c12, c23) = (Arc::new(c12), Arc::new(c23));
    let ce_src = Arc::new(ce.source_dtd.clone());
    let cn_src = Arc::new(cn.source_dtd.clone());
    let copy_src = Arc::new(copy.source_dtd.clone());

    let mut jobs = Vec::new();
    let mut push = |label: String, kind: JobKind| jobs.push(BatchJob { label, kind });
    for i in 0..24 {
        let k = 2 + i % 4;
        // Positive membership: k adjacent source values, target in order.
        let (src, tgt) = hard::membership_instance(k);
        push(
            format!("member vars2 k={k}"),
            JobKind::Membership {
                mapping: mv2.clone(),
                source: src,
                target: tgt,
            },
        );
        // Negative membership: the target misses the last source window.
        let (src, _) = hard::membership_instance(k + 1);
        let (_, tgt) = hard::membership_instance(k);
        push(
            format!("member vars2 k={k} short target"),
            JobKind::Membership {
                mapping: mv2.clone(),
                source: src,
                target: tgt,
            },
        );
        push(
            format!("consistent copy #{i}"),
            JobKind::Consistent {
                mapping: copy.clone(),
                budget: BUDGET,
            },
        );
        push(
            format!("consistent exptime4 #{i}"),
            JobKind::Consistent {
                mapping: ce.clone(),
                budget: BUDGET,
            },
        );
        push(
            format!("consistent nextsib3 #{i}"),
            JobKind::Consistent {
                mapping: cn.clone(),
                budget: BUDGET,
            },
        );
        push(
            format!("abscons chain2 #{i}"),
            JobKind::AbsCons {
                mapping: ac2.clone(),
                budget: BUDGET,
            },
        );
        push(
            format!("subschema exptime/exptime #{i}"),
            JobKind::Subschema {
                d1: ce_src.clone(),
                d2: ce_src.clone(),
                budget: BUDGET,
            },
        );
        push(
            format!("subschema nextsib/exptime #{i}"),
            JobKind::Subschema {
                d1: cn_src.clone(),
                d2: ce_src.clone(),
                budget: BUDGET,
            },
        );
        push(
            format!("subschema copy/nextsib #{i}"),
            JobKind::Subschema {
                d1: copy_src.clone(),
                d2: cn_src.clone(),
                budget: BUDGET,
            },
        );
        // Composition membership: positive (same values) and negative
        // (target value the source never produces).
        let (t1, t3) = chain_instance(1 + i % 3, i);
        push(
            format!("compose-member chain0 #{i} yes"),
            JobKind::CompositionMember {
                m12: c12.clone(),
                m23: c23.clone(),
                source: t1,
                target: t3,
                max_middle_nodes: MAX_MIDDLE,
            },
        );
        let (t1, _) = chain_instance(2, i);
        let (_, t3) = chain_instance(2, i + 100);
        push(
            format!("compose-member chain0 #{i} no"),
            JobKind::CompositionMember {
                m12: c12.clone(),
                m23: c23.clone(),
                source: t1,
                target: t3,
                max_middle_nodes: MAX_MIDDLE,
            },
        );
    }
    jobs
}

#[test]
fn batch_results_are_identical_on_1_2_and_8_workers() {
    let jobs = job_list();
    assert!(
        jobs.len() >= 200,
        "need a ≥200-job batch, got {}",
        jobs.len()
    );

    let mut runs: Vec<(Vec<JobResult>, String)> = Vec::new();
    for workers in [1usize, 2, 8] {
        let ctx = EngineContext::new();
        let results = run_batch(&ctx, &jobs, workers);
        let rendered = render_batch(&jobs, &results);
        runs.push((results, rendered));
    }
    let (reference, reference_render) = &runs[0];
    for (results, rendered) in &runs[1..] {
        assert_eq!(
            results, reference,
            "JobResult vectors differ across worker counts"
        );
        assert_eq!(
            rendered, reference_render,
            "rendered output differs across worker counts"
        );
    }

    // Exercise every verdict class at least once so the equality above is
    // comparing something nontrivial.
    let yes = reference
        .iter()
        .filter(|r| matches!(r, JobResult::Answer { yes: true, .. }))
        .count();
    let no = reference
        .iter()
        .filter(|r| matches!(r, JobResult::Answer { yes: false, .. }))
        .count();
    assert!(
        yes > 0 && no > 0,
        "batch should mix yes ({yes}) and no ({no}) answers"
    );
    assert!(
        !reference
            .iter()
            .any(|r| matches!(r, JobResult::Failed { .. })),
        "these budgets should never be hit"
    );
}

#[test]
fn warm_context_rerun_matches_cold_results() {
    let jobs = job_list();
    let cold_ctx = EngineContext::new();
    let cold = run_batch(&cold_ctx, &jobs, 1);

    let ctx = EngineContext::new();
    let first = run_batch(&ctx, &jobs, 8);
    let warm = run_batch(&ctx, &jobs, 2);
    assert_eq!(first, cold);
    assert_eq!(warm, cold, "memo hits must not change any verdict");

    // The rerun is answered from the shared caches: no second compilation
    // of any artifact, and plenty of hits.
    let stats = ctx.stats();
    assert_eq!(
        stats.sat.misses, stats.sat.entries,
        "one compilation per distinct schema"
    );
    assert_eq!(stats.chase.misses, 1, "one chase plan (m12 of the chain)");
    assert_eq!(
        stats.automata.misses, 3,
        "one automata pair per distinct subschema query"
    );
    assert_eq!(
        stats.shapes.misses, 1,
        "one shape cache (the chain's middle schema)"
    );
    assert!(stats.sat.hits > 0 && stats.automata.hits > 0 && stats.chase.hits > 0);
}

#[test]
fn eight_threads_compile_each_artifact_exactly_once() {
    let ctx = EngineContext::new();
    let d1 = xmlmap::gen::university_dtd();
    let d2 = xmlmap::gen::university_target_dtd();
    let m = copy_mapping();

    let arcs: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(|| {
                    (
                        ctx.sat_cache(&d1),
                        ctx.chase_cache(&m),
                        ctx.automata_cache(&d1, &d2),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let (sat0, chase0, auto0) = &arcs[0];
    for (sat, chase, auto) in &arcs[1..] {
        assert!(
            Arc::ptr_eq(sat, sat0),
            "all threads must share one SatCache"
        );
        assert!(
            Arc::ptr_eq(chase, chase0),
            "all threads must share one ChaseCache"
        );
        assert!(
            Arc::ptr_eq(auto, auto0),
            "all threads must share one AutomataCache"
        );
    }

    let stats = ctx.stats();
    for (family, counters) in [
        ("sat", stats.sat),
        ("chase", stats.chase),
        ("automata", stats.automata),
    ] {
        assert_eq!(
            counters.misses, 1,
            "{family}: exactly one compilation for 8 racers"
        );
        assert_eq!(
            counters.hits, 7,
            "{family}: the other seven threads hit the shared entry"
        );
        assert_eq!(counters.entries, 1, "{family}: one resident entry");
    }
}

#[test]
fn interleaved_mixed_workload_agrees_with_fresh_single_thread_answers() {
    let copy = copy_mapping();
    let ce = hard::cons_exptime(4);
    let cn = hard::cons_nextsib(3);
    let chase_src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/><a v="3"/></r>"#).unwrap();

    // Reference answers, computed without any shared context.
    let ref_ce = consistent(&ce, BUDGET).unwrap().is_consistent();
    let ref_cn = consistent(&cn, BUDGET).unwrap().is_consistent();
    let ref_chase = canonical_solution(&copy, &chase_src).unwrap();
    let ref_sub = xmlmap::automata::AutomataCache::new(&cn.source_dtd, &ce.source_dtd)
        .subschema(BUDGET)
        .unwrap()
        .is_some();

    // Eight threads interleave all three cache families, each starting the
    // op cycle at a different offset so compilations race across families.
    let ctx = EngineContext::new();
    std::thread::scope(|scope| {
        for offset in 0..8usize {
            let (ctx, copy, ce, cn, chase_src, ref_chase) =
                (&ctx, &copy, &ce, &cn, &chase_src, &ref_chase);
            scope.spawn(move || {
                for round in 0..12usize {
                    match (round + offset) % 4 {
                        0 => {
                            assert_eq!(ctx.consistent(ce, BUDGET).unwrap().is_consistent(), ref_ce)
                        }
                        1 => {
                            assert_eq!(ctx.consistent(cn, BUDGET).unwrap().is_consistent(), ref_cn)
                        }
                        2 => {
                            let sol = ctx.canonical_solution(copy, chase_src).unwrap();
                            assert!(xmlmap::trees::tree::isomorphic_mod_nulls(&sol, ref_chase));
                        }
                        _ => assert_eq!(
                            ctx.subschema(&cn.source_dtd, &ce.source_dtd, BUDGET)
                                .unwrap()
                                .is_some(),
                            ref_sub
                        ),
                    }
                }
            });
        }
    });

    let stats = ctx.stats();
    // 96 operations total; every family compiled each key exactly once.
    assert_eq!(stats.sat.misses, stats.sat.entries);
    assert_eq!(stats.chase.misses, 1);
    assert_eq!(stats.automata.misses, 1);
}

#[test]
fn budget_errors_are_deterministic_across_worker_counts() {
    // All jobs share one cache key *and* one (tiny) budget, so every run —
    // any worker count, any interleaving — must fail identically. (Mixing
    // budgets on one key is the documented nondeterminism carve-out; a
    // uniform budget is the contract these jobs keep.)
    let ce = Arc::new(hard::cons_exptime(6));
    let jobs: Vec<BatchJob> = (0..16)
        .map(|i| BatchJob {
            label: format!("tiny-budget probe {i}"),
            kind: JobKind::Consistent {
                mapping: ce.clone(),
                budget: 2,
            },
        })
        .collect();

    let r1 = run_batch(&EngineContext::new(), &jobs, 1);
    let r8 = run_batch(&EngineContext::new(), &jobs, 8);
    assert_eq!(r1, r8, "budget errors must not depend on the worker count");
    assert_eq!(render_batch(&jobs, &r1), render_batch(&jobs, &r8));

    for r in &r1 {
        let JobResult::Failed { error } = r else {
            panic!("a 2-state budget must fail on cons_exptime(6), got {r}");
        };
        assert!(
            error.contains("budget"),
            "error should name the budget: {error}"
        );
    }

    // And a retry with an adequate budget on the *same* context succeeds —
    // the failed probes must not have poisoned the shared caches.
    let ctx = EngineContext::new();
    let tiny = run_batch(&ctx, &jobs, 8);
    assert!(tiny.iter().all(|r| matches!(r, JobResult::Failed { .. })));
    let retry = BatchJob {
        label: "adequate budget".to_string(),
        kind: JobKind::Consistent {
            mapping: ce.clone(),
            budget: BUDGET,
        },
    };
    let ok = run_batch(&ctx, std::slice::from_ref(&retry), 1);
    assert_eq!(
        ok[0],
        JobResult::Answer {
            yes: false,
            detail: "INCONSISTENT".to_string()
        }
    );
}

#[test]
fn batch_matches_sequential_run_job_dispatch() {
    // The driver is par_map over run_job; pin that the fan-out adds no
    // semantics of its own by comparing against a hand-rolled loop.
    let jobs: Vec<BatchJob> = job_list().into_iter().take(40).collect();
    let ctx = EngineContext::new();
    let sequential: Vec<JobResult> = jobs
        .iter()
        .map(|j| xmlmap::core::run_job(&ctx, j))
        .collect();
    let fanned = run_batch(&ctx, &jobs, 8);
    assert_eq!(fanned, sequential);

    // Order is job order, not completion order: labels lined up 1:1.
    let rendered = render_batch(&jobs, &fanned);
    for (i, job) in jobs.iter().enumerate() {
        assert!(
            rendered.contains(&format!("[{}] {}:", i + 1, job.label)),
            "job {i} missing or out of order in:\n{rendered}"
        );
    }
}

#[test]
fn consanswer_witnesses_are_deterministic_too() {
    // Consistency witnesses (not just the boolean) must be identical
    // across worker counts — render_batch prints the witness size.
    let cn = hard::cons_nextsib(3);
    let mut sizes = Vec::new();
    for workers in [1usize, 8] {
        let ctx = EngineContext::new();
        let jobs = vec![BatchJob {
            label: format!("nextsib on {workers} workers"),
            kind: JobKind::Consistent {
                mapping: Arc::new(cn.clone()),
                budget: BUDGET,
            },
        }];
        match &run_batch(&ctx, &jobs, workers)[0] {
            JobResult::Answer { yes: true, detail } => sizes.push(detail.clone()),
            other => panic!("cons_nextsib(3) should be consistent, got {other}"),
        }
    }
    assert_eq!(sizes[0], sizes[1]);
    let direct = match consistent(&cn, BUDGET).unwrap() {
        ConsAnswer::Consistent { source, .. } => source.size(),
        ConsAnswer::Inconsistent => panic!("cons_nextsib(3) is consistent"),
    };
    assert!(
        sizes[0].contains(&format!("{direct} nodes")),
        "{} vs {direct}",
        sizes[0]
    );
}
