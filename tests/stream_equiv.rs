//! Differential tests: the streaming O(depth) engines against the
//! tree-based engines, on generated documents that *do* fit the arena.
//!
//! Every case serialises a generated (and sometimes deliberately
//! corrupted) document to XML bytes, runs the one-pass streaming driver
//! ([`xmlmap::core::stream_document`]) over them, and re-parses the same
//! bytes into the arena pipeline (`normalize_attrs` + `Dtd::check`, then
//! `patterns::matches`). The verdicts must agree exactly:
//!
//! * conformance — including attribute-order shuffles (both sides are
//!   order-insensitive), unknown labels, dropped attributes, and dropped
//!   or relabelled subtrees;
//! * membership for streamable downward patterns — defined only on
//!   conforming documents (the streaming pass early-rejects otherwise,
//!   which is asserted too);
//! * firing enumeration — the valuation multisets that
//!   [`StreamEnumerator`] emits in one pass equal the arena evaluator's
//!   `Matcher::all_match_tuples`, tuple for tuple;
//! * the streaming chase — `chase_stream` over serialised bytes produces
//!   a solution `isomorphic_mod_nulls`-equal to `canonical_solution` on
//!   the parsed tree (same error verdict-for-verdict when the mapping
//!   falls outside the fragment), and withholds the verdict entirely when
//!   a corrupted document fails conformance mid-stream.
//!
//! Roughly 850 cases run in the default `cargo test`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use xmlmap::dtd::{Dtd, DtdIndex};
use xmlmap::gen::{random_tree, university_dtd, TreeGenConfig};
use xmlmap::patterns::{self, CompiledPattern, Matcher, StreamEnumerator, StreamPattern};
use xmlmap::trees::{isomorphic_mod_nulls, xml, Name, NodeId, Tree, Value};

/// Keep generated documents comfortably arena-sized.
fn config() -> TreeGenConfig {
    TreeGenConfig {
        continue_probability: 0.4,
        value_pool: 4,
        max_nodes: 300,
    }
}

/// A copy of `t` with random, mostly harmless edits: attribute-order
/// shuffles (never a verdict change), and occasional real corruptions —
/// dropped subtrees, relabelled nodes, dropped attributes — that flip a
/// conforming document to non-conforming.
fn perturb(t: &Tree, rng: &mut StdRng) -> Tree {
    fn copy(t: &Tree, n: NodeId, out: &mut Tree, dst: NodeId, rng: &mut StdRng) {
        for &c in t.children(n) {
            if rng.gen_bool(0.02) {
                continue; // drop the whole subtree
            }
            let label: Name = if rng.gen_bool(0.03) {
                "zz".into()
            } else {
                t.label(c).clone()
            };
            let mut attrs: Vec<(Name, Value)> = t.attrs(c).to_vec();
            if attrs.len() >= 2 && rng.gen_bool(0.5) {
                attrs.swap(0, 1); // harmless: both engines are order-insensitive
            }
            if !attrs.is_empty() && rng.gen_bool(0.05) {
                attrs.pop();
            }
            let d = out.add_child(dst, label, attrs);
            copy(t, c, out, d, rng);
        }
    }
    let mut out = Tree::new(t.label(Tree::ROOT).clone());
    copy(t, Tree::ROOT, &mut out, Tree::ROOT, rng);
    out
}

/// The arena-side conformance verdict on raw (document-order) attributes:
/// normalise first, exactly as the CLI/batch pipelines do, then check.
fn tree_conforms(dtd: &Dtd, t: &Tree) -> bool {
    let mut t = t.clone();
    dtd.normalize_attrs(&mut t).is_ok() && dtd.check(&t).is_ok()
}

/// Streams the serialised bytes of `t` and returns the outcome.
fn stream(
    idx: &Arc<DtdIndex>,
    plan: Option<&StreamPattern>,
    t: &Tree,
) -> xmlmap::core::StreamOutcome {
    let bytes = xml::to_string(t).into_bytes();
    xmlmap::core::stream_document(idx, plan, bytes.as_slice())
        .expect("serialised docs are well-formed")
}

#[test]
fn conformance_verdicts_match_the_tree_engine() {
    let dtds = [
        university_dtd(),
        xmlmap::gen::university_target_dtd(),
        xmlmap::dtd::parse("root r\nr -> (a|b)*, c?\na -> c*\nc @ v").unwrap(),
        xmlmap::dtd::parse("root r\nr -> a\na -> a?, b\nb @ x, y").unwrap(), // recursive
        xmlmap::dtd::parse("root r\nr -> a*, b*\na @ x, y\nb @ z").unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let (mut cases, mut invalid) = (0usize, 0usize);
    for dtd in &dtds {
        let idx = Arc::new(DtdIndex::new(dtd));
        for _ in 0..30 {
            let clean = random_tree(dtd, &config(), &mut rng);
            for doc in [&clean, &perturb(&clean, &mut rng)] {
                let expected = tree_conforms(dtd, doc);
                let out = stream(&idx, None, doc);
                assert_eq!(
                    out.violation.is_none(),
                    expected,
                    "conformance disagreement on\n{}\nstream said {:?}",
                    xml::to_string(doc),
                    out.violation
                );
                cases += 1;
                if !expected {
                    invalid += 1;
                }
            }
        }
    }
    assert_eq!(cases, 300);
    assert!(
        invalid > 10,
        "perturbation produced only {invalid} invalid docs"
    );
}

#[test]
fn membership_verdicts_match_the_tree_engine() {
    let dtd = university_dtd();
    let idx = Arc::new(DtdIndex::new(&dtd));
    let probes = [
        "r/prof(x)",
        "r//course(c)",
        "r//student(s)",
        "r/prof(x)[teach[year(y)]]",
        "r[prof(x)[supervise[student(s)]]]",
        "r//year(y)[course(c1), course(c2)]",
        "r//supervise[student(s1), student(s2)]",
        "r//_(v)",
        "r/prof(x)[teach[year(y)[course(c)]], supervise]",
        "r//zz",
    ];
    let plans: Vec<(patterns::Pattern, StreamPattern)> = probes
        .iter()
        .map(|p| {
            let pat = patterns::parse(p).unwrap();
            let plan = StreamPattern::compile(&pat).expect("downward probes stream");
            (pat, plan)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    let mut cases = 0usize;
    let mut matched = 0usize;
    for _ in 0..25 {
        let doc = random_tree(&dtd, &config(), &mut rng);
        let mut normalised = doc.clone();
        dtd.normalize_attrs(&mut normalised).unwrap();
        for (pat, plan) in &plans {
            let expected = patterns::matches(&normalised, pat);
            let out = stream(&idx, Some(plan), &doc);
            assert_eq!(out.violation, None);
            assert_eq!(
                out.matched,
                Some(expected),
                "membership disagreement for `{pat}` on\n{}",
                xml::to_string(&doc)
            );
            cases += 1;
            if expected {
                matched += 1;
            }
        }
    }
    assert_eq!(cases, 250);
    assert!(
        matched > 0 && matched < cases,
        "degenerate mix: {matched}/{cases}"
    );
}

#[test]
fn membership_is_withheld_when_conformance_fails() {
    let dtd = university_dtd();
    let idx = Arc::new(DtdIndex::new(&dtd));
    let plan = StreamPattern::compile(&patterns::parse("r//student(s)").unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xbad);
    let mut rejected = 0usize;
    while rejected < 20 {
        let doc = perturb(&random_tree(&dtd, &config(), &mut rng), &mut rng);
        if tree_conforms(&dtd, &doc) {
            continue;
        }
        let out = stream(&idx, Some(&plan), &doc);
        assert!(out.violation.is_some());
        assert_eq!(out.matched, None, "no verdict on a rejected document");
        rejected += 1;
    }
}

/// Feeds the (already attribute-normalised) tree to a [`StreamEnumerator`]
/// as an open/close event stream, exactly like the one-pass driver does.
fn enumerate(plan: &StreamPattern, t: &Tree) -> Vec<Box<[Value]>> {
    fn drive(t: &Tree, n: NodeId, en: &mut StreamEnumerator) {
        en.open(t.label(n), t.attrs(n));
        for &c in t.children(n) {
            drive(t, c, en);
        }
        en.close();
    }
    let mut en = StreamEnumerator::new(plan);
    drive(t, Tree::ROOT, &mut en);
    en.finish()
}

#[test]
fn firing_enumeration_matches_the_arena_evaluator() {
    let dtd = university_dtd();
    let probes = [
        "r/prof(x)",
        "r//course(c)",
        "r//student(s)",
        "r/prof(x)[teach[year(y)]]",
        "r[prof(x)[supervise[student(s)]]]",
        "r//year(y)[course(c1), course(c2)]",
        "r//supervise[student(s1), student(s2)]",
        "r//_(v)",
        "r/prof(x)[teach[year(y)[course(c)]], supervise]",
        "r/prof(p)[teach[year(y)[course(c)]], supervise[student(s)]]",
    ];
    let plans: Vec<(&str, CompiledPattern, StreamPattern)> = probes
        .iter()
        .map(|p| {
            let pat = patterns::parse(p).unwrap();
            let plan = StreamPattern::compile(&pat).expect("downward probes stream");
            (*p, CompiledPattern::new(&pat), plan)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xf1a5);
    let (mut cases, mut nonempty) = (0usize, 0usize);
    for _ in 0..15 {
        let mut doc = random_tree(&dtd, &config(), &mut rng);
        dtd.normalize_attrs(&mut doc).unwrap();
        for (probe, compiled, plan) in &plans {
            let expected = Matcher::new(&doc, compiled).all_match_tuples();
            let streamed = enumerate(plan, &doc);
            assert_eq!(
                streamed.len(),
                expected.len(),
                "tuple count disagreement for `{probe}` on\n{}",
                xml::to_string(&doc)
            );
            for (s, e) in streamed.iter().zip(&expected) {
                assert!(
                    s.iter().zip(e.iter()).all(|(a, &b)| a == b),
                    "tuple disagreement: streamed {s:?} vs arena {e:?}"
                );
            }
            cases += 1;
            if !expected.is_empty() {
                nonempty += 1;
            }
        }
    }
    assert_eq!(cases, 150);
    assert!(
        nonempty > 0 && nonempty < cases,
        "degenerate mix: {nonempty}/{cases}"
    );
}

#[test]
fn streaming_chase_matches_the_tree_chase_on_random_mappings() {
    let mut rng = StdRng::seed_from_u64(0xc4a5e);
    let gen_config = xmlmap::gen::MappingGenConfig {
        stds: 2,
        depth: 3,
        branch_probability: 0.7,
    };
    let (mut cases, mut solutions, mut fragment_errors, mut unstreamable) =
        (0usize, 0usize, 0usize, 0usize);
    while cases < 100 {
        let source_dtd = xmlmap::gen::random_nr_dtd(3, 2, 0.7, &mut rng);
        let target_dtd = xmlmap::gen::random_nr_dtd(3, 2, 0.7, &mut rng);
        let Some(m) =
            xmlmap::gen::random_nr_mapping(&source_dtd, &target_dtd, &gen_config, &mut rng)
        else {
            continue;
        };
        let plan = xmlmap::core::StreamChasePlan::new(&m);
        if plan.unstreamable().is_some() {
            // Generated source patterns are downward and condition-free,
            // but variable sharing across factors can be unstreamable.
            unstreamable += 1;
            continue;
        }
        let idx = Arc::new(DtdIndex::new(&m.source_dtd));
        for _ in 0..5 {
            let doc = random_tree(&m.source_dtd, &config(), &mut rng);
            let bytes = xml::to_string(&doc).into_bytes();
            let out = xmlmap::core::chase_stream(&idx, &plan, bytes.as_slice()).unwrap();
            assert_eq!(out.violation, None, "generated docs conform");
            let expected = xmlmap::core::canonical_solution(&m, &doc);
            match (out.solution.expect("verdict on a conforming doc"), expected) {
                (Ok(streamed), Ok(tree)) => {
                    assert!(
                        isomorphic_mod_nulls(&streamed, &tree),
                        "solution disagreement on\n{}\nstream:\n{}\ntree:\n{}",
                        m,
                        xml::to_string(&streamed),
                        xml::to_string(&tree)
                    );
                    solutions += 1;
                }
                (Err(a), Err(b)) => {
                    assert_eq!(a, b, "error disagreement on\n{m}");
                    fragment_errors += 1;
                }
                (a, b) => panic!("verdict disagreement on\n{m}\nstream {a:?} vs tree {b:?}"),
            }
            cases += 1;
        }
    }
    assert!(solutions > 50, "only {solutions} solved cases");
    assert!(
        unstreamable < 60,
        "too many unstreamable mappings ({unstreamable}) — suspicious generator drift"
    );
    let _ = fragment_errors; // either mix is fine; parity is what matters
}

#[test]
fn streaming_chase_withholds_the_verdict_on_rejected_documents() {
    let m = xmlmap::gen::exchange_mapping();
    let ctx = xmlmap::core::EngineContext::new();
    let mut rng = StdRng::seed_from_u64(0xdead);
    let mut rejected = 0usize;
    while rejected < 50 {
        let doc = perturb(
            &xmlmap::gen::exchange_tree(rng.gen_range(1..6), rng.gen_range(0..4), 8),
            &mut rng,
        );
        if tree_conforms(&m.source_dtd, &doc) {
            continue;
        }
        let bytes = xml::to_string(&doc).into_bytes();
        let out = ctx.chase_stream(&m, bytes.as_slice()).unwrap();
        assert!(out.violation.is_some());
        assert_eq!(out.firings, 0, "no firings reported on a rejected doc");
        assert!(out.solution.is_none(), "no verdict on a rejected document");
        rejected += 1;
    }
    assert_eq!(ctx.stats().stream_chase.misses, 1, "plan compiled once");
}

#[test]
fn engine_context_streaming_agrees_with_the_direct_driver() {
    let ctx = xmlmap::core::EngineContext::new();
    let dtd = university_dtd();
    let idx = Arc::new(DtdIndex::new(&dtd));
    let pat = patterns::parse("r//year(y)[course(c1), course(c2)]").unwrap();
    let plan = StreamPattern::compile(&pat).unwrap();
    let mut rng = StdRng::seed_from_u64(0xc7);
    for _ in 0..10 {
        let doc = random_tree(&dtd, &config(), &mut rng);
        let bytes = xml::to_string(&doc).into_bytes();
        let via_ctx = ctx
            .stream_document(&dtd, Some(&pat), bytes.as_slice())
            .unwrap();
        let direct = stream(&idx, Some(&plan), &doc);
        assert_eq!(via_ctx.violation, direct.violation);
        assert_eq!(via_ctx.matched, direct.matched);
        assert_eq!(via_ctx.stats.elements, direct.stats.elements);
    }
    let stats = ctx.stats();
    assert_eq!(stats.stream_jobs, 10);
    assert_eq!(stats.stream_index.misses, 1, "schema compiled once");
    assert_eq!(stats.stream_plans.misses, 1, "plan compiled once");
}
