//! Differential tests: the streaming O(depth) engines against the
//! tree-based engines, on generated documents that *do* fit the arena.
//!
//! Every case serialises a generated (and sometimes deliberately
//! corrupted) document to XML bytes, runs the one-pass streaming driver
//! ([`xmlmap::core::stream_document`]) over them, and re-parses the same
//! bytes into the arena pipeline (`normalize_attrs` + `Dtd::check`, then
//! `patterns::matches`). The verdicts must agree exactly:
//!
//! * conformance — including attribute-order shuffles (both sides are
//!   order-insensitive), unknown labels, dropped attributes, and dropped
//!   or relabelled subtrees;
//! * membership for streamable downward patterns — defined only on
//!   conforming documents (the streaming pass early-rejects otherwise,
//!   which is asserted too).
//!
//! Roughly 550 cases run in the default `cargo test`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use xmlmap::dtd::{Dtd, DtdIndex};
use xmlmap::gen::{random_tree, university_dtd, TreeGenConfig};
use xmlmap::patterns::{self, StreamPattern};
use xmlmap::trees::{xml, Name, NodeId, Tree, Value};

/// Keep generated documents comfortably arena-sized.
fn config() -> TreeGenConfig {
    TreeGenConfig {
        continue_probability: 0.4,
        value_pool: 4,
        max_nodes: 300,
    }
}

/// A copy of `t` with random, mostly harmless edits: attribute-order
/// shuffles (never a verdict change), and occasional real corruptions —
/// dropped subtrees, relabelled nodes, dropped attributes — that flip a
/// conforming document to non-conforming.
fn perturb(t: &Tree, rng: &mut StdRng) -> Tree {
    fn copy(t: &Tree, n: NodeId, out: &mut Tree, dst: NodeId, rng: &mut StdRng) {
        for &c in t.children(n) {
            if rng.gen_bool(0.02) {
                continue; // drop the whole subtree
            }
            let label: Name = if rng.gen_bool(0.03) {
                "zz".into()
            } else {
                t.label(c).clone()
            };
            let mut attrs: Vec<(Name, Value)> = t.attrs(c).to_vec();
            if attrs.len() >= 2 && rng.gen_bool(0.5) {
                attrs.swap(0, 1); // harmless: both engines are order-insensitive
            }
            if !attrs.is_empty() && rng.gen_bool(0.05) {
                attrs.pop();
            }
            let d = out.add_child(dst, label, attrs);
            copy(t, c, out, d, rng);
        }
    }
    let mut out = Tree::new(t.label(Tree::ROOT).clone());
    copy(t, Tree::ROOT, &mut out, Tree::ROOT, rng);
    out
}

/// The arena-side conformance verdict on raw (document-order) attributes:
/// normalise first, exactly as the CLI/batch pipelines do, then check.
fn tree_conforms(dtd: &Dtd, t: &Tree) -> bool {
    let mut t = t.clone();
    dtd.normalize_attrs(&mut t).is_ok() && dtd.check(&t).is_ok()
}

/// Streams the serialised bytes of `t` and returns the outcome.
fn stream(
    idx: &Arc<DtdIndex>,
    plan: Option<&StreamPattern>,
    t: &Tree,
) -> xmlmap::core::StreamOutcome {
    let bytes = xml::to_string(t).into_bytes();
    xmlmap::core::stream_document(idx, plan, bytes.as_slice())
        .expect("serialised docs are well-formed")
}

#[test]
fn conformance_verdicts_match_the_tree_engine() {
    let dtds = [
        university_dtd(),
        xmlmap::gen::university_target_dtd(),
        xmlmap::dtd::parse("root r\nr -> (a|b)*, c?\na -> c*\nc @ v").unwrap(),
        xmlmap::dtd::parse("root r\nr -> a\na -> a?, b\nb @ x, y").unwrap(), // recursive
        xmlmap::dtd::parse("root r\nr -> a*, b*\na @ x, y\nb @ z").unwrap(),
    ];
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let (mut cases, mut invalid) = (0usize, 0usize);
    for dtd in &dtds {
        let idx = Arc::new(DtdIndex::new(dtd));
        for _ in 0..30 {
            let clean = random_tree(dtd, &config(), &mut rng);
            for doc in [&clean, &perturb(&clean, &mut rng)] {
                let expected = tree_conforms(dtd, doc);
                let out = stream(&idx, None, doc);
                assert_eq!(
                    out.violation.is_none(),
                    expected,
                    "conformance disagreement on\n{}\nstream said {:?}",
                    xml::to_string(doc),
                    out.violation
                );
                cases += 1;
                if !expected {
                    invalid += 1;
                }
            }
        }
    }
    assert_eq!(cases, 300);
    assert!(
        invalid > 10,
        "perturbation produced only {invalid} invalid docs"
    );
}

#[test]
fn membership_verdicts_match_the_tree_engine() {
    let dtd = university_dtd();
    let idx = Arc::new(DtdIndex::new(&dtd));
    let probes = [
        "r/prof(x)",
        "r//course(c)",
        "r//student(s)",
        "r/prof(x)[teach[year(y)]]",
        "r[prof(x)[supervise[student(s)]]]",
        "r//year(y)[course(c1), course(c2)]",
        "r//supervise[student(s1), student(s2)]",
        "r//_(v)",
        "r/prof(x)[teach[year(y)[course(c)]], supervise]",
        "r//zz",
    ];
    let plans: Vec<(patterns::Pattern, StreamPattern)> = probes
        .iter()
        .map(|p| {
            let pat = patterns::parse(p).unwrap();
            let plan = StreamPattern::compile(&pat).expect("downward probes stream");
            (pat, plan)
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(0xd1ff);
    let mut cases = 0usize;
    let mut matched = 0usize;
    for _ in 0..25 {
        let doc = random_tree(&dtd, &config(), &mut rng);
        let mut normalised = doc.clone();
        dtd.normalize_attrs(&mut normalised).unwrap();
        for (pat, plan) in &plans {
            let expected = patterns::matches(&normalised, pat);
            let out = stream(&idx, Some(plan), &doc);
            assert_eq!(out.violation, None);
            assert_eq!(
                out.matched,
                Some(expected),
                "membership disagreement for `{pat}` on\n{}",
                xml::to_string(&doc)
            );
            cases += 1;
            if expected {
                matched += 1;
            }
        }
    }
    assert_eq!(cases, 250);
    assert!(
        matched > 0 && matched < cases,
        "degenerate mix: {matched}/{cases}"
    );
}

#[test]
fn membership_is_withheld_when_conformance_fails() {
    let dtd = university_dtd();
    let idx = Arc::new(DtdIndex::new(&dtd));
    let plan = StreamPattern::compile(&patterns::parse("r//student(s)").unwrap()).unwrap();
    let mut rng = StdRng::seed_from_u64(0xbad);
    let mut rejected = 0usize;
    while rejected < 20 {
        let doc = perturb(&random_tree(&dtd, &config(), &mut rng), &mut rng);
        if tree_conforms(&dtd, &doc) {
            continue;
        }
        let out = stream(&idx, Some(&plan), &doc);
        assert!(out.violation.is_some());
        assert_eq!(out.matched, None, "no verdict on a rejected document");
        rejected += 1;
    }
}

#[test]
fn engine_context_streaming_agrees_with_the_direct_driver() {
    let ctx = xmlmap::core::EngineContext::new();
    let dtd = university_dtd();
    let idx = Arc::new(DtdIndex::new(&dtd));
    let pat = patterns::parse("r//year(y)[course(c1), course(c2)]").unwrap();
    let plan = StreamPattern::compile(&pat).unwrap();
    let mut rng = StdRng::seed_from_u64(0xc7);
    for _ in 0..10 {
        let doc = random_tree(&dtd, &config(), &mut rng);
        let bytes = xml::to_string(&doc).into_bytes();
        let via_ctx = ctx
            .stream_document(&dtd, Some(&pat), bytes.as_slice())
            .unwrap();
        let direct = stream(&idx, Some(&plan), &doc);
        assert_eq!(via_ctx.violation, direct.violation);
        assert_eq!(via_ctx.matched, direct.matched);
        assert_eq!(via_ctx.stats.elements, direct.stats.elements);
    }
    let stats = ctx.stats();
    assert_eq!(stats.stream_jobs, 10);
    assert_eq!(stats.stream_index.misses, 1, "schema compiled once");
    assert_eq!(stats.stream_plans.misses, 1, "plan compiled once");
}
