//! Cache-coherence differential tests.
//!
//! For each compiled-engine cache ([`SatCache`], [`ChaseCache`],
//! [`AutomataCache`]) two invariants keep the shared [`EngineContext`]
//! honest:
//!
//! 1. **hit = fresh** — a memoized answer equals a fresh uncached compute
//!    (isomorphic modulo null renaming for chase outputs, which invent
//!    nulls);
//! 2. **budget errors are never cached** — a budget-exceeded verdict is
//!    recomputed on retry, so a bigger budget can succeed, while
//!    *successful* verdicts are budget-independent and may be answered
//!    from the memo whatever budget the later caller passes.

use std::sync::Arc;
use xmlmap::automata::AutomataCache;
use xmlmap::core::{
    canonical_solution, canonical_solution_cached, ChaseCache, EngineContext, ShapeCache,
};
use xmlmap::gen::hard;
use xmlmap::patterns::SatCache;
use xmlmap::prelude::*;
use xmlmap::trees::tree::isomorphic_mod_nulls;

const BUDGET: usize = 10_000_000;

// ---- SatCache -----------------------------------------------------------

#[test]
fn sat_cache_hit_equals_fresh_compute() {
    let (d, p) = hard::sat_hard(6);
    let cache = SatCache::new(&d);
    let first = cache.satisfiable(&p, BUDGET).unwrap();
    let memoized = cache.satisfiable(&p, BUDGET).unwrap();
    let fresh = SatCache::new(&d).satisfiable(&p, BUDGET).unwrap();
    assert!(first.is_some(), "sat_hard patterns are satisfiable");
    assert_eq!(first, memoized, "memo hit must equal the first compute");
    assert_eq!(first, fresh, "memo hit must equal a fresh uncached compute");

    // The second lookup really was a memo hit: the match-set table hands
    // back the same Arc, not a recomputed copy.
    let a1 = cache.achievable_match_sets(&[&p], BUDGET).unwrap();
    let a2 = cache.achievable_match_sets(&[&p], BUDGET).unwrap();
    assert!(Arc::ptr_eq(&a1, &a2));
}

#[test]
fn sat_budget_errors_are_never_cached() {
    let (d, p) = hard::sat_hard(6);
    let cache = SatCache::new(&d);

    let err = cache.satisfiable(&p, 1).unwrap_err();
    assert_eq!(err.budget, 1);
    assert!(err.states_explored >= 1);

    // The failure was not memoized: an adequate budget recomputes and
    // succeeds on the very same cache.
    let ok = cache.satisfiable(&p, BUDGET).unwrap();
    assert!(ok.is_some());

    // Once a *successful* verdict is resident it is budget-independent:
    // even a 1-state budget is answered from the memo.
    let from_memo = cache.satisfiable(&p, 1).unwrap();
    assert_eq!(from_memo, ok);
}

// ---- ChaseCache ---------------------------------------------------------

/// A mapping whose chase invents a null per firing (`y` is unbound on the
/// source side), so output comparison must be modulo null renaming.
fn null_inventing_mapping() -> Mapping {
    Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> b*\nb @ w\n\
         [stds]\nr/a(x) --> r[b(x), b(y)]\n",
    )
    .unwrap()
}

#[test]
fn chase_cache_repeat_is_isomorphic_to_fresh_compute() {
    let m = null_inventing_mapping();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/></r>"#).unwrap();
    let cache = ChaseCache::new(&m);

    let first = canonical_solution_cached(&m, &src, &cache).unwrap();
    let repeat = canonical_solution_cached(&m, &src, &cache).unwrap();
    let fresh = canonical_solution(&m, &src).unwrap();
    assert!(isomorphic_mod_nulls(&first, &repeat));
    assert!(isomorphic_mod_nulls(&first, &fresh));
    assert!(m.is_solution(&src, &first));
}

#[test]
fn chase_cache_has_no_verdict_memo_to_poison() {
    // Audit: `ChaseCache` holds *compiled plans only* — it takes no budget
    // parameter and memoizes no verdicts, so there is no budget-exceeded
    // verdict it could ever cache. What must still hold: chase *errors*
    // recompute identically through the shared plan.
    let narrow = Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> a\na @ v\n\
         [stds]\nr/a(x) --> r/a(x)\n",
    )
    .unwrap();
    // Two distinct source values cannot fit a target that allows one `a`.
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/></r>"#).unwrap();
    let cache = ChaseCache::new(&narrow);

    let e1 = canonical_solution_cached(&narrow, &src, &cache).unwrap_err();
    let e2 = canonical_solution_cached(&narrow, &src, &cache).unwrap_err();
    let fresh = canonical_solution(&narrow, &src).unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string());
    assert_eq!(e1.to_string(), fresh.to_string());

    // The failed chases leave the plan fully usable for sources that do
    // have solutions.
    let good = xmlmap::trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();
    let sol = canonical_solution_cached(&narrow, &good, &cache).unwrap();
    assert!(narrow.is_solution(&good, &sol));
}

// ---- AutomataCache ------------------------------------------------------

#[test]
fn automata_cache_verdicts_equal_fresh_compute() {
    // A pair that is *not* a subschema: r -> (a|b)* admits documents the
    // (a0|…|a3)+ schema rejects.
    let d1 = hard::cons_nextsib(3).source_dtd;
    let d2 = hard::cons_exptime(4).source_dtd;
    let cache = AutomataCache::new(&d1, &d2);

    let first = cache.subschema(BUDGET).unwrap();
    let memoized = cache.subschema(BUDGET).unwrap();
    let fresh = AutomataCache::new(&d1, &d2).subschema(BUDGET).unwrap();
    assert!(first.is_some(), "(a|b)* is not a subschema of (a0|…|a3)+");
    assert_eq!(format!("{first:?}"), format!("{memoized:?}"));
    assert_eq!(format!("{first:?}"), format!("{fresh:?}"));

    let i_first = cache.inclusion(BUDGET).unwrap();
    let i_memo = cache.inclusion(BUDGET).unwrap();
    let i_fresh = AutomataCache::new(&d1, &d2).inclusion(BUDGET).unwrap();
    assert_eq!(i_first, i_memo);
    assert_eq!(i_first, i_fresh);

    // And a pair where the verdict is positive, for the other branch.
    let refl = AutomataCache::new(&d2, &d2);
    assert!(refl.subschema(BUDGET).unwrap().is_none());
    assert!(refl.subschema(BUDGET).unwrap().is_none());
    assert!(AutomataCache::new(&d2, &d2)
        .subschema(BUDGET)
        .unwrap()
        .is_none());
}

#[test]
fn automata_budget_errors_are_never_cached() {
    let d1 = hard::cons_nextsib(3).source_dtd;
    let d2 = hard::cons_exptime(4).source_dtd;

    let cache = AutomataCache::new(&d1, &d2);
    let err = cache.subschema(1).unwrap_err();
    assert_eq!(err.budget, 1);
    assert_eq!(err.operation, "subschema check");

    // Retry with an adequate budget recomputes and completes…
    let verdict = cache.subschema(BUDGET).unwrap();
    assert!(verdict.is_some());
    // …and the resident verdict is budget-independent from then on.
    let from_memo = cache.subschema(1).unwrap();
    assert_eq!(format!("{verdict:?}"), format!("{from_memo:?}"));

    // Same discipline on the inclusion memo.
    let cache = AutomataCache::new(&d1, &d2);
    let err = cache.inclusion(1).unwrap_err();
    assert_eq!(err.budget, 1);
    assert_eq!(err.operation, "inclusion check");
    let verdict = cache.inclusion(BUDGET).unwrap();
    assert_eq!(cache.inclusion(1).unwrap(), verdict);
}

// ---- ShapeCache ---------------------------------------------------------

#[test]
fn shape_cache_memoized_equals_fresh_enumeration() {
    let d = xmlmap::dtd::parse("root r\nr -> a*\na -> b?").unwrap();
    let cache = ShapeCache::new(&d);
    let first = cache.shapes(5);
    let memoized = cache.shapes(5);
    assert!(
        Arc::ptr_eq(&first, &memoized),
        "second lookup is a memo hit"
    );
    let fresh = xmlmap::core::tree_shapes(&d, 5);
    assert_eq!(first.len(), fresh.len());
    for (a, b) in first.iter().zip(&fresh) {
        assert!(isomorphic_mod_nulls(a, b));
    }
    // Distinct bounds are distinct memo entries.
    assert_ne!(cache.shapes(3).len(), first.len());
}

// ---- serialized artifacts behave like fresh compiles --------------------

#[test]
fn sat_cache_deserialized_equals_fresh() {
    let (d, p) = hard::sat_hard(6);
    let cache = SatCache::new(&d);
    let restored = SatCache::from_bytes(&cache.to_bytes()).expect("round trip");
    let fresh = cache.satisfiable(&p, BUDGET).unwrap();
    let loaded = restored.satisfiable(&p, BUDGET).unwrap();
    assert_eq!(fresh, loaded);
    // Corrupt payloads degrade to an error, never a panic.
    let mut bytes = cache.to_bytes();
    bytes.truncate(bytes.len() / 2);
    assert!(SatCache::from_bytes(&bytes).is_err());
}

#[test]
fn chase_cache_deserialized_is_isomorphic_to_fresh() {
    let m = null_inventing_mapping();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/></r>"#).unwrap();
    let cache = ChaseCache::new(&m);
    let restored = ChaseCache::from_bytes(&cache.to_bytes()).expect("round trip");
    let fresh = canonical_solution_cached(&m, &src, &cache).unwrap();
    let loaded = canonical_solution_cached(&m, &src, &restored).unwrap();
    assert!(isomorphic_mod_nulls(&fresh, &loaded));
    assert!(m.is_solution(&src, &loaded));

    // Error behaviour survives the round trip too.
    let narrow = Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> a\na @ v\n\
         [stds]\nr/a(x) --> r/a(x)\n",
    )
    .unwrap();
    let cache = ChaseCache::new(&narrow);
    let restored = ChaseCache::from_bytes(&cache.to_bytes()).expect("round trip");
    let e1 = canonical_solution_cached(&narrow, &src, &cache).unwrap_err();
    let e2 = canonical_solution_cached(&narrow, &src, &restored).unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string());
}

#[test]
fn automata_cache_deserialized_equals_fresh() {
    let d1 = hard::cons_nextsib(3).source_dtd;
    let d2 = hard::cons_exptime(4).source_dtd;
    let cache = AutomataCache::new(&d1, &d2);
    let restored = AutomataCache::from_bytes(&cache.to_bytes()).expect("round trip");
    let fresh = cache.subschema(BUDGET).unwrap();
    let loaded = restored.subschema(BUDGET).unwrap();
    assert_eq!(fresh.is_some(), loaded.is_some());
    assert_eq!(
        cache.inclusion(BUDGET).unwrap(),
        restored.inclusion(BUDGET).unwrap()
    );
    assert_eq!(restored.d1().to_string(), d1.to_string());
    assert_eq!(restored.d2().to_string(), d2.to_string());
}

#[test]
fn shape_cache_deserialized_restores_memoized_bounds() {
    let d = xmlmap::dtd::parse("root r\nr -> a*\na -> b?").unwrap();
    let cache = ShapeCache::new(&d);
    let s4 = cache.shapes(4);
    let s2 = cache.shapes(2);
    let restored = ShapeCache::from_bytes(&cache.to_bytes()).expect("round trip");
    let r4 = restored.shapes(4);
    let r2 = restored.shapes(2);
    assert_eq!(s4.len(), r4.len());
    assert_eq!(s2.len(), r2.len());
    for (a, b) in s4.iter().zip(r4.iter()) {
        assert!(isomorphic_mod_nulls(a, b));
    }
    // An empty cache round-trips to an empty cache.
    let empty = ShapeCache::from_bytes(&ShapeCache::new(&d).to_bytes()).unwrap();
    assert!(!empty.has_content());
}

// ---- bounded contexts: evict, recompile, agree --------------------------

/// Accounted bytes must respect the budget once operations settle, and a
/// budget far below the working set must force evictions — while every
/// verdict stays identical to an unbounded context's.
#[test]
fn bounded_context_sat_family_evicts_and_agrees() {
    let bounded = EngineContext::new().with_memory_budget(4_000);
    let unbounded = EngineContext::new();
    for round in 0..2 {
        for k in [3, 4, 5] {
            let m = hard::cons_exptime(k);
            let a = bounded.consistent(&m, BUDGET).unwrap();
            let b = unbounded.consistent(&m, BUDGET).unwrap();
            assert_eq!(
                a.is_consistent(),
                b.is_consistent(),
                "cons_exptime({k}) round {round}"
            );
        }
    }
    let stats = bounded.stats();
    assert!(stats.sat.evictions > 0, "budget below working set: {stats}");
    assert!(stats.total_bytes() <= 4_000, "{stats}");
    // The unbounded context never evicts and never re-compiles.
    let stats = unbounded.stats();
    assert_eq!(stats.sat.evictions, 0);
    assert_eq!(stats.sat.misses, stats.sat.entries);
}

#[test]
fn bounded_context_chase_family_evicts_and_agrees() {
    let bounded = EngineContext::new().with_memory_budget(500);
    let unbounded = EngineContext::new();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/></r>"#).unwrap();
    let mappings = [
        null_inventing_mapping(),
        Mapping::parse(
            "[source]\nroot r\nr -> a*\na @ v\n\
             [target]\nroot r\nr -> b*\nb @ w\n\
             [stds]\nr/a(x) --> r/b(x)\n",
        )
        .unwrap(),
    ];
    for _ in 0..2 {
        for m in &mappings {
            let a = bounded.canonical_solution(m, &src).unwrap();
            let b = unbounded.canonical_solution(m, &src).unwrap();
            assert!(isomorphic_mod_nulls(&a, &b));
        }
    }
    let stats = bounded.stats();
    assert!(stats.chase.evictions > 0, "{stats}");
    assert!(stats.total_bytes() <= 500, "{stats}");
    assert!(
        stats.chase.misses > stats.chase.entries,
        "entries recompiled"
    );
}

#[test]
fn bounded_context_automata_family_evicts_and_agrees() {
    let bounded = EngineContext::new().with_memory_budget(2_000);
    let unbounded = EngineContext::new();
    let d1 = hard::cons_nextsib(3).source_dtd;
    let d2 = hard::cons_exptime(4).source_dtd;
    for _ in 0..2 {
        for (a, b) in [(&d1, &d2), (&d2, &d2), (&d1, &d1)] {
            let x = bounded.subschema(a, b, BUDGET).unwrap();
            let y = unbounded.subschema(a, b, BUDGET).unwrap();
            assert_eq!(x.is_some(), y.is_some());
        }
    }
    let stats = bounded.stats();
    assert!(stats.automata.evictions > 0, "{stats}");
    assert!(stats.total_bytes() <= 2_000, "{stats}");
}

#[test]
fn bounded_context_shape_family_evicts_and_agrees() {
    let bounded = EngineContext::new().with_memory_budget(300);
    let unbounded = EngineContext::new();
    let m1 = null_inventing_mapping();
    let m2 = Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> c*\nc @ w\n\
         [stds]\nr/a(x) --> r/c(x)\n",
    )
    .unwrap();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();
    for _ in 0..2 {
        for m in [&m1, &m2] {
            let a = bounded.solution_exists(m, &src, 4);
            let b = unbounded.solution_exists(m, &src, 4);
            assert_eq!(a.is_some(), b.is_some());
        }
    }
    let stats = bounded.stats();
    assert!(stats.shapes.evictions > 0, "{stats}");
    assert!(stats.total_bytes() <= 300, "{stats}");
}

// ---- disk-backed contexts -----------------------------------------------

fn temp_cache_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("xmlmap-coherence-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A second context over the same store must answer every compile from
/// disk — and agree with the first on every verdict.
#[test]
fn disk_cache_warm_restart_skips_compilation() {
    let dir = temp_cache_dir("warm");
    let m = null_inventing_mapping();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/></r>"#).unwrap();
    let d2 = hard::cons_exptime(4).source_dtd;

    let cold = EngineContext::new().with_disk_cache(&dir).unwrap();
    let sol_cold = cold.canonical_solution(&m, &src).unwrap();
    let cons_cold = cold.consistent(&m, BUDGET).unwrap();
    let sub_cold = cold.subschema(&d2, &d2, BUDGET).unwrap();
    let sol_exists_cold = cold.solution_exists(&m, &src, 6);
    cold.flush_disk_cache();
    let stats = cold.stats();
    assert_eq!(stats.total_disk_hits(), 0);
    assert!(stats.total_compiled() >= 4);

    // "Restart": a fresh context, same directory.
    let warm = EngineContext::new().with_disk_cache(&dir).unwrap();
    let sol_warm = warm.canonical_solution(&m, &src).unwrap();
    let cons_warm = warm.consistent(&m, BUDGET).unwrap();
    let sub_warm = warm.subschema(&d2, &d2, BUDGET).unwrap();
    let sol_exists_warm = warm.solution_exists(&m, &src, 6);
    assert!(isomorphic_mod_nulls(&sol_cold, &sol_warm));
    assert_eq!(cons_cold.is_consistent(), cons_warm.is_consistent());
    assert_eq!(sub_cold.is_some(), sub_warm.is_some());
    assert_eq!(sol_exists_cold.is_some(), sol_exists_warm.is_some());

    let stats = warm.stats();
    assert_eq!(
        stats.total_compiled(),
        0,
        "warm restart compiles nothing: {stats}"
    );
    assert!(stats.total_disk_hits() >= 4, "{stats}");
    assert_eq!(stats.sat.compile_time, std::time::Duration::ZERO);
}

/// Damaged artifacts are a diagnostic counter and a silent recompile,
/// never an error.
#[test]
fn disk_cache_corruption_falls_back_to_compile() {
    let dir = temp_cache_dir("corrupt");
    let m = null_inventing_mapping();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();

    let cold = EngineContext::new().with_disk_cache(&dir).unwrap();
    let sol = cold.canonical_solution(&m, &src).unwrap();

    // Truncate every stored artifact.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    }

    let warm = EngineContext::new().with_disk_cache(&dir).unwrap();
    let again = warm.canonical_solution(&m, &src).unwrap();
    assert!(isomorphic_mod_nulls(&sol, &again));
    let stats = warm.stats();
    assert_eq!(stats.total_disk_hits(), 0);
    assert!(stats.chase.disk_errors > 0, "{stats}");
    assert_eq!(stats.chase.compiled(), 1);
}

/// An eviction under a disk-backed context refills from the store, not the
/// compiler.
#[test]
fn evicted_entries_refill_from_disk() {
    let dir = temp_cache_dir("refill");
    let ctx = EngineContext::new()
        .with_memory_budget(500)
        .with_disk_cache(&dir)
        .unwrap();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();
    let m1 = null_inventing_mapping();
    let m2 = Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> b*\nb @ w\n\
         [stds]\nr/a(x) --> r/b(x)\n",
    )
    .unwrap();
    for _ in 0..3 {
        for m in [&m1, &m2] {
            assert!(ctx.canonical_solution(m, &src).is_ok());
        }
    }
    let stats = ctx.stats();
    assert!(stats.chase.evictions > 0, "{stats}");
    assert_eq!(
        stats.chase.compiled(),
        2,
        "each mapping compiled once: {stats}"
    );
    assert!(stats.chase.disk_hits > 0, "refills came from disk: {stats}");
}

// ---- EngineContext ------------------------------------------------------

#[test]
fn engine_context_budget_retry_recomputes() {
    let ctx = EngineContext::new();
    let ce = hard::cons_exptime(6);

    // Consistency: a starved probe fails with a budget error…
    let err = ctx.consistent(&ce, 2).unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // …and the retry on the same context succeeds, proving the error was
    // not memoized anywhere behind the shared SatCaches.
    assert!(!ctx.consistent(&ce, BUDGET).unwrap().is_consistent());

    // Subschema: same discipline through the shared AutomataCache, and the
    // failed probe must not have cost a second compilation.
    let cn = hard::cons_nextsib(3);
    let err = ctx
        .subschema(&cn.source_dtd, &ce.source_dtd, 1)
        .unwrap_err();
    assert_eq!(err.budget, 1);
    assert!(ctx
        .subschema(&cn.source_dtd, &ce.source_dtd, BUDGET)
        .unwrap()
        .is_some());
    assert_eq!(ctx.stats().automata.misses, 1);
    assert_eq!(ctx.stats().automata.entries, 1);
}

#[test]
fn engine_context_abscons_agrees_with_uncached_procedure() {
    let ctx = EngineContext::new();
    // Value-free (SM°), so the structural procedure applies; every source
    // document fires an std with an unsatisfiable target side, so the
    // verdict is Violated.
    let narrow = hard::cons_exptime(3);
    let via_ctx = ctx.abscons_structural(&narrow, BUDGET);
    let fresh = xmlmap::core::abscons_structural(&narrow, BUDGET);
    match (via_ctx, fresh) {
        (Ok(Ok(a)), Ok(Ok(b))) => assert_eq!(a.holds(), b.holds()),
        (a, b) => panic!("context and fresh disagree: {a:?} vs {b:?}"),
    }
    // Repeat from the warm caches: same verdict, strictly more hits.
    let hits_before = ctx.stats().sat.hits;
    let again = ctx.abscons_structural(&narrow, BUDGET).unwrap().unwrap();
    assert!(!again.holds());
    assert!(ctx.stats().sat.hits > hits_before);
    assert_eq!(ctx.stats().sat.misses, ctx.stats().sat.entries);
}
