//! Cache-coherence differential tests.
//!
//! For each compiled-engine cache ([`SatCache`], [`ChaseCache`],
//! [`AutomataCache`]) two invariants keep the shared [`EngineContext`]
//! honest:
//!
//! 1. **hit = fresh** — a memoized answer equals a fresh uncached compute
//!    (isomorphic modulo null renaming for chase outputs, which invent
//!    nulls);
//! 2. **budget errors are never cached** — a budget-exceeded verdict is
//!    recomputed on retry, so a bigger budget can succeed, while
//!    *successful* verdicts are budget-independent and may be answered
//!    from the memo whatever budget the later caller passes.

use std::sync::Arc;
use xmlmap::automata::AutomataCache;
use xmlmap::core::{canonical_solution, canonical_solution_cached, ChaseCache, EngineContext};
use xmlmap::gen::hard;
use xmlmap::patterns::SatCache;
use xmlmap::prelude::*;
use xmlmap::trees::tree::isomorphic_mod_nulls;

const BUDGET: usize = 10_000_000;

// ---- SatCache -----------------------------------------------------------

#[test]
fn sat_cache_hit_equals_fresh_compute() {
    let (d, p) = hard::sat_hard(6);
    let cache = SatCache::new(&d);
    let first = cache.satisfiable(&p, BUDGET).unwrap();
    let memoized = cache.satisfiable(&p, BUDGET).unwrap();
    let fresh = SatCache::new(&d).satisfiable(&p, BUDGET).unwrap();
    assert!(first.is_some(), "sat_hard patterns are satisfiable");
    assert_eq!(first, memoized, "memo hit must equal the first compute");
    assert_eq!(first, fresh, "memo hit must equal a fresh uncached compute");

    // The second lookup really was a memo hit: the match-set table hands
    // back the same Arc, not a recomputed copy.
    let a1 = cache.achievable_match_sets(&[&p], BUDGET).unwrap();
    let a2 = cache.achievable_match_sets(&[&p], BUDGET).unwrap();
    assert!(Arc::ptr_eq(&a1, &a2));
}

#[test]
fn sat_budget_errors_are_never_cached() {
    let (d, p) = hard::sat_hard(6);
    let cache = SatCache::new(&d);

    let err = cache.satisfiable(&p, 1).unwrap_err();
    assert_eq!(err.budget, 1);
    assert!(err.states_explored >= 1);

    // The failure was not memoized: an adequate budget recomputes and
    // succeeds on the very same cache.
    let ok = cache.satisfiable(&p, BUDGET).unwrap();
    assert!(ok.is_some());

    // Once a *successful* verdict is resident it is budget-independent:
    // even a 1-state budget is answered from the memo.
    let from_memo = cache.satisfiable(&p, 1).unwrap();
    assert_eq!(from_memo, ok);
}

// ---- ChaseCache ---------------------------------------------------------

/// A mapping whose chase invents a null per firing (`y` is unbound on the
/// source side), so output comparison must be modulo null renaming.
fn null_inventing_mapping() -> Mapping {
    Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> b*\nb @ w\n\
         [stds]\nr/a(x) --> r[b(x), b(y)]\n",
    )
    .unwrap()
}

#[test]
fn chase_cache_repeat_is_isomorphic_to_fresh_compute() {
    let m = null_inventing_mapping();
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/></r>"#).unwrap();
    let cache = ChaseCache::new(&m);

    let first = canonical_solution_cached(&m, &src, &cache).unwrap();
    let repeat = canonical_solution_cached(&m, &src, &cache).unwrap();
    let fresh = canonical_solution(&m, &src).unwrap();
    assert!(isomorphic_mod_nulls(&first, &repeat));
    assert!(isomorphic_mod_nulls(&first, &fresh));
    assert!(m.is_solution(&src, &first));
}

#[test]
fn chase_cache_has_no_verdict_memo_to_poison() {
    // Audit: `ChaseCache` holds *compiled plans only* — it takes no budget
    // parameter and memoizes no verdicts, so there is no budget-exceeded
    // verdict it could ever cache. What must still hold: chase *errors*
    // recompute identically through the shared plan.
    let narrow = Mapping::parse(
        "[source]\nroot r\nr -> a*\na @ v\n\
         [target]\nroot r\nr -> a\na @ v\n\
         [stds]\nr/a(x) --> r/a(x)\n",
    )
    .unwrap();
    // Two distinct source values cannot fit a target that allows one `a`.
    let src = xmlmap::trees::xml::parse(r#"<r><a v="1"/><a v="2"/></r>"#).unwrap();
    let cache = ChaseCache::new(&narrow);

    let e1 = canonical_solution_cached(&narrow, &src, &cache).unwrap_err();
    let e2 = canonical_solution_cached(&narrow, &src, &cache).unwrap_err();
    let fresh = canonical_solution(&narrow, &src).unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string());
    assert_eq!(e1.to_string(), fresh.to_string());

    // The failed chases leave the plan fully usable for sources that do
    // have solutions.
    let good = xmlmap::trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();
    let sol = canonical_solution_cached(&narrow, &good, &cache).unwrap();
    assert!(narrow.is_solution(&good, &sol));
}

// ---- AutomataCache ------------------------------------------------------

#[test]
fn automata_cache_verdicts_equal_fresh_compute() {
    // A pair that is *not* a subschema: r -> (a|b)* admits documents the
    // (a0|…|a3)+ schema rejects.
    let d1 = hard::cons_nextsib(3).source_dtd;
    let d2 = hard::cons_exptime(4).source_dtd;
    let cache = AutomataCache::new(&d1, &d2);

    let first = cache.subschema(BUDGET).unwrap();
    let memoized = cache.subschema(BUDGET).unwrap();
    let fresh = AutomataCache::new(&d1, &d2).subschema(BUDGET).unwrap();
    assert!(first.is_some(), "(a|b)* is not a subschema of (a0|…|a3)+");
    assert_eq!(format!("{first:?}"), format!("{memoized:?}"));
    assert_eq!(format!("{first:?}"), format!("{fresh:?}"));

    let i_first = cache.inclusion(BUDGET).unwrap();
    let i_memo = cache.inclusion(BUDGET).unwrap();
    let i_fresh = AutomataCache::new(&d1, &d2).inclusion(BUDGET).unwrap();
    assert_eq!(i_first, i_memo);
    assert_eq!(i_first, i_fresh);

    // And a pair where the verdict is positive, for the other branch.
    let refl = AutomataCache::new(&d2, &d2);
    assert!(refl.subschema(BUDGET).unwrap().is_none());
    assert!(refl.subschema(BUDGET).unwrap().is_none());
    assert!(AutomataCache::new(&d2, &d2)
        .subschema(BUDGET)
        .unwrap()
        .is_none());
}

#[test]
fn automata_budget_errors_are_never_cached() {
    let d1 = hard::cons_nextsib(3).source_dtd;
    let d2 = hard::cons_exptime(4).source_dtd;

    let cache = AutomataCache::new(&d1, &d2);
    let err = cache.subschema(1).unwrap_err();
    assert_eq!(err.budget, 1);
    assert_eq!(err.operation, "subschema check");

    // Retry with an adequate budget recomputes and completes…
    let verdict = cache.subschema(BUDGET).unwrap();
    assert!(verdict.is_some());
    // …and the resident verdict is budget-independent from then on.
    let from_memo = cache.subschema(1).unwrap();
    assert_eq!(format!("{verdict:?}"), format!("{from_memo:?}"));

    // Same discipline on the inclusion memo.
    let cache = AutomataCache::new(&d1, &d2);
    let err = cache.inclusion(1).unwrap_err();
    assert_eq!(err.budget, 1);
    assert_eq!(err.operation, "inclusion check");
    let verdict = cache.inclusion(BUDGET).unwrap();
    assert_eq!(cache.inclusion(1).unwrap(), verdict);
}

// ---- EngineContext ------------------------------------------------------

#[test]
fn engine_context_budget_retry_recomputes() {
    let ctx = EngineContext::new();
    let ce = hard::cons_exptime(6);

    // Consistency: a starved probe fails with a budget error…
    let err = ctx.consistent(&ce, 2).unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // …and the retry on the same context succeeds, proving the error was
    // not memoized anywhere behind the shared SatCaches.
    assert!(!ctx.consistent(&ce, BUDGET).unwrap().is_consistent());

    // Subschema: same discipline through the shared AutomataCache, and the
    // failed probe must not have cost a second compilation.
    let cn = hard::cons_nextsib(3);
    let err = ctx
        .subschema(&cn.source_dtd, &ce.source_dtd, 1)
        .unwrap_err();
    assert_eq!(err.budget, 1);
    assert!(ctx
        .subschema(&cn.source_dtd, &ce.source_dtd, BUDGET)
        .unwrap()
        .is_some());
    assert_eq!(ctx.stats().automata.misses, 1);
    assert_eq!(ctx.stats().automata.entries, 1);
}

#[test]
fn engine_context_abscons_agrees_with_uncached_procedure() {
    let ctx = EngineContext::new();
    // Value-free (SM°), so the structural procedure applies; every source
    // document fires an std with an unsatisfiable target side, so the
    // verdict is Violated.
    let narrow = hard::cons_exptime(3);
    let via_ctx = ctx.abscons_structural(&narrow, BUDGET);
    let fresh = xmlmap::core::abscons_structural(&narrow, BUDGET);
    match (via_ctx, fresh) {
        (Ok(Ok(a)), Ok(Ok(b))) => assert_eq!(a.holds(), b.holds()),
        (a, b) => panic!("context and fresh disagree: {a:?} vs {b:?}"),
    }
    // Repeat from the warm caches: same verdict, strictly more hits.
    let hits_before = ctx.stats().sat.hits;
    let again = ctx.abscons_structural(&narrow, BUDGET).unwrap().unwrap();
    assert!(!again.holds());
    assert!(ctx.stats().sat.hits > hits_before);
    assert_eq!(ctx.stats().sat.misses, ctx.stats().sat.entries);
}
