//! Cross-validation: the fast fragment algorithms against the bounded
//! brute-force oracles, on randomly generated instances.
//!
//! These tests are the strongest evidence that the reconstructed
//! algorithms (the PTIME absolute-consistency rigidity analysis of
//! Thm 6.3, the PTIME consistency of Fact 5.1, the chase, and the
//! syntactic composition of Thm 8.2) implement the paper's semantics: every
//! disagreement with exhaustive small-model search is a bug in one of them.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use xmlmap::core::bounded::{self, BoundedOutcome};
use xmlmap::gen::{MappingGenConfig, TreeGenConfig};
use xmlmap::prelude::*;

/// One shared engine context for the whole differential binary — the
/// production session pattern: every proptest case (and every test thread)
/// fetches compiled caches from here instead of hoisting its own per case.
fn ctx() -> &'static EngineContext {
    static CTX: std::sync::OnceLock<EngineContext> = std::sync::OnceLock::new();
    CTX.get_or_init(EngineContext::new)
}

/// Keeps the brute-force search space manageable: the mapping's DTDs must
/// generate few small shapes and few attribute slots.
fn small_enough(m: &Mapping, max_nodes: usize) -> bool {
    let shapes = bounded::tree_shapes(&m.source_dtd, max_nodes);
    if shapes.len() > 40 {
        return false;
    }
    shapes.iter().all(|s| bounded::attr_slot_count(s) <= 4)
        && bounded::tree_shapes(&m.target_dtd, max_nodes + 1)
            .iter()
            .all(|s| bounded::attr_slot_count(s) <= 4)
}

fn random_mapping(seed: u64) -> Option<Mapping> {
    let mut rng = StdRng::seed_from_u64(seed);
    let ds = xmlmap::gen::random_nr_dtd(2, 2, 0.5, &mut rng);
    let dt = xmlmap::gen::random_nr_dtd(2, 2, 0.5, &mut rng);
    xmlmap::gen::random_nr_mapping(
        &ds,
        &dt,
        &MappingGenConfig {
            stds: 2,
            depth: 2,
            branch_probability: 0.6,
        },
        &mut rng,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Thm 6.3's PTIME rigidity analysis agrees with the bounded oracle.
    #[test]
    fn abscons_ptime_vs_bounded_oracle(seed in any::<u64>()) {
        let Some(m) = random_mapping(seed) else { return Ok(()) };
        prop_assume!(small_enough(&m, 4));
        let Some(fast) = xmlmap::core::abscons_nr_ptime(&m) else { return Ok(()) };
        match bounded::abscons_violation_bounded(&m, 4, 6) {
            BoundedOutcome::Witness(w) => {
                // The oracle's target bound can be too small for genuine
                // solutions (mandatory skeletons grow with the DTD); the
                // chase adjudicates: a real violation is one the chase
                // fails on too.
                if canonical_solution(&m, &w).is_ok() {
                    return Ok(()); // bound artefact, not a violation
                }
                prop_assert!(
                    !fast.holds(),
                    "oracle found violation but rigidity analysis says OK\n{m}\nwitness:\n{w:?}"
                );
            }
            BoundedOutcome::ExhaustedBounds => {
                // No violation among small sources. If the fast procedure
                // claims a violation, it must be real: reproduce it with
                // the chase on SOME source (the analysis doesn't produce a
                // witness, so only sanity-check the direction on holds()).
                // A false "violated" would show up as the symmetric case
                // above on other seeds; here we only require that "holds"
                // answers are consistent with the oracle.
                let _ = fast;
            }
        }
    }

    /// Fact 5.1's PTIME consistency agrees with the general engine.
    #[test]
    fn cons_nr_ptime_vs_engine(seed in any::<u64>()) {
        let Some(m) = random_mapping(seed) else { return Ok(()) };
        let Some(fast) = xmlmap::core::consistent_nr_ptime(&m) else { return Ok(()) };
        let slow = xmlmap::core::consistent(&m, 2_000_000).unwrap();
        prop_assert_eq!(fast, slow.is_consistent(), "\n{}", m);
        // And the engine's own witnesses are genuine.
        if let ConsAnswer::Consistent { source, target } = slow {
            prop_assert!(m.is_solution(&source, &target), "\n{}", m);
        }
    }

    /// The chase (canonical solution) agrees with bounded solution search:
    /// chase success produces a verified solution; chase failure means no
    /// small solution exists.
    #[test]
    fn chase_vs_bounded_solutions(seed in any::<u64>()) {
        let Some(m) = random_mapping(seed) else { return Ok(()) };
        prop_assume!(small_enough(&m, 4));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        let source = xmlmap::gen::random_tree(
            &m.source_dtd,
            &TreeGenConfig { continue_probability: 0.4, value_pool: 2, max_nodes: 8 },
            &mut rng,
        );
        prop_assume!(bounded::attr_slot_count(&source) <= 5);
        match canonical_solution(&m, &source) {
            Ok(solution) => {
                prop_assert!(
                    m.is_solution(&source, &solution),
                    "chase output is not a solution\n{}\nsource:\n{:?}\nsolution:\n{:?}",
                    m, source, solution
                );
            }
            Err(xmlmap::core::ChaseError::OutsideFragment(_)) => {}
            Err(e) => {
                // No solution should exist, up to a generous bound.
                let found = bounded::solution_exists(&m, &source, 7);
                prop_assert!(
                    found.is_none(),
                    "chase failed ({e}) but a solution exists\n{}\nsource:\n{:?}\nsolution:\n{:?}",
                    m, source, found
                );
            }
        }
    }

    /// Thm 8.2: the syntactically composed mapping has the same solutions
    /// as the semantic composition, on sampled document pairs.
    #[test]
    fn syntactic_composition_vs_semantic(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Closed-class schemas: strict NR, star-only multiplicities.
        let ds = xmlmap::dtd::parse("root r\nr -> a*, b*\na @ v\nb @ w").unwrap();
        let dm = xmlmap::dtd::parse("root m\nm -> hub?, p*, q*\np @ x\nq @ y").unwrap();
        let dt = xmlmap::dtd::parse("root w\nw -> out*\nout @ u, t").unwrap();

        // Random Σ12 from a small catalogue.
        let cat12 = [
            "r/a(x) --> m/p(x)",
            "r/b(x) --> m/q(x)",
            "r/a(x) --> m[p(x), q(z)]",
            "r/a(x) --> m/hub",
            "r[a(x), b(y)] --> m[p(x), q(y)]",
        ];
        let cat23 = [
            "m/p(x) --> w/out(x, z)",
            "m[p(x), q(y)] --> w/out(x, y)",
            "m/hub --> w/out(z1, z2)",
            "m/q(y) --> w/out(y, y)",
        ];
        use rand::Rng as _;
        let pick = |rng: &mut StdRng, cat: &[&str], n: usize| -> Vec<Std> {
            (0..n).map(|_| Std::parse(cat[rng.gen_range(0..cat.len())]).unwrap()).collect()
        };
        let m12 = Mapping::new(ds.clone(), dm.clone(), pick(&mut rng, &cat12, 2));
        let m23 = Mapping::new(dm, dt, pick(&mut rng, &cat23, 2));
        let s12 = SkolemMapping::from_mapping(&m12).unwrap();
        let s23 = SkolemMapping::from_mapping(&m23).unwrap();
        let s13 = compose(&s12, &s23).unwrap();

        // Sample source and final documents.
        let t1 = xmlmap::gen::random_tree(
            &ds,
            &TreeGenConfig { continue_probability: 0.4, value_pool: 2, max_nodes: 5 },
            &mut rng,
        );
        let t3 = {
            let dt = xmlmap::dtd::parse("root w\nw -> out*\nout @ u, t").unwrap();
            xmlmap::gen::random_tree(
                &dt,
                &TreeGenConfig { continue_probability: 0.4, value_pool: 2, max_nodes: 5 },
                &mut rng,
            )
        };
        let semantic = ctx().composition_member(&m12, &m23, &t1, &t3, 7).is_some();
        let syntactic = s13.is_solution(&t1, &t3);
        prop_assert_eq!(
            semantic, syntactic,
            "Thm 8.2 violated\nM12:\n{}\nM23:\n{}\ncomposed stds:\n{}\nT1:\n{:?}\nT3:\n{:?}",
            m12, m23,
            s13.stds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join("\n"),
            t1, t3
        );
    }

    /// Skolemisation preserves semantics when every target variable is
    /// shared (no existentials — no function symbols introduced).
    #[test]
    fn skolemisation_conservative(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = xmlmap::dtd::parse("root r\nr -> a*\na @ v").unwrap();
        let dt = xmlmap::dtd::parse("root w\nw -> c*\nc @ u").unwrap();
        let m = Mapping::new(ds.clone(), dt.clone(),
            vec![Std::parse("r/a(x) --> w/c(x)").unwrap()]);
        let sk = SkolemMapping::from_mapping(&m).unwrap();
        let t1 = xmlmap::gen::random_tree(
            &ds, &TreeGenConfig { continue_probability: 0.5, value_pool: 2, max_nodes: 5 },
            &mut rng);
        let t2 = xmlmap::gen::random_tree(
            &dt, &TreeGenConfig { continue_probability: 0.5, value_pool: 2, max_nodes: 5 },
            &mut rng);
        prop_assert_eq!(m.is_solution(&t1, &t2), sk.is_solution(&t1, &t2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The hedge-automaton compilation of a DTD accepts exactly the
    /// conforming label structures (attributes are not modelled, so the
    /// DTD used for conformance here is attribute-free).
    #[test]
    fn dtd_automaton_equals_conformance(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let with_attrs = xmlmap::gen::random_nr_dtd(2, 3, 0.0, &mut rng);
        let automaton = xmlmap::automata::HedgeAutomaton::from_dtd(&with_attrs);
        // Random conforming documents are accepted…
        for _ in 0..5 {
            let t = xmlmap::gen::random_tree(
                &with_attrs,
                &TreeGenConfig { continue_probability: 0.5, value_pool: 1, max_nodes: 20 },
                &mut rng,
            );
            prop_assert!(automaton.accepts(&t), "automaton rejects a conforming tree");
        }
        // …and mutated documents agree with `conforms` either way.
        for _ in 0..5 {
            let mut t = xmlmap::gen::random_tree(
                &with_attrs,
                &TreeGenConfig { continue_probability: 0.5, value_pool: 1, max_nodes: 12 },
                &mut rng,
            );
            // Mutate: append a random-label child somewhere.
            use rand::Rng as _;
            let nodes: Vec<_> = t.nodes().collect();
            let at = nodes[rng.gen_range(0..nodes.len())];
            let labels: Vec<_> = with_attrs.alphabet().cloned().collect();
            let l = labels[rng.gen_range(0..labels.len())].clone();
            t.add_child(at, l, std::iter::empty::<(xmlmap::trees::Name, Value)>());
            prop_assert_eq!(automaton.accepts(&t), with_attrs.conforms(&t));
        }
    }

    /// Product automata decide joint conformance, and their witnesses
    /// conform to both DTDs.
    #[test]
    fn automaton_product_matches_joint_conformance(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d1 = xmlmap::gen::random_nr_dtd(1, 2, 0.0, &mut rng);
        let d2 = xmlmap::gen::random_nr_dtd(1, 2, 0.0, &mut rng);
        // The product rides the per-schema-pair cache, as in production
        // callers; a repeated call must hand back the memoized construction.
        let cache = ctx().automata_cache(&d1, &d2);
        let product = cache.product();
        prop_assert_eq!(cache.product().num_states, product.num_states);
        match product.witness() {
            Some(w) => {
                prop_assert!(d1.conforms(&w) && d2.conforms(&w));
            }
            None => {
                // Then no sampled document of d1 conforms to d2.
                for _ in 0..5 {
                    let t = xmlmap::gen::random_tree(
                        &d1,
                        &TreeGenConfig { continue_probability: 0.4, value_pool: 1, max_nodes: 10 },
                        &mut rng,
                    );
                    prop_assert!(!d2.conforms(&t), "product empty but joint tree exists");
                }
            }
        }
    }
}

/// Random *general* (non-NR) DTDs and full-featured patterns, for
/// validating the consistency engine beyond the nested-relational world.
mod general_engine {
    use super::*;
    use xmlmap::patterns::{Pattern, SeqOp, Var};

    fn arb_general_dtd() -> impl Strategy<Value = Dtd> {
        let bodies = prop_oneof![
            Just("a*"),
            Just("a, b?"),
            Just("a|b"),
            Just("(a|b)*"),
            Just("a, a"),
            Just("b+, a?"),
        ];
        let inner = prop_oneof![Just(""), Just("c?"), Just("c*"), Just("c, c"), Just("a?")];
        (bodies, inner).prop_map(|(rb, ab)| {
            xmlmap::dtd::Dtd::builder("r")
                .production("r", rb)
                .production("a", ab)
                .attrs("c", ["v"])
                .build()
                .unwrap()
        })
    }

    fn arb_feature_pattern() -> impl Strategy<Value = Pattern> {
        let leaf = prop_oneof![
            Just(Pattern::leaf("a", Vec::<Var>::new())),
            Just(Pattern::leaf("b", Vec::<Var>::new())),
            Just(Pattern::leaf("c", ["x"])),
            Just(Pattern::wildcard(Vec::<Var>::new())),
        ];
        let sub = leaf.prop_recursive(2, 8, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.child(q)),
                (inner.clone(), inner.clone()).prop_map(|(p, q)| p.descendant(q)),
                (inner.clone(), inner.clone(), any::<bool>()).prop_map(|(p, q, nx)| {
                    Pattern::leaf("r", Vec::<Var>::new()).seq(
                        vec![p, q],
                        vec![if nx { SeqOp::Next } else { SeqOp::Following }],
                    )
                }),
            ]
        });
        sub.prop_map(|body| match body.label {
            // Sequences built above are already rooted at r.
            xmlmap::patterns::LabelTest::Label(ref l) if l.as_str() == "r" => body,
            _ => Pattern::leaf("r", Vec::<Var>::new()).child(body),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The EXPTIME consistency engine vs. exhaustive small-model search
        /// on full-featured (⇓,⇒, wildcard) data-free mappings.
        #[test]
        fn engine_vs_bounded_on_general_mappings(
            ds in arb_general_dtd(),
            dt in arb_general_dtd(),
            src_pat in arb_feature_pattern(),
            tgt_pat in arb_feature_pattern(),
        ) {
            let m = Mapping::new(ds, dt, vec![Std::new(src_pat, tgt_pat)]);
            let ans = match xmlmap::core::consistent(&m, 2_000_000) {
                Ok(a) => a,
                Err(_) => return Ok(()), // budget blowup: skip
            };
            match ans {
                ConsAnswer::Consistent { source, target } => {
                    prop_assert!(
                        m.is_solution(&source, &target),
                        "engine witness fails verification\n{m}"
                    );
                }
                ConsAnswer::Inconsistent => {
                    // No small witness pair may exist.
                    let found = bounded::consistent_bounded(&m, 4, 4);
                    prop_assert!(
                        matches!(found, BoundedOutcome::ExhaustedBounds),
                        "engine says inconsistent but bounded search found a witness\n{m}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `subschema` agrees with document sampling: if D1 ⊆ D2, every sampled
    /// D1 document conforms to D2; otherwise the counterexample is genuine.
    #[test]
    fn subschema_vs_sampling(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d1 = xmlmap::gen::random_nr_dtd(2, 2, 0.0, &mut rng);
        let d2 = xmlmap::gen::random_nr_dtd(2, 2, 0.0, &mut rng);
        match ctx().subschema(&d1, &d2, 2_000_000) {
            Err(_) => {} // budget: skip
            Ok(None) => {
                for _ in 0..8 {
                    let t = xmlmap::gen::random_tree(
                        &d1,
                        &TreeGenConfig { continue_probability: 0.5, value_pool: 1, max_nodes: 15 },
                        &mut rng,
                    );
                    prop_assert!(
                        d2.conforms(&t),
                        "subschema claimed but a sampled document violates d2\n{d1}\n{d2}\n{t:?}"
                    );
                }
            }
            Ok(Some(xmlmap::automata::SubschemaViolation::Document(t))) => {
                prop_assert!(d1.conforms(&t), "counterexample must conform to d1");
                prop_assert!(!d2.conforms(&t), "counterexample must violate d2");
            }
            Ok(Some(xmlmap::automata::SubschemaViolation::AttributeMismatch { .. })) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Std::satisfied` implements Definition 3.1 exactly: a spec-level
    /// check built directly from `all_matches` on both sides must agree.
    #[test]
    fn std_satisfaction_matches_definition(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = xmlmap::dtd::parse("root r\nr -> a*, b*\na @ v\nb @ v, w").unwrap();
        let dt = xmlmap::dtd::parse("root w\nw -> c*\nc @ u, t").unwrap();
        let catalogue = [
            "r/a(x) --> w/c(x, z)",
            "r[a(x), b(y, u)] ; x = y --> w/c(x, u)",
            "r[a(x), a(y)] ; x != y --> w[c(x, z) ->* c(y, z)]",
            "r/b(x, y) --> w/c(x, z) ; z != y",
            "r[a(x) -> a(y)] --> w[c(x, q), c(y, q)]",
        ];
        use rand::Rng as _;
        let std = Std::parse(catalogue[rng.gen_range(0..catalogue.len())]).unwrap();
        let t1 = xmlmap::gen::random_tree(
            &ds,
            &TreeGenConfig { continue_probability: 0.5, value_pool: 2, max_nodes: 6 },
            &mut rng,
        );
        let t2 = xmlmap::gen::random_tree(
            &dt,
            &TreeGenConfig { continue_probability: 0.5, value_pool: 2, max_nodes: 6 },
            &mut rng,
        );

        // Spec: ∀ source match with α — ∃ target match extending the shared
        // bindings with α′.
        let shared: std::collections::BTreeSet<_> =
            std.shared_vars().into_iter().collect();
        let spec = xmlmap::patterns::all_matches(&t1, &std.source)
            .into_iter()
            .filter(|m| xmlmap::core::all_hold(&std.source_cond, m))
            .all(|m| {
                xmlmap::patterns::all_matches(&t2, &std.target)
                    .into_iter()
                    .any(|tm| {
                        shared.iter().all(|v| tm.get(v) == m.get(v))
                            && xmlmap::core::all_hold(&std.target_cond, &tm)
                    })
            });
        prop_assert_eq!(std.satisfied(&t1, &t2), spec, "std: {}\n{:?}\n{:?}", std, t1, t2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Two independent implementations of P⁺/P⁻ satisfiability — the
    /// type-fixpoint engine and the automata route (pattern compilation +
    /// product + inclusion against the union of negatives) — must agree.
    #[test]
    fn engine_vs_automata_satisfiability(seed in any::<u64>()) {
        use xmlmap::automata::{inclusion_counterexample, pattern_automaton, HedgeAutomaton};
        let mut rng = StdRng::seed_from_u64(seed);
        let d = xmlmap::dtd::parse(
            "root r\nr -> (a|b)*\na -> c?\nb -> c?, a?\nc @ v",
        ).unwrap();
        let catalogue = [
            "r/a", "r/b", "r//c(x)", "r/a/c(x)", "r[a -> b]", "r[b ->* a]",
            "r[a, b]", "r/_[c(x)]", "r/b/a",
        ];
        use rand::Rng as _;
        let mut pick = || xmlmap::patterns::parse(
            catalogue[rng.gen_range(0..catalogue.len())]).unwrap();
        let pos = [pick(), pick()];
        let neg = [pick()];

        // Engine route.
        let engine = xmlmap::patterns::satisfiable_with_negations(
            &d, &[&pos[0], &pos[1]], &[&neg[0]], 5_000_000,
        ).unwrap();

        // Automata route: DTD × A(pos…) ⊆ A(neg) ?  A counterexample is a
        // conforming tree matching all positives and no negative.
        let mut product = HedgeAutomaton::from_dtd(&d);
        for p in &pos {
            product = product.product(&pattern_automaton(&d, p));
        }
        let negatives = pattern_automaton(&d, &neg[0]);
        let alphabet: Vec<_> = d.alphabet().cloned().collect();
        let automata = inclusion_counterexample(&product, &negatives, &alphabet, 5_000_000)
            .expect("budget");

        prop_assert_eq!(
            engine.is_some(), automata.is_some(),
            "engine and automata disagree: pos={:?} neg={:?}",
            pos.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
            neg[0].to_string()
        );
        // Both witnesses check out against the evaluator (attribute-blind
        // automata witness needs attributes filled per the DTD).
        if let Some(w) = engine {
            prop_assert!(d.conforms(&w));
            for p in &pos {
                prop_assert!(xmlmap::patterns::matches(&w, p));
            }
            prop_assert!(!xmlmap::patterns::matches(&w, &neg[0]));
        }
    }
}
