//! End-to-end tests of the `xmlmap` command-line tool.

use std::io::Write;
use std::process::Command;

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("xmlmap-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Fixture { dir }
    }

    fn file(&self, name: &str, contents: &str) -> String {
        let path = self.dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn xmlmap(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xmlmap"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const COPY_MAP: &str = "
[source]
root r
r -> a*
a @ v
[target]
root r
r -> b*
b @ w
[stds]
r/a(x) --> r/b(x)
";

#[test]
fn validate_accepts_and_rejects() {
    let fx = Fixture::new("validate");
    let dtd = fx.file("d.dtd", "root r\nr -> a*\na @ v");
    let good = fx.file("good.xml", r#"<r><a v="1"/></r>"#);
    let bad = fx.file("bad.xml", r#"<r><z/></r>"#);

    let (code, stdout, _) = xmlmap(&["validate", &dtd, &good]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("valid"));

    let (code, stdout, _) = xmlmap(&["validate", &dtd, &bad]);
    assert_eq!(code, 1);
    assert!(stdout.contains("invalid"));
}

#[test]
fn match_prints_valuations() {
    let fx = Fixture::new("match");
    let doc = fx.file("doc.xml", r#"<r><a v="1"/><a v="2"/></r>"#);
    let (code, stdout, _) = xmlmap(&["match", "r/a(x)", &doc]);
    assert_eq!(code, 0);
    assert!(stdout.contains("x=1"));
    assert!(stdout.contains("x=2"));
    assert!(stdout.contains("2 match(es)"));

    let (code, stdout, _) = xmlmap(&["match", "r/zz(x)", &doc]);
    assert_eq!(code, 1);
    assert!(stdout.contains("0 match(es)"));
}

#[test]
fn check_chase_and_certain() {
    let fx = Fixture::new("chase");
    let map = fx.file("copy.map", COPY_MAP);
    let src = fx.file("src.xml", r#"<r><a v="1"/><a v="2"/></r>"#);
    let good = fx.file("good.xml", r#"<r><b w="1"/><b w="2"/></r>"#);
    let bad = fx.file("bad.xml", r#"<r><b w="1"/></r>"#);

    let (code, _, _) = xmlmap(&["check", &map, &src, &good]);
    assert_eq!(code, 0);
    let (code, _, _) = xmlmap(&["check", &map, &src, &bad]);
    assert_eq!(code, 1);

    let (code, stdout, _) = xmlmap(&["chase", &map, &src]);
    assert_eq!(code, 0);
    assert!(stdout.contains(r#"<b w="1"/>"#), "{stdout}");
    assert!(stdout.contains(r#"<b w="2"/>"#));

    let (code, stdout, _) = xmlmap(&["certain", &map, &src, "r/b(x)"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("2 certain answer(s)"));
}

#[test]
fn consistent_and_abscons() {
    let fx = Fixture::new("cons");
    let map = fx.file("copy.map", COPY_MAP);
    let (code, stdout, _) = xmlmap(&["consistent", &map]);
    assert_eq!(code, 0);
    assert!(stdout.contains("consistent"));

    let (code, stdout, _) = xmlmap(&["abscons", &map]);
    assert_eq!(code, 0);
    assert!(stdout.contains("absolutely consistent"));

    // The §6 counterexample through the CLI.
    let narrow = fx.file(
        "narrow.map",
        "
[source]
root r
r -> a*
a @ v
[target]
root r
r -> a
a @ v
[stds]
r/a(x) --> r/a(x)
",
    );
    let (code, stdout, _) = xmlmap(&["abscons", &narrow]);
    assert_eq!(code, 1);
    assert!(stdout.contains("NOT absolutely consistent"), "{stdout}");
    // …but still consistent.
    let (code, _, _) = xmlmap(&["consistent", &narrow]);
    assert_eq!(code, 0);
}

#[test]
fn compose_prints_stds() {
    let fx = Fixture::new("compose");
    let m12 = fx.file(
        "m12.map",
        "
[source]
root r
r -> a*
a @ v
[target]
root m
m -> b*
b @ w
[stds]
r/a(x) --> m/b(x)
",
    );
    let m23 = fx.file(
        "m23.map",
        "
[source]
root m
m -> b*
b @ w
[target]
root w
w -> c*
c @ u
[stds]
m/b(x) --> w/c(x)
",
    );
    let (code, stdout, _) = xmlmap(&["compose", &m12, &m23]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("1 stds"), "{stdout}");
    assert!(stdout.contains("-->"), "{stdout}");
}

#[test]
fn usage_errors() {
    let (code, _, stderr) = xmlmap(&["bogus"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"));

    let (code, _, stderr) = xmlmap(&["validate", "/nonexistent.dtd", "/nonexistent.xml"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("cannot read"));
}
