//! End-to-end tests of the `xmlmap` command-line tool.

use std::io::Write;
use std::process::Command;

struct Fixture {
    dir: std::path::PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("xmlmap-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Fixture { dir }
    }

    fn file(&self, name: &str, contents: &str) -> String {
        let path = self.dir.join(name);
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(contents.as_bytes()).unwrap();
        path.to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn xmlmap(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_xmlmap"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

const COPY_MAP: &str = "
[source]
root r
r -> a*
a @ v
[target]
root r
r -> b*
b @ w
[stds]
r/a(x) --> r/b(x)
";

#[test]
fn validate_accepts_and_rejects() {
    let fx = Fixture::new("validate");
    let dtd = fx.file("d.dtd", "root r\nr -> a*\na @ v");
    let good = fx.file("good.xml", r#"<r><a v="1"/></r>"#);
    let bad = fx.file("bad.xml", r#"<r><z/></r>"#);

    let (code, stdout, _) = xmlmap(&["validate", &dtd, &good]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("valid"));

    let (code, stdout, _) = xmlmap(&["validate", &dtd, &bad]);
    assert_eq!(code, 1);
    assert!(stdout.contains("invalid"));
}

#[test]
fn match_prints_valuations() {
    let fx = Fixture::new("match");
    let doc = fx.file("doc.xml", r#"<r><a v="1"/><a v="2"/></r>"#);
    let (code, stdout, _) = xmlmap(&["match", "r/a(x)", &doc]);
    assert_eq!(code, 0);
    assert!(stdout.contains("x=1"));
    assert!(stdout.contains("x=2"));
    assert!(stdout.contains("2 match(es)"));

    let (code, stdout, _) = xmlmap(&["match", "r/zz(x)", &doc]);
    assert_eq!(code, 1);
    assert!(stdout.contains("0 match(es)"));
}

#[test]
fn check_chase_and_certain() {
    let fx = Fixture::new("chase");
    let map = fx.file("copy.map", COPY_MAP);
    let src = fx.file("src.xml", r#"<r><a v="1"/><a v="2"/></r>"#);
    let good = fx.file("good.xml", r#"<r><b w="1"/><b w="2"/></r>"#);
    let bad = fx.file("bad.xml", r#"<r><b w="1"/></r>"#);

    let (code, _, _) = xmlmap(&["check", &map, &src, &good]);
    assert_eq!(code, 0);
    let (code, _, _) = xmlmap(&["check", &map, &src, &bad]);
    assert_eq!(code, 1);

    let (code, stdout, _) = xmlmap(&["chase", &map, &src]);
    assert_eq!(code, 0);
    assert!(stdout.contains(r#"<b w="1"/>"#), "{stdout}");
    assert!(stdout.contains(r#"<b w="2"/>"#));

    let (code, stdout, _) = xmlmap(&["certain", &map, &src, "r/b(x)"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("2 certain answer(s)"));
}

#[test]
fn consistent_and_abscons() {
    let fx = Fixture::new("cons");
    let map = fx.file("copy.map", COPY_MAP);
    let (code, stdout, _) = xmlmap(&["consistent", &map]);
    assert_eq!(code, 0);
    assert!(stdout.contains("consistent"));

    let (code, stdout, _) = xmlmap(&["abscons", &map]);
    assert_eq!(code, 0);
    assert!(stdout.contains("absolutely consistent"));

    // The §6 counterexample through the CLI.
    let narrow = fx.file(
        "narrow.map",
        "
[source]
root r
r -> a*
a @ v
[target]
root r
r -> a
a @ v
[stds]
r/a(x) --> r/a(x)
",
    );
    let (code, stdout, _) = xmlmap(&["abscons", &narrow]);
    assert_eq!(code, 1);
    assert!(stdout.contains("NOT absolutely consistent"), "{stdout}");
    // …but still consistent.
    let (code, _, _) = xmlmap(&["consistent", &narrow]);
    assert_eq!(code, 0);
}

#[test]
fn compose_prints_stds() {
    let fx = Fixture::new("compose");
    let m12 = fx.file(
        "m12.map",
        "
[source]
root r
r -> a*
a @ v
[target]
root m
m -> b*
b @ w
[stds]
r/a(x) --> m/b(x)
",
    );
    let m23 = fx.file(
        "m23.map",
        "
[source]
root m
m -> b*
b @ w
[target]
root w
w -> c*
c @ u
[stds]
m/b(x) --> w/c(x)
",
    );
    let (code, stdout, _) = xmlmap(&["compose", &m12, &m23]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("1 stds"), "{stdout}");
    assert!(stdout.contains("-->"), "{stdout}");
}

/// Writes the standard batch fixture set and returns the jobfile path.
fn batch_fixture(fx: &Fixture) -> String {
    fx.file("copy.map", COPY_MAP);
    fx.file("src.xml", r#"<r><a v="1"/><a v="2"/></r>"#);
    fx.file("tgt.xml", r#"<r><b w="1"/><b w="2"/></r>"#);
    fx.file("d.dtd", "root r\nr -> a*\na @ v");
    fx.file(
        "jobs.txt",
        "# batch fixture\n\
         member copy.map src.xml tgt.xml\n\
         consistent copy.map\n\
         abscons copy.map\n\
         subschema d.dtd d.dtd\n",
    )
}

#[test]
fn batch_runs_a_jobfile() {
    let fx = Fixture::new("batch");
    let jobs = batch_fixture(&fx);

    let (code, stdout, stderr) = xmlmap(&["batch", &jobs, "--stats"]);
    assert_eq!(code, 0, "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stdout.contains("[1] member copy.map src.xml tgt.xml: solution"),
        "{stdout}"
    );
    assert!(
        stdout.contains("[4] subschema d.dtd d.dtd: subschema holds"),
        "{stdout}"
    );
    assert!(
        stdout.ends_with("-- 4 job(s): 4 yes, 0 no, 0 failed\n"),
        "{stdout}"
    );
    // --stats goes to stderr, never into the deterministic stdout.
    assert!(stderr.contains("engine cache stats"), "{stderr}");
    assert!(stderr.contains("misses"), "{stderr}");
    assert!(!stdout.contains("engine cache stats"));
}

#[test]
fn batch_worker_counts_produce_identical_stdout() {
    let fx = Fixture::new("batch-workers");
    let jobs = batch_fixture(&fx);

    let (code_default, out_default, _) = xmlmap(&["batch", &jobs]);
    let (code_1, out_1, _) = xmlmap(&["batch", &jobs, "--workers", "1"]);
    let (code_4, out_4, _) = xmlmap(&["batch", &jobs, "--workers", "4"]);
    assert_eq!((code_default, code_1, code_4), (0, 0, 0));
    assert_eq!(
        out_1, out_default,
        "--workers 1 must match the default worker count"
    );
    assert_eq!(
        out_4, out_default,
        "--workers 4 must match the default worker count"
    );
}

#[test]
fn batch_malformed_jobfile_exits_2_with_per_line_errors() {
    let fx = Fixture::new("batch-malformed");
    fx.file("copy.map", COPY_MAP);
    let jobs = fx.file(
        "jobs.txt",
        "consistent copy.map\n\
         frobnicate copy.map\n\
         consistent missing.map\n\
         subschema lonely.dtd\n",
    );

    let (code, stdout, stderr) = xmlmap(&["batch", &jobs]);
    assert_eq!(
        code, 2,
        "malformed jobfiles are usage errors\nstderr: {stderr}"
    );
    assert_eq!(stdout, "", "no job may run when the jobfile is malformed");
    assert!(stderr.contains("3 malformed job(s)"), "{stderr}");
    assert!(
        stderr.contains("line 2") && stderr.contains("unknown operation"),
        "{stderr}"
    );
    assert!(
        stderr.contains("line 3") && stderr.contains("cannot read"),
        "{stderr}"
    );
    assert!(
        stderr.contains("line 4") && stderr.contains("wrong number of arguments"),
        "{stderr}"
    );
}

#[test]
fn batch_failed_job_exits_1_and_spares_the_rest() {
    let fx = Fixture::new("batch-failed");
    fx.file("copy.map", COPY_MAP);
    // Data comparisons make CONS undecidable (Thm 5.4): a clean,
    // deterministic per-job failure independent of any budget.
    fx.file(
        "cmp.map",
        "
[source]
root r
r -> a*
a @ v
[target]
root r
r -> b*
b @ w
[stds]
r[a(x), a(y)] ; x != y --> r/b(x)
",
    );
    let jobs = fx.file(
        "jobs.txt",
        "consistent copy.map\n\
         consistent cmp.map\n\
         abscons copy.map\n",
    );

    let (code, stdout, _) = xmlmap(&["batch", &jobs]);
    assert_eq!(
        code, 1,
        "a failed job must surface in the exit status\n{stdout}"
    );
    assert!(
        stdout.contains("[2] consistent cmp.map: error:"),
        "{stdout}"
    );
    assert!(
        stdout.ends_with("-- 3 job(s): 2 yes, 0 no, 1 failed\n"),
        "{stdout}"
    );
}

#[test]
fn batch_disk_cache_second_run_compiles_nothing() {
    let fx = Fixture::new("batch-disk");
    let jobs = batch_fixture(&fx);
    let cache = fx.dir.join("cache");
    let cache = cache.to_string_lossy();

    let (code, out_cold, err_cold) = xmlmap(&["batch", &jobs, "--cache-dir", &cache, "--stats"]);
    assert_eq!(code, 0, "{err_cold}");
    assert!(
        !err_cold.contains("-- totals: 0 compiled"),
        "cold run must compile: {err_cold}"
    );
    assert!(err_cold.contains("loaded from disk"), "{err_cold}");

    // Second process, same directory: every artifact comes off disk.
    let (code, out_warm, err_warm) = xmlmap(&["batch", &jobs, "--cache-dir", &cache, "--stats"]);
    assert_eq!(code, 0, "{err_warm}");
    assert_eq!(out_warm, out_cold, "warm run must be byte-identical");
    assert!(
        err_warm.contains("-- totals: 0 compiled"),
        "warm run must not compile: {err_warm}"
    );
}

#[test]
fn batch_disk_cache_survives_corrupt_artifacts() {
    let fx = Fixture::new("batch-disk-corrupt");
    let jobs = batch_fixture(&fx);
    let cache_dir = fx.dir.join("cache");
    let cache = cache_dir.to_string_lossy().into_owned();

    let (code, out_cold, _) = xmlmap(&["batch", &jobs, "--cache-dir", &cache, "--stats"]);
    assert_eq!(code, 0);

    // Truncate every stored artifact to garbage.
    let mut damaged = 0;
    for entry in std::fs::read_dir(&cache_dir).unwrap() {
        let path = entry.unwrap().path();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        damaged += 1;
    }
    assert!(damaged > 0, "the cold run must have persisted artifacts");

    let (code, out_warm, err_warm) = xmlmap(&["batch", &jobs, "--cache-dir", &cache, "--stats"]);
    assert_eq!(
        code, 0,
        "corrupt artifacts must not fail the run: {err_warm}"
    );
    assert_eq!(out_warm, out_cold, "results are unaffected by corruption");
    assert!(
        err_warm.contains("unusable disk artifacts"),
        "corruption is diagnosed in the stats: {err_warm}"
    );
    assert!(
        !err_warm.contains("-- totals: 0 compiled"),
        "corrupt artifacts force recompilation: {err_warm}"
    );
}

#[test]
fn batch_cache_budget_bounds_memory_without_changing_results() {
    let fx = Fixture::new("batch-budget");
    let jobs = batch_fixture(&fx);

    let (code_free, out_free, _) = xmlmap(&["batch", &jobs, "--stats"]);
    let (code_tight, out_tight, err_tight) =
        xmlmap(&["batch", &jobs, "--cache-budget", "1K", "--stats"]);
    assert_eq!((code_free, code_tight), (0, 0), "{err_tight}");
    assert_eq!(
        out_tight, out_free,
        "a bounded context must return byte-identical results"
    );
    assert!(err_tight.contains("budget 1000"), "{err_tight}");

    let (code, _, stderr) = xmlmap(&["batch", &jobs, "--cache-budget", "lots"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("not a byte count"), "{stderr}");
}

#[test]
fn batch_usage_errors() {
    let (code, _, stderr) = xmlmap(&["batch"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"), "{stderr}");

    let fx = Fixture::new("batch-usage");
    let jobs = batch_fixture(&fx);
    let (code, _, stderr) = xmlmap(&["batch", &jobs, "--workers", "lots"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("not a number"), "{stderr}");
}

#[test]
fn usage_errors() {
    let (code, _, stderr) = xmlmap(&["bogus"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"));

    let (code, _, stderr) = xmlmap(&["validate", "/nonexistent.dtd", "/nonexistent.xml"]);
    assert_eq!(code, 2);
    assert!(stderr.contains("cannot read"));
}
