//! `xmlmap` — command-line front end for the schema-mapping toolkit.
//!
//! ```text
//! xmlmap validate  <dtd-file> <xml-file>         check T ⊨ D
//! xmlmap match     <pattern> <xml-file>          evaluate π(T)
//! xmlmap check     <mapping-file> <src> <tgt>    (T,T') ∈ ⟦M⟧ ?
//! xmlmap chase     <mapping-file> <src>          print a canonical solution
//! xmlmap delta     <mapping-file> <src> <updatefile> [--dump-source FILE]
//!                                                incremental chase: apply an
//!                                                update script, print the
//!                                                final canonical solution
//! xmlmap certain   <mapping-file> <src> <query>  certain answers
//! xmlmap consistent <mapping-file>               CONS(σ)
//! xmlmap abscons   <mapping-file>                ABSCONS(σ)
//! xmlmap compose   <mapping-file> <mapping-file> syntactic composition
//! xmlmap subschema <dtd-file> <dtd-file>         every D1 doc conforms to D2?
//! xmlmap stream    <dtd-file> [--pattern P] [--stats] <xml-file|->
//!                                                O(depth) streaming validation
//! xmlmap stream    --chase <mapping-file> [--stats] <xml-file|->
//!                                                streaming chase: canonical
//!                                                solution without the tree
//! xmlmap batch     <jobfile> [--workers N] [--stats]
//!                  [--cache-budget BYTES] [--cache-dir DIR]
//!                                                run a job list in parallel
//! xmlmap serve     <socket> [--tcp] [--workers N] [--deadline-ms T]
//!                  [--queue N] [--root DIR]
//!                  [--cache-budget BYTES] [--cache-dir DIR]
//!                                                long-lived request daemon
//! xmlmap client    <socket> [jobfile] [--tcp] [--job LINE]... [--stats]
//!                  [--deadline-ms T] [--wait-ms N]
//!                                                drive a running daemon
//! ```
//!
//! Mapping files use the `[source]`/`[target]`/`[stds]` format of
//! `Mapping::parse`; exit status is 0 for "yes" answers, 1 for "no",
//! 2 for usage or input errors.
//!
//! `stream` validates a document against a DTD — and, with `--pattern`,
//! decides pattern membership in the same single pass — in O(depth)
//! memory: the document is read as a byte stream (from a file, or stdin
//! when the operand is `-`) and never materialised as a tree, so it
//! works on documents far larger than memory. Patterns must lie in the
//! streamable downward fragment (child `/`, descendant `//`, wildcard,
//! within-tuple repeated variables); sibling-order operators and
//! cross-node variable joins are rejected with a diagnostic pointing at
//! the arena evaluator (`xmlmap match`). Exit status 0 = valid (and
//! matching), 1 = invalid or non-matching, 2 = parse/usage errors.
//!
//! `stream --chase` runs the *streaming chase*: the same single pass
//! enumerates std firings (one valuation enumerator per std) and chases
//! them into the canonical solution, printing the reduced target XML —
//! byte-identical to `xmlmap chase` on the same inputs — in
//! O(depth + firings) memory, never materialising the source tree.
//! Every std source pattern must lie in the streamable fragment; with
//! `--stats`, firing/live-valuation/depth counters go to stderr. For `batch` (jobfile syntax:
//! `xmlmap::core::batch::parse_jobfile`), exit status is 0 when every job
//! completed, 1 when some job failed, 2 for usage/jobfile errors; jobs run
//! on `--workers` threads (default: the available parallelism) over one
//! shared [`EngineContext`], and `--stats` prints the per-cache
//! hit/miss/compile-time counters to stderr. `--cache-budget` bounds the
//! bytes of resident compiled artifacts (suffixes `K`/`M`/`G` accepted),
//! evicting least-recently-used entries past the limit; `--cache-dir`
//! attaches a persistent compiled-artifact store so a later run against
//! the same schemas skips compilation entirely.
//!
//! `delta` opens an incremental-chase session (`xmlmap::core::chase::
//! delta`) over the source document, applies the updatefile — one op per
//! line: `insert <path> <pos> <xml>`, `delete <path>`, `settext <path>
//! <attr> <value>`, with `/`-separated child-index paths and `.` for the
//! root — re-matching only the stds whose compiled plans can reach each
//! edited region, and prints the final reduced solution: the exact bytes
//! `xmlmap chase` prints for the mutated document. `--dump-source FILE`
//! additionally writes the mutated source XML (for differential checks).
//! Exit status mirrors `chase`: 0 with a solution, 1 without.
//!
//! `serve` keeps one shared context alive across any number of requests:
//! it listens on a unix socket (or, with `--tcp`, a TCP address), fans
//! requests — job lines in the batch grammar, plus `STATS` and
//! `PING [ms]` — over a fixed worker pool, and answers with JSON frames
//! (wire format: `xmlmap::core::serve`). SIGTERM/SIGINT drain in-flight
//! requests, flush the artifact store, and exit 0. `client` connects,
//! pipelines a jobfile (and/or `--job` lines), and prints responses in
//! the exact `batch` output format — byte-equivalent for the same
//! jobfile; `--stats` additionally fetches the daemon's `STATS` snapshot
//! and prints the JSON to stderr.
//!
//! [`EngineContext`]: xmlmap::core::EngineContext

use std::process::ExitCode;
use xmlmap::core::EngineContext;
use xmlmap::prelude::*;

const BUDGET: usize = 50_000_000;

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_tree(path: &str) -> Result<Tree, String> {
    xmlmap::trees::xml::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn load_mapping(path: &str) -> Result<Mapping, String> {
    Mapping::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix (decimal).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, scale) = match s.char_indices().last() {
        Some((i, 'K' | 'k')) => (&s[..i], 1_000),
        Some((i, 'M' | 'm')) => (&s[..i], 1_000_000),
        Some((i, 'G' | 'g')) => (&s[..i], 1_000_000_000),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * scale)
        .map_err(|_| format!("`{s}` is not a byte count (try 64M, 2G, 1000000)"))
}

/// Prints the engine-cache counter block to stderr — shared by `batch`
/// (`--stats`, on every exit path) and `serve` (at drain), so failed runs
/// stay as diagnosable as clean ones.
fn print_engine_stats(ctx: &EngineContext, heading: &str) {
    let snapshot = ctx.stats();
    eprintln!("-- engine cache stats ({heading})");
    eprintln!("{snapshot}");
    eprintln!(
        "-- totals: {} compiled, {} loaded from disk",
        snapshot.total_compiled(),
        snapshot.total_disk_hits()
    );
}

/// Builds an [`EngineContext`] from the shared `--cache-budget` /
/// `--cache-dir` options.
fn build_context(budget: Option<u64>, cache_dir: Option<&str>) -> Result<EngineContext, String> {
    let mut ctx = EngineContext::new();
    if let Some(b) = budget {
        ctx = ctx.with_memory_budget(b);
    }
    if let Some(dir) = cache_dir {
        ctx = ctx
            .with_disk_cache(dir)
            .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
    }
    Ok(ctx)
}

/// Runs a jobfile over a shared [`EngineContext`] on `--workers` threads.
/// The context is built here — `--cache-budget` and `--cache-dir` shape it.
fn run_batch_command(args: &[&str]) -> Result<bool, String> {
    let mut jobfile: Option<&str> = None;
    let mut workers = xmlmap::core::batch::default_workers();
    let mut stats = false;
    let mut budget: Option<u64> = None;
    let mut cache_dir: Option<&str> = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--workers" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--workers needs a number".to_string())?;
                workers = n
                    .parse::<usize>()
                    .map_err(|_| format!("--workers: `{n}` is not a number"))?;
            }
            "--stats" => stats = true,
            "--cache-budget" => {
                let b = it
                    .next()
                    .ok_or_else(|| "--cache-budget needs a byte count".to_string())?;
                budget = Some(parse_bytes(b).map_err(|e| format!("--cache-budget: {e}"))?);
            }
            "--cache-dir" => {
                cache_dir = Some(
                    *it.next()
                        .ok_or_else(|| "--cache-dir needs a directory".to_string())?,
                );
            }
            _ if jobfile.is_none() => jobfile = Some(arg),
            _ => return Err(format!("batch: unexpected argument `{arg}`")),
        }
    }
    let jobfile = jobfile.ok_or_else(|| {
        "usage: xmlmap batch <jobfile> [--workers N] [--stats] \
         [--cache-budget BYTES] [--cache-dir DIR]"
            .to_string()
    })?;
    let ctx = build_context(budget, cache_dir)?;
    // The counter block prints on *every* exit path past this point —
    // exit 1 (failed jobs) and exit 2 (malformed jobfile) included — so a
    // failed batch is still diagnosable from its cache behaviour.
    let outcome = run_batch_jobs(&ctx, jobfile, workers);
    if stats {
        print_engine_stats(&ctx, &format!("{workers} workers"));
    }
    outcome
}

/// The jobfile-to-rendered-results part of `batch`, separated so stats
/// printing wraps all of its exit paths.
fn run_batch_jobs(ctx: &EngineContext, jobfile: &str, workers: usize) -> Result<bool, String> {
    let text = read(jobfile)?;
    let dir = std::path::Path::new(jobfile)
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_default();
    let jobs = xmlmap::core::parse_jobfile(&text, &dir).map_err(|errors| {
        let mut msg = format!("{jobfile}: {} malformed job(s)", errors.len());
        for e in &errors {
            msg.push_str(&format!("\n  {e}"));
        }
        msg
    })?;
    let results = xmlmap::core::run_batch(ctx, &jobs, workers);
    ctx.flush_disk_cache();
    print!("{}", xmlmap::core::render_batch(&jobs, &results));
    Ok(results
        .iter()
        .all(|r| !matches!(r, xmlmap::core::JobResult::Failed { .. })))
}

/// Registers SIGTERM/SIGINT handlers that raise the daemon's shutdown
/// flag (a single atomic store — async-signal-safe). Pure-std FFI against
/// the platform `signal(2)`; the build has no `libc` crate.
#[cfg(unix)]
fn install_signal_handlers(handle: xmlmap::core::ShutdownHandle) {
    use std::sync::OnceLock;
    static HANDLE: OnceLock<xmlmap::core::ShutdownHandle> = OnceLock::new();
    extern "C" fn on_signal(_signum: i32) {
        if let Some(h) = HANDLE.get() {
            h.raise();
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let _ = HANDLE.set(handle);
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers(_handle: xmlmap::core::ShutdownHandle) {}

/// `xmlmap serve <socket>` — the long-lived daemon over one context.
fn run_serve_command(args: &[&str]) -> Result<bool, String> {
    let mut socket: Option<&str> = None;
    let mut tcp = false;
    let mut cfg = xmlmap::core::ServeConfig::default();
    let mut budget: Option<u64> = None;
    let mut cache_dir: Option<&str> = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            let n = it.next().ok_or_else(|| format!("{flag} needs a number"))?;
            n.parse::<u64>()
                .map_err(|_| format!("{flag}: `{n}` is not a number"))
        };
        match arg {
            "--tcp" => tcp = true,
            "--workers" => cfg.workers = num("--workers")? as usize,
            "--deadline-ms" => cfg.deadline_ms = num("--deadline-ms")?,
            "--queue" => cfg.queue_depth = num("--queue")? as usize,
            "--root" => {
                cfg.root = std::path::PathBuf::from(
                    *it.next()
                        .ok_or_else(|| "--root needs a directory".to_string())?,
                );
            }
            "--cache-budget" => {
                let b = it
                    .next()
                    .ok_or_else(|| "--cache-budget needs a byte count".to_string())?;
                budget = Some(parse_bytes(b).map_err(|e| format!("--cache-budget: {e}"))?);
            }
            "--cache-dir" => {
                cache_dir = Some(
                    *it.next()
                        .ok_or_else(|| "--cache-dir needs a directory".to_string())?,
                );
            }
            _ if socket.is_none() => socket = Some(arg),
            _ => return Err(format!("serve: unexpected argument `{arg}`")),
        }
    }
    let socket = socket.ok_or_else(|| {
        "usage: xmlmap serve <socket> [--tcp] [--workers N] [--deadline-ms T] [--queue N] \
         [--root DIR] [--cache-budget BYTES] [--cache-dir DIR]"
            .to_string()
    })?;
    let endpoint = xmlmap::core::Endpoint::parse(socket, tcp)?;
    let ctx = build_context(budget, cache_dir)?;
    let shutdown = xmlmap::core::ShutdownHandle::new();
    install_signal_handlers(shutdown.clone());
    eprintln!(
        "xmlmap serve: listening on {endpoint} ({} workers, deadline {}, root {})",
        cfg.workers.max(1),
        if cfg.deadline_ms == 0 {
            "none".to_string()
        } else {
            format!("{}ms", cfg.deadline_ms)
        },
        cfg.root.display()
    );
    let summary =
        xmlmap::core::serve(&endpoint, &ctx, &cfg, &shutdown).map_err(|e| format!("serve: {e}"))?;
    eprintln!("xmlmap serve: drained — {summary}");
    print_engine_stats(&ctx, &format!("serve, {} workers", cfg.workers.max(1)));
    Ok(true)
}

/// `xmlmap client <socket>` — drive a running daemon with a jobfile
/// and/or `--job` lines, printing responses in the `batch` format.
fn run_client_command(args: &[&str]) -> Result<bool, String> {
    let mut socket: Option<&str> = None;
    let mut jobfile: Option<&str> = None;
    let mut tcp = false;
    let mut stats = false;
    let mut deadline_ms = 0u64;
    let mut wait_ms = 5_000u64;
    let mut extra_jobs: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--tcp" => tcp = true,
            "--stats" => stats = true,
            "--job" => {
                extra_jobs.push(
                    it.next()
                        .ok_or_else(|| "--job needs a job line".to_string())?
                        .to_string(),
                );
            }
            "--deadline-ms" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--deadline-ms needs a number".to_string())?;
                deadline_ms = n
                    .parse::<u64>()
                    .map_err(|_| format!("--deadline-ms: `{n}` is not a number"))?;
            }
            "--wait-ms" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--wait-ms needs a number".to_string())?;
                wait_ms = n
                    .parse::<u64>()
                    .map_err(|_| format!("--wait-ms: `{n}` is not a number"))?;
            }
            _ if socket.is_none() => socket = Some(arg),
            _ if jobfile.is_none() => jobfile = Some(arg),
            _ => return Err(format!("client: unexpected argument `{arg}`")),
        }
    }
    let socket = socket.ok_or_else(|| {
        "usage: xmlmap client <socket> [jobfile] [--tcp] [--job LINE]... [--stats] \
         [--deadline-ms T] [--wait-ms N]"
            .to_string()
    })?;
    let endpoint = xmlmap::core::Endpoint::parse(socket, tcp)?;
    // Job lines: the jobfile's (filtered exactly like `batch` filters
    // them, so the rendering is byte-equivalent), then any `--job` lines.
    let mut lines: Vec<String> = Vec::new();
    if let Some(path) = jobfile {
        for raw in read(path)?.lines() {
            let line = raw.trim();
            if !line.is_empty() && !line.starts_with('#') {
                lines.push(line.to_string());
            }
        }
    }
    lines.extend(extra_jobs);
    let mut client = xmlmap::core::ServeClient::connect_with_retry(
        &endpoint,
        std::time::Duration::from_millis(wait_ms),
    )
    .map_err(|e| format!("client: cannot connect to {endpoint}: {e}"))?;
    // Windowed pipelining: keep up to `WINDOW` requests in flight so the
    // daemon's worker pool sees real concurrency from one connection,
    // while response frames can never overfill the socket buffer.
    const WINDOW: usize = 32;
    let total = lines.len();
    let mut results: Vec<Option<xmlmap::core::JobResult>> = vec![None; total];
    let (mut sent, mut received) = (0usize, 0usize);
    while received < total {
        while sent < total && sent - received < WINDOW {
            client
                .send(&lines[sent], deadline_ms)
                .map_err(|e| format!("client: send failed: {e}"))?;
            sent += 1;
        }
        let response = client.recv().map_err(|e| format!("client: {e}"))?;
        let id = response.id as usize;
        if id == 0 || id > total || results[id - 1].is_some() {
            return Err(format!("client: unexpected response id {id}"));
        }
        results[id - 1] = Some(response.result);
        received += 1;
    }
    let labeled: Vec<(String, xmlmap::core::JobResult)> = lines
        .into_iter()
        .zip(results.into_iter().map(|r| r.expect("all ids received")))
        .collect();
    print!("{}", xmlmap::core::render_results(&labeled));
    if stats {
        let snapshot = client.stats().map_err(|e| format!("client: STATS: {e}"))?;
        eprintln!("{snapshot}");
    }
    Ok(labeled
        .iter()
        .all(|(_, r)| !matches!(r, xmlmap::core::JobResult::Failed { .. })))
}

/// `xmlmap stream <dtd-file> [--pattern P] [--stats] <xml-file|->` —
/// O(depth) streaming validation (and optional membership) that never
/// builds the document tree. With `--chase <mapping-file>` the pass
/// instead enumerates std firings and chases them into the canonical
/// solution (printed as reduced XML, exactly like `xmlmap chase`)
/// without ever materialising the source.
fn run_stream_command(ctx: &EngineContext, args: &[&str]) -> Result<bool, String> {
    let mut schema: Option<&str> = None;
    let mut doc: Option<&str> = None;
    let mut pattern_text: Option<&str> = None;
    let mut chase_mapping: Option<&str> = None;
    let mut stats = false;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--pattern" => {
                pattern_text = Some(
                    *it.next()
                        .ok_or_else(|| "--pattern needs a pattern".to_string())?,
                );
            }
            "--chase" => {
                chase_mapping = Some(
                    *it.next()
                        .ok_or_else(|| "--chase needs a mapping file".to_string())?,
                );
            }
            "--stats" => stats = true,
            _ if chase_mapping.is_none() && schema.is_none() => schema = Some(arg),
            _ if doc.is_none() => doc = Some(arg),
            _ => return Err(format!("stream: unexpected argument `{arg}`")),
        }
    }
    if let Some(map) = chase_mapping {
        if pattern_text.is_some() || schema.is_some() {
            return Err(
                "stream: --chase takes a mapping and a document; it cannot be combined \
                 with a schema operand or --pattern"
                    .to_string(),
            );
        }
        let doc = doc.ok_or_else(|| {
            "usage: xmlmap stream --chase <mapping-file> [--stats] <xml-file|->".to_string()
        })?;
        return run_stream_chase(ctx, map, doc, stats);
    }
    let (Some(schema), Some(doc)) = (schema, doc) else {
        return Err(
            "usage: xmlmap stream <dtd-file> [--pattern P] [--stats] <xml-file|->\n\
             \x20      xmlmap stream --chase <mapping-file> [--stats] <xml-file|->"
                .to_string(),
        );
    };
    let dtd = xmlmap::dtd::parse(&read(schema)?).map_err(|e| e.to_string())?;
    let pattern = pattern_text
        .map(|t| xmlmap::patterns::parse(t).map_err(|e| e.to_string()))
        .transpose()?;
    let outcome = if doc == "-" {
        let stdin = std::io::stdin();
        ctx.stream_document(&dtd, pattern.as_ref(), stdin.lock())
    } else {
        let file = std::fs::File::open(doc).map_err(|e| format!("cannot read {doc}: {e}"))?;
        ctx.stream_document(&dtd, pattern.as_ref(), std::io::BufReader::new(file))
    }
    .map_err(|e| format!("{doc}: {e}"))?;
    if stats {
        print_engine_stats(ctx, "stream");
    }
    if let Some(violation) = &outcome.violation {
        println!("{violation}");
        return Ok(false);
    }
    let shape = format!(
        "{} elements, depth {}, peak stream state {} bytes",
        outcome.stats.elements,
        outcome.stats.peak_depth,
        outcome.stats.peak_state_bytes + outcome.pattern_state_bytes
    );
    match outcome.matched {
        None => {
            println!("valid: {shape}");
            Ok(true)
        }
        Some(true) => {
            println!("valid, matches: {shape}");
            Ok(true)
        }
        Some(false) => {
            println!("valid, does NOT match: {shape}");
            Ok(false)
        }
    }
}

/// The `--chase` arm of `xmlmap stream`: one pass enumerates firings and
/// the chase builds the canonical solution, printed reduced — the exact
/// bytes `xmlmap chase` prints for the same (mapping, document) pair.
fn run_stream_chase(
    ctx: &EngineContext,
    mapping_path: &str,
    doc: &str,
    stats: bool,
) -> Result<bool, String> {
    let m = load_mapping(mapping_path)?;
    let outcome = if doc == "-" {
        let stdin = std::io::stdin();
        ctx.chase_stream(&m, stdin.lock())
    } else {
        let file = std::fs::File::open(doc).map_err(|e| format!("cannot read {doc}: {e}"))?;
        ctx.chase_stream(&m, std::io::BufReader::new(file))
    }
    .map_err(|e| format!("{doc}: {e}"))?;
    if stats {
        print_engine_stats(ctx, "stream --chase");
        eprintln!(
            "-- stream: {} firing(s), peak live valuations {}, \
             {} elements, peak depth {}, peak stream state {} bytes",
            outcome.firings,
            outcome.peak_live_valuations,
            outcome.stats.elements,
            outcome.peak_depth(),
            outcome.peak_live_bytes()
        );
    }
    if let Some(violation) = &outcome.violation {
        println!("{violation}");
        return Ok(false);
    }
    match outcome.solution.expect("no violation implies a verdict") {
        Ok(solution) => {
            let reduced = xmlmap::core::reduce_solution(&m, &solution);
            print!("{}", xmlmap::trees::xml::to_string(&reduced));
            Ok(true)
        }
        Err(e) => {
            eprintln!("no solution: {e}");
            Ok(false)
        }
    }
}

/// `xmlmap delta <mapping> <src> <updatefile>` — open an incremental
/// session, run the update script, print the final reduced solution
/// (byte-identical to `xmlmap chase` on the mutated document).
fn run_delta_command(ctx: &EngineContext, args: &[&str]) -> Result<bool, String> {
    let mut operands: Vec<&str> = Vec::new();
    let mut dump_source: Option<&str> = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--dump-source" => {
                dump_source = Some(
                    *it.next()
                        .ok_or_else(|| "--dump-source needs a file".to_string())?,
                );
            }
            _ if operands.len() < 3 => operands.push(arg),
            _ => return Err(format!("delta: unexpected argument `{arg}`")),
        }
    }
    let [mapping_path, src_path, updates_path] = operands.as_slice() else {
        return Err(
            "usage: xmlmap delta <mapping-file> <src> <updatefile> [--dump-source FILE]"
                .to_string(),
        );
    };
    let m = load_mapping(mapping_path)?;
    let mut src = load_tree(src_path)?;
    let _ = m.source_dtd.normalize_attrs(&mut src);
    let updates = xmlmap::core::parse_updates(&read(updates_path)?)
        .map_err(|e| format!("{updates_path}: {e}"))?;
    let mut session = ctx.delta_session(&m, src);
    let applied = session
        .apply_all(&updates)
        .map_err(|e| format!("{updates_path}: {e}"))?;
    ctx.record_delta(session.stats());
    let s = session.stats();
    eprintln!(
        "delta: {applied} update(s), {} std refire(s), {} skip(s), {} replay(s)",
        s.refires, s.skips, s.replays
    );
    if let Some(path) = dump_source {
        std::fs::write(path, xmlmap::trees::xml::to_string(session.doc()))
            .map_err(|e| format!("--dump-source {path}: {e}"))?;
    }
    match session.canonical_solution() {
        Ok(solution) => {
            let reduced = xmlmap::core::reduce_solution(&m, &solution);
            print!("{}", xmlmap::trees::xml::to_string(&reduced));
            Ok(true)
        }
        Err(e) => {
            eprintln!("no solution: {e}");
            Ok(false)
        }
    }
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    // One shared context for the whole invocation: single queries get the
    // compile-once caches too, and `batch` fans out over it.
    let ctx = EngineContext::new();
    match strs.as_slice() {
        ["batch", rest @ ..] => run_batch_command(rest),
        ["stream", rest @ ..] => run_stream_command(&ctx, rest),
        ["serve", rest @ ..] => run_serve_command(rest),
        ["client", rest @ ..] => run_client_command(rest),
        ["validate", dtd_path, xml_path] => {
            let dtd = xmlmap::dtd::parse(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let mut tree = load_tree(xml_path)?;
            let _ = dtd.normalize_attrs(&mut tree); // tolerate attribute order
            match dtd.check(&tree) {
                Ok(()) => {
                    println!("valid: {} nodes conform", tree.size());
                    Ok(true)
                }
                Err(e) => {
                    println!("invalid: {e}");
                    Ok(false)
                }
            }
        }
        ["match", pattern_text, xml_path] => {
            let pattern = xmlmap::patterns::parse(pattern_text).map_err(|e| e.to_string())?;
            let tree = load_tree(xml_path)?;
            let matches = xmlmap::patterns::all_matches(&tree, &pattern);
            for m in &matches {
                let row: Vec<String> = m.iter().map(|(k, v)| format!("{k}={v}")).collect();
                println!("{}", row.join(", "));
            }
            println!("-- {} match(es)", matches.len());
            Ok(!matches.is_empty())
        }
        ["check", mapping_path, src_path, tgt_path] => {
            let m = load_mapping(mapping_path)?;
            let mut src = load_tree(src_path)?;
            let mut tgt = load_tree(tgt_path)?;
            let _ = m.source_dtd.normalize_attrs(&mut src);
            let _ = m.target_dtd.normalize_attrs(&mut tgt);
            let ok = m.is_solution(&src, &tgt);
            println!("{}", if ok { "solution" } else { "NOT a solution" });
            Ok(ok)
        }
        ["chase", mapping_path, src_path] => {
            let m = load_mapping(mapping_path)?;
            let mut src = load_tree(src_path)?;
            let _ = m.source_dtd.normalize_attrs(&mut src);
            match ctx.canonical_solution(&m, &src) {
                Ok(solution) => {
                    let reduced = xmlmap::core::reduce_solution(&m, &solution);
                    print!("{}", xmlmap::trees::xml::to_string(&reduced));
                    Ok(true)
                }
                Err(e) => {
                    eprintln!("no solution: {e}");
                    Ok(false)
                }
            }
        }
        ["delta", rest @ ..] => run_delta_command(&ctx, rest),
        ["certain", mapping_path, src_path, query_text] => {
            let m = load_mapping(mapping_path)?;
            let mut src = load_tree(src_path)?;
            let _ = m.source_dtd.normalize_attrs(&mut src);
            let query = xmlmap::patterns::parse(query_text).map_err(|e| e.to_string())?;
            let answers = ctx
                .certain_answers(&m, &src, &query)
                .map_err(|e| e.to_string())?;
            for a in &answers {
                let row: Vec<String> = a.iter().map(|(k, v)| format!("{k}={v}")).collect();
                println!("{}", row.join(", "));
            }
            println!("-- {} certain answer(s)", answers.len());
            Ok(!answers.is_empty())
        }
        ["consistent", mapping_path] => {
            let m = load_mapping(mapping_path)?;
            println!("class: {}", m.signature());
            match ctx.consistent(&m, BUDGET) {
                Ok(ConsAnswer::Consistent { source, .. }) => {
                    println!("consistent (witness source has {} nodes)", source.size());
                    Ok(true)
                }
                Ok(ConsAnswer::Inconsistent) => {
                    println!("INCONSISTENT");
                    Ok(false)
                }
                Err(e) => {
                    println!("exact procedure not applicable: {e}");
                    match xmlmap::core::bounded::consistent_bounded(&m, 3, 4) {
                        xmlmap::core::BoundedOutcome::Witness(w) => {
                            println!("consistent (bounded witness, {} nodes)", w.size());
                            Ok(true)
                        }
                        xmlmap::core::BoundedOutcome::ExhaustedBounds => {
                            println!("unknown: no witness up to the search bounds");
                            Ok(false)
                        }
                    }
                }
            }
        }
        ["abscons", mapping_path] => {
            let m = load_mapping(mapping_path)?;
            println!("class: {}", m.signature());
            if let Some(ans) = abscons_nr_ptime(&m) {
                match ans {
                    AbsConsAnswer::AbsolutelyConsistent => {
                        println!("absolutely consistent (Thm 6.3 fragment)");
                        Ok(true)
                    }
                    AbsConsAnswer::Violated { reason, .. } => {
                        println!("NOT absolutely consistent: {reason}");
                        Ok(false)
                    }
                }
            } else if let Ok(Ok(ans)) = ctx.abscons_structural(&m, BUDGET) {
                match ans {
                    AbsConsAnswer::AbsolutelyConsistent => {
                        println!("absolutely consistent (SM° structural, Prop 6.1)");
                        Ok(true)
                    }
                    AbsConsAnswer::Violated { reason, .. } => {
                        println!("NOT absolutely consistent: {reason}");
                        Ok(false)
                    }
                }
            } else {
                match xmlmap::core::bounded::abscons_violation_bounded(&m, 3, 4) {
                    xmlmap::core::BoundedOutcome::Witness(w) => {
                        println!(
                            "NOT absolutely consistent: {}-node source has no solution",
                            w.size()
                        );
                        Ok(false)
                    }
                    xmlmap::core::BoundedOutcome::ExhaustedBounds => {
                        println!("holds up to the search bounds (general problem: Thm 6.2)");
                        Ok(true)
                    }
                }
            }
        }
        ["subschema", d1_path, d2_path] => {
            let d1 = xmlmap::dtd::parse(&read(d1_path)?).map_err(|e| e.to_string())?;
            let d2 = xmlmap::dtd::parse(&read(d2_path)?).map_err(|e| e.to_string())?;
            match ctx.subschema(&d1, &d2, BUDGET).map_err(|e| e.to_string())? {
                None => {
                    println!("subschema: every {d1_path} document conforms to {d2_path}");
                    Ok(true)
                }
                Some(xmlmap::automata::SubschemaViolation::Document(t)) => {
                    println!("NOT a subschema; counterexample document:");
                    print!("{}", xmlmap::trees::xml::to_string(&t));
                    Ok(false)
                }
                Some(xmlmap::automata::SubschemaViolation::AttributeMismatch {
                    label,
                    left,
                    right,
                }) => {
                    println!(
                        "NOT a subschema: element {label} has attributes {left:?} vs {right:?}"
                    );
                    Ok(false)
                }
            }
        }
        ["compose", m12_path, m23_path] => {
            let m12 = load_mapping(m12_path)?;
            let m23 = load_mapping(m23_path)?;
            let s12 = SkolemMapping::from_mapping(&m12)?;
            let s23 = SkolemMapping::from_mapping(&m23)?;
            let s13 = compose(&s12, &s23).map_err(|e| e.to_string())?;
            println!("# composed mapping ({} stds)", s13.stds.len());
            for s in &s13.stds {
                println!("{s}");
            }
            Ok(true)
        }
        _ => Err("usage: xmlmap <validate|match|check|chase|delta|certain|consistent|abscons|compose|subschema|stream|batch|serve|client> …\n\
                  see `xmlmap` module docs for argument lists"
            .to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
