//! `xmlmap` — command-line front end for the schema-mapping toolkit.
//!
//! ```text
//! xmlmap validate  <dtd-file> <xml-file>         check T ⊨ D
//! xmlmap match     <pattern> <xml-file>          evaluate π(T)
//! xmlmap check     <mapping-file> <src> <tgt>    (T,T') ∈ ⟦M⟧ ?
//! xmlmap chase     <mapping-file> <src>          print a canonical solution
//! xmlmap certain   <mapping-file> <src> <query>  certain answers
//! xmlmap consistent <mapping-file>               CONS(σ)
//! xmlmap abscons   <mapping-file>                ABSCONS(σ)
//! xmlmap compose   <mapping-file> <mapping-file> syntactic composition
//! xmlmap subschema <dtd-file> <dtd-file>         every D1 doc conforms to D2?
//! xmlmap batch     <jobfile> [--workers N] [--stats]
//!                  [--cache-budget BYTES] [--cache-dir DIR]
//!                                                run a job list in parallel
//! ```
//!
//! Mapping files use the `[source]`/`[target]`/`[stds]` format of
//! `Mapping::parse`; exit status is 0 for "yes" answers, 1 for "no",
//! 2 for usage or input errors. For `batch` (jobfile syntax:
//! `xmlmap::core::batch::parse_jobfile`), exit status is 0 when every job
//! completed, 1 when some job failed, 2 for usage/jobfile errors; jobs run
//! on `--workers` threads (default: the available parallelism) over one
//! shared [`EngineContext`], and `--stats` prints the per-cache
//! hit/miss/compile-time counters to stderr. `--cache-budget` bounds the
//! bytes of resident compiled artifacts (suffixes `K`/`M`/`G` accepted),
//! evicting least-recently-used entries past the limit; `--cache-dir`
//! attaches a persistent compiled-artifact store so a later run against
//! the same schemas skips compilation entirely.
//!
//! [`EngineContext`]: xmlmap::core::EngineContext

use std::process::ExitCode;
use xmlmap::core::EngineContext;
use xmlmap::prelude::*;

const BUDGET: usize = 50_000_000;

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_tree(path: &str) -> Result<Tree, String> {
    xmlmap::trees::xml::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn load_mapping(path: &str) -> Result<Mapping, String> {
    Mapping::parse(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

/// Parses a byte count with an optional `K`/`M`/`G` suffix (decimal).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let (digits, scale) = match s.char_indices().last() {
        Some((i, 'K' | 'k')) => (&s[..i], 1_000),
        Some((i, 'M' | 'm')) => (&s[..i], 1_000_000),
        Some((i, 'G' | 'g')) => (&s[..i], 1_000_000_000),
        _ => (s, 1),
    };
    digits
        .parse::<u64>()
        .map(|n| n * scale)
        .map_err(|_| format!("`{s}` is not a byte count (try 64M, 2G, 1000000)"))
}

/// Runs a jobfile over a shared [`EngineContext`] on `--workers` threads.
/// The context is built here — `--cache-budget` and `--cache-dir` shape it.
fn run_batch_command(args: &[&str]) -> Result<bool, String> {
    let mut jobfile: Option<&str> = None;
    let mut workers = xmlmap::core::batch::default_workers();
    let mut stats = false;
    let mut budget: Option<u64> = None;
    let mut cache_dir: Option<&str> = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--workers" => {
                let n = it
                    .next()
                    .ok_or_else(|| "--workers needs a number".to_string())?;
                workers = n
                    .parse::<usize>()
                    .map_err(|_| format!("--workers: `{n}` is not a number"))?;
            }
            "--stats" => stats = true,
            "--cache-budget" => {
                let b = it
                    .next()
                    .ok_or_else(|| "--cache-budget needs a byte count".to_string())?;
                budget = Some(parse_bytes(b).map_err(|e| format!("--cache-budget: {e}"))?);
            }
            "--cache-dir" => {
                cache_dir = Some(
                    *it.next()
                        .ok_or_else(|| "--cache-dir needs a directory".to_string())?,
                );
            }
            _ if jobfile.is_none() => jobfile = Some(arg),
            _ => return Err(format!("batch: unexpected argument `{arg}`")),
        }
    }
    let jobfile = jobfile.ok_or_else(|| {
        "usage: xmlmap batch <jobfile> [--workers N] [--stats] \
         [--cache-budget BYTES] [--cache-dir DIR]"
            .to_string()
    })?;
    let mut ctx = EngineContext::new();
    if let Some(b) = budget {
        ctx = ctx.with_memory_budget(b);
    }
    if let Some(dir) = cache_dir {
        ctx = ctx
            .with_disk_cache(dir)
            .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
    }
    let ctx = &ctx;
    let text = read(jobfile)?;
    let dir = std::path::Path::new(jobfile)
        .parent()
        .map(|p| p.to_path_buf())
        .unwrap_or_default();
    let jobs = xmlmap::core::parse_jobfile(&text, &dir).map_err(|errors| {
        let mut msg = format!("{jobfile}: {} malformed job(s)", errors.len());
        for e in &errors {
            msg.push_str(&format!("\n  {e}"));
        }
        msg
    })?;
    let results = xmlmap::core::run_batch(ctx, &jobs, workers);
    ctx.flush_disk_cache();
    print!("{}", xmlmap::core::render_batch(&jobs, &results));
    if stats {
        let snapshot = ctx.stats();
        eprintln!("-- engine cache stats ({workers} workers)");
        eprintln!("{snapshot}");
        eprintln!(
            "-- totals: {} compiled, {} loaded from disk",
            snapshot.total_compiled(),
            snapshot.total_disk_hits()
        );
    }
    Ok(results
        .iter()
        .all(|r| !matches!(r, xmlmap::core::JobResult::Failed { .. })))
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    // One shared context for the whole invocation: single queries get the
    // compile-once caches too, and `batch` fans out over it.
    let ctx = EngineContext::new();
    match strs.as_slice() {
        ["batch", rest @ ..] => run_batch_command(rest),
        ["validate", dtd_path, xml_path] => {
            let dtd = xmlmap::dtd::parse(&read(dtd_path)?).map_err(|e| e.to_string())?;
            let mut tree = load_tree(xml_path)?;
            let _ = dtd.normalize_attrs(&mut tree); // tolerate attribute order
            match dtd.check(&tree) {
                Ok(()) => {
                    println!("valid: {} nodes conform", tree.size());
                    Ok(true)
                }
                Err(e) => {
                    println!("invalid: {e}");
                    Ok(false)
                }
            }
        }
        ["match", pattern_text, xml_path] => {
            let pattern = xmlmap::patterns::parse(pattern_text).map_err(|e| e.to_string())?;
            let tree = load_tree(xml_path)?;
            let matches = xmlmap::patterns::all_matches(&tree, &pattern);
            for m in &matches {
                let row: Vec<String> = m.iter().map(|(k, v)| format!("{k}={v}")).collect();
                println!("{}", row.join(", "));
            }
            println!("-- {} match(es)", matches.len());
            Ok(!matches.is_empty())
        }
        ["check", mapping_path, src_path, tgt_path] => {
            let m = load_mapping(mapping_path)?;
            let mut src = load_tree(src_path)?;
            let mut tgt = load_tree(tgt_path)?;
            let _ = m.source_dtd.normalize_attrs(&mut src);
            let _ = m.target_dtd.normalize_attrs(&mut tgt);
            let ok = m.is_solution(&src, &tgt);
            println!("{}", if ok { "solution" } else { "NOT a solution" });
            Ok(ok)
        }
        ["chase", mapping_path, src_path] => {
            let m = load_mapping(mapping_path)?;
            let mut src = load_tree(src_path)?;
            let _ = m.source_dtd.normalize_attrs(&mut src);
            match ctx.canonical_solution(&m, &src) {
                Ok(solution) => {
                    let reduced = xmlmap::core::reduce_solution(&m, &solution);
                    print!("{}", xmlmap::trees::xml::to_string(&reduced));
                    Ok(true)
                }
                Err(e) => {
                    eprintln!("no solution: {e}");
                    Ok(false)
                }
            }
        }
        ["certain", mapping_path, src_path, query_text] => {
            let m = load_mapping(mapping_path)?;
            let mut src = load_tree(src_path)?;
            let _ = m.source_dtd.normalize_attrs(&mut src);
            let query = xmlmap::patterns::parse(query_text).map_err(|e| e.to_string())?;
            let answers = ctx
                .certain_answers(&m, &src, &query)
                .map_err(|e| e.to_string())?;
            for a in &answers {
                let row: Vec<String> = a.iter().map(|(k, v)| format!("{k}={v}")).collect();
                println!("{}", row.join(", "));
            }
            println!("-- {} certain answer(s)", answers.len());
            Ok(!answers.is_empty())
        }
        ["consistent", mapping_path] => {
            let m = load_mapping(mapping_path)?;
            println!("class: {}", m.signature());
            match ctx.consistent(&m, BUDGET) {
                Ok(ConsAnswer::Consistent { source, .. }) => {
                    println!("consistent (witness source has {} nodes)", source.size());
                    Ok(true)
                }
                Ok(ConsAnswer::Inconsistent) => {
                    println!("INCONSISTENT");
                    Ok(false)
                }
                Err(e) => {
                    println!("exact procedure not applicable: {e}");
                    match xmlmap::core::bounded::consistent_bounded(&m, 3, 4) {
                        xmlmap::core::BoundedOutcome::Witness(w) => {
                            println!("consistent (bounded witness, {} nodes)", w.size());
                            Ok(true)
                        }
                        xmlmap::core::BoundedOutcome::ExhaustedBounds => {
                            println!("unknown: no witness up to the search bounds");
                            Ok(false)
                        }
                    }
                }
            }
        }
        ["abscons", mapping_path] => {
            let m = load_mapping(mapping_path)?;
            println!("class: {}", m.signature());
            if let Some(ans) = abscons_nr_ptime(&m) {
                match ans {
                    AbsConsAnswer::AbsolutelyConsistent => {
                        println!("absolutely consistent (Thm 6.3 fragment)");
                        Ok(true)
                    }
                    AbsConsAnswer::Violated { reason, .. } => {
                        println!("NOT absolutely consistent: {reason}");
                        Ok(false)
                    }
                }
            } else if let Ok(Ok(ans)) = ctx.abscons_structural(&m, BUDGET) {
                match ans {
                    AbsConsAnswer::AbsolutelyConsistent => {
                        println!("absolutely consistent (SM° structural, Prop 6.1)");
                        Ok(true)
                    }
                    AbsConsAnswer::Violated { reason, .. } => {
                        println!("NOT absolutely consistent: {reason}");
                        Ok(false)
                    }
                }
            } else {
                match xmlmap::core::bounded::abscons_violation_bounded(&m, 3, 4) {
                    xmlmap::core::BoundedOutcome::Witness(w) => {
                        println!(
                            "NOT absolutely consistent: {}-node source has no solution",
                            w.size()
                        );
                        Ok(false)
                    }
                    xmlmap::core::BoundedOutcome::ExhaustedBounds => {
                        println!("holds up to the search bounds (general problem: Thm 6.2)");
                        Ok(true)
                    }
                }
            }
        }
        ["subschema", d1_path, d2_path] => {
            let d1 = xmlmap::dtd::parse(&read(d1_path)?).map_err(|e| e.to_string())?;
            let d2 = xmlmap::dtd::parse(&read(d2_path)?).map_err(|e| e.to_string())?;
            match ctx.subschema(&d1, &d2, BUDGET).map_err(|e| e.to_string())? {
                None => {
                    println!("subschema: every {d1_path} document conforms to {d2_path}");
                    Ok(true)
                }
                Some(xmlmap::automata::SubschemaViolation::Document(t)) => {
                    println!("NOT a subschema; counterexample document:");
                    print!("{}", xmlmap::trees::xml::to_string(&t));
                    Ok(false)
                }
                Some(xmlmap::automata::SubschemaViolation::AttributeMismatch {
                    label,
                    left,
                    right,
                }) => {
                    println!(
                        "NOT a subschema: element {label} has attributes {left:?} vs {right:?}"
                    );
                    Ok(false)
                }
            }
        }
        ["compose", m12_path, m23_path] => {
            let m12 = load_mapping(m12_path)?;
            let m23 = load_mapping(m23_path)?;
            let s12 = SkolemMapping::from_mapping(&m12)?;
            let s23 = SkolemMapping::from_mapping(&m23)?;
            let s13 = compose(&s12, &s23).map_err(|e| e.to_string())?;
            println!("# composed mapping ({} stds)", s13.stds.len());
            for s in &s13.stds {
                println!("{s}");
            }
            Ok(true)
        }
        _ => Err("usage: xmlmap <validate|match|check|chase|certain|consistent|abscons|compose|subschema|batch> …\n\
                  see `xmlmap` module docs for argument lists"
            .to_string()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
