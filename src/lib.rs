#![warn(missing_docs)]

//! # xmlmap
//!
//! A Rust implementation of **"XML Schema Mappings"** (Shun'ichi Amano,
//! Leonid Libkin, Filip Murlak; PODS 2009): expressive schema mappings
//! between XML DTDs, built from tree patterns with child/descendant/
//! next-sibling/following-sibling navigation and data-value comparisons.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`trees`] — unranked data trees, XML parsing/printing;
//! * [`regex`] — regular expressions, Glushkov NFAs, DFAs;
//! * [`dtd`] — DTDs, conformance, nested-relational classification;
//! * [`automata`] — unranked hedge tree automata;
//! * [`patterns`] — tree patterns, evaluation, satisfiability engines;
//! * [`core`] — mappings, membership, consistency, absolute consistency,
//!   the chase, and (syntactic) composition with Skolem functions;
//! * [`gen`] — workload generators and hard instance families.
//!
//! ## Quickstart
//!
//! ```
//! use xmlmap::prelude::*;
//!
//! // The paper's university source schema (D1) and target schema (D2).
//! let d1 = xmlmap::gen::university_dtd();
//! let d2 = xmlmap::gen::university_target_dtd();
//!
//! // An std: professors' courses and students get restructured.
//! let std = Std::parse(
//!     "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]],
//!                supervise[student(s)]]] ; cn1 != cn2
//!      --> r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)],
//!            student(s)[supervisor(x)]]",
//! ).unwrap();
//! let mapping = Mapping::new(d1.clone(), d2, vec![std]);
//!
//! // A source document and membership checking.
//! let source = xmlmap::gen::university_tree(2, 1);
//! assert!(d1.conforms(&source));
//! assert_eq!(mapping.signature().to_string(), "SM(↓,⇒,≠)");
//! ```

pub use xmlmap_automata as automata;
pub use xmlmap_codec as codec;
pub use xmlmap_core as core;
pub use xmlmap_dtd as dtd;
pub use xmlmap_gen as gen;
pub use xmlmap_patterns as patterns;
pub use xmlmap_regex as regex;
pub use xmlmap_trees as trees;

/// The most common imports, for examples and downstream users.
pub mod prelude {
    pub use xmlmap_core::{
        abscons_nr_ptime, abscons_structural, canonical_solution, compose, composition_consistent,
        composition_member, consistent, consistent_nr_ptime, run_batch, AbsConsAnswer, BatchJob,
        CompOp, Comparison, ConsAnswer, EngineContext, JobKind, JobResult, Mapping, SkolemMapping,
        Std,
    };
    pub use xmlmap_dtd::Dtd;
    pub use xmlmap_patterns::{Pattern, Valuation};
    pub use xmlmap_trees::{tree, Name, NodeId, Tree, Value};
}
