//! Composition of schema mappings (paper §7–§8).
//!
//! * [`composition_member`] — semantic membership
//!   `(T₁, T₃) ∈ ⟦M₁₂⟧ ∘ ⟦M₂₃⟧` by searching for a middle document
//!   (data complexity EXPTIME-complete for `SM(⇓,⇒)`, Thm 7.3; undecidable
//!   with data comparisons — the search is bounded and exhaustive up to its
//!   bound).
//! * [`compose`] — **syntactic** composition for the closed class of
//!   Thm 8.2: Skolem functions, equalities, fully-specified stds, strictly
//!   nested-relational DTDs. One further (documented) restriction: no `+`
//!   multiplicities in the middle DTD — `ℓ⁺`'s "guaranteed but repeatable"
//!   slot mixes completion and instance nodes in the canonical target and
//!   is rejected rather than handled approximately.
//!
//! ## How syntactic composition works
//!
//! Following \[17\] lifted to trees (DESIGN.md §3.5): build the *symbolic
//! canonical target* of `M₁₂` over the middle DTD — a finite arena whose
//! nodes are (a) the **guaranteed skeleton** (`ℓ`-slots reachable from the
//! root, attribute-free by strictness), (b) **optional skeleton** nodes
//! (`ℓ?`-slots, present iff some std's target creates them), and (c)
//! generic **instances**: per-std subtrees at starred slots, one per
//! firing, carrying that std's terms. Every match of a `Σ₂₃` source
//! pattern into this arena yields one composed std: its premise conjoins a
//! fresh copy of the source pattern of every `Σ₁₂` std the match *charges*
//! (instances entered, optional nodes used), plus the term equalities the
//! match imposes; its conclusion is the `Σ₂₃` target with variables
//! replaced by the matched terms.

use crate::cond::Comparison;
use crate::skolem::{SkolemMapping, SkolemStd, Term, TermPattern};
use crate::stds::Mapping;
use std::collections::BTreeMap;
use xmlmap_dtd::{Dtd, Mult};
use xmlmap_patterns::{LabelTest, ListItem, Pattern, Var};
use xmlmap_trees::{Name, Tree, Value};

/// Semantic composition membership: is there `T₂ ⊨ D₂` (≤ `max_middle_nodes`
/// nodes) with `(T₁,T₂) ∈ ⟦M₁₂⟧` and `(T₂,T₃) ∈ ⟦M₂₃⟧`? Returns the middle
/// document. Tries the canonical solution first when the fragment allows.
///
/// Builds a fresh [`ShapeCache`] and [`ChaseCache`](crate::chase::ChaseCache)
/// on every call — fine for a one-off probe, wasteful in a loop. Callers
/// testing many `(t1, t3)` pairs under the same mappings should build both
/// caches once and use [`composition_member_cached`] instead.
///
/// [`ShapeCache`]: crate::bounded::ShapeCache
pub fn composition_member(
    m12: &Mapping,
    m23: &Mapping,
    t1: &Tree,
    t3: &Tree,
    max_middle_nodes: usize,
) -> Option<Tree> {
    let shapes = crate::bounded::ShapeCache::new(&m12.target_dtd);
    let chase = crate::chase::ChaseCache::new(m12);
    composition_member_cached(m12, m23, t1, t3, max_middle_nodes, &shapes, &chase)
}

/// [`composition_member`] against a caller-held [`ShapeCache`] over
/// `m12.target_dtd` and [`ChaseCache`] over `m12`, so repeated membership
/// probes (e.g. over a test suite of tree pairs) enumerate middle-document
/// shapes once per bound and compile the chase once per mapping.
///
/// [`ShapeCache`]: crate::bounded::ShapeCache
/// [`ChaseCache`]: crate::chase::ChaseCache
pub fn composition_member_cached(
    m12: &Mapping,
    m23: &Mapping,
    t1: &Tree,
    t3: &Tree,
    max_middle_nodes: usize,
    shapes: &crate::bounded::ShapeCache,
    chase: &crate::chase::ChaseCache,
) -> Option<Tree> {
    if !m12.source_dtd.conforms(t1) || !m23.target_dtd.conforms(t3) {
        return None;
    }
    // Fast path via the chase: the canonical solution is universal for
    // M12, so candidate middles factor through instantiations of its
    // nulls. Search assignments of nulls to the joint active domain (or to
    // themselves — a fresh distinct value). This is *complete* when M23's
    // source patterns are downward and wildcard-free (the factoring
    // homomorphism need not preserve sibling order or arities elsewhere),
    // in which case a failed search proves non-membership.
    let m23_downward = m23.stds.iter().all(|s| {
        !s.source.uses_next_sibling()
            && !s.source.uses_following_sibling()
            && !s.source.uses_wildcard()
    });
    match crate::chase::canonical_solution_cached(m12, t1, chase) {
        Ok(canonical) => {
            if let Some(t2) = instantiate_nulls_search(m12, m23, t1, t3, &canonical) {
                return Some(t2);
            }
            if m23_downward {
                return None;
            }
        }
        Err(crate::chase::ChaseError::OutsideFragment(_)) => {}
        // Any other chase failure proves T1 has no solution at all.
        Err(_) => return None,
    }
    // Exhaustive bounded search.
    let mut pool: Vec<Value> = t1.data_values().chain(t3.data_values()).cloned().collect();
    pool.sort();
    pool.dedup();
    for shape in shapes.shapes(max_middle_nodes).iter() {
        let slots = crate::bounded::attr_slot_count(shape);
        let mut full_pool = pool.clone();
        full_pool.extend((0..slots as u64).map(|i| Value::Null(2_000_000 + i)));
        if full_pool.is_empty() {
            full_pool.push(Value::str("•"));
        }
        let mut found = None;
        crate::bounded::for_each_valued_tree(shape, &full_pool, &mut |t2| {
            if m12.is_solution(t1, t2) && m23.is_solution(t2, t3) {
                found = Some(t2.clone());
                false
            } else {
                true
            }
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Enumerates assignments of the canonical solution's nulls to values from
/// the joint active domain (or leaving them as distinct fresh values), and
/// returns the first instantiation that is a middle witness.
fn instantiate_nulls_search(
    m12: &Mapping,
    m23: &Mapping,
    t1: &Tree,
    t3: &Tree,
    canonical: &Tree,
) -> Option<Tree> {
    let mut nulls: Vec<Value> = canonical
        .data_values()
        .filter(|v| v.is_null())
        .cloned()
        .collect();
    nulls.sort();
    nulls.dedup();
    let mut domain: Vec<Value> = t1.data_values().chain(t3.data_values()).cloned().collect();
    domain.sort();
    domain.dedup();

    // Assignment per null: an index into domain, or "keep" (= itself).
    #[allow(clippy::too_many_arguments)]
    fn go(
        m12: &Mapping,
        m23: &Mapping,
        t1: &Tree,
        t3: &Tree,
        canonical: &Tree,
        nulls: &[Value],
        domain: &[Value],
        assignment: &mut Vec<Option<Value>>,
    ) -> Option<Tree> {
        if assignment.len() == nulls.len() {
            let mut t2 = canonical.clone();
            let node_ids: Vec<_> = t2.nodes().collect();
            for node in node_ids {
                let resolved: Vec<(Name, Value)> = t2
                    .attrs(node)
                    .iter()
                    .map(|(a, v)| {
                        let v2 = match nulls.iter().position(|n| n == v) {
                            Some(i) => assignment[i].clone().unwrap_or_else(|| v.clone()),
                            None => v.clone(),
                        };
                        (a.clone(), v2)
                    })
                    .collect();
                t2.set_attrs(node, resolved);
            }
            if m12.is_solution(t1, &t2) && m23.is_solution(&t2, t3) {
                return Some(t2);
            }
            return None;
        }
        // Keep the null (fresh distinct value) first, then domain values.
        assignment.push(None);
        if let Some(t2) = go(m12, m23, t1, t3, canonical, nulls, domain, assignment) {
            return Some(t2);
        }
        assignment.pop();
        for v in domain {
            assignment.push(Some(v.clone()));
            if let Some(t2) = go(m12, m23, t1, t3, canonical, nulls, domain, assignment) {
                return Some(t2);
            }
            assignment.pop();
        }
        None
    }
    go(
        m12,
        m23,
        t1,
        t3,
        canonical,
        &nulls,
        &domain,
        &mut Vec::new(),
    )
}

/// Why syntactic composition failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// A precondition of the closed class is violated.
    OutsideClass(String),
    /// The two mappings do not share the middle DTD.
    MiddleMismatch,
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::OutsideClass(s) => write!(f, "outside the closed class: {s}"),
            ComposeError::MiddleMismatch => {
                write!(f, "M12's target DTD differs from M23's source DTD")
            }
        }
    }
}

impl std::error::Error for ComposeError {}

/// Kind of a symbolic-canonical-target node.
#[derive(Clone, Debug)]
enum Kind {
    /// Mandatory skeleton: present in every canonical target.
    Guaranteed,
    /// Optional skeleton: present iff one of these Σ₁₂ stds fires.
    Optional { creators: Vec<usize> },
    /// Generic instance subtree of one Σ₁₂ std (one per firing).
    Instance { std: usize },
}

/// A node of the symbolic canonical target.
struct Sym {
    label: Name,
    /// Attribute terms over the creating std's source variables (empty for
    /// skeleton nodes — strictness keeps them attribute-free).
    terms: Vec<Term>,
    kind: Kind,
    children: Vec<usize>,
}

struct Arena {
    nodes: Vec<Sym>,
}

impl Arena {
    fn push(&mut self, s: Sym) -> usize {
        self.nodes.push(s);
        self.nodes.len() - 1
    }
}

/// State of one partial match of a Σ₂₃ source pattern into the arena.
#[derive(Clone, Default)]
struct MatchState {
    /// φ₂-variable bindings to terms over composed source variables.
    bindings: BTreeMap<Var, Term>,
    /// Premise term equalities collected along the way.
    term_eqs: Vec<(Term, Term)>,
    /// Charged copies: the Σ₁₂ std index per copy (copy id = position).
    copies: Vec<usize>,
}

/// Renames std `i` copy `c`'s variable into the composed namespace.
fn copy_var(v: &Var, i: usize, c: usize) -> Var {
    Var::new(format!("{v}~{i}_{c}"))
}

fn rename_term(t: &Term, i: usize, c: usize) -> Term {
    t.rename(&mut |v| copy_var(v, i, c))
}

fn rename_pattern(p: &Pattern, f: &mut impl FnMut(&Var) -> Var) -> Pattern {
    Pattern {
        label: p.label.clone(),
        vars: p.vars.iter().map(&mut *f).collect(),
        list: p
            .list
            .iter()
            .map(|item| match item {
                ListItem::Descendant(d) => ListItem::Descendant(rename_pattern(d, f)),
                ListItem::Seq { members, ops } => ListItem::Seq {
                    members: members.iter().map(|m| rename_pattern(m, f)).collect(),
                    ops: ops.clone(),
                },
            })
            .collect(),
    }
}

/// Builds the symbolic canonical target of `m12` over its target DTD.
fn build_arena(m12: &SkolemMapping, active: &[usize]) -> Result<(Arena, usize), ComposeError> {
    let dtd = &m12.target_dtd;
    let nr = dtd
        .nested_relational()
        .expect("checked strictly nested-relational");

    let mut arena = Arena { nodes: Vec::new() };

    // 1. Skeleton: all non-starred paths from the root. `kind` carries the
    // presence condition: a One-child inherits its parent's condition, an
    // Opt-child is present iff some std's target pattern reaches it (the
    // chase then completes its mandatory descendants).
    fn build_skeleton(
        arena: &mut Arena,
        nr: &xmlmap_dtd::NestedRelationalView,
        label: &Name,
        kind: Kind,
        path: &[Name],
        m12: &SkolemMapping,
        active: &[usize],
    ) -> usize {
        let id = arena.push(Sym {
            label: label.clone(),
            terms: Vec::new(),
            kind: kind.clone(),
            children: Vec::new(),
        });
        let slots: Vec<(Name, Mult)> = nr.slots(label).to_vec();
        for (child, mult) in slots {
            match mult {
                Mult::One | Mult::Opt => {
                    let mut p2 = path.to_vec();
                    p2.push(child.clone());
                    let child_kind = if mult == Mult::One {
                        kind.clone()
                    } else {
                        let creators = active
                            .iter()
                            .copied()
                            .filter(|&i| pattern_reaches(&m12.stds[i].target, &p2))
                            .collect();
                        Kind::Optional { creators }
                    };
                    let cid = build_skeleton(arena, nr, &child, child_kind, &p2, m12, active);
                    arena.nodes[id].children.push(cid);
                }
                Mult::Star | Mult::Plus => {} // instances only
            }
        }
        id
    }

    let root = build_skeleton(
        &mut arena,
        &nr,
        dtd.root(),
        Kind::Guaranteed,
        &[dtd.root().clone()],
        m12,
        active,
    );

    // 2. Per-std instance subtrees hung along the target patterns.
    for &i in active {
        let std_i = &m12.stds[i];
        let mut fresh_fn = 0usize;
        hang_pattern(
            &mut arena,
            dtd,
            &nr,
            root,
            &std_i.target,
            i,
            &std_i.source.variables(),
            &mut fresh_fn,
            false,
        )?;
    }

    Ok((arena, root))
}

/// Does the fully-specified term pattern contain a node at `path` (labels
/// from the root, inclusive)?
fn pattern_reaches(p: &TermPattern, path: &[Name]) -> bool {
    if path.is_empty() || p.label != path[0] {
        return false;
    }
    if path.len() == 1 {
        return true;
    }
    p.children.iter().any(|c| pattern_reaches(c, &path[1..]))
}

/// Walks a Σ₁₂ target pattern along the arena, creating instance nodes at
/// starred slots; `inside_instance` marks that we are inside std `i`'s
/// instance scope already.
#[allow(clippy::too_many_arguments)]
fn hang_pattern(
    arena: &mut Arena,
    dtd: &Dtd,
    nr: &xmlmap_dtd::NestedRelationalView,
    at: usize,
    pat: &TermPattern,
    i: usize,
    source_vars: &[Var],
    fresh_fn: &mut usize,
    inside_instance: bool,
) -> Result<(), ComposeError> {
    // `at` already corresponds to `pat` (labels match); attach children.
    for child in &pat.children {
        let mult = nr
            .slots(&pat.label)
            .iter()
            .find(|(l, _)| l == &child.label)
            .map(|(_, m)| *m)
            .ok_or_else(|| {
                ComposeError::OutsideClass(format!(
                    "target pattern of Σ12 std #{i} puts {} under {}, not a slot",
                    child.label, pat.label
                ))
            })?;
        match mult {
            Mult::One | Mult::Opt => {
                // Merge into the unique per-parent node. Inside an
                // instance, create the per-instance internal node if absent;
                // at skeleton level, find the existing skeleton child.
                let existing = arena.nodes[at]
                    .children
                    .iter()
                    .copied()
                    .find(|&c| arena.nodes[c].label == child.label);
                let node = match existing {
                    Some(n) => n,
                    None => {
                        debug_assert!(inside_instance, "skeleton contains all unstarred paths");
                        let kind = arena.nodes[at].kind.clone();
                        let n = arena.push(Sym {
                            label: child.label.clone(),
                            terms: Vec::new(),
                            kind,
                            children: Vec::new(),
                        });
                        arena.nodes[at].children.push(n);
                        // Mandatory completion below the new internal node.
                        complete_instance(arena, nr, n, child, i);
                        n
                    }
                };
                if !child.terms.is_empty() {
                    return Err(ComposeError::OutsideClass(format!(
                        "Σ12 std #{i}: unstarred element {} carries terms (strictness \
                         forbids attributes there)",
                        child.label
                    )));
                }
                hang_pattern(
                    arena,
                    dtd,
                    nr,
                    node,
                    child,
                    i,
                    source_vars,
                    fresh_fn,
                    inside_instance,
                )?;
            }
            Mult::Plus => {
                return Err(ComposeError::OutsideClass(format!(
                    "`+` multiplicity on {} in the middle DTD is not supported by \
                     syntactic composition (see module docs)",
                    child.label
                )));
            }
            Mult::Star => {
                // A fresh generic instance per firing.
                let arity = dtd.arity(&child.label);
                let terms = if child.terms.is_empty() && arity > 0 {
                    // Unconstrained attributes: fresh Skolem functions of
                    // the firing (like chase nulls).
                    (0..arity)
                        .map(|k| {
                            *fresh_fn += 1;
                            Term::App(
                                Name::new(format!("n{}_{}_{}", i, *fresh_fn, k)),
                                source_vars.iter().cloned().map(Term::Var).collect(),
                            )
                        })
                        .collect()
                } else if child.terms.len() == arity {
                    child.terms.clone()
                } else {
                    return Err(ComposeError::OutsideClass(format!(
                        "Σ12 std #{i}: {} has arity {} but the pattern carries {} terms",
                        child.label,
                        arity,
                        child.terms.len()
                    )));
                };
                let n = arena.push(Sym {
                    label: child.label.clone(),
                    terms,
                    kind: Kind::Instance { std: i },
                    children: Vec::new(),
                });
                arena.nodes[at].children.push(n);
                // Completion: mandatory One-slots below the instance that
                // the pattern does not mention (attribute-free).
                complete_instance(arena, nr, n, child, i);
                hang_pattern(arena, dtd, nr, n, child, i, source_vars, fresh_fn, true)?;
            }
        }
    }
    Ok(())
}

/// Adds attribute-free mandatory (One) descendants of an instance node that
/// the pattern does not create itself.
fn complete_instance(
    arena: &mut Arena,
    nr: &xmlmap_dtd::NestedRelationalView,
    at: usize,
    pat: &TermPattern,
    i: usize,
) {
    let slots: Vec<(Name, Mult)> = nr.slots(&arena.nodes[at].label).to_vec();
    for (child, mult) in slots {
        if mult == Mult::One && !pat.children.iter().any(|c| c.label == child) {
            let n = arena.push(Sym {
                label: child.clone(),
                terms: Vec::new(),
                kind: Kind::Instance { std: i },
                children: Vec::new(),
            });
            arena.nodes[at].children.push(n);
            // Recurse: One-slots below the completion node.
            let empty = TermPattern::leaf(child, vec![]);
            complete_instance(arena, nr, n, &empty, i);
        }
    }
}

/// Enumerates all matches of a fully-specified source pattern into the
/// arena, calling `out` per complete match.
#[allow(clippy::too_many_arguments)]
fn enum_matches(
    arena: &Arena,
    m12: &SkolemMapping,
    q: &Pattern,
    s: usize,
    ctx: Option<(usize, usize)>, // (std, copy) instance scope
    state: &MatchState,
    out: &mut dyn FnMut(MatchState),
) {
    let sym = &arena.nodes[s];
    let LabelTest::Label(qlabel) = &q.label else {
        return; // wildcard: outside the class (checked by caller)
    };
    if qlabel != &sym.label {
        return;
    }
    if !q.vars.is_empty() && q.vars.len() != sym.terms.len() {
        return;
    }

    // Presence charging / copy allocation.
    let mut branches: Vec<(MatchState, Option<(usize, usize)>)> = Vec::new();
    match &sym.kind {
        Kind::Guaranteed => branches.push((state.clone(), None)),
        Kind::Optional { creators } => {
            for &c in creators {
                let mut st = state.clone();
                st.copies.push(c);
                branches.push((st, None));
            }
        }
        Kind::Instance { std: i } => match ctx {
            Some((ci, copy)) if ci == *i => branches.push((state.clone(), Some((ci, copy)))),
            _ => {
                let mut st = state.clone();
                st.copies.push(*i);
                let copy = st.copies.len() - 1;
                branches.push((st, Some((*i, copy))));
            }
        },
    }

    for (mut st, new_ctx) in branches {
        // Bind variables to (copy-renamed) terms.
        for (v, t) in q.vars.iter().zip(&sym.terms) {
            let (i, copy) = new_ctx.expect("nonempty terms only on instance nodes");
            let term = rename_term(t, i, copy);
            match st.bindings.get(v) {
                None => {
                    st.bindings.insert(v.clone(), term);
                }
                Some(prev) if prev == &term => {}
                Some(prev) => {
                    // Hypothesise the equality in the premise (how [17]
                    // captures matches created by value collapse).
                    st.term_eqs.push((prev.clone(), term));
                }
            }
        }

        // Children items, sequentially.
        fn items(
            arena: &Arena,
            m12: &SkolemMapping,
            q: &Pattern,
            k: usize,
            s: usize,
            ctx: Option<(usize, usize)>,
            st: &MatchState,
            out: &mut dyn FnMut(MatchState),
        ) {
            if k == q.list.len() {
                out(st.clone());
                return;
            }
            let ListItem::Seq { members, ops } = &q.list[k] else {
                return; // // outside the class
            };
            if !ops.is_empty() {
                return; // horizontal ops outside the class
            }
            let child = &members[0];
            for &c in &arena.nodes[s].children {
                enum_matches(arena, m12, child, c, ctx, st, &mut |st2| {
                    items(arena, m12, q, k + 1, s, ctx, &st2, out)
                });
            }
        }
        items(arena, m12, q, 0, s, new_ctx, &st, out);
    }
}

/// Syntactic composition for the closed class (Thm 8.2). The result is a
/// Skolem mapping `M₁₃` with `⟦M₁₃⟧ = ⟦M₁₂⟧ ∘ ⟦M₂₃⟧`.
pub fn compose(m12: &SkolemMapping, m23: &SkolemMapping) -> Result<SkolemMapping, ComposeError> {
    // Class checks.
    for (m, which) in [(m12, "M12"), (m23, "M23")] {
        if !m.source_dtd.is_strictly_nested_relational()
            || !m.target_dtd.is_strictly_nested_relational()
        {
            return Err(ComposeError::OutsideClass(format!(
                "{which}: DTDs must be strictly nested-relational"
            )));
        }
        for (i, s) in m.stds.iter().enumerate() {
            if !s.source.is_fully_specified() || s.source.uses_wildcard() {
                return Err(ComposeError::OutsideClass(format!(
                    "{which} std #{i}: source pattern must be fully specified and \
                     wildcard-free"
                )));
            }
        }
    }
    if m12.target_dtd.to_string() != m23.source_dtd.to_string() {
        return Err(ComposeError::MiddleMismatch);
    }

    // Active Σ12 stds: those that can actually fire (source rooted right).
    let active: Vec<usize> = m12
        .stds
        .iter()
        .enumerate()
        .filter(|(_, s)| match &s.source.label {
            LabelTest::Label(l) => l == m12.source_dtd.root(),
            LabelTest::Wildcard => false,
        })
        .map(|(i, _)| i)
        .collect();

    let (arena, root) = build_arena(m12, &active)?;

    let mut composed: Vec<SkolemStd> = Vec::new();
    for std23 in &m23.stds {
        let mut matches: Vec<MatchState> = Vec::new();
        enum_matches(
            &arena,
            m12,
            &std23.source,
            root,
            None,
            &MatchState::default(),
            &mut |st| matches.push(st),
        );
        for st in matches {
            // Premise: conjunction of the charged copies' source patterns.
            let root_label = m12.source_dtd.root().clone();
            let mut source = Pattern {
                label: LabelTest::Label(root_label.clone()),
                vars: Vec::new(),
                list: Vec::new(),
            };
            let mut source_cond: Vec<Comparison> = Vec::new();
            let mut term_eqs = st.term_eqs.clone();
            for (copy, &i) in st.copies.iter().enumerate() {
                let s12 = &m12.stds[i];
                let renamed = rename_pattern(&s12.source, &mut |v| copy_var(v, i, copy));
                // Source patterns share the (attribute-free) root; conjoin
                // their child items.
                source.list.extend(renamed.list);
                for c in &s12.source_cond {
                    source_cond.push(Comparison {
                        left: copy_var(&c.left, i, copy),
                        op: c.op,
                        right: copy_var(&c.right, i, copy),
                    });
                }
                for (a, b) in &s12.source_term_eqs {
                    term_eqs.push((rename_term(a, i, copy), rename_term(b, i, copy)));
                }
            }
            // Σ23's own source conditions, as term equalities via bindings.
            let bind = |v: &Var| -> Term {
                st.bindings
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| Term::Var(v.clone()))
            };
            for c in &std23.source_cond {
                term_eqs.push((bind(&c.left), bind(&c.right)));
            }
            for (a, b) in &std23.source_term_eqs {
                term_eqs.push((a.substitute(&st.bindings), b.substitute(&st.bindings)));
            }
            // Conclusion: ψ₃ under the bindings.
            let target = std23.target.substitute(&st.bindings);
            let target_term_eqs = std23
                .target_term_eqs
                .iter()
                .map(|(a, b)| (a.substitute(&st.bindings), b.substitute(&st.bindings)))
                .collect();
            let new_std = SkolemStd {
                source,
                source_cond,
                source_term_eqs: term_eqs,
                target,
                target_term_eqs,
            };
            if !composed.contains(&new_std) {
                composed.push(new_std);
            }
        }
    }

    Ok(SkolemMapping {
        source_dtd: m12.source_dtd.clone(),
        target_dtd: m23.target_dtd.clone(),
        stds: composed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stds::Std;
    use xmlmap_trees::tree;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
        Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        )
    }

    fn skolem(ds: &str, dt: &str, stds: &[&str]) -> SkolemMapping {
        SkolemMapping::from_mapping(&mapping(ds, dt, stds)).unwrap()
    }

    #[test]
    fn semantic_membership_chain() {
        let m12 = mapping(
            "root r\nr -> a*\na @ v",
            "root m\nm -> b*\nb @ w",
            &["r/a(x) --> m/b(x)"],
        );
        let m23 = mapping(
            "root m\nm -> b*\nb @ w",
            "root w\nw -> c*\nc @ u",
            &["m/b(x) --> w/c(x)"],
        );
        let t1 = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let good = tree!("w" [ "c"("u" = "1"), "c"("u" = "2") ]);
        let bad = tree!("w"["c"("u" = "1")]);
        let middle = composition_member(&m12, &m23, &t1, &good, 4).expect("in composition");
        assert!(m12.is_solution(&t1, &middle) && m23.is_solution(&middle, &good));
        assert!(composition_member(&m12, &m23, &t1, &bad, 4).is_none());
    }

    #[test]
    fn syntactic_composition_of_copy_chain() {
        let s12 = skolem(
            "root r\nr -> a*\na @ v",
            "root m\nm -> b*\nb @ w",
            &["r/a(x) --> m/b(x)"],
        );
        let s23 = skolem(
            "root m\nm -> b*\nb @ w",
            "root w\nw -> c*\nc @ u",
            &["m/b(x) --> w/c(x)"],
        );
        let s13 = compose(&s12, &s23).unwrap();
        assert_eq!(s13.stds.len(), 1);
        // The composed mapping behaves as copy a → c.
        let t1 = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let good = tree!("w" [ "c"("u" = "1"), "c"("u" = "2") ]);
        let bad = tree!("w"["c"("u" = "2")]);
        assert!(s13.is_solution(&t1, &good));
        assert!(!s13.is_solution(&t1, &bad));
    }

    #[test]
    fn composed_equals_semantic_composition_on_samples() {
        // M12 splits a into b and c-instances; M23 joins them back.
        let s12 = skolem(
            "root r\nr -> a*\na @ v, w",
            "root m\nm -> b*, c*\nb @ x\nc @ y",
            &["r/a(x, y) --> m[b(x), c(y)]"],
        );
        let s23 = skolem(
            "root m\nm -> b*, c*\nb @ x\nc @ y",
            "root w\nw -> d*\nd @ u, t",
            &["m[b(x), c(y)] --> w/d(x, y)"],
        );
        let s13 = compose(&s12, &s23).unwrap();
        // Two copies (one per instance entered) appear in the premise.
        assert!(!s13.stds.is_empty());

        let m12 = mapping(
            "root r\nr -> a*\na @ v, w",
            "root m\nm -> b*, c*\nb @ x\nc @ y",
            &["r/a(x, y) --> m[b(x), c(y)]"],
        );
        let m23 = mapping(
            "root m\nm -> b*, c*\nb @ x\nc @ y",
            "root w\nw -> d*\nd @ u, t",
            &["m[b(x), c(y)] --> w/d(x, y)"],
        );
        let t1 = tree!("r"["a"("v" = "1", "w" = "2")]);
        // Semantic composition: the middle has b(1), c(2) ⇒ target needs
        // d(1,2) but also the cross pairs from independent matches: the
        // middle fires m[b(x), c(y)] for every b/c pair — just (1,2) here.
        let good = tree!("w"["d"("u" = "1", "t" = "2")]);
        let bad = tree!("w"["d"("u" = "2", "t" = "1")]);
        assert_eq!(
            composition_member(&m12, &m23, &t1, &good, 4).is_some(),
            s13.is_solution(&t1, &good)
        );
        assert_eq!(
            composition_member(&m12, &m23, &t1, &bad, 4).is_some(),
            s13.is_solution(&t1, &bad)
        );
        assert!(s13.is_solution(&t1, &good));
        assert!(!s13.is_solution(&t1, &bad));
    }

    #[test]
    fn optional_middle_node_charges_creator() {
        // M12 creates the optional middle node `flag` only when the source
        // has an `a`; M23 fires on `flag`.
        let s12 = skolem(
            "root r\nr -> a*\na @ v",
            "root m\nm -> flag?",
            &["r/a(x) --> m/flag"],
        );
        let s23 = skolem(
            "root m\nm -> flag?",
            "root w\nw -> c*\nc @ u",
            &["m/flag --> w/c(z)"],
        );
        let s13 = compose(&s12, &s23).unwrap();
        assert_eq!(s13.stds.len(), 1);
        // Premise must include M12's source (an `a` must exist).
        let premise = s13.stds[0].source.to_string();
        assert!(premise.contains('a'), "premise: {premise}");

        let empty = tree!("r");
        let with_a = tree!("r"["a"("v" = "1")]);
        let t3_empty = tree!("w");
        let t3_c = tree!("w"["c"("u" = "k")]);
        // Empty source: no flag needed; empty target is fine.
        assert!(s13.is_solution(&empty, &t3_empty));
        // Source with a: flag exists in every middle; target needs a c.
        assert!(!s13.is_solution(&with_a, &t3_empty));
        assert!(s13.is_solution(&with_a, &t3_c));
    }

    #[test]
    fn skeleton_only_match_fires_always() {
        // M23's source touches only the guaranteed skeleton.
        let s12 = skolem(
            "root r\nr -> a*\na @ v",
            "root m\nm -> hub\nhub -> b*\nb @ w",
            &["r/a(x) --> m/hub/b(x)"],
        );
        let s23 = skolem(
            "root m\nm -> hub\nhub -> b*\nb @ w",
            "root w\nw -> mark?",
            &["m/hub --> w/mark"],
        );
        let s13 = compose(&s12, &s23).unwrap();
        assert_eq!(s13.stds.len(), 1);
        // No Σ12 copies were charged: the premise is the bare root.
        assert!(s13.stds[0].source.list.is_empty());
        let empty = tree!("r");
        assert!(s13.is_solution(&empty, &tree!("w"["mark"])));
        assert!(!s13.is_solution(&empty, &tree!("w")));
    }

    #[test]
    fn composition_is_associative_semantically() {
        // Closure under composition means composing twice stays in the
        // class; associativity of ⟦·⟧∘⟦·⟧ then forces the two syntactic
        // bracketings to agree semantically.
        let s12 = skolem(
            "root r\nr -> a*\na @ v",
            "root m\nm -> b*\nb @ w",
            &["r/a(x) --> m/b(x)"],
        );
        let s23 = skolem(
            "root m\nm -> b*\nb @ w",
            "root w\nw -> c*\nc @ u",
            &["m/b(x) --> w/c(x)"],
        );
        let s34 = skolem(
            "root w\nw -> c*\nc @ u",
            "root z\nz -> d*\nd @ t, t2",
            &["w/c(x) --> z/d(x, y)"],
        );
        let left = compose(&compose(&s12, &s23).unwrap(), &s34).unwrap();
        let right = compose(&s12, &compose(&s23, &s34).unwrap()).unwrap();
        // Both stay in the closed class.
        assert!(left.in_closed_class());
        assert!(right.in_closed_class());

        // Compare semantics on a grid of instances.
        let t1s = [
            tree!("r"),
            tree!("r"["a"("v" = "1")]),
            tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]),
        ];
        let t4s = [
            tree!("z"),
            tree!("z"["d"("t" = "1", "t2" = "n")]),
            tree!("z" [ "d"("t" = "1", "t2" = "n"), "d"("t" = "2", "t2" = "n") ]),
            tree!("z"["d"("t" = "9", "t2" = "n")]),
        ];
        for t1 in &t1s {
            for t4 in &t4s {
                assert_eq!(
                    left.is_solution(t1, t4),
                    right.is_solution(t1, t4),
                    "bracketing disagreement on\n{t1:?}\n{t4:?}"
                );
            }
        }
        // Spot-check correctness of the 3-fold composition itself.
        assert!(left.is_solution(&t1s[1], &t4s[1]));
        assert!(!left.is_solution(&t1s[1], &t4s[0]));
        assert!(!left.is_solution(&t1s[2], &t4s[1]));
    }

    #[test]
    fn rejects_plus_in_middle() {
        let s12 = skolem(
            "root r\nr -> a*\na @ v",
            "root m\nm -> b+\nb @ w",
            &["r/a(x) --> m/b(x)"],
        );
        let s23 = skolem(
            "root m\nm -> b+\nb @ w",
            "root w\nw -> c*\nc @ u",
            &["m/b(x) --> w/c(x)"],
        );
        assert!(matches!(
            compose(&s12, &s23),
            Err(ComposeError::OutsideClass(_))
        ));
    }

    #[test]
    fn rejects_middle_mismatch() {
        let s12 = skolem("root r\nr -> a*\na @ v", "root m\nm -> b*\nb @ w", &[]);
        let s23 = skolem("root m2\nm2 -> b*\nb @ w", "root w\nw -> c*\nc @ u", &[]);
        assert!(matches!(
            compose(&s12, &s23),
            Err(ComposeError::MiddleMismatch)
        ));
    }
}
