//! Data-exchange utilities on top of the chase: certain answers and
//! solution reduction.
//!
//! The paper's §9 lists "constructing target instances" and query
//! answering over exchanged data as the key follow-up problems; for the
//! chaseable fragment (fully-specified stds, nested-relational targets —
//! the same class as \[4\]'s tractable query answering) the classical
//! recipes apply:
//!
//! * **certain answers** of a downward pattern query = the null-free
//!   answers of the query on the canonical solution;
//! * the canonical solution can be **reduced** by deduplicating identical
//!   sibling subtrees in repeatable slots — a cheap approximation of the
//!   core that often shrinks chase output dramatically.

use crate::chase::{canonical_solution_cached, ChaseCache, ChaseError};
use crate::stds::Mapping;
use xmlmap_dtd::Mult;
use xmlmap_patterns::{eval, Pattern, Valuation};
use xmlmap_trees::{NodeId, Tree};

/// Certain answers of `query` over all solutions of `source` under `m`:
/// the valuations returned in *every* solution.
///
/// Computed on the canonical solution, keeping only null-free valuations —
/// sound and complete for **downward** queries over the chaseable fragment
/// (the canonical solution is universal, and downward pattern matches are
/// preserved by the homomorphisms into other solutions).
///
/// Returns `Err` for non-downward queries (certain answers under order
/// constraints are not captured by the canonical solution) and propagates
/// chase failures (no solution ⇒ certain answers are trivially *all*
/// valuations; we surface the failure instead).
pub fn certain_answers(
    m: &Mapping,
    source: &Tree,
    query: &Pattern,
) -> Result<Vec<Valuation>, CertainAnswersError> {
    certain_answers_cached(m, source, query, &ChaseCache::new(m))
}

/// [`certain_answers`] against a caller-held [`ChaseCache`] built from the
/// same mapping, amortizing chase compilation across many sources.
pub fn certain_answers_cached(
    m: &Mapping,
    source: &Tree,
    query: &Pattern,
    chase: &ChaseCache,
) -> Result<Vec<Valuation>, CertainAnswersError> {
    if query.uses_next_sibling() || query.uses_following_sibling() {
        return Err(CertainAnswersError::OrderedQuery);
    }
    let canonical =
        canonical_solution_cached(m, source, chase).map_err(CertainAnswersError::NoSolution)?;
    let candidates = eval::all_matches(&canonical, query);
    // Null-freeness of each candidate is independent; fan the scan out
    // only for large answer sets — per-candidate work is a handful of
    // value-tag tests, so small sets are faster on one thread.
    if candidates.len() >= 1024 {
        let keep = xmlmap_par::par_map(&candidates, |v| v.values().all(|x| x.is_constant()));
        Ok(candidates
            .into_iter()
            .zip(keep)
            .filter_map(|(v, k)| k.then_some(v))
            .collect())
    } else {
        Ok(candidates
            .into_iter()
            .filter(|v| v.values().all(|x| x.is_constant()))
            .collect())
    }
}

/// Why certain answers could not be computed.
#[derive(Clone, Debug)]
pub enum CertainAnswersError {
    /// The query uses a horizontal axis.
    OrderedQuery,
    /// The source has no solution (or the mapping is outside the
    /// chaseable fragment).
    NoSolution(ChaseError),
}

impl std::fmt::Display for CertainAnswersError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertainAnswersError::OrderedQuery => {
                write!(f, "certain answers require a downward query")
            }
            CertainAnswersError::NoSolution(e) => write!(f, "no canonical solution: {e}"),
        }
    }
}

impl std::error::Error for CertainAnswersError {}

/// Deduplicates identical sibling subtrees sitting in repeatable slots,
/// bottom-up. The result is still a solution whenever the input was one
/// produced by the chase for a mapping without target `≠` conditions
/// (removing one of two identical subtrees cannot lose any pattern match —
/// the twin provides the same matches).
pub fn reduce_solution(m: &Mapping, solution: &Tree) -> Tree {
    let Some(nr) = m.target_dtd.nested_relational() else {
        return solution.clone();
    };
    // Rebuild the tree, skipping duplicate repeatable-slot children.
    fn rebuild(
        src: &Tree,
        node: NodeId,
        nr: &xmlmap_dtd::NestedRelationalView,
        out: &mut Tree,
        at: NodeId,
    ) {
        let mut seen: Vec<(xmlmap_trees::Name, String)> = Vec::new();
        for &child in src.children(node) {
            let label = src.label(child).clone();
            let repeatable = nr.mult(&label).is_some_and(Mult::repeatable);
            if repeatable {
                let fingerprint = format!("{:?}", src.subtree(child));
                if seen.contains(&(label.clone(), fingerprint.clone())) {
                    continue;
                }
                seen.push((label.clone(), fingerprint));
            }
            let new_child = out.add_child(at, label, src.attrs(child).iter().cloned());
            rebuild(src, child, nr, out, new_child);
        }
    }
    let mut out = Tree::with_root_attrs(
        solution.label(Tree::ROOT).clone(),
        solution.attrs(Tree::ROOT).iter().cloned(),
    );
    rebuild(solution, Tree::ROOT, &nr, &mut out, Tree::ROOT);
    debug_assert!(m.target_dtd.conforms(&out));
    out
}

/// Chases and reduces in one step.
pub fn reduced_solution(m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
    reduced_solution_cached(m, source, &ChaseCache::new(m))
}

/// [`reduced_solution`] against a caller-held [`ChaseCache`] built from the
/// same mapping.
pub fn reduced_solution_cached(
    m: &Mapping,
    source: &Tree,
    chase: &ChaseCache,
) -> Result<Tree, ChaseError> {
    Ok(reduce_solution(
        m,
        &canonical_solution_cached(m, source, chase)?,
    ))
}

/// Clio-style nesting (partitioned normal form): merges *sibling* nodes in
/// repeatable slots that share label **and attribute values**, recursively
/// combining their children (repeatable slots concatenate, non-repeatable
/// slots merge further). Turns the chase's one-subtree-per-firing output
/// into the naturally nested document — e.g. one `work` per title holding
/// all its `credit`s.
///
/// Safe (the result is still a solution) when every target pattern is
/// downward: node merging preserves child/descendant matches and never
/// removes values. For mappings with horizontal target patterns the input
/// is returned unchanged.
pub fn nest_solution(m: &Mapping, solution: &Tree) -> Tree {
    let horizontal = m
        .stds
        .iter()
        .any(|s| s.target.uses_next_sibling() || s.target.uses_following_sibling());
    let Some(_nr) = m.target_dtd.nested_relational() else {
        return solution.clone();
    };
    if horizontal {
        return solution.clone();
    }

    /// A merged node under construction.
    struct Merged {
        label: xmlmap_trees::Name,
        attrs: Vec<(xmlmap_trees::Name, xmlmap_trees::Value)>,
        children: Vec<Merged>,
    }

    type Attrs = Vec<(xmlmap_trees::Name, xmlmap_trees::Value)>;

    fn merge_children(src: &Tree, nodes: &[NodeId]) -> Vec<Merged> {
        // Gather all children of all merged source nodes, in order, and
        // group them by (label, attribute values). If a non-repeatable
        // slot ends up with two value-distinct groups, the final
        // conformance check fails and the caller keeps the original.
        let mut out: Vec<Merged> = Vec::new();
        let mut groups: Vec<(xmlmap_trees::Name, Attrs, Vec<NodeId>)> = Vec::new();
        for &n in nodes {
            for &c in src.children(n) {
                let label = src.label(c).clone();
                let attrs: Vec<_> = src.attrs(c).to_vec();
                let slot = groups
                    .iter_mut()
                    .find(|(l, a, _)| *l == label && *a == attrs);
                match slot {
                    Some((_, _, members)) => members.push(c),
                    None => groups.push((label, attrs, vec![c])),
                }
            }
        }
        for (label, attrs, members) in groups {
            out.push(Merged {
                label,
                attrs,
                children: merge_children(src, &members),
            });
        }
        out
    }

    fn build(out: &mut Tree, at: NodeId, merged: &Merged) {
        let id = out.add_child(at, merged.label.clone(), merged.attrs.iter().cloned());
        for c in &merged.children {
            build(out, id, c);
        }
    }

    let top = merge_children(solution, &[Tree::ROOT]);
    let mut out = Tree::with_root_attrs(
        solution.label(Tree::ROOT).clone(),
        solution.attrs(Tree::ROOT).iter().cloned(),
    );
    for c in &top {
        build(&mut out, Tree::ROOT, c);
    }
    if m.target_dtd.conforms(&out) {
        out
    } else {
        // Merging collided on a non-repeatable slot: keep the original.
        solution.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::canonical_solution;
    use crate::stds::Std;
    use xmlmap_dtd::Dtd;
    use xmlmap_trees::{tree, Value};

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
        Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        )
    }

    #[test]
    fn certain_answers_exclude_nulls() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ x, y",
            &["r/a(x) --> r/b(x, z)"], // z is existential: a null per tuple
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        // Asking for the first attribute: certain.
        let q1 = xmlmap_patterns::parse("r/b(x, y)").unwrap();
        let ans = certain_answers(&m, &src, &q1).unwrap();
        // Full tuples contain the null in y ⇒ nothing is certain.
        assert!(ans.is_empty());
        // Projection (empty tuple on b, value reached via wildcarding the
        // second attribute is not expressible — use a query on x alone via
        // a one-attribute pattern is an arity mismatch, so query b fully
        // but existentially): the pattern r/b(x, y) has no certain rows;
        // certain answers for "some b exists with x = 1" style queries:
        let q_exists = xmlmap_patterns::parse("r/b").unwrap();
        let ans = certain_answers(&m, &src, &q_exists).unwrap();
        assert_eq!(ans.len(), 1); // the empty valuation: certainly some b
    }

    #[test]
    fn certain_answers_on_copy_mapping() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let q = xmlmap_patterns::parse("r/b(x)").unwrap();
        let ans = certain_answers(&m, &src, &q).unwrap();
        let values: Vec<String> = ans
            .iter()
            .map(|v| v[&xmlmap_patterns::Var::new("x")].to_string())
            .collect();
        assert_eq!(values, ["1", "2"]);
    }

    #[test]
    fn ordered_queries_rejected() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let q = xmlmap_patterns::parse("r[b(x) ->* b(y)]").unwrap();
        assert!(matches!(
            certain_answers(&m, &Tree::new("r"), &q),
            Err(CertainAnswersError::OrderedQuery)
        ));
    }

    #[test]
    fn reduction_shrinks_duplicates() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb -> c\nb @ w\nc @ u",
            &["r[a(x), a(y)] --> r[b(x)/c(y), b(y)/c(x)]"],
        );
        // Two equal-valued a's: the chase creates many identical b-subtrees.
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "1") ]);
        let solution = canonical_solution(&m, &src).unwrap();
        let reduced = reduce_solution(&m, &solution);
        assert!(reduced.size() < solution.size());
        assert!(m.is_solution(&src, &reduced));
        // Exactly one distinct subtree remains: b(1)/c(1).
        assert_eq!(reduced.children(Tree::ROOT).len(), 1);
    }

    #[test]
    fn reduction_preserves_distinct_subtrees() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let solution = canonical_solution(&m, &src).unwrap();
        let reduced = reduce_solution(&m, &solution);
        assert_eq!(reduced.children(Tree::ROOT).len(), 2);
        assert!(m.is_solution(&src, &reduced));
    }

    #[test]
    fn reduction_ignores_non_repeatable_slots() {
        // Two c's under r would not be deduplicated (but can't occur under
        // a One slot anyway); sanity: single child kept.
        let m = mapping(
            "root r\nr -> a?\na @ v",
            "root r\nr -> c\nc @ w",
            &["r/a(x) --> r/c(x)"],
        );
        let src = tree!("r"["a"("v" = "1")]);
        let solution = canonical_solution(&m, &src).unwrap();
        let reduced = reduce_solution(&m, &solution);
        assert_eq!(reduced, solution);
    }

    #[test]
    fn nesting_merges_equal_attribute_siblings() {
        // Two firings put the same work twice with different credits; the
        // nested form holds one work with both credits.
        let m = mapping(
            "root c\nc -> b*\nb -> a+\nb @ t\na @ n",
            "root db\ndb -> work*\nwork -> credit*\nwork @ title\ncredit @ who",
            &["c/b(t)[a(n)] --> db/work(t)/credit(n)"],
        );
        let src = tree! {
            "c" [ "b"("t" = "DE") [ "a"("n" = "Arenas"), "a"("n" = "Libkin") ] ]
        };
        let chased = canonical_solution(&m, &src).unwrap();
        assert_eq!(chased.children(Tree::ROOT).len(), 2); // one work per firing
        let nested = nest_solution(&m, &chased);
        assert!(m.is_solution(&src, &nested));
        assert_eq!(nested.children(Tree::ROOT).len(), 1);
        let work = nested.children(Tree::ROOT)[0];
        assert_eq!(nested.children(work).len(), 2); // both credits
    }

    #[test]
    fn nesting_preserves_distinct_groups() {
        let m = mapping(
            "root c\nc -> b*\nb @ t",
            "root db\ndb -> work*\nwork @ title",
            &["c/b(t) --> db/work(t)"],
        );
        let src = tree!("c" [ "b"("t" = "X"), "b"("t" = "Y") ]);
        let nested = nest_solution(&m, &canonical_solution(&m, &src).unwrap());
        assert_eq!(nested.children(Tree::ROOT).len(), 2);
        assert!(m.is_solution(&src, &nested));
    }

    #[test]
    fn nesting_skips_horizontal_targets() {
        let m = mapping(
            "root c\nc -> b*\nb @ t",
            "root db\ndb -> work*\nwork @ title",
            &["c/b(t) --> db[work(t) ->* work(t)]"],
        );
        let src = tree!("c");
        let sol = canonical_solution(&m, &src);
        // Horizontal targets are outside the chase fragment anyway; use a
        // hand-built solution to exercise the guard.
        let handmade = tree!("db" [ "work"("title" = "X"), "work"("title" = "X") ]);
        assert_eq!(nest_solution(&m, &handmade), handmade);
        let _ = sol;
    }

    #[test]
    fn reduced_solution_one_step() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "1") ]);
        let t = reduced_solution(&m, &src).unwrap();
        assert_eq!(t.children(Tree::ROOT).len(), 1);
        assert_eq!(
            t.attr(t.children(Tree::ROOT)[0], "w"),
            Some(&Value::str("1"))
        );
    }
}
