//! Absolute consistency (paper §6).
//!
//! `ABSCONS(σ)`: does *every* `T ⊨ D_s` have a solution?
//!
//! Three procedures:
//!
//! * [`abscons_structural`] — Prop 6.1 (Π₂ᵖ): exact for value-free (SM°)
//!   mappings — every achievable source match set must have a satisfiable
//!   target side. *Not* valid with variables: the paper's §6 example
//!   (`r → a*` to `r → a` with `r/a(x) → r/a(x)`) is structurally fine but
//!   absolutely inconsistent, because two distinct values cannot share one
//!   target slot.
//! * [`abscons_nr_ptime`] — Thm 6.3 (PTIME): nested-relational DTDs +
//!   fully-specified stds, via the rigidity analysis (see module docs of
//!   DESIGN.md §3.4). Reconstructed from the theorem statement (the
//!   conference paper omits proofs); property-tested against the bounded
//!   oracle.
//! * [`crate::bounded::abscons_violation_bounded`] — brute-force reference
//!   oracle / semi-procedure for the general case (in EXPSPACE,
//!   NEXPTIME-hard; Thm 6.2).

use crate::stds::Mapping;
use std::collections::BTreeMap;
use xmlmap_dtd::NestedRelationalView;
use xmlmap_patterns::sat::{BudgetExceeded, SatCache};
use xmlmap_patterns::{LabelTest, ListItem, Pattern, Var};
use xmlmap_trees::{Name, Tree};

/// Result of an absolute-consistency check.
#[derive(Clone, Debug)]
pub enum AbsConsAnswer {
    /// Every source document has a solution.
    AbsolutelyConsistent,
    /// Some source document has no solution.
    Violated {
        /// A source document witnessing the violation, when the procedure
        /// can produce one.
        witness: Option<Tree>,
        /// Human-readable explanation of the violated condition.
        reason: String,
    },
}

impl AbsConsAnswer {
    /// Boolean view.
    pub fn holds(&self) -> bool {
        matches!(self, AbsConsAnswer::AbsolutelyConsistent)
    }
}

/// Prop 6.1: absolute consistency of **value-free** mappings (Π₂ᵖ).
///
/// Exact when no std mentions a variable (SM°); returns `Err` messages
/// otherwise rather than silently giving the wrong answer.
///
/// Convenience wrapper over [`abscons_structural_cached`] with fresh
/// caches; repeated probes should hold the [`SatCache`]s.
pub fn abscons_structural(
    m: &Mapping,
    budget: usize,
) -> Result<Result<AbsConsAnswer, BudgetExceeded>, String> {
    let src = SatCache::new(&m.source_dtd).with_context("absolute consistency (source)");
    let tgt = SatCache::new(&m.target_dtd).with_context("absolute consistency (target)");
    abscons_structural_cached(m, &src, &tgt, budget)
}

/// [`abscons_structural`] against caller-held [`SatCache`]s.
///
/// *Every* achievable source match set `J` must have a satisfiable target
/// side. One joint run over all target patterns answers every `J` at once:
/// `J`'s side is satisfiable iff some achievable target match set `K ⊇ J`
/// (its witness matches all of `J`; conversely a tree matching all of `J`
/// realises an exact match set containing `J`).
pub fn abscons_structural_cached(
    m: &Mapping,
    src: &SatCache,
    tgt: &SatCache,
    budget: usize,
) -> Result<Result<AbsConsAnswer, BudgetExceeded>, String> {
    for s in &m.stds {
        if !s.source.variables().is_empty() || !s.target.variables().is_empty() {
            return Err(format!(
                "abscons_structural applies to SM° (value-free) mappings only; \
                 std `{s}` mentions variables"
            ));
        }
    }
    let sources: Vec<&Pattern> = m.stds.iter().map(|s| &s.source).collect();
    let sets = match src.achievable_match_sets(&sources, budget) {
        Ok(s) => s,
        Err(b) => return Ok(Err(b)),
    };
    if sets.is_empty() {
        // The source DTD admits no tree at all: vacuously consistent.
        return Ok(Ok(AbsConsAnswer::AbsolutelyConsistent));
    }
    let targets: Vec<&Pattern> = m.stds.iter().map(|s| &s.target).collect();
    let ks = match tgt.achievable_match_sets(&targets, budget) {
        Ok(k) => k,
        Err(b) => return Ok(Err(b)),
    };
    for (j, witness) in sets.iter() {
        if !ks.iter().any(|(k, _)| j.is_subset(k)) {
            return Ok(Ok(AbsConsAnswer::Violated {
                witness: Some(witness.clone()),
                reason: format!("match set {j:?} has an unsatisfiable target side"),
            }));
        }
    }
    Ok(Ok(AbsConsAnswer::AbsolutelyConsistent))
}

/// A source DTD position: the (label, attribute index) a variable reads.
#[derive(Clone, PartialEq, Eq, Debug)]
struct SourcePos {
    label: Name,
    attr: usize,
    rigid: bool,
}

/// Collects, for each variable of a fully-specified pattern, the (label,
/// attribute-index) positions it occurs at.
fn var_positions(p: &Pattern, out: &mut BTreeMap<Var, Vec<(Name, usize)>>) {
    if let LabelTest::Label(l) = &p.label {
        for (i, v) in p.vars.iter().enumerate() {
            out.entry(v.clone()).or_default().push((l.clone(), i));
        }
    }
    for item in &p.list {
        match item {
            ListItem::Seq { members, .. } => {
                for m in members {
                    var_positions(m, out);
                }
            }
            ListItem::Descendant(d) => var_positions(d, out),
        }
    }
}

/// Merge classes of a fully-specified target pattern: pattern nodes forced
/// to map to the same document node. The root is one class; children of
/// merged classes with the same label whose slot is non-repeatable merge.
/// Returns, per class, the list of member pattern nodes' variable tuples
/// (with their common label).
fn merge_classes<'p>(
    pattern: &'p Pattern,
    nr: &NestedRelationalView,
) -> Vec<(Name, Vec<&'p [Var]>)> {
    // Work queue of classes; each class is a list of pattern nodes that
    // share one document node. Children partition by label.
    let mut out = Vec::new();
    let root_label = match &pattern.label {
        LabelTest::Label(l) => l.clone(),
        LabelTest::Wildcard => return out, // outside fragment; caller rejects
    };
    let mut queue: Vec<(Name, Vec<&Pattern>)> = vec![(root_label, vec![pattern])];
    while let Some((label, nodes)) = queue.pop() {
        out.push((
            label.clone(),
            nodes.iter().map(|n| n.vars.as_slice()).collect(),
        ));
        // Group the children of ALL nodes in the class by label.
        let mut by_label: BTreeMap<Name, Vec<&Pattern>> = BTreeMap::new();
        for node in nodes {
            for item in &node.list {
                if let ListItem::Seq { members, .. } = item {
                    for child in members {
                        if let LabelTest::Label(l) = &child.label {
                            by_label.entry(l.clone()).or_default().push(child);
                        }
                    }
                }
            }
        }
        for (l, kids) in by_label {
            let repeatable = nr.mult(&l).is_some_and(|m| m.repeatable());
            if repeatable {
                // Each child can have its own document node.
                for kid in kids {
                    queue.push((l.clone(), vec![kid]));
                }
            } else {
                // All must share the unique (per-parent) node.
                queue.push((l.clone(), kids));
            }
        }
    }
    out
}

/// Thm 6.3 (PTIME case): absolute consistency over nested-relational DTDs
/// with fully-specified stds and no data comparisons.
///
/// Returns `None` when the mapping is outside the fragment. The algorithm
/// (rigidity analysis, DESIGN.md §3.4):
///
/// 1. stds with unsatisfiable sources are vacuous; if a fired std's target
///    is unsatisfiable w.r.t. `D_t`, absolute consistency fails;
/// 2. within one firing, pattern nodes forced onto the same document node
///    (same label under a non-repeatable slot) must receive equal values —
///    guaranteed only if the variables coincide or both read the same
///    *rigid* source position;
/// 3. across firings (and stds), a *rigid* target slot holds a single value
///    in the whole document — every shared variable written there must read
///    a rigid source position, and all of them the same one.
pub fn abscons_nr_ptime(m: &Mapping) -> Option<AbsConsAnswer> {
    let src_nr = m.source_dtd.nested_relational()?;
    let tgt_nr = m.target_dtd.nested_relational()?;
    if !src_nr.is_tree_shaped() || !tgt_nr.is_tree_shaped() {
        return None;
    }
    if !m.is_fully_specified() {
        return None;
    }
    let sig = m.signature();
    if sig.has_data_comparison() || sig.wildcard {
        return None;
    }

    // Global table: rigid target slot → the unique rigid source position
    // feeding it (if any shared variable does).
    let mut rigid_slots: BTreeMap<(Name, usize), (usize, Var, SourcePos)> = BTreeMap::new();

    for (si, s) in m.stds.iter().enumerate() {
        // 1. Vacuous or violated?
        match xmlmap_patterns::sat::satisfiable_nr(&m.source_dtd, &s.source) {
            Some(true) => {}
            Some(false) => continue, // never fires
            None => return None,
        }
        match xmlmap_patterns::sat::satisfiable_nr(&m.target_dtd, &s.target) {
            Some(true) => {}
            Some(false) => {
                return Some(AbsConsAnswer::Violated {
                    witness: None,
                    reason: format!(
                        "std #{si}: source fires on some document but target \
                         pattern is unsatisfiable w.r.t. the target DTD"
                    ),
                })
            }
            None => return None,
        }

        // Source positions per variable (each source variable occurs once
        // in the fragment, but tolerate repeats by taking all positions).
        let mut src_pos: BTreeMap<Var, Vec<(Name, usize)>> = BTreeMap::new();
        var_positions(&s.source, &mut src_pos);
        let pos_of = |v: &Var| -> Option<SourcePos> {
            let ps = src_pos.get(v)?;
            let (label, attr) = ps.first()?.clone();
            let rigid = src_nr.is_rigid(&label);
            Some(SourcePos { label, attr, rigid })
        };

        // 2. Within-firing merge constraints.
        for (label, tuples) in merge_classes(&s.target, &tgt_nr) {
            let arity = tuples.iter().map(|t| t.len()).max().unwrap_or(0);
            for k in 0..arity {
                let vars_at_k: Vec<&Var> = tuples.iter().filter_map(|t| t.get(k)).collect();
                for pair in vars_at_k.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    if a == b {
                        continue;
                    }
                    // Equality must be guaranteed per firing: both shared
                    // and reading the same rigid source position; a pair
                    // involving an existential variable is always fine.
                    // A pair involving an existential variable is always
                    // satisfiable (choose it equal); two shared variables
                    // need the identical rigid source position.
                    if let (Some(pa), Some(pb)) = (pos_of(a), pos_of(b)) {
                        let same_rigid =
                            pa.rigid && pb.rigid && pa.label == pb.label && pa.attr == pb.attr;
                        if !same_rigid {
                            return Some(AbsConsAnswer::Violated {
                                witness: None,
                                reason: format!(
                                    "std #{si}: variables {a} and {b} are forced \
                                     into the same node {label}(…) but their \
                                     source values can differ"
                                ),
                            });
                        }
                    }
                }
            }

            // 3. Cross-firing constraints at rigid target slots.
            if tgt_nr.is_rigid(&label) {
                for tuple in &tuples {
                    for (k, v) in tuple.iter().enumerate() {
                        let Some(p) = pos_of(v) else { continue }; // existential
                        if !p.rigid {
                            return Some(AbsConsAnswer::Violated {
                                witness: None,
                                reason: format!(
                                    "std #{si}: variable {v} writes rigid target \
                                     slot {label}@{k} but reads the repeatable \
                                     source position {}@{}",
                                    p.label, p.attr
                                ),
                            });
                        }
                        match rigid_slots.get(&(label.clone(), k)) {
                            None => {
                                rigid_slots.insert((label.clone(), k), (si, v.clone(), p.clone()));
                            }
                            Some((oi, ov, op)) => {
                                if op.label != p.label || op.attr != p.attr {
                                    return Some(AbsConsAnswer::Violated {
                                        witness: None,
                                        reason: format!(
                                            "rigid target slot {label}@{k} is written \
                                             from two different source positions: \
                                             {ov} in std #{oi} and {v} in std #{si}"
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    Some(AbsConsAnswer::AbsolutelyConsistent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::{abscons_violation_bounded, BoundedOutcome};
    use crate::stds::Std;
    use xmlmap_dtd::Dtd;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
        Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        )
    }

    const BUDGET: usize = 500_000;

    #[test]
    fn paper_counterexample_not_abs_consistent() {
        // §6: r → a* to r → a with r/a(x) → r/a(x).
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> a\na @ v",
            &["r/a(x) --> r/a(x)"],
        );
        let ans = abscons_nr_ptime(&m).expect("inside fragment");
        assert!(!ans.holds());
        // …but the value-stripped version IS absolutely consistent,
        // exactly as the paper observes.
        let stripped = mapping("root r\nr -> a*", "root r\nr -> a", &["r/a --> r/a"]);
        let ans = abscons_structural(&stripped, BUDGET).unwrap().unwrap();
        assert!(ans.holds());
    }

    #[test]
    fn starred_target_slot_is_fine() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        assert!(abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn rigid_source_to_rigid_target_is_fine() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        assert!(abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn optional_rigid_source_is_still_single_valued() {
        // a? is optional but never has two occurrences: still rigid.
        let m = mapping(
            "root r\nr -> a?\na @ v",
            "root r\nr -> b\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        assert!(abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn two_stds_conflicting_on_rigid_slot() {
        // Both stds write the unique target c from different source slots.
        let m = mapping(
            "root r\nr -> a, b\na @ v\nb @ v",
            "root r\nr -> c\nc @ w",
            &["r/a(x) --> r/c(x)", "r/b(y) --> r/c(y)"],
        );
        let ans = abscons_nr_ptime(&m).expect("fragment");
        assert!(!ans.holds());
        // The bounded oracle agrees: there is a violating source.
        assert!(matches!(
            abscons_violation_bounded(&m, 3, 3),
            BoundedOutcome::Witness(_)
        ));
    }

    #[test]
    fn two_stds_same_rigid_position_ok() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> c, d\nc @ w\nd @ w",
            &["r/a(x) --> r/c(x)", "r/a(y) --> r/d(y)"],
        );
        assert!(abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn within_firing_merge_conflict() {
        // Target forces b(x) and b(y) onto the same unique b node.
        let m = mapping(
            "root r\nr -> a\na @ v, w",
            "root r\nr -> b\nb @ u",
            &["r/a(x, y) --> r[b(x), b(y)]"],
        );
        let ans = abscons_nr_ptime(&m).expect("fragment");
        assert!(!ans.holds());
        assert!(matches!(
            abscons_violation_bounded(&m, 2, 2),
            BoundedOutcome::Witness(_)
        ));
    }

    #[test]
    fn within_firing_merge_with_starred_slot_ok() {
        // b* lets each pattern b-node take its own document node.
        let m = mapping(
            "root r\nr -> a\na @ v, w",
            "root r\nr -> b*\nb @ u",
            &["r/a(x, y) --> r[b(x), b(y)]"],
        );
        assert!(abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn unsatisfiable_target_detected() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ w",
            &["r/a(x) --> r/nosuch(x)"],
        );
        assert!(!abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn vacuous_std_ignored() {
        // Source pattern unsatisfiable ⇒ std never fires ⇒ holds.
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ w",
            &["r/zz(x) --> r/nosuch(x)"],
        );
        assert!(abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn existential_in_rigid_slot_ok() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b\nb @ w, u",
            // z is existential: choose one value for the unique b node.
            &["r/a(x) --> r[b(z, z)]"],
        );
        assert!(abscons_nr_ptime(&m).expect("fragment").holds());
    }

    #[test]
    fn outside_fragment_rejected() {
        // descendant: not fully specified.
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ w",
            &["r//a(x) --> r/b(x)"],
        );
        assert!(abscons_nr_ptime(&m).is_none());
        // inequality.
        let m2 = mapping(
            "root r\nr -> a, a\na @ v",
            "root r\nr -> b\nb @ w",
            &["r[a(x), a(y)] ; x != y --> r/b(x)"],
        );
        assert!(abscons_nr_ptime(&m2).is_none());
    }

    #[test]
    fn structural_rejects_valued_mappings() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> a\na @ v",
            &["r/a(x) --> r/a(x)"],
        );
        assert!(abscons_structural(&m, BUDGET).is_err());
    }

    #[test]
    fn structural_violation_detected() {
        // Every nonempty source (a is mandatory) fires the std, but the
        // target side is unsatisfiable.
        let m = mapping("root r\nr -> a", "root r\nr -> b", &["r/a --> r/c"]);
        let ans = abscons_structural(&m, BUDGET).unwrap().unwrap();
        let AbsConsAnswer::Violated { witness, .. } = ans else {
            panic!("expected violation");
        };
        assert!(m.source_dtd.conforms(&witness.unwrap()));
        // Optional source: the empty document avoids firing, but some
        // document still fires it ⇒ still violated.
        let m2 = mapping("root r\nr -> a?", "root r\nr -> b", &["r/a --> r/c"]);
        assert!(!abscons_structural(&m2, BUDGET).unwrap().unwrap().holds());
        // Unsatisfiable target never fired ⇒ holds.
        let m3 = mapping("root r\nr -> a?", "root r\nr -> b", &["r/zz --> r/c"]);
        assert!(abscons_structural(&m3, BUDGET).unwrap().unwrap().holds());
    }
}
