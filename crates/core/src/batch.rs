//! The batch query driver: fan a job list across workers sharing one
//! [`EngineContext`].
//!
//! Mapping workloads are naturally batch-shaped — many membership checks
//! against one mapping, consistency probes across schema variants,
//! composition chains — so the driver takes a list of [`BatchJob`]s and
//! runs them on `workers` threads over a *shared* context: every job
//! fetches its compiled caches ([`SatCache`](xmlmap_patterns::SatCache)
//! indexes, chase plans, determinized automata) from the context, so a
//! batch over `k` distinct schemas pays `k` compilations no matter how
//! many jobs or threads there are.
//!
//! Guarantees:
//!
//! * **Deterministic ordering** — results come back in job order
//!   regardless of the worker count (the fan-out preserves input order).
//! * **Per-job budgets** — every budgeted procedure (consistency,
//!   absolute consistency, subschema) carries its own state budget, so
//!   one pathological query fails alone with a budget error instead of
//!   starving the batch.
//! * **Deterministic results** — every procedure the driver dispatches is
//!   deterministic, so batches whose jobs stay within budget produce
//!   byte-identical [`JobResult`]s on any worker count. The one carve-out:
//!   verdicts memoized by the shared caches are budget-*independent* (see
//!   `AutomataCache`), so a job whose own budget would have been exceeded
//!   can still succeed when a bigger-budget job with the same cache key
//!   happened to run first — budget-exceeded *errors* are never cached,
//!   but whether that under-budgeted job errors or hits the memo depends
//!   on scheduling. Give same-key jobs the same budget to stay fully
//!   deterministic (the jobfile format defaults every budget, so this is
//!   the normal case).
//!
//! The CLI front end is `xmlmap batch <jobfile>`; the jobfile syntax is
//! documented at [`parse_jobfile`].

use crate::abscons::{abscons_nr_ptime, AbsConsAnswer};
use crate::consistency::ConsAnswer;
use crate::engine::EngineContext;
use crate::stds::Mapping;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xmlmap_automata::SubschemaViolation;
use xmlmap_dtd::Dtd;
use xmlmap_patterns::{Pattern, StreamPattern};
use xmlmap_trees::Tree;

/// Default per-job state budget (matches the CLI's single-query budget).
pub const DEFAULT_BUDGET: usize = 50_000_000;

/// Default middle-document node bound for composition-membership jobs.
pub const DEFAULT_MAX_MIDDLE_NODES: usize = 6;

/// One batch query. Schemas and mappings are `Arc`-shared so a cache-heavy
/// batch (hundreds of jobs over a handful of schemas) holds each parsed
/// artifact once.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Display label for result rendering (the jobfile line, for CLI jobs).
    pub label: String,
    /// The query to run.
    pub kind: JobKind,
}

/// The query kinds the driver understands.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// `(source, target) ∈ ⟦mapping⟧`?
    Membership {
        /// The mapping.
        mapping: Arc<Mapping>,
        /// Source document.
        source: Tree,
        /// Candidate target document.
        target: Tree,
    },
    /// `CONS(σ)` — is the mapping consistent?
    Consistent {
        /// The mapping.
        mapping: Arc<Mapping>,
        /// State budget for the type-fixpoint engine.
        budget: usize,
    },
    /// `ABSCONS(σ)` — is the mapping absolutely consistent?
    AbsCons {
        /// The mapping.
        mapping: Arc<Mapping>,
        /// State budget for the type-fixpoint engine.
        budget: usize,
    },
    /// Is every `d1` document a `d2` document?
    Subschema {
        /// Candidate subschema.
        d1: Arc<Dtd>,
        /// Candidate superschema.
        d2: Arc<Dtd>,
        /// State budget for the inclusion fixpoint.
        budget: usize,
    },
    /// Stream-validate a document (and optionally evaluate a pattern) in
    /// O(depth) memory; the document is opened at *run* time and never
    /// materialised as a tree.
    Stream {
        /// The schema to validate against.
        dtd: Arc<Dtd>,
        /// Resolved path of the document to stream.
        path: PathBuf,
        /// Optional downward-fragment pattern (streamability is checked
        /// at jobfile parse time).
        pattern: Option<Pattern>,
    },
    /// Stream-chase a source document into its canonical solution in
    /// O(depth + firings) memory; like [`JobKind::Stream`], the document
    /// is opened at *run* time and never materialised as a tree.
    ChaseStream {
        /// The mapping to chase under (streamability of every std source
        /// is checked at jobfile parse time).
        mapping: Arc<Mapping>,
        /// Resolved path of the source document to stream.
        path: PathBuf,
    },
    /// Open an incremental-chase session over `source`, apply an update
    /// script, and report the final solution verdict. Self-contained (the
    /// session lives and dies inside the job), so batches stay
    /// deterministic across worker counts; long-lived sessions belong to
    /// `xmlmap serve`'s `DELTA` verbs.
    DeltaApply {
        /// The mapping.
        mapping: Arc<Mapping>,
        /// The initial source document.
        source: Tree,
        /// The parsed update script (parse errors surface at jobfile
        /// parse time, like every other malformed job).
        updates: Arc<Vec<crate::chase::Update>>,
    },
    /// Is `(source, target)` in the semantic composition `⟦m12⟧ ∘ ⟦m23⟧`?
    CompositionMember {
        /// First mapping.
        m12: Arc<Mapping>,
        /// Second mapping.
        m23: Arc<Mapping>,
        /// Source document (over `m12.source_dtd`).
        source: Tree,
        /// Target document (over `m23.target_dtd`).
        target: Tree,
        /// Node bound for the middle-document search.
        max_middle_nodes: usize,
    },
}

/// The outcome of one job. `Answer` is a completed yes/no verdict;
/// `Failed` is a clean per-job error (budget exhausted, outside a
/// fragment) that leaves the rest of the batch untouched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobResult {
    /// The query completed.
    Answer {
        /// The boolean verdict.
        yes: bool,
        /// Human-readable detail (deterministic; no timings, no paths).
        detail: String,
    },
    /// The query could not be answered.
    Failed {
        /// Why (deterministic; budget errors include the job's own budget).
        error: String,
    },
}

impl std::fmt::Display for JobResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobResult::Answer { detail, .. } => write!(f, "{detail}"),
            JobResult::Failed { error } => write!(f, "error: {error}"),
        }
    }
}

/// The default worker count for [`run_batch`]: the host's available
/// parallelism (re-exported so front ends need no direct `xmlmap-par`
/// dependency).
pub fn default_workers() -> usize {
    xmlmap_par::worker_count()
}

/// Runs one job against the shared context.
pub fn run_job(ctx: &EngineContext, job: &BatchJob) -> JobResult {
    match &job.kind {
        JobKind::Membership {
            mapping,
            source,
            target,
        } => {
            let yes = mapping.is_solution(source, target);
            JobResult::Answer {
                yes,
                detail: if yes { "solution" } else { "NOT a solution" }.to_string(),
            }
        }
        JobKind::Consistent { mapping, budget } => match ctx.consistent(mapping, *budget) {
            Ok(ConsAnswer::Consistent { source, .. }) => JobResult::Answer {
                yes: true,
                detail: format!("consistent (witness source has {} nodes)", source.size()),
            },
            Ok(ConsAnswer::Inconsistent) => JobResult::Answer {
                yes: false,
                detail: "INCONSISTENT".to_string(),
            },
            Err(e) => JobResult::Failed {
                error: e.to_string(),
            },
        },
        JobKind::AbsCons { mapping, budget } => {
            if let Some(ans) = abscons_nr_ptime(mapping) {
                let yes = ans.holds();
                JobResult::Answer {
                    yes,
                    detail: match ans {
                        AbsConsAnswer::AbsolutelyConsistent => {
                            "absolutely consistent (Thm 6.3 fragment)".to_string()
                        }
                        AbsConsAnswer::Violated { reason, .. } => {
                            format!("NOT absolutely consistent: {reason}")
                        }
                    },
                }
            } else {
                match ctx.abscons_structural(mapping, *budget) {
                    Ok(Ok(AbsConsAnswer::AbsolutelyConsistent)) => JobResult::Answer {
                        yes: true,
                        detail: "absolutely consistent (SM° structural, Prop 6.1)".to_string(),
                    },
                    Ok(Ok(AbsConsAnswer::Violated { reason, .. })) => JobResult::Answer {
                        yes: false,
                        detail: format!("NOT absolutely consistent: {reason}"),
                    },
                    Ok(Err(budget_err)) => JobResult::Failed {
                        error: budget_err.to_string(),
                    },
                    Err(outside) => JobResult::Failed {
                        error: format!(
                            "outside the exact ABSCONS fragments \
                             (batch runs no bounded search): {outside}"
                        ),
                    },
                }
            }
        }
        JobKind::Subschema { d1, d2, budget } => match ctx.subschema(d1, d2, *budget) {
            Ok(None) => JobResult::Answer {
                yes: true,
                detail: "subschema holds".to_string(),
            },
            Ok(Some(SubschemaViolation::Document(t))) => JobResult::Answer {
                yes: false,
                detail: format!("NOT a subschema (counterexample has {} nodes)", t.size()),
            },
            Ok(Some(SubschemaViolation::AttributeMismatch { label, left, right })) => {
                JobResult::Answer {
                    yes: false,
                    detail: format!(
                        "NOT a subschema: element {label} has attributes {left:?} vs {right:?}"
                    ),
                }
            }
            Err(e) => JobResult::Failed {
                error: e.to_string(),
            },
        },
        JobKind::Stream { dtd, path, pattern } => match std::fs::File::open(path) {
            Err(e) => JobResult::Failed {
                error: format!("cannot open {}: {e}", path.display()),
            },
            Ok(file) => {
                match ctx.stream_document(dtd, pattern.as_ref(), std::io::BufReader::new(file)) {
                    Err(e) => JobResult::Failed {
                        error: e.to_string(),
                    },
                    Ok(out) => {
                        let shape = format!(
                            "{} elements, depth {}",
                            out.stats.elements, out.stats.peak_depth
                        );
                        match (&out.violation, out.matched) {
                            (Some(v), _) => JobResult::Answer {
                                yes: false,
                                detail: v.clone(),
                            },
                            (None, None) => JobResult::Answer {
                                yes: true,
                                detail: format!("conforms ({shape})"),
                            },
                            (None, Some(true)) => JobResult::Answer {
                                yes: true,
                                detail: format!("conforms and matches ({shape})"),
                            },
                            (None, Some(false)) => JobResult::Answer {
                                yes: false,
                                detail: format!("conforms but does NOT match ({shape})"),
                            },
                        }
                    }
                }
            }
        },
        JobKind::ChaseStream { mapping, path } => match std::fs::File::open(path) {
            Err(e) => JobResult::Failed {
                error: format!("cannot open {}: {e}", path.display()),
            },
            Ok(file) => match ctx.chase_stream(mapping, std::io::BufReader::new(file)) {
                Err(e) => JobResult::Failed {
                    error: e.to_string(),
                },
                Ok(out) => {
                    let shape = format!(
                        "{} firing(s), {} elements, depth {}",
                        out.firings, out.stats.elements, out.stats.peak_depth
                    );
                    match (&out.violation, out.solution) {
                        (Some(v), _) => JobResult::Answer {
                            yes: false,
                            detail: v.clone(),
                        },
                        (None, Some(Ok(tree))) => JobResult::Answer {
                            yes: true,
                            detail: format!("chased ({shape}, target has {} nodes)", tree.size()),
                        },
                        (None, Some(Err(e))) => JobResult::Answer {
                            yes: false,
                            detail: format!("no solution: {e}"),
                        },
                        (None, None) => unreachable!("no violation implies a verdict"),
                    }
                }
            },
        },
        JobKind::DeltaApply {
            mapping,
            source,
            updates,
        } => {
            let mut session = ctx.delta_session(mapping, source.clone());
            match session.apply_all(updates) {
                Err(e) => {
                    ctx.record_delta(session.stats());
                    JobResult::Failed { error: e }
                }
                Ok(applied) => {
                    let stats = session.stats();
                    ctx.record_delta(stats);
                    let shape = format!(
                        "{applied} update(s), {} refire(s), {} skip(s)",
                        stats.refires, stats.skips
                    );
                    match session.canonical_solution() {
                        Ok(solution) => JobResult::Answer {
                            yes: true,
                            detail: format!(
                                "delta-chased ({shape}, target has {} nodes)",
                                solution.size()
                            ),
                        },
                        Err(e) => JobResult::Answer {
                            yes: false,
                            detail: format!("no solution after updates ({shape}): {e}"),
                        },
                    }
                }
            }
        }
        JobKind::CompositionMember {
            m12,
            m23,
            source,
            target,
            max_middle_nodes,
        } => match ctx.composition_member(m12, m23, source, target, *max_middle_nodes) {
            Some(middle) => JobResult::Answer {
                yes: true,
                detail: format!(
                    "in the composition (middle document has {} nodes)",
                    middle.size()
                ),
            },
            None => JobResult::Answer {
                yes: false,
                detail: format!(
                    "NOT in the composition (no middle document within {max_middle_nodes} nodes)"
                ),
            },
        },
    }
}

/// Runs every job over the shared context on `workers` threads, returning
/// results **in job order** regardless of the worker count. `workers <= 1`
/// runs inline on the calling thread.
pub fn run_batch(ctx: &EngineContext, jobs: &[BatchJob], workers: usize) -> Vec<JobResult> {
    xmlmap_par::par_map_workers(jobs, workers, |job| run_job(ctx, job))
}

/// Renders a finished batch in the CLI's stdout format — one
/// `[index] label: result` line per job plus a summary line. Shared by the
/// CLI and the determinism tests so "byte-identical output" means this
/// exact rendering.
pub fn render_batch(jobs: &[BatchJob], results: &[JobResult]) -> String {
    let labeled: Vec<(String, JobResult)> = jobs
        .iter()
        .zip(results)
        .map(|(job, result)| (job.label.clone(), result.clone()))
        .collect();
    render_results(&labeled)
}

/// The rendering behind [`render_batch`], over bare `(label, result)`
/// pairs. `xmlmap client` reassembles daemon responses into this exact
/// format, so a serve/client round trip is byte-equivalent to
/// `xmlmap batch` over the same jobfile.
pub fn render_results(labeled: &[(String, JobResult)]) -> String {
    let mut out = String::new();
    let (mut yes, mut no, mut failed) = (0usize, 0usize, 0usize);
    for (i, (label, result)) in labeled.iter().enumerate() {
        out.push_str(&format!("[{}] {label}: {result}\n", i + 1));
        match result {
            JobResult::Answer { yes: true, .. } => yes += 1,
            JobResult::Answer { yes: false, .. } => no += 1,
            JobResult::Failed { .. } => failed += 1,
        }
    }
    out.push_str(&format!(
        "-- {} job(s): {yes} yes, {no} no, {failed} failed\n",
        labeled.len()
    ));
    out
}

/// Parses a jobfile into jobs, loading referenced files relative to `dir`
/// (normally the jobfile's directory).
///
/// Syntax — one job per line; blank lines and `#` comments are skipped;
/// fields are whitespace-separated; `[budget]` and `[max-middle]`
/// default to [`DEFAULT_BUDGET`] and [`DEFAULT_MAX_MIDDLE_NODES`]:
///
/// ```text
/// member         <mapping> <source.xml> <target.xml>
/// consistent     <mapping> [budget]
/// abscons        <mapping> [budget]
/// subschema      <d1.dtd> <d2.dtd> [budget]
/// compose-member <m12> <m23> <source.xml> <target.xml> [max-middle]
/// stream         <d.dtd> <doc.xml> [pattern...]
/// chase-stream   <mapping> <source.xml>
/// delta-apply    <mapping> <source.xml> <updatefile>
/// ```
///
/// A `stream` job validates `doc.xml` against the schema (and, when the
/// trailing fields give a pattern — they are re-joined with spaces, so
/// patterns may contain whitespace — evaluates membership) in O(depth)
/// memory: the document is opened when the job *runs* and is never
/// loaded as a tree, so jobfiles can point at documents far larger than
/// memory. Patterns must lie in the streamable downward fragment;
/// anything else fails at parse time with a diagnostic.
///
/// A `chase-stream` job streams `source.xml` once, enumerating std
/// firings, and chases them into the canonical solution without ever
/// materialising the source tree. Every std source pattern must lie in
/// the streamable downward fragment; anything else fails at parse time
/// with a diagnostic naming the offending std.
///
/// A `delta-apply` job opens an incremental-chase session over the
/// source document, applies the whole update script
/// ([`crate::chase::parse_updates`] syntax; parse errors fail the
/// jobfile), and reports whether the *final* document has a canonical
/// solution. Each job's session is private to the job, so results stay
/// byte-identical across worker counts.
///
/// Mappings and DTDs are interned by path, so a 200-line jobfile over one
/// mapping parses it once and every job shares the `Arc`. Documents are
/// attribute-normalized against the relevant schema on load (like the
/// single-query CLI commands). On any malformed line or unreadable file
/// the whole parse fails with one clean error *per offending line*; no
/// jobs run.
pub fn parse_jobfile(text: &str, dir: &Path) -> Result<Vec<BatchJob>, Vec<String>> {
    let mut parser = JobParser::new(dir);
    let mut jobs = Vec::new();
    let mut errors = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parser.parse(line) {
            Ok(job) => jobs.push(job),
            Err(e) => errors.push(format!("line {}: {e}", lineno + 1)),
        }
    }
    if errors.is_empty() {
        Ok(jobs)
    } else {
        Err(errors)
    }
}

/// A line-at-a-time jobfile parser with the same path-interning loader as
/// [`parse_jobfile`]. The `xmlmap serve` daemon keeps one of these alive
/// for its whole lifetime, so a long-lived request stream over a handful
/// of schema files parses each file once; note that interning is by
/// *path*, so a file edited under a running daemon keeps its first-loaded
/// contents until restart.
pub struct JobParser {
    loader: Loader,
}

impl JobParser {
    /// A parser resolving job-line paths relative to `dir`.
    pub fn new(dir: &Path) -> JobParser {
        JobParser {
            loader: Loader::new(dir),
        }
    }

    /// Loads a mapping through the parser's interning loader. The serve
    /// daemon's `DELTA OPEN` verb uses this so delta sessions share the
    /// same per-path mapping instances as ordinary job lines.
    pub fn load_mapping(&mut self, path: &str) -> Result<Arc<Mapping>, String> {
        self.loader.mapping(path)
    }

    /// Loads a document and normalizes its attribute order against `dtd`
    /// (the same loading path job lines use).
    pub fn load_tree(&mut self, path: &str, dtd: &Dtd) -> Result<Tree, String> {
        self.loader.tree(path, dtd)
    }

    /// Reads a raw file relative to the parser's root directory
    /// (updatefiles for `DELTA APPLY`).
    pub fn read_file(&self, path: &str) -> Result<String, String> {
        self.loader.read(path)
    }

    /// Parses one job line (comments and blank lines are errors here —
    /// callers filter them, as [`parse_jobfile`] does).
    pub fn parse(&mut self, line: &str) -> Result<BatchJob, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Err("empty job line".to_string());
        }
        Ok(BatchJob {
            label: line.to_string(),
            kind: parse_line(line, &mut self.loader)?,
        })
    }
}

/// Path-interning loader for mappings and DTDs.
struct Loader {
    dir: PathBuf,
    mappings: HashMap<String, Arc<Mapping>>,
    dtds: HashMap<String, Arc<Dtd>>,
}

impl Loader {
    fn new(dir: &Path) -> Loader {
        Loader {
            dir: dir.to_path_buf(),
            mappings: HashMap::new(),
            dtds: HashMap::new(),
        }
    }

    fn read(&self, path: &str) -> Result<String, String> {
        let full = self.dir.join(path);
        std::fs::read_to_string(&full).map_err(|e| format!("cannot read {path}: {e}"))
    }

    fn mapping(&mut self, path: &str) -> Result<Arc<Mapping>, String> {
        if let Some(m) = self.mappings.get(path) {
            return Ok(m.clone());
        }
        let m = Arc::new(Mapping::parse(&self.read(path)?).map_err(|e| format!("{path}: {e}"))?);
        self.mappings.insert(path.to_string(), m.clone());
        Ok(m)
    }

    fn dtd(&mut self, path: &str) -> Result<Arc<Dtd>, String> {
        if let Some(d) = self.dtds.get(path) {
            return Ok(d.clone());
        }
        let d = Arc::new(xmlmap_dtd::parse(&self.read(path)?).map_err(|e| format!("{path}: {e}"))?);
        self.dtds.insert(path.to_string(), d.clone());
        Ok(d)
    }

    /// Resolves a document path for streaming: the file is only *opened*
    /// when the job runs, but existence is checked here so a malformed
    /// jobfile still fails cleanly before any job executes.
    fn resolve(&self, path: &str) -> Result<PathBuf, String> {
        let full = self.dir.join(path);
        if !full.is_file() {
            return Err(format!("cannot read {path}: no such file"));
        }
        Ok(full)
    }

    /// Loads a document and normalizes its attribute order against `dtd`.
    fn tree(&self, path: &str, dtd: &Dtd) -> Result<Tree, String> {
        let mut t =
            xmlmap_trees::xml::parse(&self.read(path)?).map_err(|e| format!("{path}: {e}"))?;
        let _ = dtd.normalize_attrs(&mut t); // tolerate attribute order
        Ok(t)
    }
}

fn parse_budget(field: Option<&&str>, default: usize) -> Result<usize, String> {
    match field {
        None => Ok(default),
        Some(s) => s
            .parse::<usize>()
            .map_err(|_| format!("`{s}` is not a number")),
    }
}

fn parse_line(line: &str, loader: &mut Loader) -> Result<JobKind, String> {
    let fields: Vec<&str> = line.split_whitespace().collect();
    match fields.as_slice() {
        ["member", map, src, tgt] => {
            let mapping = loader.mapping(map)?;
            let source = loader.tree(src, &mapping.source_dtd)?;
            let target = loader.tree(tgt, &mapping.target_dtd)?;
            Ok(JobKind::Membership {
                mapping,
                source,
                target,
            })
        }
        ["consistent", map, rest @ ..] if rest.len() <= 1 => Ok(JobKind::Consistent {
            mapping: loader.mapping(map)?,
            budget: parse_budget(rest.first(), DEFAULT_BUDGET)?,
        }),
        ["abscons", map, rest @ ..] if rest.len() <= 1 => Ok(JobKind::AbsCons {
            mapping: loader.mapping(map)?,
            budget: parse_budget(rest.first(), DEFAULT_BUDGET)?,
        }),
        ["subschema", d1, d2, rest @ ..] if rest.len() <= 1 => Ok(JobKind::Subschema {
            d1: loader.dtd(d1)?,
            d2: loader.dtd(d2)?,
            budget: parse_budget(rest.first(), DEFAULT_BUDGET)?,
        }),
        ["compose-member", m12, m23, src, tgt, rest @ ..] if rest.len() <= 1 => {
            let m12 = loader.mapping(m12)?;
            let m23 = loader.mapping(m23)?;
            let source = loader.tree(src, &m12.source_dtd)?;
            let target = loader.tree(tgt, &m23.target_dtd)?;
            Ok(JobKind::CompositionMember {
                m12,
                m23,
                source,
                target,
                max_middle_nodes: parse_budget(rest.first(), DEFAULT_MAX_MIDDLE_NODES)?,
            })
        }
        ["stream", d, xml, rest @ ..] => {
            let dtd = loader.dtd(d)?;
            let path = loader.resolve(xml)?;
            let pattern = if rest.is_empty() {
                None
            } else {
                let text = rest.join(" ");
                let p =
                    xmlmap_patterns::parse(&text).map_err(|e| format!("pattern `{text}`: {e}"))?;
                StreamPattern::compile(&p).map_err(|e| format!("pattern `{text}`: {e}"))?;
                Some(p)
            };
            Ok(JobKind::Stream { dtd, path, pattern })
        }
        ["chase-stream", map, xml] => {
            let mapping = loader.mapping(map)?;
            let path = loader.resolve(xml)?;
            for (i, s) in mapping.stds.iter().enumerate() {
                StreamPattern::compile(&s.source)
                    .map_err(|e| format!("std {i} source `{}`: {e}", s.source))?;
            }
            Ok(JobKind::ChaseStream { mapping, path })
        }
        ["delta-apply", map, src, upd] => {
            let mapping = loader.mapping(map)?;
            let source = loader.tree(src, &mapping.source_dtd)?;
            let updates = crate::chase::parse_updates(&loader.read(upd)?)
                .map_err(|e| format!("{upd}: {e}"))?;
            Ok(JobKind::DeltaApply {
                mapping,
                source,
                updates: Arc::new(updates),
            })
        }
        [op, ..]
            if [
                "member",
                "consistent",
                "abscons",
                "subschema",
                "compose-member",
                "stream",
                "chase-stream",
                "delta-apply",
            ]
            .contains(op) =>
        {
            Err(format!("wrong number of arguments for `{op}`"))
        }
        [op, ..] => Err(format!("unknown operation `{op}`")),
        [] => unreachable!("blank lines are skipped"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const COPY_MAP: &str = "[source]\nroot r\nr -> a*\na @ v\n\
                            [target]\nroot r\nr -> b*\nb @ w\n\
                            [stds]\nr/a(x) --> r/b(x)\n";

    fn fixture(files: &[(&str, &str)]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "xmlmap-batch-{}-{:p}",
            std::process::id(),
            &files[0]
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, contents) in files {
            std::fs::write(dir.join(name), contents).unwrap();
        }
        dir
    }

    #[test]
    fn parse_run_render_roundtrip() {
        let dir = fixture(&[
            ("copy.map", COPY_MAP),
            ("src.xml", r#"<r><a v="1"/><a v="2"/></r>"#),
            ("tgt.xml", r#"<r><b w="1"/><b w="2"/></r>"#),
            ("d.dtd", "root r\nr -> a*\na @ v"),
        ]);
        let jobs = parse_jobfile(
            "# a comment\n\
             member copy.map src.xml tgt.xml\n\
             consistent copy.map\n\
             abscons copy.map 1000000\n\
             subschema d.dtd d.dtd\n",
            &dir,
        )
        .unwrap();
        assert_eq!(jobs.len(), 4);
        let ctx = EngineContext::new();
        let results = run_batch(&ctx, &jobs, 1);
        assert!(matches!(&results[0], JobResult::Answer { yes: true, .. }));
        assert!(matches!(&results[1], JobResult::Answer { yes: true, .. }));
        assert!(matches!(&results[2], JobResult::Answer { yes: true, .. }));
        assert!(matches!(&results[3], JobResult::Answer { yes: true, .. }));
        let rendered = render_batch(&jobs, &results);
        assert!(rendered.contains("[1] member copy.map src.xml tgt.xml: solution"));
        assert!(rendered.ends_with("-- 4 job(s): 4 yes, 0 no, 0 failed\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_lines_report_per_line_errors() {
        let dir = fixture(&[("copy.map", COPY_MAP)]);
        let err = parse_jobfile(
            "consistent copy.map\n\
             frobnicate copy.map\n\
             consistent missing.map\n\
             subschema only_one.dtd\n",
            &dir,
        )
        .unwrap_err();
        assert_eq!(err.len(), 3);
        assert!(err[0].contains("line 2") && err[0].contains("unknown operation"));
        assert!(err[1].contains("line 3") && err[1].contains("cannot read"));
        assert!(err[2].contains("line 4") && err[2].contains("wrong number of arguments"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_jobs_run_and_report() {
        let dir = fixture(&[
            ("d.dtd", "root r\nr -> a*\na @ v"),
            ("good.xml", r#"<r><a v="1"/><a v="2"/></r>"#),
            ("bad.xml", r#"<r><b/></r>"#),
        ]);
        let jobs = parse_jobfile(
            "stream d.dtd good.xml\n\
             stream d.dtd good.xml r/a(x)\n\
             stream d.dtd bad.xml\n",
            &dir,
        )
        .unwrap();
        let ctx = EngineContext::new();
        let results = run_batch(&ctx, &jobs, 1);
        assert_eq!(
            results[0],
            JobResult::Answer {
                yes: true,
                detail: "conforms (3 elements, depth 2)".to_string()
            }
        );
        assert_eq!(
            results[1],
            JobResult::Answer {
                yes: true,
                detail: "conforms and matches (3 elements, depth 2)".to_string()
            }
        );
        assert!(
            matches!(&results[2], JobResult::Answer { yes: false, detail }
                     if detail.contains("invalid at byte")),
            "{:?}",
            results[2]
        );
        let stats = ctx.stats();
        assert_eq!((stats.stream_jobs, stats.stream_peak_depth), (3, 2));
        assert_eq!(stats.stream_index.misses, 1);

        // Bad lines fail at parse time: missing document, unstreamable
        // pattern.
        let err = parse_jobfile(
            "stream d.dtd missing.xml\n\
             stream d.dtd good.xml r[a(x) -> a(y)]\n",
            &dir,
        )
        .unwrap_err();
        assert_eq!(err.len(), 2);
        assert!(err[0].contains("cannot read missing.xml"), "{}", err[0]);
        assert!(err[1].contains("sibling-order"), "{}", err[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chase_stream_jobs_run_and_report() {
        let dir = fixture(&[
            ("copy.map", COPY_MAP),
            (
                "sib.map",
                "[source]\nroot r\nr -> a*\na @ v\n\
                 [target]\nroot r\nr -> b*\nb @ w\n\
                 [stds]\nr[a(x) -> a(y)] --> r[b(x), b(y)]\n",
            ),
            ("src.xml", r#"<r><a v="1"/><a v="2"/></r>"#),
            ("bad.xml", r#"<r><c/></r>"#),
        ]);
        let jobs = parse_jobfile(
            "chase-stream copy.map src.xml\n\
             chase-stream copy.map bad.xml\n",
            &dir,
        )
        .unwrap();
        let ctx = EngineContext::new();
        let results = run_batch(&ctx, &jobs, 1);
        assert_eq!(
            results[0],
            JobResult::Answer {
                yes: true,
                detail: "chased (2 firing(s), 3 elements, depth 2, target has 3 nodes)".to_string()
            }
        );
        assert!(
            matches!(&results[1], JobResult::Answer { yes: false, detail }
                     if detail.contains("invalid at byte")),
            "{:?}",
            results[1]
        );
        assert_eq!(ctx.stats().stream_firings, 2);

        // Unstreamable std sources fail at parse time, naming the std.
        let err = parse_jobfile("chase-stream sib.map src.xml\n", &dir).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(
            err[0].contains("std 0 source") && err[0].contains("sibling-order"),
            "{}",
            err[0]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delta_apply_jobs_run_and_report() {
        let dir = fixture(&[
            ("copy.map", COPY_MAP),
            ("src.xml", r#"<r><a v="1"/></r>"#),
            (
                "storm.upd",
                "insert . 1 <a v=\"2\"/>\nsettext 0 v 9\ndelete 1\n",
            ),
            ("bad.upd", "insert . 0 <a v=\"2\"/>\ndelete 5\n"),
            ("unparsable.upd", "frob . 0\n"),
        ]);
        let jobs = parse_jobfile(
            "delta-apply copy.map src.xml storm.upd\n\
             delta-apply copy.map src.xml bad.upd\n",
            &dir,
        )
        .unwrap();
        let ctx = EngineContext::new();
        let results = run_batch(&ctx, &jobs, 1);
        assert_eq!(
            results[0],
            JobResult::Answer {
                yes: true,
                detail: "delta-chased (3 update(s), 4 refire(s), 0 skip(s), target has 2 nodes)"
                    .to_string()
            }
        );
        assert!(
            matches!(&results[1], JobResult::Failed { error } if error.contains("no child 5")),
            "{:?}",
            results[1]
        );
        let stats = ctx.stats();
        assert_eq!(stats.delta_sessions, 2);
        assert_eq!(stats.delta.misses, 1);
        // Unparsable update scripts fail the jobfile, running nothing.
        let err = parse_jobfile("delta-apply copy.map src.xml unparsable.upd\n", &dir).unwrap_err();
        assert_eq!(err.len(), 1);
        assert!(err[0].contains("unknown update op"), "{}", err[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mappings_are_interned_by_path() {
        let dir = fixture(&[("copy.map", COPY_MAP)]);
        let jobs = parse_jobfile("consistent copy.map\nconsistent copy.map 42\n", &dir).unwrap();
        let (JobKind::Consistent { mapping: a, .. }, JobKind::Consistent { mapping: b, budget }) =
            (&jobs[0].kind, &jobs[1].kind)
        else {
            panic!("expected two consistency jobs");
        };
        assert!(Arc::ptr_eq(a, b));
        assert_eq!(*budget, 42);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
