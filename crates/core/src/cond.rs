//! Equality/inequality conditions `α₌,≠` over pattern variables.
//!
//! The paper keeps data-value comparisons *outside* patterns: an std is
//! `π(x̄,ȳ), α₌,≠(x̄,ȳ) → π′(x̄,z̄), α′₌,≠(x̄,z̄)` where each α is a
//! conjunction of equalities and inequalities among variables.

use std::fmt;
use xmlmap_patterns::{Valuation, Var};

/// A single comparison between two variables.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Comparison {
    /// Left variable.
    pub left: Var,
    /// The comparison operator.
    pub op: CompOp,
    /// Right variable.
    pub right: Var,
}

/// Equality or inequality.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompOp {
    /// `=`
    Eq,
    /// `≠`
    Neq,
}

impl Comparison {
    /// `left = right`.
    pub fn eq(left: impl Into<Var>, right: impl Into<Var>) -> Comparison {
        Comparison {
            left: left.into(),
            op: CompOp::Eq,
            right: right.into(),
        }
    }

    /// `left ≠ right`.
    pub fn neq(left: impl Into<Var>, right: impl Into<Var>) -> Comparison {
        Comparison {
            left: left.into(),
            op: CompOp::Neq,
            right: right.into(),
        }
    }

    /// Evaluates the comparison under a valuation. Unbound variables make
    /// the comparison fail (conditions range over the pattern's variables,
    /// which are always bound by a match).
    pub fn holds(&self, v: &Valuation) -> bool {
        match (v.get(&self.left), v.get(&self.right)) {
            (Some(a), Some(b)) => match self.op {
                CompOp::Eq => a == b,
                CompOp::Neq => a != b,
            },
            _ => false,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            CompOp::Eq => "=",
            CompOp::Neq => "!=",
        };
        write!(f, "{} {} {}", self.left, op, self.right)
    }
}

/// Evaluates a conjunction of comparisons.
pub fn all_hold(conds: &[Comparison], v: &Valuation) -> bool {
    conds.iter().all(|c| c.holds(v))
}

/// Parses a condition list: `x = y, a != b` (empty string ⇒ no conditions).
pub fn parse_conditions(input: &str) -> Result<Vec<Comparison>, String> {
    let input = input.trim();
    if input.is_empty() {
        return Ok(Vec::new());
    }
    input
        .split(',')
        .map(|part| {
            let part = part.trim();
            let (op, pieces) = if part.contains("!=") {
                (CompOp::Neq, part.splitn(2, "!=").collect::<Vec<_>>())
            } else if part.contains('=') {
                (CompOp::Eq, part.splitn(2, '=').collect::<Vec<_>>())
            } else {
                return Err(format!("bad comparison {part:?}: expected `=` or `!=`"));
            };
            let left = pieces[0].trim();
            let right = pieces[1].trim();
            if left.is_empty() || right.is_empty() {
                return Err(format!("bad comparison {part:?}"));
            }
            Ok(Comparison {
                left: Var::new(left),
                op,
                right: Var::new(right),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_trees::Value;

    fn val(pairs: &[(&str, &str)]) -> Valuation {
        pairs
            .iter()
            .map(|(k, v)| (Var::new(k), Value::str(v)))
            .collect()
    }

    #[test]
    fn evaluation() {
        let v = val(&[("x", "1"), ("y", "1"), ("z", "2")]);
        assert!(Comparison::eq("x", "y").holds(&v));
        assert!(!Comparison::eq("x", "z").holds(&v));
        assert!(Comparison::neq("x", "z").holds(&v));
        assert!(!Comparison::neq("x", "y").holds(&v));
        // Unbound variables fail both ways.
        assert!(!Comparison::eq("x", "w").holds(&v));
        assert!(!Comparison::neq("x", "w").holds(&v));
    }

    #[test]
    fn conjunction() {
        let v = val(&[("x", "1"), ("y", "1"), ("z", "2")]);
        assert!(all_hold(
            &[Comparison::eq("x", "y"), Comparison::neq("y", "z")],
            &v
        ));
        assert!(!all_hold(
            &[Comparison::eq("x", "y"), Comparison::eq("y", "z")],
            &v
        ));
        assert!(all_hold(&[], &v));
    }

    #[test]
    fn parsing() {
        let cs = parse_conditions("x = y, a != b").unwrap();
        assert_eq!(
            cs,
            vec![Comparison::eq("x", "y"), Comparison::neq("a", "b")]
        );
        assert_eq!(parse_conditions("").unwrap(), vec![]);
        assert_eq!(parse_conditions("  ").unwrap(), vec![]);
        assert!(parse_conditions("x < y").is_err());
        assert!(parse_conditions("= y").is_err());
        assert_eq!(cs[0].to_string(), "x = y");
        assert_eq!(cs[1].to_string(), "a != b");
    }

    #[test]
    fn nulls_compare_by_label() {
        let mut v = Valuation::new();
        v.insert(Var::new("x"), Value::null(0));
        v.insert(Var::new("y"), Value::null(0));
        v.insert(Var::new("z"), Value::null(1));
        assert!(Comparison::eq("x", "y").holds(&v));
        assert!(Comparison::neq("x", "z").holds(&v));
    }
}
