//! `xmlmap serve` — a long-lived daemon over one shared [`EngineContext`].
//!
//! The batch driver (`core::batch`) proves that a shared context wins
//! ~13x over a fresh context per job, but a `batch` process still dies
//! after one jobfile and throws its warm caches away. This module keeps
//! the context alive: a [`serve`] loop accepts connections on a unix
//! socket (or a TCP address), reads length-delimited requests, dispatches
//! them to a fixed worker pool, and writes JSON responses. Requests reuse
//! the *jobfile grammar* — one job line per request — so anything a
//! jobfile can ask, a client can ask interactively.
//!
//! ## Wire format
//!
//! Both directions are length-delimited frames
//! ([`xmlmap_codec::frame`]): a 4-byte little-endian payload length, then
//! the payload. A **request** payload is an `xmlmap-codec` record:
//!
//! ```text
//! magic "XMRQ" · u64 id · u64 deadline_ms · str command
//! ```
//!
//! where `command` is one job line (`consistent m.map`, `member m.map
//! s.xml t.xml`, …) resolved against the server's root directory, or one
//! of the service commands `STATS` (counter snapshot) and `PING [ms]`
//! (health probe, optionally delayed — useful for latency testing and
//! for deterministic queue-wait tests). `deadline_ms` of 0 means "use
//! the server default"; ids are chosen by the client (use ids ≥ 1; the
//! server reserves id 0 for protocol errors) and echoed back verbatim,
//! so clients may pipeline requests and match responses out of order.
//!
//! A **response** payload is one JSON object:
//!
//! ```text
//! {"id":7,"ok":true,"yes":true,"detail":"consistent (…)",
//!  "elapsed_us":412,"compiled":1,"disk_loaded":0}
//! {"id":8,"ok":false,"error":"state budget exceeded …","elapsed_us":93}
//! {"id":9,"ok":true,"stats":{…},"elapsed_us":2}
//! ```
//!
//! `compiled`/`disk_loaded` are the change in the context's
//! compile/disk-load totals across the request — exact cache-hit
//! provenance under serial traffic, best-effort under concurrency (the
//! counters are global).
//!
//! ## Semantics
//!
//! * **Backpressure** — requests flow through a bounded queue; when the
//!   pool falls behind, connection readers block on the queue, socket
//!   buffers fill, and clients stall at `write` — no unbounded buffering
//!   anywhere in the daemon.
//! * **Deadlines** — a per-request wall-clock deadline (request field,
//!   else the server's `--deadline-ms`) is enforced on top of the
//!   engines' own step budgets: expired-in-queue requests fail without
//!   running, and a request whose execution overruns its deadline gets a
//!   budget-style error response. Deadline failures never poison the
//!   caches — artifacts compiled along the way stay valid (budget errors
//!   were already never cached).
//! * **Graceful drain** — when shutdown is requested (SIGTERM in the
//!   CLI, [`ShutdownHandle::raise`] in-process), the daemon stops
//!   accepting, stops reading new frames, finishes every request already
//!   read off a socket, writes those responses, flushes the shape caches
//!   to the artifact store, and returns an exit-0 summary.
//!
//! ## Delta sessions
//!
//! Beyond stateless job lines, the daemon holds named incremental-chase
//! sessions ([`crate::chase::delta`]) that live across requests:
//!
//! ```text
//! DELTA OPEN <name> <mapping> <doc>   open a session over doc
//! DELTA APPLY <name> <updatefile>     apply an update script incrementally
//! DELTA SOLUTION <name>               current reduced canonical solution
//! DELTA CLOSE <name>                  drop the session, tally its stats
//! ```
//!
//! Paths resolve against the server root exactly like job-line paths.
//! `SOLUTION` returns the reduced canonical solution serialized as XML in
//! the response detail, or a `yes:false` answer when the updated source
//! has no solution — the same verdict a from-scratch `xmlmap chase` of
//! the session's current document would produce. Each session guards its
//! state with its own lock, so applies to distinct sessions proceed in
//! parallel; sessions still open at shutdown are tallied into the engine
//! stats during the drain.
//!
//! See DESIGN.md §8.6 for the architecture discussion.

use crate::batch::{run_job, JobParser, JobResult};
use crate::chase::{parse_updates, IncrementalChase};
use crate::engine::{CacheCounters, EngineContext, EngineStats};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xmlmap_codec::frame::{self, ReadFrame};
use xmlmap_codec::{Decoder, Encoder};

/// Magic marker opening every request payload.
pub const REQUEST_MAGIC: [u8; 4] = *b"XMRQ";

/// Ceiling on the artificial `PING <ms>` delay, so a hostile client
/// cannot park a worker for minutes.
pub const MAX_PING_DELAY_MS: u64 = 10_000;

/// How long the daemon sleeps between accept polls and how long
/// connection readers wait before re-checking the shutdown flag. Bounds
/// shutdown latency; small enough to be invisible next to any engine
/// call.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// Where a daemon listens, or a client connects.
#[derive(Clone, Debug)]
pub enum Endpoint {
    /// A unix-domain socket at this path (the default transport).
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP address, `host:port`.
    Tcp(String),
}

impl Endpoint {
    /// Parses a CLI endpoint spec: a socket path, or `host:port` when
    /// `tcp` is set. On platforms without unix sockets only `--tcp`
    /// endpoints are accepted.
    pub fn parse(spec: &str, tcp: bool) -> Result<Endpoint, String> {
        if tcp {
            return Ok(Endpoint::Tcp(spec.to_string()));
        }
        #[cfg(unix)]
        {
            Ok(Endpoint::Unix(PathBuf::from(spec)))
        }
        #[cfg(not(unix))]
        {
            Err("unix sockets are unavailable on this platform; use --tcp host:port".to_string())
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            Endpoint::Unix(p) => write!(f, "{}", p.display()),
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// Configuration for one [`serve`] loop.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads executing requests (≥ 1).
    pub workers: usize,
    /// Default per-request deadline in milliseconds; 0 = none.
    pub deadline_ms: u64,
    /// Bound of the request queue between connection readers and the
    /// pool; 0 derives `max(32, workers * 8)`.
    pub queue_depth: usize,
    /// Directory job-line paths resolve against.
    pub root: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: crate::batch::default_workers(),
            deadline_ms: 0,
            queue_depth: 0,
            root: PathBuf::from("."),
        }
    }
}

/// A cloneable flag that asks a running [`serve`] loop to drain and
/// exit. Raising it is a single atomic store, safe to do from a signal
/// handler.
#[derive(Clone, Default)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// A fresh, unraised handle.
    pub fn new() -> ShutdownHandle {
        ShutdownHandle::default()
    }

    /// Requests shutdown (idempotent).
    pub fn raise(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    pub fn is_raised(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// What one [`serve`] run did, reported after a clean drain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Well-formed requests dispatched to the pool.
    pub requests: u64,
    /// Error responses written (malformed frames, parse failures, budget
    /// and deadline errors).
    pub failed: u64,
}

impl std::fmt::Display for ServeSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} connection(s), {} request(s), {} error response(s)",
            self.connections, self.requests, self.failed
        )
    }
}

/// Shared atomic tallies behind a [`ServeSummary`].
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    failed: AtomicU64,
}

impl Counters {
    fn summary(&self) -> ServeSummary {
        ServeSummary {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
        }
    }
}

/// Encodes one request payload (the client side of the wire format).
pub fn encode_request(id: u64, deadline_ms: u64, command: &str) -> Vec<u8> {
    let mut e = Encoder::new();
    e.magic(&REQUEST_MAGIC);
    e.u64(id);
    e.u64(deadline_ms);
    e.str(command);
    e.finish()
}

/// Decodes one request payload into `(id, deadline_ms, command)`.
pub fn decode_request(payload: &[u8]) -> Result<(u64, u64, String), String> {
    let mut d = Decoder::new(payload);
    match d.take_magic() {
        Some(m) if m == REQUEST_MAGIC => {}
        _ => return Err("bad request magic".to_string()),
    }
    let id = d.u64().map_err(|e| e.to_string())?;
    let deadline_ms = d.u64().map_err(|e| e.to_string())?;
    let command = d.str().map_err(|e| e.to_string())?;
    d.expect_end().map_err(|e| e.to_string())?;
    Ok((id, deadline_ms, command))
}

// ---- JSON emission --------------------------------------------------------

/// Escapes `s` for use inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn counters_json(c: &CacheCounters) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"compiled\":{},\"disk_hits\":{},\
         \"disk_errors\":{},\"evictions\":{},\"bytes\":{},\"entries\":{},\
         \"compile_ns\":{}}}",
        c.hits,
        c.misses,
        c.compiled(),
        c.disk_hits,
        c.disk_errors,
        c.evictions,
        c.bytes,
        c.entries,
        c.compile_time.as_nanos()
    )
}

/// Renders an [`EngineStats`] snapshot (plus server tallies) as the JSON
/// object the `STATS` request returns. The key CI and warm-restart
/// checks grep for is `"total_compiled"`.
pub fn stats_json(stats: &EngineStats, requests: u64, connections: u64) -> String {
    let budget = match stats.memory_budget {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"sat\":{},\"chase\":{},\"automata\":{},\"shapes\":{},\
         \"stream_index\":{},\"stream_plans\":{},\"stream_chase\":{},\
         \"stream_jobs\":{},\"stream_peak_depth\":{},\
         \"stream_firings\":{},\"stream_live_peak\":{},\
         \"delta\":{},\"delta_sessions\":{},\"delta_updates\":{},\
         \"delta_refires\":{},\"delta_skips\":{},\
         \"memory_budget\":{budget},\"total_bytes\":{},\"total_compiled\":{},\
         \"total_disk_hits\":{},\"requests\":{requests},\"connections\":{connections}}}",
        counters_json(&stats.sat),
        counters_json(&stats.chase),
        counters_json(&stats.automata),
        counters_json(&stats.shapes),
        counters_json(&stats.stream_index),
        counters_json(&stats.stream_plans),
        counters_json(&stats.stream_chase),
        stats.stream_jobs,
        stats.stream_peak_depth,
        stats.stream_firings,
        stats.stream_live_peak,
        counters_json(&stats.delta),
        stats.delta_sessions,
        stats.delta_updates,
        stats.delta_refires,
        stats.delta_skips,
        stats.total_bytes(),
        stats.total_compiled(),
        stats.total_disk_hits(),
    )
}

// ---- listener / stream abstraction ----------------------------------------

type BoxedRead = Box<dyn Read + Send>;
type BoxedWrite = Box<dyn Write + Send>;

enum AnyListener {
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
    Tcp(std::net::TcpListener),
}

impl AnyListener {
    fn bind(endpoint: &Endpoint) -> io::Result<AnyListener> {
        match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                use std::os::unix::net::{UnixListener, UnixStream};
                match UnixListener::bind(path) {
                    Ok(l) => Ok(AnyListener::Unix(l)),
                    Err(e) if e.kind() == io::ErrorKind::AddrInUse => {
                        // A live daemon answers a connect; a stale socket
                        // file (crashed predecessor) refuses it and is
                        // safe to replace.
                        if UnixStream::connect(path).is_ok() {
                            return Err(io::Error::new(
                                io::ErrorKind::AddrInUse,
                                format!("{} is already being served", path.display()),
                            ));
                        }
                        std::fs::remove_file(path)?;
                        Ok(AnyListener::Unix(UnixListener::bind(path)?))
                    }
                    Err(e) => Err(e),
                }
            }
            Endpoint::Tcp(addr) => Ok(AnyListener::Tcp(std::net::TcpListener::bind(addr)?)),
        }
    }

    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(l) => l.set_nonblocking(true),
            AnyListener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    /// One accept poll: `Ok(None)` when no connection is pending. The
    /// returned reader carries a [`POLL_INTERVAL`] read timeout so the
    /// connection loop can watch the shutdown flag between frames.
    fn accept(&self) -> io::Result<Option<(BoxedRead, BoxedWrite)>> {
        match self {
            #[cfg(unix)]
            AnyListener::Unix(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(POLL_INTERVAL))?;
                    let writer = stream.try_clone()?;
                    Ok(Some((Box::new(stream), Box::new(writer))))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            AnyListener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_read_timeout(Some(POLL_INTERVAL))?;
                    let writer = stream.try_clone()?;
                    Ok(Some((Box::new(stream), Box::new(writer))))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// Per-connection shared state: the response writer, locked per frame so
/// workers can interleave responses for pipelined requests without
/// tearing frames.
struct Conn {
    writer: Mutex<BoxedWrite>,
}

impl Conn {
    fn write_frame(&self, payload: &[u8]) -> io::Result<()> {
        frame::write(&mut *self.writer.lock().unwrap(), payload)
    }
}

/// The daemon's table of named delta-chase sessions. The outer lock is
/// held only for lookup/insert/remove; each session's own lock
/// serializes its updates, so traffic on distinct sessions runs in
/// parallel across the worker pool.
type DeltaSessions = Mutex<HashMap<String, Arc<Mutex<IncrementalChase>>>>;

/// One dispatched request.
struct Request {
    id: u64,
    /// Resolved deadline instant (arrival + effective deadline_ms).
    deadline: Option<Instant>,
    /// The effective deadline in ms, for error messages.
    deadline_ms: u64,
    line: String,
    conn: Arc<Conn>,
}

// ---- the server -----------------------------------------------------------

/// Runs the daemon until `shutdown` is raised: accept loop, bounded
/// request queue, `cfg.workers` executor threads over the shared `ctx`.
/// Returns the drain summary; on return every request that was read off
/// a socket has been answered and (when a disk store is attached) the
/// shape caches have been flushed.
pub fn serve(
    endpoint: &Endpoint,
    ctx: &EngineContext,
    cfg: &ServeConfig,
    shutdown: &ShutdownHandle,
) -> io::Result<ServeSummary> {
    let listener = AnyListener::bind(endpoint)?;
    listener.set_nonblocking()?;
    let workers = cfg.workers.max(1);
    let depth = if cfg.queue_depth == 0 {
        (workers * 8).max(32)
    } else {
        cfg.queue_depth
    };
    let (tx, rx) = std::sync::mpsc::sync_channel::<Request>(depth);
    let rx = Mutex::new(rx);
    let counters = Counters::default();
    let parser = Mutex::new(JobParser::new(&cfg.root));
    let sessions: DeltaSessions = Mutex::new(HashMap::new());

    let accept_result: io::Result<()> = std::thread::scope(|scope| {
        let rx = &rx;
        let counters = &counters;
        let parser = &parser;
        let sessions = &sessions;
        for _ in 0..workers {
            scope.spawn(move || worker_loop(ctx, parser, sessions, rx, counters));
        }
        let mut conns = Vec::new();
        let mut accept_err = None;
        while !shutdown.is_raised() {
            match listener.accept() {
                Ok(Some((reader, writer))) => {
                    counters.connections.fetch_add(1, Ordering::Relaxed);
                    let conn = Arc::new(Conn {
                        writer: Mutex::new(writer),
                    });
                    let tx = tx.clone();
                    let default_deadline = cfg.deadline_ms;
                    conns.push(scope.spawn(move || {
                        conn_loop(reader, conn, tx, shutdown, counters, default_deadline)
                    }));
                }
                Ok(None) => std::thread::sleep(POLL_INTERVAL),
                Err(e) => {
                    accept_err = Some(e);
                    shutdown.raise();
                }
            }
            conns.retain(|h| !h.is_finished());
        }
        // Drain: connection readers notice the flag within one poll
        // interval and stop submitting; everything already queued is
        // executed once the main sender drops and the workers run the
        // queue dry.
        for handle in conns {
            let _ = handle.join();
        }
        drop(tx);
        match accept_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    });
    // Sessions never explicitly closed still count: tally them now, while
    // the workers are gone and every lock is free.
    for (_, session) in sessions.into_inner().unwrap() {
        ctx.record_delta(session.lock().unwrap().stats());
    }
    ctx.flush_disk_cache();
    #[cfg(unix)]
    if let Endpoint::Unix(path) = endpoint {
        let _ = std::fs::remove_file(path);
    }
    accept_result?;
    Ok(counters.summary())
}

/// Reads frames off one connection until EOF, an unrecoverable framing
/// error, or shutdown. Malformed *payloads* get an id-0 error response
/// and the connection lives on (the length prefix kept the stream
/// synchronized); malformed *framing* closes the connection.
fn conn_loop(
    mut reader: BoxedRead,
    conn: Arc<Conn>,
    tx: SyncSender<Request>,
    shutdown: &ShutdownHandle,
    counters: &Counters,
    default_deadline_ms: u64,
) {
    loop {
        if shutdown.is_raised() {
            return;
        }
        match frame::read(&mut reader, frame::MAX_FRAME) {
            Ok(ReadFrame::Idle) => continue,
            Ok(ReadFrame::Eof) | Err(_) => return,
            Ok(ReadFrame::Frame(payload)) => match decode_request(&payload) {
                Ok((id, requested_ms, line)) => {
                    let deadline_ms = if requested_ms > 0 {
                        requested_ms
                    } else {
                        default_deadline_ms
                    };
                    let deadline = if deadline_ms > 0 {
                        Instant::now().checked_add(Duration::from_millis(deadline_ms))
                    } else {
                        None
                    };
                    counters.requests.fetch_add(1, Ordering::Relaxed);
                    let request = Request {
                        id,
                        deadline,
                        deadline_ms,
                        line,
                        conn: conn.clone(),
                    };
                    // Blocks when the queue is full: backpressure all the
                    // way to the client. Send only fails after the
                    // workers are gone, i.e. during teardown.
                    if tx.send(request).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    let json = format!(
                        "{{\"id\":0,\"ok\":false,\"error\":\"malformed request frame: {}\"}}",
                        json_escape(&e)
                    );
                    if conn.write_frame(json.as_bytes()).is_err() {
                        return;
                    }
                }
            },
        }
    }
}

/// Executes queued requests until the channel closes (drain complete).
fn worker_loop(
    ctx: &EngineContext,
    parser: &Mutex<JobParser>,
    sessions: &DeltaSessions,
    rx: &Mutex<Receiver<Request>>,
    counters: &Counters,
) {
    loop {
        let request = match rx.lock().unwrap().recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        let (json, failed) = execute(ctx, parser, sessions, counters, &request);
        if failed {
            counters.failed.fetch_add(1, Ordering::Relaxed);
        }
        let _ = request.conn.write_frame(json.as_bytes());
    }
}

/// Runs one request to a response JSON string; the bool is "this is an
/// error response".
fn execute(
    ctx: &EngineContext,
    parser: &Mutex<JobParser>,
    sessions: &DeltaSessions,
    counters: &Counters,
    request: &Request,
) -> (String, bool) {
    let start = Instant::now();
    let expired = |when: &str| {
        (
            format!(
                "{{\"id\":{},\"ok\":false,\"error\":\"request deadline of {}ms exceeded {when}\"}}",
                request.id, request.deadline_ms
            ),
            true,
        )
    };
    if request.deadline.is_some_and(|d| Instant::now() > d) {
        return expired("before execution");
    }
    let line = request.line.trim();
    if line == "STATS" {
        let stats = stats_json(
            &ctx.stats(),
            counters.requests.load(Ordering::Relaxed),
            counters.connections.load(Ordering::Relaxed),
        );
        let json = format!(
            "{{\"id\":{},\"ok\":true,\"stats\":{stats},\"elapsed_us\":{}}}",
            request.id,
            start.elapsed().as_micros()
        );
        return (json, false);
    }
    if let Some(rest) = line.strip_prefix("PING") {
        let rest = rest.trim();
        let delay = if rest.is_empty() {
            0
        } else {
            match rest.parse::<u64>() {
                Ok(ms) => ms.min(MAX_PING_DELAY_MS),
                Err(_) => {
                    return (
                        format!(
                        "{{\"id\":{},\"ok\":false,\"error\":\"PING delay `{}` is not a number\"}}",
                        request.id,
                        json_escape(rest)
                    ),
                        true,
                    )
                }
            }
        };
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        if request.deadline.is_some_and(|d| Instant::now() > d) {
            return expired("during execution");
        }
        let json = format!(
            "{{\"id\":{},\"ok\":true,\"yes\":true,\"detail\":\"pong\",\"elapsed_us\":{},\
             \"compiled\":0,\"disk_loaded\":0}}",
            request.id,
            start.elapsed().as_micros()
        );
        return (json, false);
    }
    if line == "DELTA" || line.starts_with("DELTA ") {
        let (json, failed) = execute_delta(ctx, parser, sessions, request, line, start);
        if request.deadline.is_some_and(|d| Instant::now() > d) {
            return expired("during execution");
        }
        return (json, failed);
    }
    let job = match parser.lock().unwrap().parse(line) {
        Ok(job) => job,
        Err(e) => {
            return (
                format!(
                    "{{\"id\":{},\"ok\":false,\"error\":\"{}\",\"elapsed_us\":{}}}",
                    request.id,
                    json_escape(&e),
                    start.elapsed().as_micros()
                ),
                true,
            )
        }
    };
    let before = ctx.stats();
    let result = run_job(ctx, &job);
    let after = ctx.stats();
    if request.deadline.is_some_and(|d| Instant::now() > d) {
        return expired("during execution");
    }
    let elapsed_us = start.elapsed().as_micros();
    match result {
        JobResult::Answer { yes, detail } => (
            format!(
                "{{\"id\":{},\"ok\":true,\"yes\":{yes},\"detail\":\"{}\",\"elapsed_us\":{elapsed_us},\
                 \"compiled\":{},\"disk_loaded\":{}}}",
                request.id,
                json_escape(&detail),
                after.total_compiled().saturating_sub(before.total_compiled()),
                after.total_disk_hits().saturating_sub(before.total_disk_hits()),
            ),
            false,
        ),
        JobResult::Failed { error } => (
            format!(
                "{{\"id\":{},\"ok\":false,\"error\":\"{}\",\"elapsed_us\":{elapsed_us}}}",
                request.id,
                json_escape(&error)
            ),
            true,
        ),
    }
}

/// Runs one `DELTA` session verb to a response JSON string; the bool is
/// "this is an error response". Session-not-found, duplicate-open, and
/// update-script failures are error responses; a chase failure on
/// `SOLUTION` is a `yes:false` *answer*, matching the batch driver's
/// verdict shape for chase jobs.
fn execute_delta(
    ctx: &EngineContext,
    parser: &Mutex<JobParser>,
    sessions: &DeltaSessions,
    request: &Request,
    line: &str,
    start: Instant,
) -> (String, bool) {
    let fail = |error: String| {
        (
            format!(
                "{{\"id\":{},\"ok\":false,\"error\":\"{}\",\"elapsed_us\":{}}}",
                request.id,
                json_escape(&error),
                start.elapsed().as_micros()
            ),
            true,
        )
    };
    let answer = |yes: bool, detail: String| {
        (
            format!(
                "{{\"id\":{},\"ok\":true,\"yes\":{yes},\"detail\":\"{}\",\"elapsed_us\":{},\
                 \"compiled\":0,\"disk_loaded\":0}}",
                request.id,
                json_escape(&detail),
                start.elapsed().as_micros()
            ),
            false,
        )
    };
    let session_of =
        |name: &str| {
            sessions.lock().unwrap().get(name).cloned().ok_or_else(|| {
                format!("no delta session named `{name}` (open one with DELTA OPEN)")
            })
        };
    let fields: Vec<&str> = line.split_whitespace().collect();
    match fields.as_slice() {
        ["DELTA", "OPEN", name, map, doc] => {
            if sessions.lock().unwrap().contains_key(*name) {
                return fail(format!(
                    "delta session `{name}` is already open (DELTA CLOSE it first)"
                ));
            }
            let (mapping, source) = {
                let mut parser = parser.lock().unwrap();
                let mapping = match parser.load_mapping(map) {
                    Ok(m) => m,
                    Err(e) => return fail(e),
                };
                let source = match parser.load_tree(doc, &mapping.source_dtd) {
                    Ok(t) => t,
                    Err(e) => return fail(e),
                };
                (mapping, source)
            };
            let session = ctx.delta_session(&mapping, source);
            let detail = format!(
                "opened `{name}` ({} std(s), {}conforming source)",
                mapping.stds.len(),
                if session.source_conforms() {
                    ""
                } else {
                    "non-"
                }
            );
            let mut table = sessions.lock().unwrap();
            if table.contains_key(*name) {
                return fail(format!(
                    "delta session `{name}` is already open (DELTA CLOSE it first)"
                ));
            }
            table.insert(name.to_string(), Arc::new(Mutex::new(session)));
            answer(true, detail)
        }
        ["DELTA", "APPLY", name, updatefile] => {
            let session = match session_of(name) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let script = match parser.lock().unwrap().read_file(updatefile) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let updates = match parse_updates(&script) {
                Ok(u) => u,
                Err(e) => return fail(format!("{updatefile}: {e}")),
            };
            let mut session = session.lock().unwrap();
            let before = session.stats();
            match session.apply_all(&updates) {
                Ok(applied) => {
                    let d = session.stats();
                    answer(
                        true,
                        format!(
                            "applied {applied} update(s) ({} refire(s), {} skip(s), {} replay(s))",
                            d.refires - before.refires,
                            d.skips - before.skips,
                            d.replays - before.replays
                        ),
                    )
                }
                Err(e) => fail(format!("delta session `{name}`: {e}")),
            }
        }
        ["DELTA", "SOLUTION", name] => {
            let session = match session_of(name) {
                Ok(s) => s,
                Err(e) => return fail(e),
            };
            let mut session = session.lock().unwrap();
            match session.canonical_solution() {
                Ok(solution) => {
                    let reduced = crate::exchange::reduce_solution(session.mapping(), &solution);
                    answer(true, xmlmap_trees::xml::to_string(&reduced))
                }
                Err(e) => answer(false, format!("no solution: {e}")),
            }
        }
        ["DELTA", "CLOSE", name] => {
            let session = match sessions.lock().unwrap().remove(*name) {
                Some(s) => s,
                None => {
                    return fail(format!(
                        "no delta session named `{name}` (open one with DELTA OPEN)"
                    ))
                }
            };
            let stats = session.lock().unwrap().stats();
            ctx.record_delta(stats);
            answer(
                true,
                format!("closed `{name}` after {} update(s)", stats.updates),
            )
        }
        _ => fail(
            "bad DELTA request: expected OPEN <name> <mapping> <doc>, \
             APPLY <name> <updatefile>, SOLUTION <name>, or CLOSE <name>"
                .to_string(),
        ),
    }
}

// ---- a minimal JSON reader for the daemon's own responses -----------------

/// A parsed flat JSON value. Nested objects are kept as raw text — the
/// only nested object the protocol emits is the `STATS` payload, which
/// clients pass through verbatim.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Str(String),
    Num(u64),
    Bool(bool),
    Null,
    Object(String),
}

/// Parses one of the daemon's own JSON response objects. Not a general
/// JSON parser — exactly the subset the emitter above produces (flat
/// objects, string/number/bool/null values, one level of nesting kept
/// raw).
fn parse_flat_json(text: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let skip_ws = |pos: &mut usize| {
        while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
            *pos += 1;
        }
    };
    let expect = |pos: &mut usize, b: u8| -> Result<(), String> {
        if *pos < bytes.len() && bytes[*pos] == b {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, *pos))
        }
    };
    fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", *pos));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match bytes.get(*pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = bytes
                                .get(*pos + 1..*pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            *pos += 4;
                        }
                        _ => return Err("unknown escape".to_string()),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = text_tail(bytes, *pos);
                    let c = s.chars().next().ok_or("invalid UTF-8")?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }
    fn text_tail(bytes: &[u8], pos: usize) -> &str {
        std::str::from_utf8(&bytes[pos..]).unwrap_or("")
    }
    fn parse_raw_object(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
        let start = *pos;
        let mut depth = 0usize;
        let mut in_string = false;
        while *pos < bytes.len() {
            let b = bytes[*pos];
            if in_string {
                match b {
                    b'\\' => *pos += 1,
                    b'"' => in_string = false,
                    _ => {}
                }
            } else {
                match b {
                    b'"' => in_string = true,
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            *pos += 1;
                            return Ok(String::from_utf8_lossy(&bytes[start..*pos]).into_owned());
                        }
                    }
                    _ => {}
                }
            }
            *pos += 1;
        }
        Err("unterminated object".to_string())
    }
    skip_ws(&mut pos);
    expect(&mut pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(&mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(&mut pos);
        let key = parse_string(bytes, &mut pos)?;
        skip_ws(&mut pos);
        expect(&mut pos, b':')?;
        skip_ws(&mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => JsonValue::Str(parse_string(bytes, &mut pos)?),
            Some(b'{') => JsonValue::Object(parse_raw_object(bytes, &mut pos)?),
            Some(b't') if bytes[pos..].starts_with(b"true") => {
                pos += 4;
                JsonValue::Bool(true)
            }
            Some(b'f') if bytes[pos..].starts_with(b"false") => {
                pos += 5;
                JsonValue::Bool(false)
            }
            Some(b'n') if bytes[pos..].starts_with(b"null") => {
                pos += 4;
                JsonValue::Null
            }
            Some(c) if c.is_ascii_digit() => {
                let start = pos;
                while pos < bytes.len() && bytes[pos].is_ascii_digit() {
                    pos += 1;
                }
                let n = std::str::from_utf8(&bytes[start..pos])
                    .unwrap()
                    .parse::<u64>()
                    .map_err(|_| "number overflows u64".to_string())?;
                JsonValue::Num(n)
            }
            _ => return Err(format!("unexpected value at byte {pos}")),
        };
        fields.push((key, value));
        skip_ws(&mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(fields),
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

// ---- the client -----------------------------------------------------------

/// One decoded daemon response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The echoed request id (0 for protocol errors).
    pub id: u64,
    /// The verdict, in the same shape the batch driver uses — so client
    /// front ends can reuse [`crate::batch::render_results`].
    pub result: JobResult,
    /// Server-side wall-clock for the request, microseconds.
    pub elapsed_us: u64,
    /// Compilations this request triggered (exact under serial traffic).
    pub compiled: u64,
    /// Artifact-store loads this request triggered.
    pub disk_loaded: u64,
    /// The raw stats object, for `STATS` responses.
    pub stats: Option<String>,
    /// The raw response text.
    pub raw: String,
}

impl Response {
    /// Decodes one response payload.
    pub fn parse(payload: &[u8]) -> io::Result<Response> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
        let fields = parse_flat_json(text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}"))
        })?;
        let get = |k: &str| fields.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let num = |k: &str| match get(k) {
            Some(JsonValue::Num(n)) => *n,
            _ => 0,
        };
        let ok = matches!(get("ok"), Some(JsonValue::Bool(true)));
        let result = if ok {
            let detail = match get("detail") {
                Some(JsonValue::Str(s)) => s.clone(),
                _ => "ok".to_string(),
            };
            let yes = matches!(get("yes"), Some(JsonValue::Bool(true)));
            JobResult::Answer { yes, detail }
        } else {
            let error = match get("error") {
                Some(JsonValue::Str(s)) => s.clone(),
                _ => "unspecified server error".to_string(),
            };
            JobResult::Failed { error }
        };
        let stats = match get("stats") {
            Some(JsonValue::Object(raw)) => Some(raw.clone()),
            _ => None,
        };
        Ok(Response {
            id: num("id"),
            result,
            elapsed_us: num("elapsed_us"),
            compiled: num("compiled"),
            disk_loaded: num("disk_loaded"),
            stats,
            raw: text.to_string(),
        })
    }
}

/// A blocking client for the serve protocol: connect, pipeline job
/// lines, collect responses. Used by `xmlmap client` and the end-to-end
/// tests.
pub struct ServeClient {
    reader: BoxedRead,
    writer: BoxedWrite,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a running daemon.
    pub fn connect(endpoint: &Endpoint) -> io::Result<ServeClient> {
        let (reader, writer): (BoxedRead, BoxedWrite) = match endpoint {
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = std::os::unix::net::UnixStream::connect(path)?;
                let writer = stream.try_clone()?;
                (Box::new(stream), Box::new(writer))
            }
            Endpoint::Tcp(addr) => {
                let stream = std::net::TcpStream::connect(addr)?;
                let writer = stream.try_clone()?;
                (Box::new(stream), Box::new(writer))
            }
        };
        Ok(ServeClient {
            reader,
            writer,
            next_id: 1,
        })
    }

    /// [`ServeClient::connect`], retried for up to `patience` — for
    /// drivers that start the daemon themselves and race its bind.
    pub fn connect_with_retry(endpoint: &Endpoint, patience: Duration) -> io::Result<ServeClient> {
        let deadline = Instant::now() + patience;
        loop {
            match ServeClient::connect(endpoint) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
            }
        }
    }

    /// Sends one command without waiting for the response; returns the
    /// assigned request id. `deadline_ms` of 0 uses the server default.
    pub fn send(&mut self, command: &str, deadline_ms: u64) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        frame::write(&mut self.writer, &encode_request(id, deadline_ms, command))?;
        Ok(id)
    }

    /// Receives the next response (any request id).
    pub fn recv(&mut self) -> io::Result<Response> {
        match frame::read(&mut self.reader, frame::MAX_FRAME)? {
            ReadFrame::Frame(payload) => Response::parse(&payload),
            ReadFrame::Eof => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            ReadFrame::Idle => unreachable!("client streams have no read timeout"),
        }
    }

    /// Sends one command and waits for its response.
    pub fn roundtrip(&mut self, command: &str, deadline_ms: u64) -> io::Result<Response> {
        let id = self.send(command, deadline_ms)?;
        let response = self.recv()?;
        if response.id != id && response.id != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response id {} for request {id}", response.id),
            ));
        }
        Ok(response)
    }

    /// Fetches the daemon's `STATS` snapshot (raw JSON).
    pub fn stats(&mut self) -> io::Result<String> {
        let response = self.roundtrip("STATS", 0)?;
        response.stats.ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "STATS response without stats")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_payloads_round_trip() {
        let payload = encode_request(42, 250, "consistent copy.map");
        let (id, deadline_ms, line) = decode_request(&payload).unwrap();
        assert_eq!(
            (id, deadline_ms, line.as_str()),
            (42, 250, "consistent copy.map")
        );
        assert!(decode_request(b"junk").is_err());
        let mut trailing = encode_request(1, 0, "STATS");
        trailing.push(0);
        assert!(decode_request(&trailing).is_err());
    }

    #[test]
    fn responses_parse_back_including_escapes_and_stats() {
        let json = format!(
            "{{\"id\":7,\"ok\":true,\"yes\":false,\"detail\":\"{}\",\"elapsed_us\":12,\
             \"compiled\":1,\"disk_loaded\":0}}",
            json_escape("NOT a \"sub\"schema\n\ttab")
        );
        let r = Response::parse(json.as_bytes()).unwrap();
        assert_eq!(r.id, 7);
        assert_eq!(
            r.result,
            JobResult::Answer {
                yes: false,
                detail: "NOT a \"sub\"schema\n\ttab".to_string()
            }
        );
        assert_eq!((r.compiled, r.disk_loaded), (1, 0));

        let stats = stats_json(&EngineStats::default(), 3, 1);
        let wrapped = format!("{{\"id\":9,\"ok\":true,\"stats\":{stats},\"elapsed_us\":2}}");
        let r = Response::parse(wrapped.as_bytes()).unwrap();
        assert_eq!(r.stats.as_deref(), Some(stats.as_str()));
        assert!(stats.contains("\"total_compiled\":0"));
        assert!(stats.contains("\"stream_firings\":0"));
        assert!(stats.contains("\"stream_chase\":{"));
        assert!(stats.contains("\"delta\":{"));
        assert!(stats.contains("\"delta_sessions\":0"));
    }

    #[test]
    fn error_responses_become_failed_results() {
        let r = Response::parse(
            b"{\"id\":3,\"ok\":false,\"error\":\"state budget exceeded\",\"elapsed_us\":5}",
        )
        .unwrap();
        assert_eq!(
            r.result,
            JobResult::Failed {
                error: "state budget exceeded".to_string()
            }
        );
    }
}
