//! A shared, thread-safe session context for the compiled engines.
//!
//! The three compiled engines each amortize per-schema analysis into a
//! cache object — [`SatCache`] (type-fixpoint satisfiability, per DTD),
//! [`ChaseCache`] (chase plans, per mapping) and
//! [`AutomataCache`] (determinized hedge
//! automata, per ordered DTD pair) — but each of those is built by one
//! caller for one workload. An [`EngineContext`] owns all of them behind
//! sharded `RwLock` maps keyed by *content-hashed identity* (the schema's
//! or mapping's canonical display form), so any number of threads can
//! share one context across a whole session:
//!
//! * **compile once** — each map slot holds an `Arc<OnceLock<…>>`; N
//!   threads racing for the same DTD/mapping insert one slot under a brief
//!   write lock and then exactly one of them runs the compilation inside
//!   `OnceLock::get_or_init` while the others block on the slot (not the
//!   shard), then share the compiled `Arc`;
//! * **sharded maps** — keys are spread over [`SHARD_COUNT`] shards by a
//!   hash of the canonical text, so unrelated compilations never contend
//!   on one lock, and the read path (the common case after warm-up) takes
//!   only a shard read lock;
//! * **counters** — every cache tracks hits, misses (= compilations) and
//!   cumulative compile time; [`EngineContext::stats`] snapshots them for
//!   the CLI (`xmlmap batch --stats`) and the benches.
//!
//! What is deliberately **not** cached at this layer: verdicts keyed by
//! *documents* (chase outputs, membership answers — the key would be the
//! document itself), and budget-exceeded errors (the inner caches already
//! never memoize those; a retry with a larger budget must recompute).
//! Result-level memoization stays inside the per-schema caches
//! ([`SatCache`] match sets, `AutomataCache` verdicts), which are all
//! internally synchronized, so sharing them across threads is safe.
//!
//! See DESIGN.md §8.4 for the full architecture.

use crate::abscons::{abscons_structural_cached, AbsConsAnswer};
use crate::bounded::ShapeCache;
use crate::chase::{canonical_solution_cached, ChaseCache, ChaseError};
use crate::consistency::{composition_consistent_cached, consistent_cached, ConsAnswer, ConsError};
use crate::exchange::{certain_answers_cached, reduced_solution_cached, CertainAnswersError};
use crate::stds::Mapping;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};
use xmlmap_automata::{AutomataCache, InclusionBudgetExceeded, SubschemaViolation};
use xmlmap_dtd::Dtd;
use xmlmap_patterns::sat::BudgetExceeded;
use xmlmap_patterns::{Pattern, SatCache, Valuation};
use xmlmap_trees::Tree;

/// Number of lock shards per cache family. A small power of two: enough
/// that concurrent compilations of distinct schemas rarely share a lock,
/// small enough that a stats snapshot is a cheap sweep.
pub const SHARD_COUNT: usize = 16;

/// Budget-error context used for every [`SatCache`] the context builds.
///
/// One fixed string — not the per-operation labels the convenience
/// wrappers use — so a cache first compiled by a consistency probe and
/// later hit by an absolute-consistency probe reports identical errors
/// regardless of which operation happened to compile it first. Batch
/// determinism across worker counts depends on this.
const SAT_CONTEXT: &str = "shared EngineContext probe";

/// Hit/miss/compile-time counters for one cache family.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from an already-compiled entry.
    pub hits: u64,
    /// Lookups that compiled a fresh entry (one per distinct key).
    pub misses: u64,
    /// Total wall-clock time spent compiling entries.
    pub compile_time: Duration,
    /// Entries currently resident.
    pub entries: u64,
}

impl std::fmt::Display for CacheCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} entries, {:.2}ms compiling",
            self.hits,
            self.misses,
            self.entries,
            self.compile_time.as_secs_f64() * 1_000.0
        )
    }
}

/// A snapshot of every cache family's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Type-fixpoint satisfiability caches (one per DTD).
    pub sat: CacheCounters,
    /// Chase-plan caches (one per mapping).
    pub chase: CacheCounters,
    /// Hedge-automata caches (one per ordered DTD pair).
    pub automata: CacheCounters,
    /// Tree-shape enumeration caches (one per DTD).
    pub shapes: CacheCounters,
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "sat:      {}", self.sat)?;
        writeln!(f, "chase:    {}", self.chase)?;
        writeln!(f, "automata: {}", self.automata)?;
        write!(f, "shapes:   {}", self.shapes)
    }
}

/// Per-family counter cells (atomics; relaxed ordering — these are
/// diagnostics, not synchronization).
#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    compile_ns: AtomicU64,
}

/// A cache slot: filled exactly once, by whichever thread wins the race.
type Slot<V> = Arc<OnceLock<Arc<V>>>;

/// One sharded compile-once map: canonical text → compiled artifact.
struct ShardedCache<V> {
    shards: Vec<RwLock<HashMap<String, Slot<V>>>>,
    stats: StatCells,
}

impl<V> ShardedCache<V> {
    fn new() -> ShardedCache<V> {
        ShardedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            stats: StatCells::default(),
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// The compile-once protocol: read-lock lookup, double-checked slot
    /// insertion under the write lock, compilation outside any shard lock
    /// (inside the slot's `OnceLock`, which admits exactly one winner).
    fn get_or_compile(&self, key: &str, compile: impl FnOnce() -> V) -> Arc<V> {
        let shard = &self.shards[self.shard_of(key)];
        let slot = shard.read().unwrap().get(key).cloned();
        let slot = match slot {
            Some(slot) => slot,
            None => {
                let mut map = shard.write().unwrap();
                map.entry(key.to_string())
                    .or_insert_with(|| Arc::new(OnceLock::new()))
                    .clone()
            }
        };
        let mut compiled_here = false;
        let value = slot
            .get_or_init(|| {
                compiled_here = true;
                let start = Instant::now();
                let v = Arc::new(compile());
                self.stats
                    .compile_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                v
            })
            .clone();
        if compiled_here {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            compile_time: Duration::from_nanos(self.stats.compile_ns.load(Ordering::Relaxed)),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().unwrap().len() as u64)
                .sum(),
        }
    }
}

/// A thread-safe session object owning every compiled-engine cache.
///
/// Build one per process (or per logical session) and share it by
/// reference — it is `Sync`, and every method takes `&self`. All the
/// decision procedures of the crate are available as methods that fetch
/// the right caches by content identity and delegate to the `*_cached`
/// functions; the raw cache accessors ([`EngineContext::sat_cache`] etc.)
/// serve call sites that want to drive the caches directly.
///
/// ```
/// use xmlmap_core::EngineContext;
/// let ctx = EngineContext::new();
/// let dtd = xmlmap_dtd::parse("root r\nr -> a*\na @ v").unwrap();
/// let c1 = ctx.sat_cache(&dtd);
/// let c2 = ctx.sat_cache(&dtd.clone()); // same content → same cache
/// assert!(std::sync::Arc::ptr_eq(&c1, &c2));
/// assert_eq!(ctx.stats().sat.misses, 1);
/// ```
pub struct EngineContext {
    sat: ShardedCache<SatCache>,
    chase: ShardedCache<ChaseCache>,
    automata: ShardedCache<AutomataCache>,
    shapes: ShardedCache<ShapeCache>,
}

impl Default for EngineContext {
    fn default() -> EngineContext {
        EngineContext::new()
    }
}

impl EngineContext {
    /// A fresh, empty context.
    pub fn new() -> EngineContext {
        EngineContext {
            sat: ShardedCache::new(),
            chase: ShardedCache::new(),
            automata: ShardedCache::new(),
            shapes: ShardedCache::new(),
        }
    }

    // ---- raw cache accessors -------------------------------------------

    /// The shared [`SatCache`] for `dtd`, compiling it on first request.
    pub fn sat_cache(&self, dtd: &Dtd) -> Arc<SatCache> {
        self.sat.get_or_compile(&dtd.to_string(), || {
            SatCache::new(dtd).with_context(SAT_CONTEXT)
        })
    }

    /// The shared [`ChaseCache`] for `m`, compiling it on first request.
    pub fn chase_cache(&self, m: &Mapping) -> Arc<ChaseCache> {
        self.chase
            .get_or_compile(&m.to_string(), || ChaseCache::new(m))
    }

    /// The shared [`AutomataCache`] for the ordered pair `(d1, d2)`,
    /// compiling both automata on first request.
    pub fn automata_cache(&self, d1: &Dtd, d2: &Dtd) -> Arc<AutomataCache> {
        let key = format!("{d1}\u{0}{d2}");
        self.automata
            .get_or_compile(&key, || AutomataCache::new(d1, d2))
    }

    /// The shared [`ShapeCache`] for `dtd`.
    pub fn shape_cache(&self, dtd: &Dtd) -> Arc<ShapeCache> {
        self.shapes
            .get_or_compile(&dtd.to_string(), || ShapeCache::new(dtd))
    }

    // ---- decision procedures over the shared caches --------------------

    /// [`consistent`](crate::consistency::consistent) over the shared
    /// source/target [`SatCache`]s.
    pub fn consistent(&self, m: &Mapping, budget: usize) -> Result<ConsAnswer, ConsError> {
        let src = self.sat_cache(&m.source_dtd);
        let tgt = self.sat_cache(&m.target_dtd);
        consistent_cached(m, &src, &tgt, budget)
    }

    /// [`composition_consistent`](crate::consistency::composition_consistent)
    /// over the shared [`SatCache`]s of all three schemas.
    pub fn composition_consistent(
        &self,
        m12: &Mapping,
        m23: &Mapping,
        budget: usize,
    ) -> Result<bool, ConsError> {
        let src = self.sat_cache(&m12.source_dtd);
        let mid = self.sat_cache(&m12.target_dtd);
        let tgt = self.sat_cache(&m23.target_dtd);
        composition_consistent_cached(m12, m23, &src, &mid, &tgt, budget)
    }

    /// [`abscons_structural`](crate::abscons::abscons_structural) over the
    /// shared source/target [`SatCache`]s.
    pub fn abscons_structural(
        &self,
        m: &Mapping,
        budget: usize,
    ) -> Result<Result<AbsConsAnswer, BudgetExceeded>, String> {
        let src = self.sat_cache(&m.source_dtd);
        let tgt = self.sat_cache(&m.target_dtd);
        abscons_structural_cached(m, &src, &tgt, budget)
    }

    /// [`canonical_solution`](crate::chase::canonical_solution) over the
    /// shared [`ChaseCache`] for `m`.
    pub fn canonical_solution(&self, m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
        canonical_solution_cached(m, source, &self.chase_cache(m))
    }

    /// [`reduced_solution`](crate::exchange::reduced_solution) over the
    /// shared [`ChaseCache`] for `m`.
    pub fn reduced_solution(&self, m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
        reduced_solution_cached(m, source, &self.chase_cache(m))
    }

    /// [`certain_answers`](crate::exchange::certain_answers) over the
    /// shared [`ChaseCache`] for `m`.
    pub fn certain_answers(
        &self,
        m: &Mapping,
        source: &Tree,
        query: &Pattern,
    ) -> Result<Vec<Valuation>, CertainAnswersError> {
        certain_answers_cached(m, source, query, &self.chase_cache(m))
    }

    /// [`composition_member`](crate::compose::composition_member) over the
    /// shared [`ShapeCache`] (middle schema) and [`ChaseCache`] (`m12`).
    pub fn composition_member(
        &self,
        m12: &Mapping,
        m23: &Mapping,
        t1: &Tree,
        t3: &Tree,
        max_middle_nodes: usize,
    ) -> Option<Tree> {
        let shapes = self.shape_cache(&m12.target_dtd);
        let chase = self.chase_cache(m12);
        crate::compose::composition_member_cached(
            m12,
            m23,
            t1,
            t3,
            max_middle_nodes,
            &shapes,
            &chase,
        )
    }

    /// [`solution_exists`](crate::bounded::solution_exists) over the
    /// shared target [`ShapeCache`].
    pub fn solution_exists(
        &self,
        m: &Mapping,
        source: &Tree,
        max_target_nodes: usize,
    ) -> Option<Tree> {
        crate::bounded::solution_exists_cached(
            m,
            source,
            max_target_nodes,
            &self.shape_cache(&m.target_dtd),
        )
    }

    /// Subschema check `L(d1) ⊆ L(d2)` over the shared [`AutomataCache`].
    pub fn subschema(
        &self,
        d1: &Dtd,
        d2: &Dtd,
        budget: usize,
    ) -> Result<Option<SubschemaViolation>, InclusionBudgetExceeded> {
        self.automata_cache(d1, d2).subschema(budget)
    }

    /// Label-structure inclusion `L(d1) ⊆ L(d2)` over the shared
    /// [`AutomataCache`]: `None` when included, or a counterexample tree.
    pub fn inclusion(
        &self,
        d1: &Dtd,
        d2: &Dtd,
        budget: usize,
    ) -> Result<Option<Tree>, InclusionBudgetExceeded> {
        self.automata_cache(d1, d2).inclusion(budget)
    }

    /// A snapshot of every cache family's hit/miss/compile-time counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            sat: self.sat.counters(),
            chase: self.chase.counters(),
            automata: self.automata.counters(),
            shapes: self.shapes.counters(),
        }
    }
}

// The whole point of the context is cross-thread sharing; fail the build,
// not the user, if an inner cache ever loses `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineContext>();
    assert_send_sync::<SatCache>();
    assert_send_sync::<ChaseCache>();
    assert_send_sync::<AutomataCache>();
    assert_send_sync::<ShapeCache>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn dtd(text: &str) -> Dtd {
        xmlmap_dtd::parse(text).unwrap()
    }

    fn copy_mapping() -> Mapping {
        Mapping::parse(
            "[source]\nroot r\nr -> a*\na @ v\n\
             [target]\nroot r\nr -> b*\nb @ w\n\
             [stds]\nr/a(x) --> r/b(x)\n",
        )
        .unwrap()
    }

    #[test]
    fn same_content_shares_one_compilation() {
        let ctx = EngineContext::new();
        let d = dtd("root r\nr -> a*\na @ v");
        let c1 = ctx.sat_cache(&d);
        let c2 = ctx.sat_cache(&d.clone());
        assert!(Arc::ptr_eq(&c1, &c2));
        let s = ctx.stats().sat;
        assert_eq!((s.misses, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_content_gets_distinct_entries() {
        let ctx = EngineContext::new();
        let c1 = ctx.sat_cache(&dtd("root r\nr -> a*"));
        let c2 = ctx.sat_cache(&dtd("root r\nr -> b*"));
        assert!(!Arc::ptr_eq(&c1, &c2));
        assert_eq!(ctx.stats().sat.entries, 2);
    }

    #[test]
    fn ops_agree_with_uncached_procedures() {
        let ctx = EngineContext::new();
        let m = copy_mapping();
        let budget = 1_000_000;
        let via_ctx = ctx.consistent(&m, budget).unwrap();
        let fresh = crate::consistency::consistent(&m, budget).unwrap();
        assert_eq!(via_ctx.is_consistent(), fresh.is_consistent());
        // Second call is answered entirely from shared caches.
        let again = ctx.consistent(&m, budget).unwrap();
        assert_eq!(again.is_consistent(), fresh.is_consistent());
        assert!(ctx.stats().sat.hits >= 2);
    }

    #[test]
    fn chase_and_automata_families_are_tracked_separately() {
        let ctx = EngineContext::new();
        let m = copy_mapping();
        let src = xmlmap_trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();
        let sol = ctx.canonical_solution(&m, &src).unwrap();
        assert!(sol.size() > 1);
        let _ = ctx
            .subschema(&m.source_dtd, &m.source_dtd, 1_000_000)
            .unwrap();
        let stats = ctx.stats();
        assert_eq!(stats.chase.misses, 1);
        assert_eq!(stats.automata.misses, 1);
        assert_eq!(stats.sat.misses, 0);
    }
}
