//! A shared, thread-safe session context for the compiled engines.
//!
//! The three compiled engines each amortize per-schema analysis into a
//! cache object — [`SatCache`] (type-fixpoint satisfiability, per DTD),
//! [`ChaseCache`] (chase plans, per mapping) and
//! [`AutomataCache`] (determinized hedge
//! automata, per ordered DTD pair) — but each of those is built by one
//! caller for one workload. An [`EngineContext`] owns all of them behind
//! sharded `RwLock` maps keyed by *content-hashed identity* (the schema's
//! or mapping's canonical display form), so any number of threads can
//! share one context across a whole session:
//!
//! * **compile once** — each map slot holds an `Arc<OnceLock<…>>`; N
//!   threads racing for the same DTD/mapping insert one slot under a brief
//!   write lock and then exactly one of them runs the compilation inside
//!   `OnceLock::get_or_init` while the others block on the slot (not the
//!   shard), then share the compiled `Arc`;
//! * **sharded maps** — keys are spread over [`SHARD_COUNT`] shards by a
//!   hash of the canonical text, so unrelated compilations never contend
//!   on one lock, and the read path (the common case after warm-up) takes
//!   only a shard read lock;
//! * **counters** — every cache tracks hits, misses, compilations, disk
//!   loads, resident bytes, evictions and cumulative compile time;
//!   [`EngineContext::stats`] snapshots them for the CLI
//!   (`xmlmap batch --stats`) and the benches;
//! * **memory budget** — [`EngineContext::with_memory_budget`] bounds the
//!   accounted bytes of resident artifacts with a second-chance (clock)
//!   eviction sweep; entries still compiling are never evicted, and an
//!   unbounded context pays nothing for the machinery;
//! * **persistent store** — [`EngineContext::with_disk_cache`] attaches a
//!   directory of checksummed binary artifacts ([`crate::store`]): cache
//!   misses try a disk load before compiling, fresh compilations are
//!   written back, and a restart against a warm store compiles nothing.
//!   Corrupt or version-stale files are counted (`disk_errors`) and
//!   silently recompiled.
//!
//! What is deliberately **not** cached at this layer: verdicts keyed by
//! *documents* (chase outputs, membership answers — the key would be the
//! document itself), and budget-exceeded errors (the inner caches already
//! never memoize those; a retry with a larger budget must recompute).
//! Result-level memoization stays inside the per-schema caches
//! ([`SatCache`] match sets, `AutomataCache` verdicts), which are all
//! internally synchronized, so sharing them across threads is safe.
//!
//! See DESIGN.md §8.4 for the context architecture and §8.5 for byte
//! accounting, eviction, and the artifact store.

use crate::abscons::{abscons_structural_cached, AbsConsAnswer};
use crate::bounded::ShapeCache;
use crate::chase::delta::DeltaStats;
use crate::chase::{
    canonical_solution_cached, ChaseCache, ChaseError, DeltaPlan, IncrementalChase,
};
use crate::consistency::{composition_consistent_cached, consistent_cached, ConsAnswer, ConsError};
use crate::exchange::{certain_answers_cached, reduced_solution_cached, CertainAnswersError};
use crate::stds::Mapping;
use crate::store::{ArtifactStore, Family, LoadError};
use crate::stream::{
    StreamChaseError, StreamChaseOutcome, StreamChasePlan, StreamJobError, StreamOutcome,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};
use xmlmap_automata::{AutomataCache, InclusionBudgetExceeded, SubschemaViolation};
use xmlmap_codec::{Decoder, Encoder};
use xmlmap_dtd::{Dtd, DtdIndex};
use xmlmap_patterns::sat::BudgetExceeded;
use xmlmap_patterns::{Pattern, SatCache, StreamPattern, UnstreamablePattern, Valuation};
use xmlmap_trees::Tree;

/// Number of lock shards per cache family. A small power of two: enough
/// that concurrent compilations of distinct schemas rarely share a lock,
/// small enough that a stats snapshot is a cheap sweep.
pub const SHARD_COUNT: usize = 16;

/// Budget-error context used for every [`SatCache`] the context builds.
///
/// One fixed string — not the per-operation labels the convenience
/// wrappers use — so a cache first compiled by a consistency probe and
/// later hit by an absolute-consistency probe reports identical errors
/// regardless of which operation happened to compile it first. Batch
/// determinism across worker counts depends on this.
const SAT_CONTEXT: &str = "shared EngineContext probe";

/// Hit/miss/compile-time counters for one cache family.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from an already-resident entry.
    pub hits: u64,
    /// Lookups that filled a fresh slot — by compiling *or* by loading the
    /// artifact off disk (see [`CacheCounters::disk_hits`]); one per
    /// distinct key per residency.
    pub misses: u64,
    /// Slot fills answered from the persistent artifact store instead of a
    /// compilation.
    pub disk_hits: u64,
    /// Stored artifacts that were unusable (corrupt, truncated, or written
    /// by another format version) and fell back to a fresh compile.
    pub disk_errors: u64,
    /// Entries evicted to stay under the context's memory budget.
    pub evictions: u64,
    /// Approximate bytes currently accounted to resident entries.
    pub bytes: u64,
    /// Total wall-clock time spent compiling entries (disk loads excluded).
    pub compile_time: Duration,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheCounters {
    /// Slot fills that actually ran a compilation (misses not answered
    /// from the artifact store).
    pub fn compiled(&self) -> u64 {
        self.misses - self.disk_hits
    }
}

impl std::fmt::Display for CacheCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits, {} misses ({} compiled, {} from disk), {} entries, \
             {} bytes, {} evicted, {:.2}ms compiling",
            self.hits,
            self.misses,
            self.compiled(),
            self.disk_hits,
            self.entries,
            self.bytes,
            self.evictions,
            self.compile_time.as_secs_f64() * 1_000.0
        )?;
        if self.disk_errors > 0 {
            write!(f, ", {} unusable disk artifacts", self.disk_errors)?;
        }
        Ok(())
    }
}

/// A snapshot of every cache family's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Type-fixpoint satisfiability caches (one per DTD).
    pub sat: CacheCounters,
    /// Chase-plan caches (one per mapping).
    pub chase: CacheCounters,
    /// Hedge-automata caches (one per ordered DTD pair).
    pub automata: CacheCounters,
    /// Tree-shape enumeration caches (one per DTD).
    pub shapes: CacheCounters,
    /// Streaming validation indexes (one per DTD — the dense
    /// content-model NFAs behind `StreamValidator`).
    pub stream_index: CacheCounters,
    /// Streaming pattern plans (one per downward-fragment pattern).
    pub stream_plans: CacheCounters,
    /// Streaming-chase artifacts (one per mapping: chase tables plus
    /// per-std stream enumerator plans).
    pub stream_chase: CacheCounters,
    /// Incremental-chase artifacts (one per mapping: chase tables plus
    /// per-std touch profiles).
    pub delta: CacheCounters,
    /// Streaming passes run through [`EngineContext::stream_document`]
    /// or [`EngineContext::chase_stream`].
    pub stream_jobs: u64,
    /// Deepest open-element stack any streaming pass reached.
    pub stream_peak_depth: u64,
    /// Total firings enumerated by streaming chases.
    pub stream_firings: u64,
    /// Most simultaneously-live valuations any streaming chase held.
    pub stream_live_peak: u64,
    /// Incremental-chase sessions opened through
    /// [`EngineContext::delta_session`].
    pub delta_sessions: u64,
    /// Updates applied by incremental-chase sessions.
    pub delta_updates: u64,
    /// Std re-enumerations those updates forced (the refire frontier).
    pub delta_refires: u64,
    /// Stds the per-update region analysis proved unaffected.
    pub delta_skips: u64,
    /// The context's memory budget, if bounded.
    pub memory_budget: Option<u64>,
}

impl EngineStats {
    /// Approximate bytes accounted across all families.
    pub fn total_bytes(&self) -> u64 {
        self.sat.bytes
            + self.chase.bytes
            + self.automata.bytes
            + self.shapes.bytes
            + self.stream_index.bytes
            + self.stream_plans.bytes
            + self.stream_chase.bytes
            + self.delta.bytes
    }

    /// Slot fills across all families that ran a compilation.
    pub fn total_compiled(&self) -> u64 {
        self.sat.compiled()
            + self.chase.compiled()
            + self.automata.compiled()
            + self.shapes.compiled()
            + self.stream_index.compiled()
            + self.stream_plans.compiled()
            + self.stream_chase.compiled()
            + self.delta.compiled()
    }

    /// Slot fills across all families answered from the artifact store.
    pub fn total_disk_hits(&self) -> u64 {
        self.sat.disk_hits
            + self.chase.disk_hits
            + self.automata.disk_hits
            + self.shapes.disk_hits
            + self.stream_index.disk_hits
            + self.stream_plans.disk_hits
            + self.stream_chase.disk_hits
            + self.delta.disk_hits
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "sat:      {}", self.sat)?;
        writeln!(f, "chase:    {}", self.chase)?;
        writeln!(f, "automata: {}", self.automata)?;
        writeln!(f, "shapes:   {}", self.shapes)?;
        writeln!(f, "sindex:   {}", self.stream_index)?;
        writeln!(f, "splan:    {}", self.stream_plans)?;
        writeln!(f, "schase:   {}", self.stream_chase)?;
        writeln!(f, "delta:    {}", self.delta)?;
        writeln!(
            f,
            "stream:   {} job(s), peak stream depth {}, {} firing(s), \
             peak live valuations {}",
            self.stream_jobs, self.stream_peak_depth, self.stream_firings, self.stream_live_peak
        )?;
        writeln!(
            f,
            "dchase:   {} session(s), {} update(s), {} refired std(s), \
             {} skipped std(s)",
            self.delta_sessions, self.delta_updates, self.delta_refires, self.delta_skips
        )?;
        match self.memory_budget {
            Some(b) => write!(
                f,
                "memory:   {} bytes accounted, budget {b}",
                self.total_bytes()
            ),
            None => write!(
                f,
                "memory:   {} bytes accounted, unbounded",
                self.total_bytes()
            ),
        }
    }
}

/// Per-family counter cells (atomics; relaxed ordering — these are
/// diagnostics, not synchronization).
#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk_errors: AtomicU64,
    evictions: AtomicU64,
    bytes: AtomicU64,
    compile_ns: AtomicU64,
}

impl StatCells {
    /// Adjusts the accounted-bytes total by `new - old`.
    fn rebook(&self, old: u64, new: u64) {
        if new >= old {
            self.bytes.fetch_add(new - old, Ordering::Relaxed);
        } else {
            self.bytes.fetch_sub(old - new, Ordering::Relaxed);
        }
    }
}

/// A cache slot: filled exactly once, by whichever thread wins the race.
type Slot<V> = Arc<OnceLock<Arc<V>>>;

/// One resident (or in-flight) cache entry: the compile-once slot plus the
/// bookkeeping the eviction clock needs. Unfilled slots (a compile in
/// flight) are never evicted — removing one would lose the dedup that
/// makes N racing threads run one compilation.
struct Entry<V> {
    slot: Slot<V>,
    /// Second-chance bit: set on every access, cleared (once) by the clock
    /// hand before an entry becomes an eviction candidate.
    referenced: AtomicBool,
    /// Bytes accounted to this entry (0 until first measured).
    bytes: AtomicU64,
}

/// One lock shard: the key map plus a clock ring over its keys.
struct Shard<V> {
    map: HashMap<String, Arc<Entry<V>>>,
    /// Keys in residence order; `swap_remove` keeps eviction O(1).
    ring: Vec<String>,
    /// Clock hand into `ring`.
    hand: usize,
}

/// How a lookup was satisfied.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fill {
    /// The entry was already resident.
    Hit,
    /// A fresh slot, filled from the persistent artifact store.
    Disk,
    /// A fresh slot, filled by running the compiler.
    Compiled,
}

/// One sharded compile-once map: canonical text → compiled artifact, with
/// second-chance eviction over the shard rings.
struct ShardedCache<V> {
    shards: Vec<RwLock<Shard<V>>>,
    stats: StatCells,
    /// Round-robin shard cursor for eviction, so successive evictions
    /// spread over shards instead of draining one.
    clock: AtomicUsize,
}

impl<V> ShardedCache<V> {
    fn new() -> ShardedCache<V> {
        ShardedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    RwLock::new(Shard {
                        map: HashMap::new(),
                        ring: Vec::new(),
                        hand: 0,
                    })
                })
                .collect(),
            stats: StatCells::default(),
            clock: AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARD_COUNT
    }

    /// The compile-once protocol: read-lock lookup, double-checked entry
    /// insertion under the write lock, filling outside any shard lock
    /// (inside the slot's `OnceLock`, which admits exactly one winner).
    ///
    /// `fill` produces the value and whether it came from the artifact
    /// store; it runs at most once per residency.
    fn get_or_fill(&self, key: &str, fill: impl FnOnce() -> (V, bool)) -> (Arc<V>, Fill) {
        let shard = &self.shards[self.shard_of(key)];
        let entry = shard.read().unwrap().map.get(key).cloned();
        let entry = match entry {
            Some(e) => e,
            None => {
                let mut guard = shard.write().unwrap();
                match guard.map.get(key) {
                    Some(e) => e.clone(),
                    None => {
                        let e = Arc::new(Entry {
                            slot: Arc::new(OnceLock::new()),
                            referenced: AtomicBool::new(true),
                            bytes: AtomicU64::new(0),
                        });
                        guard.map.insert(key.to_string(), e.clone());
                        guard.ring.push(key.to_string());
                        e
                    }
                }
            }
        };
        entry.referenced.store(true, Ordering::Relaxed);
        let mut how = Fill::Hit;
        let value = entry
            .slot
            .get_or_init(|| {
                let (v, from_disk) = fill();
                how = if from_disk {
                    Fill::Disk
                } else {
                    Fill::Compiled
                };
                Arc::new(v)
            })
            .clone();
        match how {
            Fill::Hit => self.stats.hits.fetch_add(1, Ordering::Relaxed),
            Fill::Disk => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                self.stats.disk_hits.fetch_add(1, Ordering::Relaxed)
            }
            Fill::Compiled => self.stats.misses.fetch_add(1, Ordering::Relaxed),
        };
        (value, how)
    }

    /// Books `bytes` against the entry for `key` (and the family total).
    fn set_bytes(&self, key: &str, bytes: u64) {
        let shard = self.shards[self.shard_of(key)].read().unwrap();
        if let Some(entry) = shard.map.get(key) {
            let old = entry.bytes.swap(bytes, Ordering::Relaxed);
            self.stats.rebook(old, bytes);
        }
    }

    /// Re-measures every resident entry (artifacts whose footprint grows at
    /// query time: memoized verdicts, shape lists).
    fn refresh_bytes(&self, measure: impl Fn(&V) -> u64) {
        for shard in &self.shards {
            let entries: Vec<Arc<Entry<V>>> = shard.read().unwrap().map.values().cloned().collect();
            for entry in entries {
                if let Some(v) = entry.slot.get() {
                    let bytes = measure(v);
                    let old = entry.bytes.swap(bytes, Ordering::Relaxed);
                    self.stats.rebook(old, bytes);
                }
            }
        }
    }

    /// Evicts one entry by the second-chance (clock) policy, returning the
    /// bytes it had accounted. Unfilled slots (compiles in flight) are
    /// skipped; a set `referenced` bit buys one more revolution. Returns
    /// `None` when no shard holds an evictable entry.
    fn evict_one(&self) -> Option<u64> {
        let start = self.clock.fetch_add(1, Ordering::Relaxed);
        for i in 0..SHARD_COUNT {
            let mut shard = self.shards[(start + i) % SHARD_COUNT].write().unwrap();
            // Two passes over the ring: the first may only clear bits.
            for _ in 0..2 * shard.ring.len() {
                if shard.hand >= shard.ring.len() {
                    shard.hand = 0;
                }
                let spare = {
                    let entry = &shard.map[&shard.ring[shard.hand]];
                    entry.slot.get().is_none() || entry.referenced.swap(false, Ordering::Relaxed)
                };
                if spare {
                    shard.hand += 1;
                    continue;
                }
                let hand = shard.hand;
                let key = shard.ring.swap_remove(hand);
                let entry = shard.map.remove(&key).expect("ring key is mapped");
                let bytes = entry.bytes.load(Ordering::Relaxed);
                self.stats.rebook(bytes, 0);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                return Some(bytes);
            }
        }
        None
    }

    /// Calls `f` on every resident (filled) entry.
    fn for_each(&self, mut f: impl FnMut(&str, &Arc<V>)) {
        for shard in &self.shards {
            let entries: Vec<(String, Arc<Entry<V>>)> = shard
                .read()
                .unwrap()
                .map
                .iter()
                .map(|(k, e)| (k.clone(), e.clone()))
                .collect();
            for (key, entry) in entries {
                if let Some(v) = entry.slot.get() {
                    f(&key, v);
                }
            }
        }
    }

    fn bytes(&self) -> u64 {
        self.stats.bytes.load(Ordering::Relaxed)
    }

    fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            disk_errors: self.stats.disk_errors.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            bytes: self.stats.bytes.load(Ordering::Relaxed),
            compile_time: Duration::from_nanos(self.stats.compile_ns.load(Ordering::Relaxed)),
            entries: self
                .shards
                .iter()
                .map(|s| s.read().unwrap().map.len() as u64)
                .sum(),
        }
    }
}

/// A thread-safe session object owning every compiled-engine cache.
///
/// Build one per process (or per logical session) and share it by
/// reference — it is `Sync`, and every method takes `&self`. All the
/// decision procedures of the crate are available as methods that fetch
/// the right caches by content identity and delegate to the `*_cached`
/// functions; the raw cache accessors ([`EngineContext::sat_cache`] etc.)
/// serve call sites that want to drive the caches directly.
///
/// ```
/// use xmlmap_core::EngineContext;
/// let ctx = EngineContext::new();
/// let dtd = xmlmap_dtd::parse("root r\nr -> a*\na @ v").unwrap();
/// let c1 = ctx.sat_cache(&dtd);
/// let c2 = ctx.sat_cache(&dtd.clone()); // same content → same cache
/// assert!(std::sync::Arc::ptr_eq(&c1, &c2));
/// assert_eq!(ctx.stats().sat.misses, 1);
/// ```
pub struct EngineContext {
    sat: ShardedCache<SatCache>,
    chase: ShardedCache<ChaseCache>,
    automata: ShardedCache<AutomataCache>,
    shapes: ShardedCache<ShapeCache>,
    stream_idx: ShardedCache<DtdIndex>,
    stream_plans: ShardedCache<StreamPattern>,
    stream_chase: ShardedCache<StreamChasePlan>,
    delta: ShardedCache<DeltaPlan>,
    /// Streaming passes run (diagnostics for `batch --stats` / `STATS`).
    stream_jobs: AtomicU64,
    /// Deepest open-element stack any streaming pass reached.
    stream_peak_depth: AtomicU64,
    /// Total firings enumerated by streaming chases.
    stream_firings: AtomicU64,
    /// Most simultaneously-live valuations any streaming chase held.
    stream_live_peak: AtomicU64,
    /// Incremental-chase sessions opened.
    delta_sessions: AtomicU64,
    /// Updates applied by incremental-chase sessions.
    delta_updates: AtomicU64,
    /// Std re-enumerations those updates forced.
    delta_refires: AtomicU64,
    /// Stds the per-update region analysis proved unaffected.
    delta_skips: AtomicU64,
    /// Approximate ceiling on the accounted bytes of all resident
    /// artifacts; `None` = unbounded (the pre-existing behaviour).
    budget: Option<u64>,
    /// Persistent artifact store; `None` = in-memory only.
    store: Option<ArtifactStore>,
}

impl Default for EngineContext {
    fn default() -> EngineContext {
        EngineContext::new()
    }
}

impl EngineContext {
    /// A fresh, empty context: unbounded, in-memory only.
    pub fn new() -> EngineContext {
        EngineContext {
            sat: ShardedCache::new(),
            chase: ShardedCache::new(),
            automata: ShardedCache::new(),
            shapes: ShardedCache::new(),
            stream_idx: ShardedCache::new(),
            stream_plans: ShardedCache::new(),
            stream_chase: ShardedCache::new(),
            delta: ShardedCache::new(),
            stream_jobs: AtomicU64::new(0),
            stream_peak_depth: AtomicU64::new(0),
            stream_firings: AtomicU64::new(0),
            stream_live_peak: AtomicU64::new(0),
            delta_sessions: AtomicU64::new(0),
            delta_updates: AtomicU64::new(0),
            delta_refires: AtomicU64::new(0),
            delta_skips: AtomicU64::new(0),
            budget: None,
            store: None,
        }
    }

    /// Bounds the accounted bytes of resident compiled artifacts. When a
    /// fill (or a byte re-measurement) pushes the total over `bytes`, the
    /// context evicts by a second-chance clock until it fits again —
    /// starting with the heaviest family. Evicted artifacts recompile on
    /// next use (or reload from the disk store); `Arc`s already handed out
    /// stay valid.
    pub fn with_memory_budget(mut self, bytes: u64) -> EngineContext {
        self.budget = Some(bytes);
        self
    }

    /// Attaches a persistent artifact store at `dir` (created if absent).
    /// Every cache miss first tries the store; compiled artifacts are
    /// written back, so a later process (or a post-eviction refill) skips
    /// compilation entirely. Call [`EngineContext::flush_disk_cache`]
    /// before dropping the context to persist the query-time shape
    /// enumerations too.
    pub fn with_disk_cache(mut self, dir: impl AsRef<Path>) -> std::io::Result<EngineContext> {
        self.store = Some(ArtifactStore::new(dir)?);
        Ok(self)
    }

    /// The configured memory budget, if any.
    pub fn memory_budget(&self) -> Option<u64> {
        self.budget
    }

    /// The attached artifact-store directory, if any.
    pub fn disk_cache_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(ArtifactStore::dir)
    }

    // ---- the load-or-compile spine -------------------------------------

    /// One lookup against a family cache: resident hit, else disk load,
    /// else compile (writing back to disk when `persist` and a store is
    /// attached), then byte accounting and budget enforcement.
    #[allow(clippy::too_many_arguments)]
    fn fetch<V>(
        &self,
        cache: &ShardedCache<V>,
        family: Family,
        key: &str,
        persist: bool,
        decode: impl FnOnce(&[u8]) -> Option<V>,
        encode: impl FnOnce(&V) -> Vec<u8>,
        measure: impl FnOnce(&V) -> u64,
        compile: impl FnOnce() -> V,
    ) -> Arc<V> {
        let (value, how) = cache.get_or_fill(key, || {
            if let Some(store) = &self.store {
                match store.load(family, key) {
                    Ok(payload) => match decode(&payload) {
                        Some(v) => return (v, true),
                        None => {
                            cache.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    },
                    Err(LoadError::Missing) => {}
                    Err(_) => {
                        cache.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let start = Instant::now();
            let v = compile();
            cache
                .stats
                .compile_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            (v, false)
        });
        if how != Fill::Hit {
            if how == Fill::Compiled && persist {
                if let Some(store) = &self.store {
                    store.save(family, key, &encode(&value));
                }
            }
            cache.set_bytes(key, measure(&value));
            self.enforce_budget();
        }
        value
    }

    /// Evicts (heaviest family first) until the accounted total fits the
    /// budget, or nothing evictable remains.
    fn enforce_budget(&self) {
        let Some(budget) = self.budget else { return };
        loop {
            let bytes = [
                self.sat.bytes(),
                self.chase.bytes(),
                self.automata.bytes(),
                self.shapes.bytes(),
                self.stream_idx.bytes(),
                self.stream_plans.bytes(),
                self.stream_chase.bytes(),
                self.delta.bytes(),
            ];
            if bytes.iter().sum::<u64>() <= budget {
                return;
            }
            let mut order = [0usize, 1, 2, 3, 4, 5, 6, 7];
            order.sort_by_key(|&i| std::cmp::Reverse(bytes[i]));
            let evicted = order.iter().any(|&i| {
                match i {
                    0 => self.sat.evict_one(),
                    1 => self.chase.evict_one(),
                    2 => self.automata.evict_one(),
                    3 => self.shapes.evict_one(),
                    4 => self.stream_idx.evict_one(),
                    5 => self.stream_plans.evict_one(),
                    6 => self.stream_chase.evict_one(),
                    _ => self.delta.evict_one(),
                }
                .is_some()
            });
            if !evicted {
                return;
            }
        }
    }

    /// Re-measures every resident artifact and re-enforces the budget.
    /// Cheap relative to any decision procedure, but pure overhead for
    /// unbounded contexts — so it is a no-op without a budget, and callers
    /// invoke it only after operations that can grow artifacts (memoized
    /// verdicts, shape enumerations).
    fn rebalance(&self) {
        if self.budget.is_none() {
            return;
        }
        self.sat.refresh_bytes(|v| v.approx_bytes());
        self.chase.refresh_bytes(|v| v.approx_bytes());
        self.automata.refresh_bytes(|v| v.approx_bytes());
        self.shapes.refresh_bytes(|v| v.approx_bytes());
        self.enforce_budget();
    }

    /// Writes the artifact families whose content accumulates at *query*
    /// time — today the shape caches — to the attached store. Compiled-at-
    /// fill families are persisted eagerly and need no flush. No-op
    /// without a store.
    pub fn flush_disk_cache(&self) {
        let Some(store) = &self.store else { return };
        self.shapes.for_each(|key, v| {
            if v.has_content() {
                store.save(Family::Shapes, key, &v.to_bytes());
            }
        });
    }

    // ---- raw cache accessors -------------------------------------------

    /// The shared [`SatCache`] for `dtd`, loading or compiling it on first
    /// request.
    pub fn sat_cache(&self, dtd: &Dtd) -> Arc<SatCache> {
        self.fetch(
            &self.sat,
            Family::Sat,
            &dtd.to_string(),
            true,
            |b| {
                SatCache::from_bytes(b)
                    .ok()
                    .map(|c| c.with_context(SAT_CONTEXT))
            },
            |v| v.to_bytes(),
            |v| v.approx_bytes(),
            || SatCache::new(dtd).with_context(SAT_CONTEXT),
        )
    }

    /// The shared [`ChaseCache`] for `m`, loading or compiling it on first
    /// request.
    pub fn chase_cache(&self, m: &Mapping) -> Arc<ChaseCache> {
        self.fetch(
            &self.chase,
            Family::Chase,
            &m.to_string(),
            true,
            |b| ChaseCache::from_bytes(b).ok(),
            |v| v.to_bytes(),
            |v| v.approx_bytes(),
            || ChaseCache::new(m),
        )
    }

    /// The shared [`AutomataCache`] for the ordered pair `(d1, d2)`,
    /// loading or compiling both automata on first request.
    pub fn automata_cache(&self, d1: &Dtd, d2: &Dtd) -> Arc<AutomataCache> {
        let key = format!("{d1}\u{0}{d2}");
        self.fetch(
            &self.automata,
            Family::Automata,
            &key,
            true,
            |b| AutomataCache::from_bytes(b).ok(),
            |v| v.to_bytes(),
            |v| v.approx_bytes(),
            || AutomataCache::new(d1, d2),
        )
    }

    /// The shared [`ShapeCache`] for `dtd`. A fresh shape cache is empty
    /// (enumeration happens per bound at query time), so this family is
    /// persisted by [`EngineContext::flush_disk_cache`] rather than at
    /// fill time.
    pub fn shape_cache(&self, dtd: &Dtd) -> Arc<ShapeCache> {
        self.fetch(
            &self.shapes,
            Family::Shapes,
            &dtd.to_string(),
            false,
            |b| ShapeCache::from_bytes(b).ok(),
            |v| v.to_bytes(),
            |v| v.approx_bytes(),
            || ShapeCache::new(dtd),
        )
    }

    /// The shared streaming [`DtdIndex`] for `dtd` (dense content-model
    /// NFAs), loading or compiling it on first request.
    pub fn stream_index(&self, dtd: &Dtd) -> Arc<DtdIndex> {
        self.fetch(
            &self.stream_idx,
            Family::StreamIndex,
            &dtd.to_string(),
            true,
            |b| {
                let mut d = Decoder::new(b);
                DtdIndex::decode(&mut d).ok()
            },
            |v| {
                let mut e = Encoder::new();
                v.encode(&mut e);
                e.finish()
            },
            |v| v.approx_bytes(),
            || DtdIndex::new(dtd),
        )
    }

    /// The shared streaming plan for `pattern`, compiling it on first
    /// request; rejects patterns outside the streamable downward fragment
    /// with a diagnostic naming the offending feature. Plans are cheap to
    /// compile and are kept in memory only (never persisted to disk).
    pub fn stream_plan(
        &self,
        pattern: &Pattern,
    ) -> Result<Arc<StreamPattern>, UnstreamablePattern> {
        let compiled = StreamPattern::compile(pattern)?;
        Ok(self.fetch(
            &self.stream_plans,
            Family::StreamPlan,
            &pattern.to_string(),
            false,
            |_| None,
            |_| Vec::new(),
            |v| v.approx_bytes(),
            move || compiled,
        ))
    }

    /// The shared [`StreamChasePlan`] for `m` (chase tables + per-std
    /// stream enumerator plans), loading or compiling it on first
    /// request. The persisted payload is the chase tables; the stream
    /// plans are recompiled from the canonical source-pattern texts on
    /// decode.
    pub fn stream_chase_plan(&self, m: &Mapping) -> Arc<StreamChasePlan> {
        self.fetch(
            &self.stream_chase,
            Family::StreamChase,
            &m.to_string(),
            true,
            |b| StreamChasePlan::from_bytes(b).ok(),
            |v| v.to_bytes(),
            |v| v.approx_bytes(),
            || StreamChasePlan::new(m),
        )
    }

    /// The shared [`DeltaPlan`] for `m` (chase tables + per-std touch
    /// profiles), loading or compiling it on first request. The persisted
    /// payload is the chase tables; the touch profiles are recomputed from
    /// the canonical source-pattern texts on decode.
    pub fn delta_plan(&self, m: &Mapping) -> Arc<DeltaPlan> {
        self.fetch(
            &self.delta,
            Family::DeltaChase,
            &m.to_string(),
            true,
            |b| DeltaPlan::from_bytes(b).ok(),
            |v| v.to_bytes(),
            |v| v.approx_bytes(),
            || DeltaPlan::new(m),
        )
    }

    /// Opens an [`IncrementalChase`] session over the shared [`DeltaPlan`]
    /// for `m`. Call [`EngineContext::record_delta`] with the session's
    /// final [`DeltaStats`] to fold its work into the context counters.
    pub fn delta_session(&self, m: &Mapping, doc: Tree) -> IncrementalChase {
        let plan = self.delta_plan(m);
        self.delta_sessions.fetch_add(1, Ordering::Relaxed);
        IncrementalChase::with_plan(m.clone(), doc, plan)
    }

    /// Folds one session's update/refire/skip totals into the context.
    pub fn record_delta(&self, stats: DeltaStats) {
        self.delta_updates
            .fetch_add(stats.updates, Ordering::Relaxed);
        self.delta_refires
            .fetch_add(stats.refires, Ordering::Relaxed);
        self.delta_skips.fetch_add(stats.skips, Ordering::Relaxed);
    }

    /// Streams `src` once against `m`'s source DTD while enumerating std
    /// firings, then chases them into the canonical target tree — the
    /// same tree [`EngineContext::canonical_solution`] builds, without
    /// ever materialising the source
    /// (see [`crate::stream::chase_stream`]).
    pub fn chase_stream<R: std::io::Read>(
        &self,
        m: &Mapping,
        src: R,
    ) -> Result<StreamChaseOutcome, StreamChaseError> {
        let idx = self.stream_index(&m.source_dtd);
        let plan = self.stream_chase_plan(m);
        self.stream_jobs.fetch_add(1, Ordering::Relaxed);
        let outcome = crate::stream::chase_stream(&idx, &plan, src)?;
        self.stream_peak_depth
            .fetch_max(outcome.stats.peak_depth as u64, Ordering::Relaxed);
        self.stream_firings
            .fetch_add(outcome.firings, Ordering::Relaxed);
        self.stream_live_peak
            .fetch_max(outcome.peak_live_valuations, Ordering::Relaxed);
        self.rebalance();
        Ok(outcome)
    }

    /// Streams `src` against `dtd` — and, when `pattern` is given,
    /// evaluates membership in the same single pass — in O(depth) memory,
    /// over the shared compiled index and plan
    /// (see [`crate::stream::stream_document`]).
    pub fn stream_document<R: std::io::Read>(
        &self,
        dtd: &Dtd,
        pattern: Option<&Pattern>,
        src: R,
    ) -> Result<StreamOutcome, StreamJobError> {
        let idx = self.stream_index(dtd);
        let plan = match pattern {
            Some(p) => Some(self.stream_plan(p)?),
            None => None,
        };
        self.stream_jobs.fetch_add(1, Ordering::Relaxed);
        let outcome = crate::stream::stream_document(&idx, plan.as_deref(), src)?;
        self.stream_peak_depth
            .fetch_max(outcome.stats.peak_depth as u64, Ordering::Relaxed);
        self.rebalance();
        Ok(outcome)
    }

    // ---- decision procedures over the shared caches --------------------

    /// [`consistent`](crate::consistency::consistent) over the shared
    /// source/target [`SatCache`]s.
    pub fn consistent(&self, m: &Mapping, budget: usize) -> Result<ConsAnswer, ConsError> {
        let src = self.sat_cache(&m.source_dtd);
        let tgt = self.sat_cache(&m.target_dtd);
        let out = consistent_cached(m, &src, &tgt, budget);
        self.rebalance();
        out
    }

    /// [`composition_consistent`](crate::consistency::composition_consistent)
    /// over the shared [`SatCache`]s of all three schemas.
    pub fn composition_consistent(
        &self,
        m12: &Mapping,
        m23: &Mapping,
        budget: usize,
    ) -> Result<bool, ConsError> {
        let src = self.sat_cache(&m12.source_dtd);
        let mid = self.sat_cache(&m12.target_dtd);
        let tgt = self.sat_cache(&m23.target_dtd);
        let out = composition_consistent_cached(m12, m23, &src, &mid, &tgt, budget);
        self.rebalance();
        out
    }

    /// [`abscons_structural`](crate::abscons::abscons_structural) over the
    /// shared source/target [`SatCache`]s.
    pub fn abscons_structural(
        &self,
        m: &Mapping,
        budget: usize,
    ) -> Result<Result<AbsConsAnswer, BudgetExceeded>, String> {
        let src = self.sat_cache(&m.source_dtd);
        let tgt = self.sat_cache(&m.target_dtd);
        let out = abscons_structural_cached(m, &src, &tgt, budget);
        self.rebalance();
        out
    }

    /// [`canonical_solution`](crate::chase::canonical_solution) over the
    /// shared [`ChaseCache`] for `m`.
    pub fn canonical_solution(&self, m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
        canonical_solution_cached(m, source, &self.chase_cache(m))
    }

    /// [`reduced_solution`](crate::exchange::reduced_solution) over the
    /// shared [`ChaseCache`] for `m`.
    pub fn reduced_solution(&self, m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
        reduced_solution_cached(m, source, &self.chase_cache(m))
    }

    /// [`certain_answers`](crate::exchange::certain_answers) over the
    /// shared [`ChaseCache`] for `m`.
    pub fn certain_answers(
        &self,
        m: &Mapping,
        source: &Tree,
        query: &Pattern,
    ) -> Result<Vec<Valuation>, CertainAnswersError> {
        certain_answers_cached(m, source, query, &self.chase_cache(m))
    }

    /// [`composition_member`](crate::compose::composition_member) over the
    /// shared [`ShapeCache`] (middle schema) and [`ChaseCache`] (`m12`).
    pub fn composition_member(
        &self,
        m12: &Mapping,
        m23: &Mapping,
        t1: &Tree,
        t3: &Tree,
        max_middle_nodes: usize,
    ) -> Option<Tree> {
        let shapes = self.shape_cache(&m12.target_dtd);
        let chase = self.chase_cache(m12);
        let out = crate::compose::composition_member_cached(
            m12,
            m23,
            t1,
            t3,
            max_middle_nodes,
            &shapes,
            &chase,
        );
        self.rebalance();
        out
    }

    /// [`solution_exists`](crate::bounded::solution_exists) over the
    /// shared target [`ShapeCache`].
    pub fn solution_exists(
        &self,
        m: &Mapping,
        source: &Tree,
        max_target_nodes: usize,
    ) -> Option<Tree> {
        let out = crate::bounded::solution_exists_cached(
            m,
            source,
            max_target_nodes,
            &self.shape_cache(&m.target_dtd),
        );
        self.rebalance();
        out
    }

    /// Subschema check `L(d1) ⊆ L(d2)` over the shared [`AutomataCache`].
    pub fn subschema(
        &self,
        d1: &Dtd,
        d2: &Dtd,
        budget: usize,
    ) -> Result<Option<SubschemaViolation>, InclusionBudgetExceeded> {
        let out = self.automata_cache(d1, d2).subschema(budget);
        self.rebalance();
        out
    }

    /// Label-structure inclusion `L(d1) ⊆ L(d2)` over the shared
    /// [`AutomataCache`]: `None` when included, or a counterexample tree.
    pub fn inclusion(
        &self,
        d1: &Dtd,
        d2: &Dtd,
        budget: usize,
    ) -> Result<Option<Tree>, InclusionBudgetExceeded> {
        let out = self.automata_cache(d1, d2).inclusion(budget);
        self.rebalance();
        out
    }

    /// A snapshot of every cache family's counters, plus the memory
    /// budget.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            sat: self.sat.counters(),
            chase: self.chase.counters(),
            automata: self.automata.counters(),
            shapes: self.shapes.counters(),
            stream_index: self.stream_idx.counters(),
            stream_plans: self.stream_plans.counters(),
            stream_chase: self.stream_chase.counters(),
            delta: self.delta.counters(),
            stream_jobs: self.stream_jobs.load(Ordering::Relaxed),
            stream_peak_depth: self.stream_peak_depth.load(Ordering::Relaxed),
            stream_firings: self.stream_firings.load(Ordering::Relaxed),
            stream_live_peak: self.stream_live_peak.load(Ordering::Relaxed),
            delta_sessions: self.delta_sessions.load(Ordering::Relaxed),
            delta_updates: self.delta_updates.load(Ordering::Relaxed),
            delta_refires: self.delta_refires.load(Ordering::Relaxed),
            delta_skips: self.delta_skips.load(Ordering::Relaxed),
            memory_budget: self.budget,
        }
    }
}

// The whole point of the context is cross-thread sharing; fail the build,
// not the user, if an inner cache ever loses `Send + Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EngineContext>();
    assert_send_sync::<SatCache>();
    assert_send_sync::<ChaseCache>();
    assert_send_sync::<AutomataCache>();
    assert_send_sync::<ShapeCache>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn dtd(text: &str) -> Dtd {
        xmlmap_dtd::parse(text).unwrap()
    }

    fn copy_mapping() -> Mapping {
        Mapping::parse(
            "[source]\nroot r\nr -> a*\na @ v\n\
             [target]\nroot r\nr -> b*\nb @ w\n\
             [stds]\nr/a(x) --> r/b(x)\n",
        )
        .unwrap()
    }

    #[test]
    fn same_content_shares_one_compilation() {
        let ctx = EngineContext::new();
        let d = dtd("root r\nr -> a*\na @ v");
        let c1 = ctx.sat_cache(&d);
        let c2 = ctx.sat_cache(&d.clone());
        assert!(Arc::ptr_eq(&c1, &c2));
        let s = ctx.stats().sat;
        assert_eq!((s.misses, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_content_gets_distinct_entries() {
        let ctx = EngineContext::new();
        let c1 = ctx.sat_cache(&dtd("root r\nr -> a*"));
        let c2 = ctx.sat_cache(&dtd("root r\nr -> b*"));
        assert!(!Arc::ptr_eq(&c1, &c2));
        assert_eq!(ctx.stats().sat.entries, 2);
    }

    #[test]
    fn ops_agree_with_uncached_procedures() {
        let ctx = EngineContext::new();
        let m = copy_mapping();
        let budget = 1_000_000;
        let via_ctx = ctx.consistent(&m, budget).unwrap();
        let fresh = crate::consistency::consistent(&m, budget).unwrap();
        assert_eq!(via_ctx.is_consistent(), fresh.is_consistent());
        // Second call is answered entirely from shared caches.
        let again = ctx.consistent(&m, budget).unwrap();
        assert_eq!(again.is_consistent(), fresh.is_consistent());
        assert!(ctx.stats().sat.hits >= 2);
    }

    #[test]
    fn streaming_caches_and_tallies() {
        let ctx = EngineContext::new();
        let d = dtd("root r\nr -> a*\na @ v");
        let doc = r#"<r><a v="1"/></r>"#;
        let p = xmlmap_patterns::parse("r/a(x)").unwrap();
        let out = ctx.stream_document(&d, Some(&p), doc.as_bytes()).unwrap();
        assert_eq!(out.violation, None);
        assert_eq!(out.matched, Some(true));
        let again = ctx.stream_document(&d, Some(&p), doc.as_bytes()).unwrap();
        assert_eq!(again.matched, Some(true));
        let s = ctx.stats();
        assert_eq!((s.stream_index.misses, s.stream_index.hits), (1, 1));
        assert_eq!((s.stream_plans.misses, s.stream_plans.hits), (1, 1));
        assert_eq!((s.stream_jobs, s.stream_peak_depth), (2, 2));
        assert!(s.total_bytes() > 0);
        // Outside the streamable fragment: a diagnostic, nothing cached.
        let sib = xmlmap_patterns::parse("r[a(x) -> a(y)]").unwrap();
        assert!(ctx.stream_plan(&sib).is_err());
        assert_eq!(ctx.stats().stream_plans.entries, 1);
    }

    #[test]
    fn streaming_chase_caches_and_tallies() {
        let ctx = EngineContext::new();
        let m = copy_mapping();
        let doc = r#"<r><a v="1"/><a v="2"/></r>"#;
        let out = ctx.chase_stream(&m, doc.as_bytes()).unwrap();
        assert_eq!(out.violation, None);
        let streamed = out.solution.unwrap().unwrap();
        let tree = xmlmap_trees::xml::parse(doc).unwrap();
        assert_eq!(streamed, ctx.canonical_solution(&m, &tree).unwrap());
        let again = ctx.chase_stream(&m, doc.as_bytes()).unwrap();
        assert_eq!(again.solution.unwrap().unwrap(), streamed);
        let s = ctx.stats();
        assert_eq!((s.stream_chase.misses, s.stream_chase.hits), (1, 1));
        assert_eq!(s.stream_firings, 4);
        assert!(s.stream_live_peak >= 2);
        assert!(s.stream_jobs >= 2);
    }

    #[test]
    fn delta_sessions_share_one_plan_and_tally() {
        let ctx = EngineContext::new();
        let m = copy_mapping();
        let doc = xmlmap_trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();
        let mut s1 = ctx.delta_session(&m, doc.clone());
        let mut s2 = ctx.delta_session(&m, doc.clone());
        assert_eq!(
            s1.canonical_solution().unwrap(),
            s2.canonical_solution().unwrap()
        );
        s1.insert_subtree(
            Tree::ROOT,
            1,
            &xmlmap_trees::xml::parse(r#"<a v="2"/>"#).unwrap(),
        )
        .unwrap();
        assert_eq!(
            s1.canonical_solution().unwrap(),
            ctx.canonical_solution(&m, s1.doc()).unwrap()
        );
        ctx.record_delta(s1.stats());
        ctx.record_delta(s2.stats());
        let stats = ctx.stats();
        assert_eq!((stats.delta.misses, stats.delta.hits), (1, 1));
        assert_eq!(stats.delta_sessions, 2);
        assert_eq!(stats.delta_updates, 1);
        assert_eq!(stats.delta_refires, 3); // 1 initial per session + 1 refire
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn chase_and_automata_families_are_tracked_separately() {
        let ctx = EngineContext::new();
        let m = copy_mapping();
        let src = xmlmap_trees::xml::parse(r#"<r><a v="1"/></r>"#).unwrap();
        let sol = ctx.canonical_solution(&m, &src).unwrap();
        assert!(sol.size() > 1);
        let _ = ctx
            .subschema(&m.source_dtd, &m.source_dtd, 1_000_000)
            .unwrap();
        let stats = ctx.stats();
        assert_eq!(stats.chase.misses, 1);
        assert_eq!(stats.automata.misses, 1);
        assert_eq!(stats.sat.misses, 0);
    }
}
