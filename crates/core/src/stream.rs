//! The streaming front door: conformance and (optionally) pattern
//! membership over one SAX pass, in O(depth) memory (DESIGN.md §8.7).
//!
//! The per-crate cursors — [`StreamValidator`] in `xmlmap-dtd` and
//! [`StreamMatcher`] in `xmlmap-patterns` — each consume open/close
//! events independently. This module drives both off a *single*
//! [`SaxReader`] pass, so `xmlmap stream <schema> --pattern π <doc>`
//! reads the document exactly once, and bridges the one semantic gap
//! between them: the matcher pairs attribute values with pattern tuples
//! *positionally* (like the arena evaluator over a normalised tree), so
//! the driver reorders each element's attributes into the DTD's
//! canonical order before feeding the matcher — the streaming analogue
//! of the arena pipeline's `normalize_attrs`.
//!
//! The compiled inputs ([`DtdIndex`], [`StreamPattern`]) are per-schema
//! and per-pattern artifacts; [`crate::EngineContext`] caches them and
//! exposes this driver as
//! [`stream_document`](crate::EngineContext::stream_document).

use std::fmt;
use std::io::Read;
use std::sync::Arc;
use xmlmap_dtd::{DtdIndex, StreamStats, StreamValidator};
use xmlmap_patterns::{StreamMatcher, StreamPattern, UnstreamablePattern};
use xmlmap_trees::{Name, SaxEvent, SaxReader, Value, XmlError};

/// What one streaming pass over a document established.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// `None` when the document conforms to the schema; otherwise the
    /// first violation in document order, rendered with its byte offset
    /// and line/column (the pass stops there — early reject).
    pub violation: Option<String>,
    /// The pattern verdict: `Some` when a plan was supplied *and* the
    /// pass ran to completion, `None` otherwise (no pattern, or the
    /// validator rejected first).
    pub matched: Option<bool>,
    /// Validator counters: elements seen, peak open-element depth, and
    /// the high-water mark of live validator state in bytes.
    pub stats: StreamStats,
    /// High-water mark of live matcher state in bytes (0 without a
    /// pattern).
    pub pattern_state_bytes: u64,
}

/// Why a streaming job could not produce a verdict at all (distinct from
/// a well-formed document that simply fails to conform or match).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamJobError {
    /// The input is not well-formed XML.
    Parse(XmlError),
    /// The pattern lies outside the streamable downward fragment; the
    /// diagnostic names the offending feature and points at the arena
    /// evaluator.
    Unstreamable(UnstreamablePattern),
}

impl fmt::Display for StreamJobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamJobError::Parse(e) => write!(f, "{e}"),
            StreamJobError::Unstreamable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamJobError {}

impl From<XmlError> for StreamJobError {
    fn from(e: XmlError) -> StreamJobError {
        StreamJobError::Parse(e)
    }
}

impl From<UnstreamablePattern> for StreamJobError {
    fn from(e: UnstreamablePattern) -> StreamJobError {
        StreamJobError::Unstreamable(e)
    }
}

/// Streams `src` once, validating against `idx` and (when `plan` is
/// given) evaluating pattern membership, in O(depth) memory.
///
/// A conformance violation stops the pass immediately and is reported in
/// [`StreamOutcome::violation`]; only a parse error is a hard `Err`.
pub fn stream_document<R: Read>(
    idx: &Arc<DtdIndex>,
    plan: Option<&StreamPattern>,
    src: R,
) -> Result<StreamOutcome, XmlError> {
    let mut reader = SaxReader::new(src);
    let mut validator = StreamValidator::new(Arc::clone(idx));
    let mut matcher = plan.map(StreamMatcher::new);
    let mut canonical: Vec<(Name, Value)> = Vec::new();
    let rejected = |reader: &SaxReader<R>, validator: &StreamValidator, v: &dyn fmt::Display| {
        let (line, col) = reader.position();
        StreamOutcome {
            violation: Some(format!(
                "invalid at byte {} (line {line}, column {col}): {v}",
                reader.offset()
            )),
            matched: None,
            stats: validator.stats(),
            pattern_state_bytes: 0,
        }
    };
    while let Some(event) = reader.next_event()? {
        match event {
            SaxEvent::Open { label, attrs } => {
                if let Err(v) = validator.open(&label, &attrs) {
                    return Ok(rejected(&reader, &validator, &v));
                }
                if let Some(m) = &mut matcher {
                    // The validator accepted this element, so its
                    // attribute *set* equals the DTD's canonical list;
                    // reorder so the matcher's positional tuple pairing
                    // sees canonical order, exactly as the arena
                    // evaluator sees a normalised tree.
                    canonical.clear();
                    for want in idx.dtd().attrs(&label) {
                        let (_, value) = attrs
                            .iter()
                            .find(|(a, _)| a == want)
                            .expect("validator checked the attribute set");
                        canonical.push((want.clone(), value.clone()));
                    }
                    m.open(&label, &canonical);
                }
            }
            SaxEvent::Close { .. } => {
                if let Err(v) = validator.close() {
                    return Ok(rejected(&reader, &validator, &v));
                }
                if let Some(m) = &mut matcher {
                    m.close();
                }
            }
        }
    }
    let pattern_state_bytes = matcher.as_ref().map_or(0, StreamMatcher::peak_state_bytes);
    Ok(StreamOutcome {
        violation: None,
        matched: matcher.map(|m| m.finish()),
        stats: validator.finish(),
        pattern_state_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_patterns::parse as parse_pattern;

    fn idx() -> Arc<DtdIndex> {
        Arc::new(DtdIndex::new(
            &xmlmap_dtd::parse(
                "root r
                 r -> a*, b?
                 a @ x, y",
            )
            .unwrap(),
        ))
    }

    fn plan(text: &str) -> StreamPattern {
        StreamPattern::compile(&parse_pattern(text).unwrap()).unwrap()
    }

    #[test]
    fn one_pass_validates_and_matches() {
        let idx = idx();
        let doc = r#"<r><a x="1" y="1"/><a x="2" y="3"/><b/></r>"#;
        let p = plan("r/a(u, v)");
        let out = stream_document(&idx, Some(&p), doc.as_bytes()).unwrap();
        assert_eq!(out.violation, None);
        assert_eq!(out.matched, Some(true));
        assert_eq!(out.stats.elements, 4);
        assert!(out.pattern_state_bytes > 0);

        let repeated = plan("r/a(u, u)");
        let out = stream_document(&idx, Some(&repeated), doc.as_bytes()).unwrap();
        assert_eq!(out.matched, Some(true)); // the first <a> has x == y

        let no = plan("r/b(u)");
        let out = stream_document(&idx, Some(&no), doc.as_bytes()).unwrap();
        assert_eq!(out.matched, Some(false));
    }

    #[test]
    fn attribute_order_is_canonicalised_for_the_matcher() {
        let idx = idx();
        // Document order y-then-x; canonical (DTD) order is x-then-y.
        // The within-tuple repeat u,u must bind both positions to the
        // canonical pair (x, y) — equal here only under x == y.
        let eq = r#"<r><a y="7" x="7"/></r>"#;
        let ne = r#"<r><a y="7" x="8"/></r>"#;
        let p = plan("r/a(u, u)");
        assert_eq!(
            stream_document(&idx, Some(&p), eq.as_bytes())
                .unwrap()
                .matched,
            Some(true)
        );
        assert_eq!(
            stream_document(&idx, Some(&p), ne.as_bytes())
                .unwrap()
                .matched,
            Some(false)
        );
        // And the bound value is the canonical-position one: first tuple
        // slot is attribute x.
        let tree = xmlmap_trees::xml::parse(ne).unwrap();
        let mut normalised = tree.clone();
        idx.dtd().normalize_attrs(&mut normalised).unwrap();
        let pat = parse_pattern("r/a(u, u)").unwrap();
        assert!(!xmlmap_patterns::matches(&normalised, &pat));
    }

    #[test]
    fn early_reject_reports_position_and_skips_the_verdict() {
        let idx = idx();
        let doc = r#"<r><b/><a x="1" y="2"/></r>"#; // b before a*: dead subset at <a>
        let p = plan("r//a");
        let out = stream_document(&idx, Some(&p), doc.as_bytes()).unwrap();
        let v = out.violation.expect("must reject");
        assert!(v.starts_with("invalid at byte "), "{v}");
        assert!(v.contains("falls outside the production language"), "{v}");
        assert_eq!(out.matched, None);
    }

    #[test]
    fn parse_errors_are_hard_errors() {
        let idx = idx();
        let err = stream_document(&idx, None, r#"<r><a x="1" y="2"></r>"#.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("mismatched close tag"), "{err}");
    }
}
