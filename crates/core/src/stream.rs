//! The streaming front door: conformance and (optionally) pattern
//! membership over one SAX pass, in O(depth) memory (DESIGN.md §8.7).
//!
//! The per-crate cursors — [`StreamValidator`] in `xmlmap-dtd` and
//! [`StreamMatcher`] in `xmlmap-patterns` — each consume open/close
//! events independently. This module drives both off a *single*
//! [`SaxReader`] pass, so `xmlmap stream <schema> --pattern π <doc>`
//! reads the document exactly once, and bridges the one semantic gap
//! between them: the matcher pairs attribute values with pattern tuples
//! *positionally* (like the arena evaluator over a normalised tree), so
//! the driver reorders each element's attributes into the DTD's
//! canonical order before feeding the matcher — the streaming analogue
//! of the arena pipeline's `normalize_attrs`.
//!
//! The compiled inputs ([`DtdIndex`], [`StreamPattern`]) are per-schema
//! and per-pattern artifacts; [`crate::EngineContext`] caches them and
//! exposes this driver as
//! [`stream_document`](crate::EngineContext::stream_document).

use crate::chase::compiled::canonical_solution_from_firings;
use crate::chase::{ChaseCache, ChaseError};
use crate::stds::Mapping;
use std::fmt;
use std::io::Read;
use std::sync::Arc;
use xmlmap_codec::CodecError;
use xmlmap_dtd::{DtdIndex, StreamStats, StreamValidator};
use xmlmap_patterns::{StreamEnumerator, StreamMatcher, StreamPattern, UnstreamablePattern};
use xmlmap_trees::{Name, SaxEvent, SaxReader, Tree, Value, XmlError};

/// What one streaming pass over a document established.
#[derive(Clone, Debug)]
pub struct StreamOutcome {
    /// `None` when the document conforms to the schema; otherwise the
    /// first violation in document order, rendered with its byte offset
    /// and line/column (the pass stops there — early reject).
    pub violation: Option<String>,
    /// The pattern verdict: `Some` when a plan was supplied *and* the
    /// pass ran to completion, `None` otherwise (no pattern, or the
    /// validator rejected first).
    pub matched: Option<bool>,
    /// Validator counters: elements seen, peak open-element depth, and
    /// the high-water mark of live validator state in bytes.
    pub stats: StreamStats,
    /// High-water mark of live matcher state in bytes (0 without a
    /// pattern).
    pub pattern_state_bytes: u64,
}

/// Why a streaming job could not produce a verdict at all (distinct from
/// a well-formed document that simply fails to conform or match).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamJobError {
    /// The input is not well-formed XML.
    Parse(XmlError),
    /// The pattern lies outside the streamable downward fragment; the
    /// diagnostic names the offending feature and points at the arena
    /// evaluator.
    Unstreamable(UnstreamablePattern),
}

impl fmt::Display for StreamJobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamJobError::Parse(e) => write!(f, "{e}"),
            StreamJobError::Unstreamable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamJobError {}

impl From<XmlError> for StreamJobError {
    fn from(e: XmlError) -> StreamJobError {
        StreamJobError::Parse(e)
    }
}

impl From<UnstreamablePattern> for StreamJobError {
    fn from(e: UnstreamablePattern) -> StreamJobError {
        StreamJobError::Unstreamable(e)
    }
}

/// Streams `src` once, validating against `idx` and (when `plan` is
/// given) evaluating pattern membership, in O(depth) memory.
///
/// A conformance violation stops the pass immediately and is reported in
/// [`StreamOutcome::violation`]; only a parse error is a hard `Err`.
pub fn stream_document<R: Read>(
    idx: &Arc<DtdIndex>,
    plan: Option<&StreamPattern>,
    src: R,
) -> Result<StreamOutcome, XmlError> {
    let mut reader = SaxReader::new(src);
    let mut validator = StreamValidator::new(Arc::clone(idx));
    let mut matcher = plan.map(StreamMatcher::new);
    let mut canonical: Vec<(Name, Value)> = Vec::new();
    let rejected = |reader: &SaxReader<R>, validator: &StreamValidator, v: &dyn fmt::Display| {
        let (line, col) = reader.position();
        StreamOutcome {
            violation: Some(format!(
                "invalid at byte {} (line {line}, column {col}): {v}",
                reader.offset()
            )),
            matched: None,
            stats: validator.stats(),
            pattern_state_bytes: 0,
        }
    };
    while let Some(event) = reader.next_event()? {
        match event {
            SaxEvent::Open { label, attrs } => {
                if let Err(v) = validator.open(&label, &attrs) {
                    return Ok(rejected(&reader, &validator, &v));
                }
                if let Some(m) = &mut matcher {
                    // The validator accepted this element, so its
                    // attribute *set* equals the DTD's canonical list;
                    // reorder so the matcher's positional tuple pairing
                    // sees canonical order, exactly as the arena
                    // evaluator sees a normalised tree.
                    canonical.clear();
                    for want in idx.dtd().attrs(&label) {
                        let (_, value) = attrs
                            .iter()
                            .find(|(a, _)| a == want)
                            .expect("validator checked the attribute set");
                        canonical.push((want.clone(), value.clone()));
                    }
                    m.open(&label, &canonical);
                }
            }
            SaxEvent::Close { .. } => {
                if let Err(v) = validator.close() {
                    return Ok(rejected(&reader, &validator, &v));
                }
                if let Some(m) = &mut matcher {
                    m.close();
                }
            }
        }
    }
    let pattern_state_bytes = matcher.as_ref().map_or(0, StreamMatcher::peak_state_bytes);
    Ok(StreamOutcome {
        violation: None,
        matched: matcher.map(|m| m.finish()),
        stats: validator.finish(),
        pattern_state_bytes,
    })
}

impl StreamOutcome {
    /// Peak open-element depth of the pass (validator counter).
    pub fn peak_depth(&self) -> usize {
        self.stats.peak_depth
    }

    /// High-water mark of *all* live stream state in bytes: validator
    /// cursor plus pattern (matcher or enumerator) state.
    pub fn peak_live_bytes(&self) -> u64 {
        self.stats.peak_state_bytes + self.pattern_state_bytes
    }
}

/// One std of a mapping that the streaming chase cannot run: its source
/// pattern lies outside the streamable downward fragment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnstreamableStd {
    /// Index of the std in mapping order.
    pub index: usize,
    /// Display text of the offending source pattern.
    pub source: String,
    /// Which feature puts it outside the fragment.
    pub cause: UnstreamablePattern,
}

impl fmt::Display for UnstreamableStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "std {} source pattern `{}` is not streamable: {}",
            self.index, self.source, self.cause
        )
    }
}

impl std::error::Error for UnstreamableStd {}

/// Why a streaming chase could not produce a verdict at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamChaseError {
    /// The input is not well-formed XML.
    Parse(XmlError),
    /// A source pattern lies outside the streamable fragment; the
    /// tree-path chase (`xmlmap chase`) still handles it.
    Unstreamable(UnstreamableStd),
}

impl fmt::Display for StreamChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamChaseError::Parse(e) => write!(f, "{e}"),
            StreamChaseError::Unstreamable(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamChaseError {}

impl From<XmlError> for StreamChaseError {
    fn from(e: XmlError) -> StreamChaseError {
        StreamChaseError::Parse(e)
    }
}

/// Compiled artifact for the streaming chase of one mapping: the chase
/// tables ([`ChaseCache`]) plus one [`StreamPattern`] per std source.
///
/// The stream plans are rebuilt from the cache's canonical source-pattern
/// texts (display round-trips through the parser, so interned variable
/// ids — and hence enumerator tuple positions — line up with the chase
/// plans), which keeps the serialized form identical to the chase
/// cache's. A mapping whose sources stray outside the streamable
/// fragment still compiles; the failure is carried in the plan and
/// reported by [`chase_stream`] before any input is read.
pub struct StreamChasePlan {
    cache: ChaseCache,
    plans: Result<Vec<StreamPattern>, UnstreamableStd>,
}

impl StreamChasePlan {
    /// Compiles the streaming-chase artifact for `m`.
    pub fn new(m: &Mapping) -> StreamChasePlan {
        StreamChasePlan::from_cache(ChaseCache::new(m))
    }

    /// Builds the per-std stream plans on top of an already-compiled
    /// chase cache.
    pub fn from_cache(cache: ChaseCache) -> StreamChasePlan {
        let plans = (0..cache.std_count())
            .map(|i| {
                let text = cache.source_text(i);
                let pat = xmlmap_patterns::parse(text)
                    .expect("chase cache stores display-round-trippable pattern text");
                StreamPattern::compile(&pat).map_err(|cause| UnstreamableStd {
                    index: i,
                    source: text.to_string(),
                    cause,
                })
            })
            .collect();
        StreamChasePlan { cache, plans }
    }

    /// Serialized form — exactly the chase cache's; stream plans are
    /// recompiled on decode.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.cache.to_bytes()
    }

    /// Decodes a plan serialized by [`to_bytes`](StreamChasePlan::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<StreamChasePlan, CodecError> {
        Ok(StreamChasePlan::from_cache(ChaseCache::from_bytes(bytes)?))
    }

    /// Approximate heap footprint in bytes (chase tables + stream plans).
    pub fn approx_bytes(&self) -> u64 {
        self.cache.approx_bytes()
            + match &self.plans {
                Ok(ps) => ps.iter().map(StreamPattern::approx_bytes).sum::<u64>(),
                Err(e) => e.source.len() as u64 + 64,
            }
    }

    /// The chase tables this plan was built on.
    pub fn chase_cache(&self) -> &ChaseCache {
        &self.cache
    }

    /// `Some` when the mapping cannot be chased in streaming mode (first
    /// offending std in mapping order).
    pub fn unstreamable(&self) -> Option<&UnstreamableStd> {
        self.plans.as_ref().err()
    }
}

/// What one streaming chase pass established.
#[derive(Clone, Debug)]
pub struct StreamChaseOutcome {
    /// `None` when the source conforms to the source DTD; otherwise the
    /// first violation in document order (the pass stops there and the
    /// chase verdict is withheld).
    pub violation: Option<String>,
    /// The chase verdict: `Some` when the pass ran to completion —
    /// either the canonical target tree or why no solution exists —
    /// `None` when the validator rejected first.
    pub solution: Option<Result<Tree, ChaseError>>,
    /// Validator counters: elements seen, peak open-element depth, and
    /// the high-water mark of live validator state in bytes.
    pub stats: StreamStats,
    /// Total firings enumerated across all stds (after source-condition
    /// filtering and canonical dedup — the firings the chase consumed).
    pub firings: u64,
    /// High-water mark of simultaneously-live valuations across all
    /// per-std enumerators.
    pub peak_live_valuations: u64,
    /// High-water mark of live enumerator state in bytes, summed over
    /// the per-std enumerators.
    pub pattern_state_bytes: u64,
}

impl StreamChaseOutcome {
    /// Peak open-element depth of the pass (validator counter).
    pub fn peak_depth(&self) -> usize {
        self.stats.peak_depth
    }

    /// High-water mark of *all* live stream state in bytes: validator
    /// cursor plus every enumerator's state.
    pub fn peak_live_bytes(&self) -> u64 {
        self.stats.peak_state_bytes + self.pattern_state_bytes
    }
}

/// Streams `src` once, validating against `idx` (the mapping's source
/// DTD) while one [`StreamEnumerator`] per std collects firing
/// valuations, then chases the firings into the canonical target tree —
/// the same tree `canonical_solution` builds from a materialised source
/// (byte-identical, in fact: the enumerators replay the arena kernel's
/// canonical firing order, so even the fresh-null numbering coincides).
///
/// Peak memory is O(depth + live matches + firings + output): the source
/// tree is never materialised. A conformance violation stops the pass
/// and withholds the verdict ([`StreamChaseOutcome::violation`]); a
/// non-streamable source pattern is rejected before any input is read.
pub fn chase_stream<R: Read>(
    idx: &Arc<DtdIndex>,
    plan: &StreamChasePlan,
    src: R,
) -> Result<StreamChaseOutcome, StreamChaseError> {
    let plans = match &plan.plans {
        Ok(ps) => ps,
        Err(e) => return Err(StreamChaseError::Unstreamable(e.clone())),
    };
    let mut reader = SaxReader::new(src);
    let mut validator = StreamValidator::new(Arc::clone(idx));
    let mut enums: Vec<StreamEnumerator<'_>> = plans.iter().map(StreamEnumerator::new).collect();
    let mut canonical: Vec<(Name, Value)> = Vec::new();
    while let Some(event) = reader.next_event()? {
        match event {
            SaxEvent::Open { label, attrs } => {
                if let Err(v) = validator.open(&label, &attrs) {
                    let (line, col) = reader.position();
                    return Ok(StreamChaseOutcome {
                        violation: Some(format!(
                            "invalid at byte {} (line {line}, column {col}): {v}",
                            reader.offset()
                        )),
                        solution: None,
                        stats: validator.stats(),
                        firings: 0,
                        peak_live_valuations: 0,
                        pattern_state_bytes: 0,
                    });
                }
                // Same attribute canonicalisation as `stream_document`:
                // the validator accepted the element, so its attribute
                // set equals the DTD's canonical list.
                canonical.clear();
                for want in idx.dtd().attrs(&label) {
                    let (_, value) = attrs
                        .iter()
                        .find(|(a, _)| a == want)
                        .expect("validator checked the attribute set");
                    canonical.push((want.clone(), value.clone()));
                }
                for en in &mut enums {
                    en.open(&label, &canonical);
                }
            }
            SaxEvent::Close { .. } => {
                if let Err(v) = validator.close() {
                    let (line, col) = reader.position();
                    return Ok(StreamChaseOutcome {
                        violation: Some(format!(
                            "invalid at byte {} (line {line}, column {col}): {v}",
                            reader.offset()
                        )),
                        solution: None,
                        stats: validator.stats(),
                        firings: 0,
                        peak_live_valuations: 0,
                        pattern_state_bytes: 0,
                    });
                }
                for en in &mut enums {
                    en.close();
                }
            }
        }
    }
    let stats = validator.finish();
    let peak_live_valuations = enums
        .iter()
        .map(StreamEnumerator::peak_live_valuations)
        .sum();
    let pattern_state_bytes = enums.iter().map(StreamEnumerator::peak_state_bytes).sum();
    if let Some(e) = plan.cache.fragment_error() {
        return Ok(StreamChaseOutcome {
            violation: None,
            solution: Some(Err(e.clone())),
            stats,
            firings: 0,
            peak_live_valuations,
            pattern_state_bytes,
        });
    }
    // Canonicalise each std's firing multiset up front so the firing
    // counter reports what the chase actually consumes; the kernel's
    // own canonicalisation pass is idempotent over this.
    let per_std: Vec<Vec<Box<[Value]>>> = enums
        .into_iter()
        .enumerate()
        .map(|(i, en)| plan.cache.canonical_firings(i, en.finish()))
        .collect();
    let firings = per_std.iter().map(|f| f.len() as u64).sum();
    let solution = canonical_solution_from_firings(&plan.cache, per_std);
    Ok(StreamChaseOutcome {
        violation: None,
        solution: Some(solution),
        stats,
        firings,
        peak_live_valuations,
        pattern_state_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_patterns::parse as parse_pattern;

    fn idx() -> Arc<DtdIndex> {
        Arc::new(DtdIndex::new(
            &xmlmap_dtd::parse(
                "root r
                 r -> a*, b?
                 a @ x, y",
            )
            .unwrap(),
        ))
    }

    fn plan(text: &str) -> StreamPattern {
        StreamPattern::compile(&parse_pattern(text).unwrap()).unwrap()
    }

    #[test]
    fn one_pass_validates_and_matches() {
        let idx = idx();
        let doc = r#"<r><a x="1" y="1"/><a x="2" y="3"/><b/></r>"#;
        let p = plan("r/a(u, v)");
        let out = stream_document(&idx, Some(&p), doc.as_bytes()).unwrap();
        assert_eq!(out.violation, None);
        assert_eq!(out.matched, Some(true));
        assert_eq!(out.stats.elements, 4);
        assert!(out.pattern_state_bytes > 0);

        let repeated = plan("r/a(u, u)");
        let out = stream_document(&idx, Some(&repeated), doc.as_bytes()).unwrap();
        assert_eq!(out.matched, Some(true)); // the first <a> has x == y

        let no = plan("r/b(u)");
        let out = stream_document(&idx, Some(&no), doc.as_bytes()).unwrap();
        assert_eq!(out.matched, Some(false));
    }

    #[test]
    fn outcome_accessors_report_exact_peaks() {
        // A fixed 3-level document under a 3-level DTD: the peak open
        // depth is exactly 3 (r > m > a), and peak_live_bytes is exactly
        // the validator high-water mark plus the pattern share.
        let idx = Arc::new(DtdIndex::new(
            &xmlmap_dtd::parse("root r\nr -> m*\nm -> a*\na @ x").unwrap(),
        ));
        let doc = r#"<r><m><a x="1"/><a x="2"/></m><m/></r>"#;
        let out = stream_document(&idx, None, doc.as_bytes()).unwrap();
        assert_eq!(out.violation, None);
        assert_eq!(out.peak_depth(), 3);
        assert_eq!(out.pattern_state_bytes, 0, "no pattern, no pattern state");
        assert_eq!(
            out.peak_live_bytes(),
            out.stats.peak_state_bytes,
            "without a pattern the live peak is the validator's alone"
        );

        let p = plan("r/m/a(u)");
        let with_pattern = stream_document(&idx, Some(&p), doc.as_bytes()).unwrap();
        assert_eq!(with_pattern.peak_depth(), 3);
        assert!(with_pattern.pattern_state_bytes > 0);
        assert_eq!(
            with_pattern.peak_live_bytes(),
            with_pattern.stats.peak_state_bytes + with_pattern.pattern_state_bytes
        );

        // The chase outcome exposes the same accessors: same document,
        // one std mapping each `a` to a `b` — exactly 2 firings.
        let m = crate::stds::Mapping::parse(
            "[source]\nroot r\nr -> m*\nm -> a*\na @ x\n\
             [target]\nroot r\nr -> b*\nb @ w\n\
             [stds]\nr/m/a(x) --> r/b(x)\n",
        )
        .unwrap();
        let chase_plan = StreamChasePlan::new(&m);
        assert!(chase_plan.unstreamable().is_none());
        let chased = chase_stream(&idx, &chase_plan, doc.as_bytes()).unwrap();
        assert_eq!(chased.violation, None);
        assert_eq!(chased.peak_depth(), 3);
        assert_eq!(chased.firings, 2);
        assert_eq!(
            chased.peak_live_bytes(),
            chased.stats.peak_state_bytes + chased.pattern_state_bytes
        );
        assert!(chased.peak_live_bytes() > chased.stats.peak_state_bytes);
    }

    #[test]
    fn attribute_order_is_canonicalised_for_the_matcher() {
        let idx = idx();
        // Document order y-then-x; canonical (DTD) order is x-then-y.
        // The within-tuple repeat u,u must bind both positions to the
        // canonical pair (x, y) — equal here only under x == y.
        let eq = r#"<r><a y="7" x="7"/></r>"#;
        let ne = r#"<r><a y="7" x="8"/></r>"#;
        let p = plan("r/a(u, u)");
        assert_eq!(
            stream_document(&idx, Some(&p), eq.as_bytes())
                .unwrap()
                .matched,
            Some(true)
        );
        assert_eq!(
            stream_document(&idx, Some(&p), ne.as_bytes())
                .unwrap()
                .matched,
            Some(false)
        );
        // And the bound value is the canonical-position one: first tuple
        // slot is attribute x.
        let tree = xmlmap_trees::xml::parse(ne).unwrap();
        let mut normalised = tree.clone();
        idx.dtd().normalize_attrs(&mut normalised).unwrap();
        let pat = parse_pattern("r/a(u, u)").unwrap();
        assert!(!xmlmap_patterns::matches(&normalised, &pat));
    }

    #[test]
    fn early_reject_reports_position_and_skips_the_verdict() {
        let idx = idx();
        let doc = r#"<r><b/><a x="1" y="2"/></r>"#; // b before a*: dead subset at <a>
        let p = plan("r//a");
        let out = stream_document(&idx, Some(&p), doc.as_bytes()).unwrap();
        let v = out.violation.expect("must reject");
        assert!(v.starts_with("invalid at byte "), "{v}");
        assert!(v.contains("falls outside the production language"), "{v}");
        assert_eq!(out.matched, None);
    }

    #[test]
    fn parse_errors_are_hard_errors() {
        let idx = idx();
        let err = stream_document(&idx, None, r#"<r><a x="1" y="2"></r>"#.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("mismatched close tag"), "{err}");
    }

    fn mapping() -> Mapping {
        Mapping::new(
            xmlmap_dtd::parse(
                "root r
                 r -> a*, b?
                 a @ x, y",
            )
            .unwrap(),
            xmlmap_dtd::parse(
                "root t
                 t -> p*
                 p @ u, v",
            )
            .unwrap(),
            vec![crate::stds::Std::parse("r/a(x, y) --> t/p(y, x)").unwrap()],
        )
    }

    #[test]
    fn streaming_chase_equals_the_tree_chase() {
        let m = mapping();
        let idx = Arc::new(DtdIndex::new(&m.source_dtd));
        let plan = StreamChasePlan::new(&m);
        assert!(plan.unstreamable().is_none());
        let doc = r#"<r><a x="1" y="2"/><a x="1" y="2"/><a x="3" y="4"/><b/></r>"#;
        let out = chase_stream(&idx, &plan, doc.as_bytes()).unwrap();
        assert_eq!(out.violation, None);
        assert_eq!(out.firings, 2); // duplicate firing deduplicated
        assert!(out.peak_live_valuations >= 2);
        assert!(out.peak_live_bytes() > 0);
        let streamed = out.solution.unwrap().unwrap();
        let tree = xmlmap_trees::xml::parse(doc).unwrap();
        let chased = crate::chase::canonical_solution(&m, &tree).unwrap();
        assert_eq!(streamed, chased, "must replay the kernel's firing order");
    }

    #[test]
    fn streaming_chase_round_trips_through_bytes() {
        let m = mapping();
        let idx = Arc::new(DtdIndex::new(&m.source_dtd));
        let plan = StreamChasePlan::from_bytes(&StreamChasePlan::new(&m).to_bytes()).unwrap();
        let doc = r#"<r><a x="5" y="6"/></r>"#;
        let streamed = chase_stream(&idx, &plan, doc.as_bytes())
            .unwrap()
            .solution
            .unwrap()
            .unwrap();
        let tree = xmlmap_trees::xml::parse(doc).unwrap();
        assert_eq!(
            streamed,
            crate::chase::canonical_solution(&m, &tree).unwrap()
        );
        assert!(plan.approx_bytes() > 0);
    }

    #[test]
    fn conformance_violation_withholds_the_chase_verdict() {
        let m = mapping();
        let idx = Arc::new(DtdIndex::new(&m.source_dtd));
        let plan = StreamChasePlan::new(&m);
        // b before a*: dead subset at <a>.
        let doc = r#"<r><b/><a x="1" y="2"/></r>"#;
        let out = chase_stream(&idx, &plan, doc.as_bytes()).unwrap();
        assert!(out.violation.is_some());
        assert!(out.solution.is_none());
        assert_eq!(out.firings, 0);
    }

    #[test]
    fn unstreamable_std_is_rejected_before_reading_input() {
        let mut m = mapping();
        m.stds = vec![crate::stds::Std::parse("r[a(x, y) -> a(u, v)] --> t/p(x, u)").unwrap()];
        let plan = StreamChasePlan::new(&m);
        let err = plan.unstreamable().expect("sibling order is unstreamable");
        assert_eq!(err.index, 0);
        assert_eq!(err.cause, UnstreamablePattern::SiblingOrder);
        let idx = Arc::new(DtdIndex::new(&m.source_dtd));
        let got = chase_stream(&idx, &plan, r#"<r/>"#.as_bytes()).unwrap_err();
        assert!(matches!(got, StreamChaseError::Unstreamable(_)), "{got}");
    }

    #[test]
    fn fragment_errors_surface_after_a_conforming_pass() {
        let mut m = mapping();
        // Target DTD outside the nested-relational fragment.
        m.target_dtd = xmlmap_dtd::parse(
            "root t
             t -> p, p",
        )
        .unwrap();
        let plan = StreamChasePlan::new(&m);
        assert!(plan.unstreamable().is_none());
        let idx = Arc::new(DtdIndex::new(&m.source_dtd));
        let out = chase_stream(&idx, &plan, r#"<r><a x="1" y="2"/></r>"#.as_bytes()).unwrap();
        assert_eq!(out.violation, None);
        assert!(matches!(
            out.solution,
            Some(Err(ChaseError::OutsideFragment(_)))
        ));
    }
}
