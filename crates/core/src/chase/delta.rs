//! Incremental delta-chase (DESIGN.md §8.9).
//!
//! Production exchange traffic is one long-lived source document absorbing
//! a stream of subtree insertions/deletions with solution and
//! certain-answer reads interleaved. The chase builds the canonical
//! solution from independent per-std firings, so an update only
//! invalidates the firings whose witness valuations touch the edited
//! region — everything else can be kept. [`IncrementalChase`] exploits
//! that in three layers:
//!
//! * **firing index / refire frontier** — each std's compiled source
//!   pattern is summarized into a [`TouchProfile`] (its concrete label
//!   footprint plus wildcard/horizontal flags), inverted into a
//!   label-keyed index. An edit yields the set of source positions it
//!   touched; the labels those positions occupy select exactly the stds
//!   whose plans can reach the region, and only those are re-matched.
//!   For patterns with horizontal operators the region is widened to
//!   every child of the edit point's parent — inserting `c` between
//!   siblings `a, b` breaks `a → b` even though `c` occurs in neither
//!   pattern, so the label-intersection test alone would be unsound;
//! * **epoch-versioned retractable arena** — the union-find of labelled
//!   nulls, the interned constant table and the `(parent, slot)`
//!   slot-cursor arena of the compiled kernel are mirrored in an owned
//!   form whose every mutation is recorded on a trail. Each applied
//!   firing is an epoch delimited by a checkpoint; rewinding to any
//!   epoch restores the exact arena state by LIFO undo (union-find
//!   merges use no path compression here, so representative choice —
//!   and therefore the output's null labels — replays identically);
//! * **prefix-preserving replay** — per-std canonical firing sequences
//!   are maintained for the current document; after an update re-matches
//!   the affected stds, the flattened std-major sequence is compared
//!   against the applied epochs, the arena rewinds to the longest common
//!   prefix, and only the suffix replays. The result is *byte-identical*
//!   to a from-scratch chase of the mutated document: same firing order,
//!   same fresh-null numbering, same error (the first failing firing in
//!   canonical order), same completion sweep.
//!
//! Completion (mandatory-child filling) and the deferred `≠` check are
//! *read-time* operations: [`IncrementalChase::canonical_solution`] runs
//! them on the live arena under a checkpoint and rewinds afterwards, so
//! the persistent state stays pristine across updates.

use super::compiled::{ChaseCache, LabelInfo, PlanOp, StdPlan};
use super::ChaseError;
use crate::exchange::CertainAnswersError;
use crate::stds::Mapping;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use xmlmap_codec::CodecError;
use xmlmap_dtd::Mult;
use xmlmap_patterns::{eval, Matcher, Pattern, Valuation};
use xmlmap_trees::{Name, NodeId, Tree, Value};

// ---------------------------------------------------------------------------
// Touch profiles and the firing index
// ---------------------------------------------------------------------------

/// Static match-region summary of one std's source pattern: which source
/// positions a match valuation of the pattern can possibly occupy.
#[derive(Clone, Debug)]
pub struct TouchProfile {
    /// Concrete labels the pattern tests; `None` when any pattern node is
    /// a wildcard (the pattern can witness nodes of every label).
    pub labels: Option<BTreeSet<Name>>,
    /// Does the pattern use `→` or `→*`? Horizontal patterns observe
    /// sibling adjacency, so their region includes every child of the
    /// edit point's parent.
    pub horizontal: bool,
}

impl TouchProfile {
    /// Summarizes `p`.
    pub fn of(p: &Pattern) -> TouchProfile {
        TouchProfile {
            labels: p.label_footprint(),
            horizontal: p.uses_next_sibling() || p.uses_following_sibling(),
        }
    }

    /// Can an edit whose region carries `labels` create or destroy
    /// matches of this pattern?
    fn touched(&self, labels: &BTreeSet<Name>) -> bool {
        match &self.labels {
            None => true, // wildcard: every position is a witness candidate
            Some(fp) => fp.iter().any(|l| labels.contains(l)),
        }
    }
}

/// Per-mapping compiled artifact for incremental sessions: the chase
/// tables plus one [`TouchProfile`] per std. Cached by [`crate::engine::
/// EngineContext::delta_plan`] under [`crate::store::Family::DeltaChase`];
/// the persisted payload is the chase tables, profiles are recomputed
/// from the canonical source-pattern texts on decode.
pub struct DeltaPlan {
    pub(crate) chase: ChaseCache,
    pub(crate) profiles: Vec<TouchProfile>,
}

impl DeltaPlan {
    /// Compiles the delta tables for `m`.
    pub fn new(m: &Mapping) -> DeltaPlan {
        let chase = ChaseCache::new(m);
        let profiles = m.stds.iter().map(|s| TouchProfile::of(&s.source)).collect();
        DeltaPlan { chase, profiles }
    }

    /// Serializes the plan (the chase tables; profiles travel implicitly).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.chase.to_bytes()
    }

    /// Inverse of [`DeltaPlan::to_bytes`]: decodes the chase tables and
    /// recomputes each std's profile from its canonical pattern text.
    pub fn from_bytes(bytes: &[u8]) -> Result<DeltaPlan, CodecError> {
        let chase = ChaseCache::from_bytes(bytes)?;
        let profiles = (0..chase.std_count())
            .map(|i| {
                let p = xmlmap_patterns::parse(chase.source_text(i))
                    .map_err(|_| CodecError::Malformed("stored pattern text"))?;
                Ok(TouchProfile::of(&p))
            })
            .collect::<Result<Vec<_>, CodecError>>()?;
        Ok(DeltaPlan { chase, profiles })
    }

    /// Approximate heap footprint for the engine's memory accounting.
    pub fn approx_bytes(&self) -> u64 {
        let profiles: u64 = self
            .profiles
            .iter()
            .map(|p| {
                p.labels.as_ref().map_or(0, |ls| {
                    ls.iter().map(|l| l.as_str().len() as u64 + 24).sum()
                }) + 16
            })
            .sum();
        self.chase.approx_bytes() + profiles
    }
}

// ---------------------------------------------------------------------------
// Updates
// ---------------------------------------------------------------------------

/// One source-document edit, addressed by child-index paths from the root
/// (`.` in the textual form; `0/2` = third child of the root's first
/// child).
#[derive(Clone, Debug, PartialEq)]
pub enum Update {
    /// Graft a copy of `subtree` under the node at `parent`, at child
    /// position `pos`.
    InsertSubtree {
        /// Path of the parent node.
        parent: Vec<usize>,
        /// Child position for the new subtree (existing children shift).
        pos: usize,
        /// The subtree to insert.
        subtree: Tree,
    },
    /// Detach the subtree rooted at `path` (must not be the root).
    DeleteSubtree {
        /// Path of the subtree root.
        path: Vec<usize>,
    },
    /// Overwrite attribute `attr` of the node at `path` with `value`.
    ReplaceText {
        /// Path of the node.
        path: Vec<usize>,
        /// The attribute name (must exist on the node).
        attr: Name,
        /// The new value.
        value: Value,
    },
}

/// Parses an updatefile: one op per line, `#` comments and blank lines
/// skipped.
///
/// ```text
/// insert <parent-path> <pos> <xml-fragment>
/// delete <path>
/// settext <path> <attr> <value>
/// ```
///
/// Paths are `.` (the root) or slash-separated child indices (`1/0/2`).
/// The value of `settext` is the rest of the line, verbatim.
pub fn parse_updates(input: &str) -> Result<Vec<Update>, String> {
    fn path(s: &str, ln: usize) -> Result<Vec<usize>, String> {
        if s == "." {
            return Ok(Vec::new());
        }
        s.split('/')
            .map(|c| {
                c.parse::<usize>()
                    .map_err(|_| format!("line {ln}: bad path component {c:?}"))
            })
            .collect()
    }
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let ln = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (op, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match op {
            "insert" => {
                let (p, rest) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {ln}: insert needs <path> <pos> <xml>"))?;
                let (pos, xml) = rest
                    .trim()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {ln}: insert needs <path> <pos> <xml>"))?;
                let subtree = xmlmap_trees::xml::parse(xml.trim())
                    .map_err(|e| format!("line {ln}: bad fragment: {e}"))?;
                out.push(Update::InsertSubtree {
                    parent: path(p, ln)?,
                    pos: pos
                        .parse()
                        .map_err(|_| format!("line {ln}: bad position {pos:?}"))?,
                    subtree,
                });
            }
            "delete" => out.push(Update::DeleteSubtree {
                path: path(rest, ln)?,
            }),
            "settext" => {
                let (p, rest) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {ln}: settext needs <path> <attr> <value>"))?;
                let (attr, value) = rest
                    .trim()
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| format!("line {ln}: settext needs <path> <attr> <value>"))?;
                out.push(Update::ReplaceText {
                    path: path(p, ln)?,
                    attr: Name::new(attr),
                    value: Value::str(value.trim()),
                });
            }
            other => return Err(format!("line {ln}: unknown update op {other:?}")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The retractable arena
// ---------------------------------------------------------------------------

/// A chase-time value: an interned constant or a union-find null element.
/// Owned twin of the kernel's borrowing `Val` — the delta session outlives
/// any one version of the source document.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Const(u32),
    Null(u32),
}

/// One undoable arena mutation. Every state change an epoch makes is one
/// of these; popping them in reverse restores the pre-epoch state exactly.
enum TrailOp {
    /// A null was created: pop the union-find columns.
    NewNull,
    /// A constant was interned: pop the table and its index entry.
    NewConst,
    /// Root `lo` was merged under another root: re-root it.
    SetParent(u32),
    /// Root `hi`'s rank was bumped by the merge.
    BumpRank(u32),
    /// Root `node`'s bound constant was overwritten (held `old`).
    SetBound { node: u32, old: Option<u32> },
    /// An arena node was created: pop it.
    NewNode,
    /// A child id was pushed into `kids[slot]` of arena node `node`.
    PushKid { node: u32, slot: u32 },
}

/// One node of the retractable slot-cursor arena.
struct DNode {
    label: u32,
    attrs: Vec<Val>,
    kids: Vec<Vec<u32>>,
}

/// The epoch-versioned union-find + slot-cursor arena. Mirrors the
/// kernel's `Values`/`ANode` construction op for op — same interning
/// order, same union-by-rank representative choice (without path
/// compression, which does not affect representatives), same slot-cursor
/// reuse — so a rewind-and-replay over a firing sequence produces a
/// byte-identical materialization to a from-scratch chase of the same
/// sequence.
#[derive(Default)]
struct DeltaArena {
    consts: Vec<Value>,
    intern: HashMap<Value, u32>,
    parent: Vec<u32>,
    rank: Vec<u8>,
    bound: Vec<Option<u32>>,
    nodes: Vec<DNode>,
    trail: Vec<TrailOp>,
    obligations: Vec<(Val, Val, String)>,
    /// `(trail length, obligation count)` before each applied epoch.
    checkpoints: Vec<(usize, usize)>,
}

impl DeltaArena {
    fn intern(&mut self, v: &Value) -> u32 {
        match self.intern.get(v) {
            Some(&c) => c,
            None => {
                let c = self.consts.len() as u32;
                self.consts.push(v.clone());
                self.intern.insert(v.clone(), c);
                self.trail.push(TrailOp::NewConst);
                c
            }
        }
    }

    fn fresh_null(&mut self) -> Val {
        let n = self.parent.len() as u32;
        self.parent.push(n);
        self.rank.push(0);
        self.bound.push(None);
        self.trail.push(TrailOp::NewNull);
        Val::Null(n)
    }

    /// Representative lookup without path compression: compression only
    /// rewires parent pointers (it never changes which root wins a merge),
    /// and skipping it keeps `find` read-only — nothing to trail.
    fn find(&self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            n = self.parent[n as usize];
        }
        n
    }

    /// Unifies two values; `false` on constant/constant conflict. Same
    /// merge policy as the kernel's `Values::unify`.
    fn unify(&mut self, a: Val, b: Val) -> bool {
        match (a, b) {
            (Val::Const(x), Val::Const(y)) => x == y,
            (Val::Null(n), Val::Const(c)) | (Val::Const(c), Val::Null(n)) => {
                let r = self.find(n);
                match self.bound[r as usize] {
                    Some(c2) => c2 == c,
                    None => {
                        self.trail.push(TrailOp::SetBound { node: r, old: None });
                        self.bound[r as usize] = Some(c);
                        true
                    }
                }
            }
            (Val::Null(x), Val::Null(y)) => {
                let (rx, ry) = (self.find(x), self.find(y));
                if rx == ry {
                    return true;
                }
                match (self.bound[rx as usize], self.bound[ry as usize]) {
                    (Some(a), Some(b)) if a != b => false,
                    (bx, by) => {
                        let joint = bx.or(by);
                        let (hi, lo) = if self.rank[rx as usize] >= self.rank[ry as usize] {
                            (rx, ry)
                        } else {
                            (ry, rx)
                        };
                        self.trail.push(TrailOp::SetParent(lo));
                        self.parent[lo as usize] = hi;
                        if self.rank[hi as usize] == self.rank[lo as usize] {
                            self.trail.push(TrailOp::BumpRank(hi));
                            self.rank[hi as usize] += 1;
                        }
                        self.trail.push(TrailOp::SetBound {
                            node: hi,
                            old: self.bound[hi as usize],
                        });
                        self.bound[hi as usize] = joint;
                        true
                    }
                }
            }
        }
    }

    /// Are the two values forced equal by the current substitution?
    fn same(&self, a: Val, b: Val) -> bool {
        let canon = |v: Val| match v {
            Val::Const(c) => Val::Const(c),
            Val::Null(n) => {
                let r = self.find(n);
                match self.bound[r as usize] {
                    Some(c) => Val::Const(c),
                    None => Val::Null(r),
                }
            }
        };
        canon(a) == canon(b)
    }

    /// The output value: the bound constant, or a null labelled by the
    /// class representative.
    fn resolve(&self, v: Val) -> Value {
        match v {
            Val::Const(c) => self.consts[c as usize].clone(),
            Val::Null(n) => {
                let r = self.find(n);
                match self.bound[r as usize] {
                    Some(c) => self.consts[c as usize].clone(),
                    None => Value::Null(r as u64),
                }
            }
        }
    }

    fn create_node(&mut self, labels: &[LabelInfo], label: u32) -> u32 {
        let info = &labels[label as usize];
        let attrs = (0..info.attrs.len()).map(|_| self.fresh_null()).collect();
        self.nodes.push(DNode {
            label,
            attrs,
            kids: vec![Vec::new(); info.slots.len()],
        });
        self.trail.push(TrailOp::NewNode);
        (self.nodes.len() - 1) as u32
    }

    fn push_kid(&mut self, node: u32, slot: u32, kid: u32) {
        self.nodes[node as usize].kids[slot as usize].push(kid);
        self.trail.push(TrailOp::PushKid { node, slot });
    }

    /// LIFO undo back to trail length `mark`.
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail length checked") {
                TrailOp::NewNull => {
                    self.parent.pop();
                    self.rank.pop();
                    self.bound.pop();
                }
                TrailOp::NewConst => {
                    let v = self.consts.pop().expect("interned constant on trail");
                    self.intern.remove(&v);
                }
                TrailOp::SetParent(lo) => self.parent[lo as usize] = lo,
                TrailOp::BumpRank(hi) => self.rank[hi as usize] -= 1,
                TrailOp::SetBound { node, old } => self.bound[node as usize] = old,
                TrailOp::NewNode => {
                    self.nodes.pop();
                }
                TrailOp::PushKid { node, slot } => {
                    self.nodes[node as usize].kids[slot as usize].pop();
                }
            }
        }
    }

    /// Rewinds to the state before epoch `epoch` (0-based; `rewind_to(k)`
    /// leaves exactly `k` epochs applied).
    fn rewind_to(&mut self, epoch: usize) {
        if epoch >= self.checkpoints.len() {
            return;
        }
        let (trail_mark, obligations_mark) = self.checkpoints[epoch];
        self.undo_to(trail_mark);
        self.obligations.truncate(obligations_mark);
        self.checkpoints.truncate(epoch);
    }

    /// Applies one firing as a new epoch; on failure the partial epoch is
    /// fully undone and the error returned. Mirrors the per-tuple body of
    /// the kernel's `chase_firings` exactly.
    fn apply_firing(
        &mut self,
        cache: &ChaseCache,
        si: usize,
        tuple: &[Value],
    ) -> Result<(), ChaseError> {
        let mark = (self.trail.len(), self.obligations.len());
        self.checkpoints.push(mark);
        match self.try_firing(cache, si, tuple) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.checkpoints.pop();
                self.undo_to(mark.0);
                self.obligations.truncate(mark.1);
                Err(e)
            }
        }
    }

    fn try_firing(
        &mut self,
        cache: &ChaseCache,
        si: usize,
        tuple: &[Value],
    ) -> Result<(), ChaseError> {
        let plan: &StdPlan = &cache.plans[si];
        let mut class_vals: Vec<Option<Val>> = vec![None; plan.class_count as usize];
        for &(class, src) in &plan.tvar_classes {
            if let Some(sid) = src {
                let v = &tuple[sid as usize];
                match class_vals[class as usize] {
                    Some(Val::Const(c)) if self.consts[c as usize] != *v => {
                        return Err(ChaseError::EqualityUnsatisfiable(format!(
                            "std #{si}: α′₌ equates {} and {}",
                            self.consts[c as usize], v
                        )));
                    }
                    Some(_) => {}
                    None => {
                        let c = self.intern(v);
                        class_vals[class as usize] = Some(Val::Const(c));
                    }
                }
            }
        }
        for &(class, _) in &plan.tvar_classes {
            if class_vals[class as usize].is_none() {
                class_vals[class as usize] = Some(self.fresh_null());
            }
        }
        for (l, r, what) in &plan.neqs {
            for c in [*l, *r] {
                if class_vals[c as usize].is_none() {
                    class_vals[c as usize] = Some(self.fresh_null());
                }
            }
            self.obligations.push((
                class_vals[*l as usize].expect("filled above"),
                class_vals[*r as usize].expect("filled above"),
                what.clone(),
            ));
        }
        if let Some(e) = &plan.pre_fail {
            return Err(e.clone());
        }
        let mut node_map: Vec<u32> = vec![0; plan.plan_nodes as usize];
        for op in &plan.ops {
            match op {
                PlanOp::Fail(e) => return Err(e.clone()),
                PlanOp::Child {
                    parent,
                    node,
                    label,
                    slot,
                    repeatable,
                } => {
                    let p = node_map[*parent as usize];
                    let id = match self.nodes[p as usize].kids[*slot as usize].first() {
                        Some(&id) if !repeatable => id,
                        _ => {
                            let id = self.create_node(&cache.labels, *label);
                            self.push_kid(p, *slot, id);
                            id
                        }
                    };
                    node_map[*node as usize] = id;
                }
                PlanOp::Unify { node, classes } => {
                    let a = node_map[*node as usize] as usize;
                    for (k, &cls) in classes.iter().enumerate() {
                        let nv = class_vals[cls as usize].expect("all classes filled");
                        let old = self.nodes[a].attrs[k];
                        if !self.unify(old, nv) {
                            let info = &cache.labels[self.nodes[a].label as usize];
                            return Err(ChaseError::ValueConflict(format!(
                                "attribute {} of {}: {} vs {}",
                                info.attrs[k],
                                info.name,
                                self.resolve(old),
                                self.resolve(nv)
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Read-time completion + `≠` check + materialization, rewound before
    /// returning so the persistent state is untouched.
    fn materialize(&mut self, cache: &ChaseCache) -> Result<Tree, ChaseError> {
        let mark = self.trail.len();
        let mut i = 0;
        while i < self.nodes.len() {
            let info = &cache.labels[self.nodes[i].label as usize];
            for slot in 0..info.slots.len() {
                let (clabel, mult) = info.slots[slot];
                if self.nodes[i].kids[slot].is_empty() && matches!(mult, Mult::One | Mult::Plus) {
                    let id = self.create_node(&cache.labels, clabel);
                    self.push_kid(i as u32, slot as u32, id);
                }
            }
            i += 1;
        }
        for k in 0..self.obligations.len() {
            let (a, b, _) = self.obligations[k];
            if self.same(a, b) {
                let what = self.obligations[k].2.clone();
                self.undo_to(mark);
                return Err(ChaseError::InequalityViolated(what));
            }
        }
        fn attrs_of(arena: &DeltaArena, labels: &[LabelInfo], node: usize) -> Vec<(Name, Value)> {
            let info = &labels[arena.nodes[node].label as usize];
            info.attrs
                .iter()
                .cloned()
                .zip(arena.nodes[node].attrs.iter().map(|&v| arena.resolve(v)))
                .collect()
        }
        fn emit(arena: &DeltaArena, labels: &[LabelInfo], node: usize, out: &mut Tree, at: NodeId) {
            for slot_kids in &arena.nodes[node].kids {
                for &kid in slot_kids {
                    let kid = kid as usize;
                    let attrs = attrs_of(arena, labels, kid);
                    let id = out.add_child(
                        at,
                        labels[arena.nodes[kid].label as usize].name.clone(),
                        attrs,
                    );
                    emit(arena, labels, kid, out, id);
                }
            }
        }
        let mut tree = Tree::new(cache.labels[cache.root as usize].name.clone());
        tree.set_attrs(Tree::ROOT, attrs_of(self, &cache.labels, 0));
        emit(self, &cache.labels, 0, &mut tree, Tree::ROOT);
        self.undo_to(mark);
        Ok(tree)
    }
}

// ---------------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------------

/// Running totals of one session, surfaced through the engine stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Updates applied.
    pub updates: u64,
    /// Std re-enumerations the updates forced (the refire frontier).
    pub refires: u64,
    /// Stds an update's region analysis proved unaffected.
    pub skips: u64,
    /// Epochs replayed after rewinds (firings re-applied to the arena).
    pub replays: u64,
}

/// A long-lived incremental chase session over one mapping and one
/// mutable source document.
///
/// After every update, [`IncrementalChase::canonical_solution`] and
/// [`IncrementalChase::certain_answers`] agree with a from-scratch
/// [`super::canonical_solution`] of the mutated document — byte-identical
/// trees and identical [`ChaseError`] verdicts, not merely isomorphic
/// ones (pinned by `tests/delta_equiv.rs`).
pub struct IncrementalChase {
    mapping: Mapping,
    plan: Arc<DeltaPlan>,
    doc: Tree,
    /// Per-std canonical firing sequences for the current document.
    firings: Vec<Vec<Box<[Value]>>>,
    /// The applied flattened (std-major) sequence: epoch `k` of the arena
    /// holds firing `seq[k]`.
    seq: Vec<(u32, Box<[Value]>)>,
    /// How many of `seq` are applied; `< seq.len()` only when `error` is
    /// set (the failing firing and everything after it are not applied).
    applied: usize,
    error: Option<ChaseError>,
    arena: DeltaArena,
    /// Source nodes currently violating the source DTD (label, attribute
    /// or children-word violations); the document conforms iff empty.
    violations: BTreeSet<NodeId>,
    stats: DeltaStats,
}

impl IncrementalChase {
    /// Opens a session, compiling a fresh [`DeltaPlan`]. The initial
    /// chase state is built by matching every std once.
    pub fn new(m: &Mapping, doc: Tree) -> IncrementalChase {
        IncrementalChase::with_plan(m.clone(), doc, Arc::new(DeltaPlan::new(m)))
    }

    /// Opens a session over a shared, possibly disk-loaded plan.
    pub fn with_plan(mapping: Mapping, doc: Tree, plan: Arc<DeltaPlan>) -> IncrementalChase {
        let mut arena = DeltaArena::default();
        if plan.chase.fragment_error().is_none() && !plan.chase.labels.is_empty() {
            arena.create_node(&plan.chase.labels, plan.chase.root);
        }
        let std_count = plan.chase.std_count();
        let mut s = IncrementalChase {
            mapping,
            plan,
            doc,
            firings: vec![Vec::new(); std_count],
            seq: Vec::new(),
            applied: 0,
            error: None,
            arena,
            violations: BTreeSet::new(),
            stats: DeltaStats::default(),
        };
        for n in s.doc.nodes().collect::<Vec<_>>() {
            if !s.node_conforms(n) {
                s.violations.insert(n);
            }
        }
        let all: Vec<usize> = (0..std_count).collect();
        s.refire(&all);
        s
    }

    /// The current (mutated) source document.
    pub fn doc(&self) -> &Tree {
        &self.doc
    }

    /// The mapping this session chases under.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Running session totals.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Does the current document conform to the source DTD?
    pub fn source_conforms(&self) -> bool {
        self.violations.is_empty()
    }

    /// Resolves a child-index path (empty = the root).
    pub fn resolve_path(&self, path: &[usize]) -> Result<NodeId, String> {
        let mut n = Tree::ROOT;
        for (depth, &i) in path.iter().enumerate() {
            n = *self.doc.children(n).get(i).ok_or_else(|| {
                format!(
                    "path {:?}: no child {} at depth {}",
                    path.iter()
                        .map(usize::to_string)
                        .collect::<Vec<_>>()
                        .join("/"),
                    i,
                    depth
                )
            })?;
        }
        Ok(n)
    }

    /// Applies one path-addressed [`Update`].
    pub fn apply(&mut self, u: &Update) -> Result<(), String> {
        match u {
            Update::InsertSubtree {
                parent,
                pos,
                subtree,
            } => {
                let p = self.resolve_path(parent)?;
                self.insert_subtree(p, *pos, subtree)
            }
            Update::DeleteSubtree { path } => {
                let n = self.resolve_path(path)?;
                self.delete_subtree(n)
            }
            Update::ReplaceText { path, attr, value } => {
                let n = self.resolve_path(path)?;
                self.replace_text(n, attr.as_str(), value.clone())
            }
        }
    }

    /// Applies a whole update script, stopping at the first structurally
    /// invalid op (bad path, bad position, unknown attribute). Returns
    /// the number of ops applied.
    pub fn apply_all(&mut self, updates: &[Update]) -> Result<usize, String> {
        for (i, u) in updates.iter().enumerate() {
            self.apply(u)
                .map_err(|e| format!("update #{}: {e}", i + 1))?;
        }
        Ok(updates.len())
    }

    /// Grafts a copy of `sub` under `parent` at child position `pos` and
    /// incrementally re-chases.
    pub fn insert_subtree(&mut self, parent: NodeId, pos: usize, sub: &Tree) -> Result<(), String> {
        if pos > self.doc.children(parent).len() {
            return Err(format!(
                "insert position {pos} out of {} children",
                self.doc.children(parent).len()
            ));
        }
        let mut sub = sub.clone();
        self.normalize_fragment(&mut sub);
        let new_root = self.doc.graft_at(parent, pos, &sub);
        let mut region: BTreeSet<Name> = BTreeSet::new();
        for n in self.doc.descendants_or_self(new_root).collect::<Vec<_>>() {
            region.insert(self.doc.label(n).clone());
            if !self.node_conforms(n) {
                self.violations.insert(n);
            }
        }
        self.revalidate(parent);
        self.after_edit(region, parent);
        Ok(())
    }

    /// Detaches the subtree rooted at `n` and incrementally re-chases.
    pub fn delete_subtree(&mut self, n: NodeId) -> Result<(), String> {
        let Some(parent) = self.doc.parent(n) else {
            return Err("cannot delete the document root".into());
        };
        let mut region: BTreeSet<Name> = BTreeSet::new();
        for d in self.doc.descendants_or_self(n).collect::<Vec<_>>() {
            region.insert(self.doc.label(d).clone());
            self.violations.remove(&d);
        }
        self.doc.detach(n);
        self.revalidate(parent);
        self.after_edit(region, parent);
        Ok(())
    }

    /// Overwrites one attribute value and incrementally re-chases.
    pub fn replace_text(&mut self, n: NodeId, attr: &str, value: Value) -> Result<(), String> {
        if self.doc.attr(n, attr).is_none() {
            return Err(format!(
                "node has no attribute {attr:?} (label {})",
                self.doc.label(n)
            ));
        }
        self.doc.set_attr(n, attr, value);
        let region: BTreeSet<Name> = [self.doc.label(n).clone()].into();
        // Attribute names and children are untouched, so conformance of
        // `n` (and of everything else) cannot change.
        let parent = self.doc.parent(n).unwrap_or(Tree::ROOT);
        self.after_edit(region, parent);
        Ok(())
    }

    /// The canonical solution of the current document — or why none
    /// exists. Identical (bytes and verdict) to a from-scratch chase.
    pub fn canonical_solution(&mut self) -> Result<Tree, ChaseError> {
        if !self.violations.is_empty() {
            return Err(ChaseError::SourceNotConforming);
        }
        if let Some(e) = self.plan.chase.fragment_error() {
            return Err(e.clone());
        }
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        self.arena.materialize(&self.plan.chase)
    }

    /// Certain answers of a downward `query` over all solutions of the
    /// current document: the null-free matches on the canonical solution.
    pub fn certain_answers(
        &mut self,
        query: &Pattern,
    ) -> Result<Vec<Valuation>, CertainAnswersError> {
        if query.uses_next_sibling() || query.uses_following_sibling() {
            return Err(CertainAnswersError::OrderedQuery);
        }
        let canonical = self
            .canonical_solution()
            .map_err(CertainAnswersError::NoSolution)?;
        Ok(eval::all_matches(&canonical, query)
            .into_iter()
            .filter(|v| v.values().all(|x| x.is_constant()))
            .collect())
    }

    // ---- internals -----------------------------------------------------

    /// Re-checks one node's DTD conformance and updates the violation set.
    fn revalidate(&mut self, n: NodeId) {
        if self.node_conforms(n) {
            self.violations.remove(&n);
        } else {
            self.violations.insert(n);
        }
    }

    /// Local conformance of one node: known label (and the root label for
    /// the root), exact attribute names in order, children word in the
    /// production language. The document conforms iff every reachable
    /// node passes — the same verdict as `Dtd::check`.
    fn node_conforms(&self, n: NodeId) -> bool {
        let dtd = &self.mapping.source_dtd;
        let label = self.doc.label(n);
        if n == Tree::ROOT && label != dtd.root() {
            return false;
        }
        if !dtd.contains(label) {
            return false;
        }
        let expected = dtd.attrs(label);
        let found = self.doc.attrs(n);
        if found.len() != expected.len() || found.iter().zip(expected).any(|((a, _), b)| a != b) {
            return false;
        }
        let word: Vec<Name> = self
            .doc
            .children(n)
            .iter()
            .map(|&c| self.doc.label(c).clone())
            .collect();
        match dtd.horizontal(label) {
            Some(nfa) => nfa.accepts(&word),
            None => word.is_empty(),
        }
    }

    /// Best-effort canonicalisation of an inserted fragment: reorders
    /// attributes into DTD order wherever the node's label is known and
    /// its attribute name-set matches (so an in-memory insert equals the
    /// parse-then-`normalize_attrs` of the same fragment). Nodes that
    /// would fail normalization are left as-is — they surface as
    /// conformance violations, exactly like the re-parsed document would.
    fn normalize_fragment(&self, sub: &mut Tree) {
        let dtd = &self.mapping.source_dtd;
        for n in sub.nodes().collect::<Vec<_>>() {
            let label = sub.label(n).clone();
            if !dtd.contains(&label) {
                continue;
            }
            let expected = dtd.attrs(&label);
            let current = sub.attrs(n).to_vec();
            if current.len() != expected.len() {
                continue;
            }
            let reordered: Option<Vec<(Name, Value)>> = expected
                .iter()
                .map(|want| current.iter().find(|(a, _)| a == want).cloned())
                .collect();
            if let Some(attrs) = reordered {
                sub.set_attrs(n, attrs);
            }
        }
    }

    /// The refire frontier: selects the stds whose plans can reach the
    /// edited region, re-enumerates exactly those, and resynchronises the
    /// arena by prefix-preserving replay.
    fn after_edit(&mut self, region: BTreeSet<Name>, edit_parent: NodeId) {
        self.stats.updates += 1;
        // Horizontal patterns additionally observe sibling adjacency at
        // the edit point, so their region includes every child label of
        // the edit parent (computed lazily — only if some std needs it).
        let mut horizontal_region: Option<BTreeSet<Name>> = None;
        let mut affected: Vec<usize> = Vec::new();
        for (si, profile) in self.plan.profiles.iter().enumerate() {
            let touched = if profile.horizontal {
                let wide = horizontal_region.get_or_insert_with(|| {
                    let mut wide = region.clone();
                    wide.extend(
                        self.doc
                            .children(edit_parent)
                            .iter()
                            .map(|&c| self.doc.label(c).clone()),
                    );
                    wide.insert(self.doc.label(edit_parent).clone());
                    wide
                });
                profile.touched(wide)
            } else {
                profile.touched(&region)
            };
            if touched {
                affected.push(si);
            } else {
                self.stats.skips += 1;
            }
        }
        if !affected.is_empty() {
            self.refire(&affected);
        }
    }

    /// Re-enumerates the given stds against the current document and
    /// replays the arena from the longest unchanged firing prefix.
    fn refire(&mut self, stds: &[usize]) {
        for &si in stds {
            let plan = &self.plan.chase.plans[si];
            let matcher = Matcher::new(&self.doc, &plan.source);
            let tuples: Vec<Box<[Value]>> = matcher
                .all_match_tuples()
                .into_iter()
                .map(|t| t.into_iter().cloned().collect())
                .collect();
            self.firings[si] = self.plan.chase.canonical_firings(si, tuples);
            self.stats.refires += 1;
        }
        // Flatten std-major — the kernel's instantiation order.
        let new_seq: Vec<(u32, Box<[Value]>)> = self
            .firings
            .iter()
            .enumerate()
            .flat_map(|(si, fs)| fs.iter().map(move |t| (si as u32, t.clone())))
            .collect();
        // Longest common prefix with the *applied* epochs.
        let mut lcp = 0;
        while lcp < self.applied && lcp < new_seq.len() && self.seq[lcp] == new_seq[lcp] {
            lcp += 1;
        }
        self.arena.rewind_to(lcp);
        self.seq = new_seq;
        self.applied = lcp;
        self.error = None;
        while self.applied < self.seq.len() {
            let (si, tuple) = &self.seq[self.applied];
            let si = *si as usize;
            let tuple = tuple.clone();
            match self.arena.apply_firing(&self.plan.chase, si, &tuple) {
                Ok(()) => {
                    self.applied += 1;
                    self.stats.replays += 1;
                }
                Err(e) => {
                    self.error = Some(e);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chase::canonical_solution;
    use crate::stds::Std;
    use xmlmap_dtd::Dtd;
    use xmlmap_trees::tree;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
        Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        )
    }

    /// The session must agree with a from-scratch chase of its current
    /// document — byte-identically, error verdicts included.
    fn assert_in_sync(s: &mut IncrementalChase) {
        let fresh = canonical_solution(&s.mapping, s.doc());
        let inc = s.canonical_solution();
        match (&inc, &fresh) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "delta solution diverged"),
            (Err(a), Err(b)) => assert_eq!(a, b, "delta error verdict diverged"),
            _ => panic!("delta {inc:?} vs fresh {fresh:?}"),
        }
    }

    #[test]
    fn inserts_deletes_and_text_edits_track_the_full_chase() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let doc = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let mut s = IncrementalChase::new(&m, doc);
        assert_in_sync(&mut s);

        s.insert_subtree(Tree::ROOT, 1, &tree!("a"("v" = "9")))
            .unwrap();
        assert_in_sync(&mut s);
        assert_eq!(
            s.canonical_solution().unwrap().children(Tree::ROOT).len(),
            3
        );

        let second = s.doc().children(Tree::ROOT)[1];
        s.delete_subtree(second).unwrap();
        assert_in_sync(&mut s);

        let first = s.doc().children(Tree::ROOT)[0];
        s.replace_text(first, "v", Value::str("7")).unwrap();
        assert_in_sync(&mut s);
    }

    #[test]
    fn conformance_verdicts_follow_updates() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let mut s = IncrementalChase::new(&m, tree!("r"["a"("v" = "1")]));
        // A foreign label breaks conformance...
        s.insert_subtree(Tree::ROOT, 0, &tree!("zzz")).unwrap();
        assert!(!s.source_conforms());
        assert_in_sync(&mut s);
        // ...and deleting it restores the old state exactly.
        let bad = s.doc().children(Tree::ROOT)[0];
        s.delete_subtree(bad).unwrap();
        assert!(s.source_conforms());
        assert_in_sync(&mut s);
    }

    #[test]
    fn retracting_a_unification_splits_slot_cursors() {
        // Two stds funnel values into the same non-repeatable b: deleting
        // one source record must retract its unification.
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let doc = tree!("r" [ "a"("v" = "1"), "a"("v" = "1") ]);
        let mut s = IncrementalChase::new(&m, doc);
        assert_in_sync(&mut s);
        // A conflicting value: the chase must now fail...
        s.insert_subtree(Tree::ROOT, 2, &tree!("a"("v" = "2")))
            .unwrap();
        assert!(matches!(
            s.canonical_solution(),
            Err(ChaseError::ValueConflict(_))
        ));
        assert_in_sync(&mut s);
        // ...and deleting the conflicting record heals the session.
        let third = s.doc().children(Tree::ROOT)[2];
        s.delete_subtree(third).unwrap();
        assert_in_sync(&mut s);
        assert!(s.canonical_solution().is_ok());
    }

    #[test]
    fn untouched_stds_are_skipped() {
        let m = mapping(
            "root r\nr -> a*, c*\na @ v\nc @ w",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let doc = tree!("r" [ "a"("v" = "1"), "c"("w" = "9") ]);
        let mut s = IncrementalChase::new(&m, doc);
        let before = s.stats();
        // Editing a c record cannot touch the a-pattern.
        let c = s.doc().children(Tree::ROOT)[1];
        s.replace_text(c, "w", Value::str("8")).unwrap();
        let after = s.stats();
        assert_eq!(after.skips, before.skips + 1);
        assert_eq!(after.refires, before.refires);
        assert_in_sync(&mut s);
    }

    #[test]
    fn update_script_round_trips() {
        let script = "\
# storm
insert . 0 <a v=\"5\"/>
settext 0 v 6
delete 0
";
        let ups = parse_updates(script).unwrap();
        assert_eq!(ups.len(), 3);
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let mut s = IncrementalChase::new(&m, tree!("r"["a"("v" = "1")]));
        assert_eq!(s.apply_all(&ups).unwrap(), 3);
        assert_in_sync(&mut s);
        assert!(parse_updates("bogus . 0").is_err());
        assert!(parse_updates("insert x 0 <a/>").is_err());
        assert!(s.apply(&Update::DeleteSubtree { path: vec![7] }).is_err());
    }

    #[test]
    fn plan_round_trips_through_bytes() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let plan = DeltaPlan::new(&m);
        let back = DeltaPlan::from_bytes(&plan.to_bytes()).unwrap();
        assert_eq!(back.profiles.len(), 1);
        assert_eq!(back.profiles[0].labels, plan.profiles[0].labels);
        assert!(back.approx_bytes() > 0);
        let mut s = IncrementalChase::with_plan(m, tree!("r"["a"("v" = "1")]), Arc::new(back));
        assert_in_sync(&mut s);
    }
}
