//! Canonical-solution construction (the chase).
//!
//! The paper's §9 names "constructing target instances" as the key next
//! step for XML data exchange; for the tractable class the paper builds
//! (fully-specified stds over nested-relational target DTDs, the same
//! class that is closed under composition in §8) the classic chase works:
//!
//! 1. for every std and every firing, instantiate the target pattern into
//!    the partial document — children in **repeatable** slots (`*`/`+`) get
//!    fresh nodes per firing, children in **non-repeatable** slots (`ℓ`,
//!    `ℓ?`) are unified with the existing node (labelled nulls unify with
//!    anything, constants only with themselves);
//! 2. complete the document: missing mandatory children are added with
//!    fresh-null attributes, children are ordered by the production's slot
//!    order;
//! 3. check the deferred `≠` obligations.
//!
//! Failure at any step means **no** solution exists (the chase only merges
//! when the DTD forces it), so [`canonical_solution`] doubles as a
//! per-document solution-existence check — the semantics behind absolute
//! consistency.
//!
//! Two engines implement these steps:
//!
//! * [`compiled`] — the production engine: firings enumerated through the
//!   compiled pattern kernel (in parallel across stds on large inputs),
//!   unification over a union-find of labelled nulls with interned
//!   constants, and document construction in a flat `(parent, slot)` arena
//!   completed by a single ordered sweep. Its per-mapping tables live in a
//!   reusable [`ChaseCache`].
//! * [`mod@reference`] — the original interpretive implementation, kept
//!   verbatim as the differential-testing oracle (see
//!   `tests/chase_equiv.rs`).
//!
//! The two agree on the success/failure [`ChaseError`] variant and produce
//! isomorphic solutions up to null renaming; only the labels of the
//! invented nulls differ.

pub mod compiled;
pub mod delta;
pub mod reference;

pub use compiled::{canonical_solution, canonical_solution_cached, ChaseCache};
pub use delta::{parse_updates, DeltaPlan, DeltaStats, IncrementalChase, TouchProfile, Update};

/// Why the chase failed — equivalently, why `source` has no solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// The source document does not conform to the source DTD.
    SourceNotConforming,
    /// The mapping is outside the chaseable fragment.
    OutsideFragment(String),
    /// Two constants were forced into the same attribute slot.
    ValueConflict(String),
    /// A target pattern cannot embed into the target DTD.
    NotEmbeddable(String),
    /// A non-repeatable slot would need two or more children.
    MultiplicityConflict(String),
    /// A target `≠` condition is violated by forced equalities.
    InequalityViolated(String),
    /// An equality condition equates two different source constants.
    EqualityUnsatisfiable(String),
}

impl std::fmt::Display for ChaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaseError::SourceNotConforming => write!(f, "source does not conform"),
            ChaseError::OutsideFragment(s) => write!(f, "outside the chaseable fragment: {s}"),
            ChaseError::ValueConflict(s) => write!(f, "value conflict: {s}"),
            ChaseError::NotEmbeddable(s) => write!(f, "target pattern not embeddable: {s}"),
            ChaseError::MultiplicityConflict(s) => write!(f, "multiplicity conflict: {s}"),
            ChaseError::InequalityViolated(s) => write!(f, "≠ condition violated: {s}"),
            ChaseError::EqualityUnsatisfiable(s) => write!(f, "= condition unsatisfiable: {s}"),
        }
    }
}

impl std::error::Error for ChaseError {}

#[cfg(test)]
mod tests {
    use super::{canonical_solution, ChaseError};
    use crate::stds::{Mapping, Std};
    use xmlmap_dtd::Dtd;
    use xmlmap_trees::{tree, Tree, Value};

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
        Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        )
    }

    #[test]
    fn basic_copy_mapping() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let sol = canonical_solution(&m, &src).unwrap();
        assert!(m.is_solution(&src, &sol));
        assert_eq!(sol.children(Tree::ROOT).len(), 2);
    }

    #[test]
    fn completion_fills_mandatory_nodes() {
        // Even with no firings, the target skeleton must exist.
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b, c?\nb -> d\nd @ w",
            &["r/a(x) --> r/b/d(x)"],
        );
        let sol = canonical_solution(&m, &tree!("r")).unwrap();
        assert!(m.target_dtd.conforms(&sol));
        assert_eq!(sol.size(), 3); // r, b, d — d's attribute is a null
        let d_node = sol.children(sol.children(Tree::ROOT)[0])[0];
        assert!(sol.attr(d_node, "w").unwrap().is_null());

        // With a firing, the shared value lands in d.
        let src = tree!("r"["a"("v" = "42")]);
        let sol = canonical_solution(&m, &src).unwrap();
        let d_node = sol.children(sol.children(Tree::ROOT)[0])[0];
        assert_eq!(sol.attr(d_node, "w"), Some(&Value::str("42")));
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn rigid_conflict_has_no_solution() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let err = canonical_solution(&m, &src).unwrap_err();
        assert!(matches!(err, ChaseError::ValueConflict(_)), "{err}");
        // Agrees with the bounded oracle.
        assert!(crate::bounded::solution_exists(&m, &src, 4).is_none());
        // One value is fine.
        let src1 = tree!("r" [ "a"("v" = "1"), "a"("v" = "1") ]);
        let sol = canonical_solution(&m, &src1).unwrap();
        assert!(m.is_solution(&src1, &sol));
    }

    #[test]
    fn repeatable_slots_keep_tuples_separate() {
        let m = mapping(
            "root r\nr -> a*\na @ v, w",
            "root r\nr -> b*\nb -> c\nb @ x\nc @ y",
            &["r/a(x, y) --> r/b(x)/c(y)"],
        );
        let src = tree! {
            "r" [ "a"("v" = "1", "w" = "one"), "a"("v" = "1", "w" = "uno") ]
        };
        let sol = canonical_solution(&m, &src).unwrap();
        assert!(m.is_solution(&src, &sol));
        // Two b nodes even though their x values coincide: the chase only
        // merges when the DTD forces it.
        assert_eq!(sol.children(Tree::ROOT).len(), 2);
    }

    #[test]
    fn existential_variables_get_nulls() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ x, y",
            &["r/a(x) --> r/b(x, z)"],
        );
        let src = tree!("r"["a"("v" = "1")]);
        let sol = canonical_solution(&m, &src).unwrap();
        let b = sol.children(Tree::ROOT)[0];
        assert_eq!(sol.attr(b, "x"), Some(&Value::str("1")));
        assert!(sol.attr(b, "y").unwrap().is_null());
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn target_equalities_propagate() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ x, y",
            &["r/a(x) --> r[b(x, z)] ; z = x"],
        );
        let src = tree!("r"["a"("v" = "7")]);
        let sol = canonical_solution(&m, &src).unwrap();
        let b = sol.children(Tree::ROOT)[0];
        assert_eq!(sol.attr(b, "y"), Some(&Value::str("7")));
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn target_inequality_violation_detected() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ x, y",
            &["r/a(x) --> r[b(x, z)] ; z = x, z != x"],
        );
        let src = tree!("r"["a"("v" = "7")]);
        let err = canonical_solution(&m, &src).unwrap_err();
        assert!(matches!(err, ChaseError::InequalityViolated(_)), "{err}");
    }

    #[test]
    fn satisfiable_inequality_passes() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ x, y",
            &["r/a(x) --> r[b(x, z)] ; z != x"],
        );
        let src = tree!("r"["a"("v" = "7")]);
        let sol = canonical_solution(&m, &src).unwrap();
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn unembeddable_pattern() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b",
            &["r/a(x) --> r/nosuch(x)"],
        );
        let src = tree!("r"["a"("v" = "1")]);
        assert!(matches!(
            canonical_solution(&m, &src),
            Err(ChaseError::NotEmbeddable(_))
        ));
    }

    #[test]
    fn outside_fragment_errors() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r//b(x)"],
        );
        assert!(matches!(
            canonical_solution(&m, &tree!("r"["a"("v" = "1")])),
            Err(ChaseError::OutsideFragment(_))
        ));
        let m2 = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b|c",
            &["r/a(x) --> r/b"],
        );
        assert!(matches!(
            canonical_solution(&m2, &tree!("r"["a"("v" = "1")])),
            Err(ChaseError::OutsideFragment(_))
        ));
    }

    #[test]
    fn source_conditions_filter_firings() {
        let m = mapping(
            "root r\nr -> a, a\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r[a(x) -> a(y)] ; x != y --> r/b(x)"],
        );
        // Equal values: std does not fire; canonical solution is skeletal.
        let src_eq = tree!("r" [ "a"("v" = "1"), "a"("v" = "1") ]);
        let sol = canonical_solution(&m, &src_eq).unwrap();
        assert_eq!(sol.size(), 1);
        // Distinct values: fires once.
        let src_ne = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let sol = canonical_solution(&m, &src_ne).unwrap();
        assert_eq!(sol.size(), 2);
        assert!(m.is_solution(&src_ne, &sol));
    }
}
