//! The interpretive chase, kept as the differential-testing oracle.
//!
//! This is the original implementation of canonical-solution construction,
//! preserved verbatim (matching the `patterns::reference` / `sat::reference`
//! convention): a direct transcription of the three chase steps, with a
//! chain-following substitution for unification and repeated child scans
//! for completion. The production engine lives in [`super::compiled`];
//! `tests/chase_equiv.rs` checks the two agree — same success/failure
//! variant, isomorphic solutions up to null renaming — on generated
//! mappings and documents.

use super::ChaseError;
use crate::cond::CompOp;
use crate::stds::{Mapping, Std};
use std::collections::{BTreeMap, HashMap};
use xmlmap_dtd::Mult;
use xmlmap_patterns::{LabelTest, ListItem, Pattern, Valuation, Var};
use xmlmap_trees::{Name, NodeId, Tree, Value};

/// Union-find-ish substitution over labelled nulls.
#[derive(Default)]
struct Subst {
    map: HashMap<u64, Value>,
}

impl Subst {
    fn resolve(&self, v: &Value) -> Value {
        let mut cur = v.clone();
        let mut steps = 0;
        while let Value::Null(k) = cur {
            match self.map.get(&k) {
                Some(next) => {
                    cur = next.clone();
                    steps += 1;
                    debug_assert!(steps <= self.map.len() + 1, "substitution cycle");
                }
                None => break,
            }
        }
        cur
    }

    /// Unifies two values; returns false on constant/constant conflict.
    fn unify(&mut self, a: &Value, b: &Value) -> bool {
        let (ra, rb) = (self.resolve(a), self.resolve(b));
        if ra == rb {
            return true;
        }
        match (ra, rb) {
            (Value::Null(k), other) | (other, Value::Null(k)) => {
                self.map.insert(k, other);
                true
            }
            _ => false,
        }
    }
}

struct Chaser<'m> {
    mapping: &'m Mapping,
    tree: Tree,
    subst: Subst,
    next_null: u64,
    /// Deferred ≠ obligations (checked after all unifications).
    neq_obligations: Vec<(Value, Value, String)>,
}

impl<'m> Chaser<'m> {
    fn fresh(&mut self) -> Value {
        let v = Value::Null(self.next_null);
        self.next_null += 1;
        v
    }

    /// Resolves the values every target variable takes for one firing.
    fn firing_values(
        &mut self,
        std: &Std,
        firing: &Valuation,
        std_idx: usize,
    ) -> Result<BTreeMap<Var, Value>, ChaseError> {
        // Equivalence classes of target variables under α′₌.
        let vars = std.target.variables();
        let mut rep: BTreeMap<Var, Var> = vars.iter().map(|v| (v.clone(), v.clone())).collect();
        fn find(rep: &mut BTreeMap<Var, Var>, v: &Var) -> Var {
            let p = rep.get(v).cloned().unwrap_or_else(|| v.clone());
            if &p == v {
                return p;
            }
            let root = find(rep, &p);
            rep.insert(v.clone(), root.clone());
            root
        }
        for c in &std.target_cond {
            if c.op == CompOp::Eq {
                let (ra, rb) = (find(&mut rep, &c.left), find(&mut rep, &c.right));
                if ra != rb {
                    rep.insert(ra, rb);
                }
            }
        }
        // Value per class: the source binding if any member is shared.
        let mut class_value: BTreeMap<Var, Value> = BTreeMap::new();
        for v in &vars {
            let root = find(&mut rep, v);
            if let Some(bound) = firing.get(v) {
                match class_value.get(&root) {
                    Some(existing) if existing != bound => {
                        return Err(ChaseError::EqualityUnsatisfiable(format!(
                            "std #{std_idx}: α′₌ equates {existing} and {bound}"
                        )));
                    }
                    _ => {
                        class_value.insert(root, bound.clone());
                    }
                }
            }
        }
        let mut out = BTreeMap::new();
        for v in &vars {
            let root = find(&mut rep, v);
            let val = match class_value.get(&root) {
                Some(v) => v.clone(),
                None => {
                    let fresh = self.fresh();
                    class_value.insert(root, fresh.clone());
                    fresh
                }
            };
            out.insert(v.clone(), val);
        }
        // Record ≠ obligations for the final check.
        for c in &std.target_cond {
            if c.op == CompOp::Neq {
                let (a, b) = (out[&c.left].clone(), out[&c.right].clone());
                self.neq_obligations
                    .push((a, b, format!("std #{std_idx}: {c}")));
            }
        }
        Ok(out)
    }

    fn unify_attrs(
        &mut self,
        node: NodeId,
        pattern: &Pattern,
        values: &BTreeMap<Var, Value>,
    ) -> Result<(), ChaseError> {
        if pattern.vars.is_empty() {
            return Ok(()); // no attribute constraint
        }
        let existing: Vec<(Name, Value)> = self.tree.attrs(node).to_vec();
        if existing.len() != pattern.vars.len() {
            return Err(ChaseError::NotEmbeddable(format!(
                "pattern node {pattern} has {} variables but element {} has {} attributes",
                pattern.vars.len(),
                self.tree.label(node),
                existing.len()
            )));
        }
        for ((attr, old), var) in existing.iter().zip(&pattern.vars) {
            let new = values[var].clone();
            if !self.subst.unify(old, &new) {
                return Err(ChaseError::ValueConflict(format!(
                    "attribute {attr} of {}: {} vs {}",
                    self.tree.label(node),
                    self.subst.resolve(old),
                    self.subst.resolve(&new)
                )));
            }
        }
        Ok(())
    }

    /// Creates a node for `label` under `parent` with fresh-null attributes.
    fn create(&mut self, parent: NodeId, label: &Name) -> NodeId {
        let attrs: Vec<(Name, Value)> = self
            .mapping
            .target_dtd
            .attrs(label)
            .iter()
            .map(|a| {
                (a.clone(), {
                    let v = Value::Null(self.next_null);
                    self.next_null += 1;
                    v
                })
            })
            .collect();
        self.tree.add_child(parent, label.clone(), attrs)
    }

    fn instantiate(
        &mut self,
        node: NodeId,
        pattern: &Pattern,
        values: &BTreeMap<Var, Value>,
    ) -> Result<(), ChaseError> {
        self.unify_attrs(node, pattern, values)?;
        let parent_label = self.tree.label(node).clone();
        for item in &pattern.list {
            let ListItem::Seq { members, .. } = item else {
                return Err(ChaseError::OutsideFragment(
                    "descendant items are not fully specified".into(),
                ));
            };
            // Fully-specified patterns have single-member sequences.
            let child_pat = &members[0];
            let LabelTest::Label(label) = &child_pat.label else {
                return Err(ChaseError::OutsideFragment("wildcard label".into()));
            };
            // The slot must exist under the parent label.
            let nr = self
                .mapping
                .target_dtd
                .nested_relational()
                .expect("checked in canonical_solution");
            let Some((_, mult)) = nr
                .slots(&parent_label)
                .iter()
                .find(|(l, _)| l == label)
                .cloned()
            else {
                return Err(ChaseError::NotEmbeddable(format!(
                    "{label} is not a child slot of {parent_label}"
                )));
            };
            let child_node = if mult.repeatable() {
                self.create(node, label)
            } else {
                // The unique per-parent node: reuse if present.
                match self
                    .tree
                    .children(node)
                    .iter()
                    .find(|&&c| self.tree.label(c) == label)
                    .copied()
                {
                    Some(c) => c,
                    None => self.create(node, label),
                }
            };
            self.instantiate(child_node, child_pat, values)?;
        }
        Ok(())
    }

    /// Adds missing mandatory children, recursively, and orders children by
    /// the production's slot order.
    fn complete(&mut self, node: NodeId) -> Result<(), ChaseError> {
        let label = self.tree.label(node).clone();
        let nr = self
            .mapping
            .target_dtd
            .nested_relational()
            .expect("checked in canonical_solution");
        let slots: Vec<(Name, Mult)> = nr.slots(&label).to_vec();
        // Count children per label; verify every child has a slot.
        let mut by_label: BTreeMap<Name, Vec<NodeId>> = BTreeMap::new();
        for &c in self.tree.children(node) {
            by_label
                .entry(self.tree.label(c).clone())
                .or_default()
                .push(c);
        }
        let mut ordered: Vec<NodeId> = Vec::new();
        for (slot_label, mult) in &slots {
            let kids = by_label.remove(slot_label).unwrap_or_default();
            match (mult, kids.len()) {
                (Mult::One | Mult::Opt, n) if n > 1 => {
                    return Err(ChaseError::MultiplicityConflict(format!(
                        "{n} children labelled {slot_label} under {label}, slot allows one"
                    )));
                }
                (Mult::One | Mult::Plus, 0) => {
                    ordered.push(self.create(node, slot_label));
                }
                _ => {}
            }
            ordered.extend(kids);
        }
        if let Some((stray, _)) = by_label.into_iter().next() {
            return Err(ChaseError::NotEmbeddable(format!(
                "{stray} is not a child slot of {label}"
            )));
        }
        self.reorder_children(node, ordered);
        for c in self.tree.children(node).to_vec() {
            self.complete(c)?;
        }
        Ok(())
    }

    fn reorder_children(&mut self, node: NodeId, ordered: Vec<NodeId>) {
        // Rebuild the child list in slot order (same multiset of ids).
        debug_assert_eq!(ordered.len(), self.tree.children(node).len());
        self.tree.set_children(node, ordered);
    }
}

/// Builds the canonical solution of `source` under `m`, or proves none
/// exists. Fragment: fully-specified stds, nested-relational tree-shaped
/// target DTD, no *source-side* inequalities restrictions are needed —
/// source conditions only filter firings and are handled by [`Std::firings`].
pub fn canonical_solution(m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
    if !m.source_dtd.conforms(source) {
        return Err(ChaseError::SourceNotConforming);
    }
    let Some(nr) = m.target_dtd.nested_relational() else {
        return Err(ChaseError::OutsideFragment(
            "target DTD is not nested-relational".into(),
        ));
    };
    if !nr.is_tree_shaped() {
        return Err(ChaseError::OutsideFragment(
            "target DTD is not tree-shaped".into(),
        ));
    }
    for s in &m.stds {
        if !s.target.is_fully_specified() {
            return Err(ChaseError::OutsideFragment(format!(
                "target pattern of `{s}` is not fully specified"
            )));
        }
    }

    // Root node with fresh-null attributes.
    let mut chaser = Chaser {
        mapping: m,
        tree: Tree::new(m.target_dtd.root().clone()),
        subst: Subst::default(),
        next_null: 0,
        neq_obligations: Vec::new(),
    };
    let root_attrs: Vec<(Name, Value)> = m
        .target_dtd
        .attrs(m.target_dtd.root())
        .iter()
        .map(|a| {
            (a.clone(), {
                let v = Value::Null(chaser.next_null);
                chaser.next_null += 1;
                v
            })
        })
        .collect();
    chaser.tree.set_attrs(Tree::ROOT, root_attrs);

    // Match enumeration per std is read-only and independent, so fan it
    // out across threads on non-trivial inputs; the instantiation loop
    // below stays sequential (it mutates one shared partial document, and
    // firing order is what makes the construction deterministic).
    let firings_per_std: Vec<Vec<Valuation>> =
        if m.stds.len() > 1 && source.size() >= crate::stds::PAR_NODE_THRESHOLD {
            xmlmap_par::par_map(&m.stds, |s| s.firings(source))
        } else {
            m.stds.iter().map(|s| s.firings(source)).collect()
        };

    for (si, (s, firings)) in m.stds.iter().zip(firings_per_std).enumerate() {
        for firing in firings {
            let values = chaser.firing_values(s, &firing, si)?;
            // The target pattern is rooted at the document root.
            let LabelTest::Label(root_label) = &s.target.label else {
                return Err(ChaseError::OutsideFragment("wildcard root".into()));
            };
            if root_label != m.target_dtd.root() {
                return Err(ChaseError::NotEmbeddable(format!(
                    "target pattern of std #{si} is rooted at {root_label}, \
                     the target DTD root is {}",
                    m.target_dtd.root()
                )));
            }
            chaser.instantiate(Tree::ROOT, &s.target, &values)?;
        }
    }
    chaser.complete(Tree::ROOT)?;

    // Deferred ≠ obligations under the final substitution.
    for (a, b, what) in &chaser.neq_obligations {
        if chaser.subst.resolve(a) == chaser.subst.resolve(b) {
            return Err(ChaseError::InequalityViolated(what.clone()));
        }
    }

    // Apply the substitution to the document.
    let mut tree = chaser.tree.clone();
    for node in tree.nodes().collect::<Vec<_>>() {
        let resolved: Vec<(Name, Value)> = tree
            .attrs(node)
            .iter()
            .map(|(a, v)| (a.clone(), chaser.subst.resolve(v)))
            .collect();
        tree.set_attrs(node, resolved);
    }
    debug_assert!(m.target_dtd.conforms(&tree), "chase output must conform");
    Ok(tree)
}
