//! The compiled chase engine.
//!
//! Same three steps as [`super::reference`], restructured around four ideas
//! (DESIGN.md §8.2):
//!
//! * **compiled firing enumeration** — each std's source pattern is
//!   compiled once per mapping; firings come out of the pattern kernel's
//!   dense match-enumeration hook
//!   ([`Matcher::all_match_tuples`](xmlmap_patterns::Matcher::all_match_tuples))
//!   as borrowed value tuples, filtered by source conditions translated to
//!   interned variable ids. On multi-std mappings over large documents the
//!   per-std enumerations fan out across threads (same size gate as
//!   `Std::satisfied`);
//! * **union-find unification** — labelled nulls are union-find elements
//!   and constants are interned into a dense table, so each unification is
//!   a near-O(1) merge, `ValueConflict` is detected the moment two distinct
//!   constant classes meet, and the deferred `≠` obligations are checked
//!   once against class representatives;
//! * **arena construction** — the partial document is a flat arena keyed by
//!   `(parent, slot)`, with slot cursors taken from the target DTD's
//!   productions; completion is one ordered sweep that appends missing
//!   mandatory children instead of re-scanning child lists;
//! * **plan compilation** — the fully-specified target pattern of each std
//!   is flattened into a per-mapping instruction sequence (create/reuse a
//!   slot child, unify attribute classes) so the per-firing walk does no
//!   pattern traversal, slot lookup, or variable hashing. All of it lives
//!   in a reusable [`ChaseCache`].
//!
//! The engine replays the reference's traversal order exactly (stds in
//! order, firings in the kernel's sorted order, pattern nodes in preorder),
//! so both engines fail on the same step with the same [`ChaseError`]
//! variant; successful outputs are isomorphic up to null renaming. One
//! deliberate difference: source values are treated as opaque constants
//! even when they are labelled nulls — chasing null-valued sources is
//! outside both engines' contract (the reference would conflate them with
//! its own fresh nulls).

use super::ChaseError;
use crate::cond::CompOp;
use crate::stds::Mapping;
use std::collections::HashMap;
use xmlmap_codec::{CodecError, Decoder, Encoder};
use xmlmap_dtd::Mult;
use xmlmap_patterns::{CompiledPattern, LabelTest, ListItem, Matcher, Pattern, Var};
use xmlmap_trees::{Name, NodeId, Tree, Value};

fn encode_chase_err(err: &ChaseError, e: &mut Encoder) {
    let (tag, msg): (u8, Option<&str>) = match err {
        ChaseError::SourceNotConforming => (0, None),
        ChaseError::OutsideFragment(m) => (1, Some(m)),
        ChaseError::ValueConflict(m) => (2, Some(m)),
        ChaseError::NotEmbeddable(m) => (3, Some(m)),
        ChaseError::MultiplicityConflict(m) => (4, Some(m)),
        ChaseError::InequalityViolated(m) => (5, Some(m)),
        ChaseError::EqualityUnsatisfiable(m) => (6, Some(m)),
    };
    e.u8(tag);
    if let Some(m) = msg {
        e.str(m);
    }
}

fn decode_chase_err(d: &mut Decoder<'_>) -> Result<ChaseError, CodecError> {
    Ok(match d.u8()? {
        0 => ChaseError::SourceNotConforming,
        1 => ChaseError::OutsideFragment(d.str()?),
        2 => ChaseError::ValueConflict(d.str()?),
        3 => ChaseError::NotEmbeddable(d.str()?),
        4 => ChaseError::MultiplicityConflict(d.str()?),
        5 => ChaseError::InequalityViolated(d.str()?),
        6 => ChaseError::EqualityUnsatisfiable(d.str()?),
        _ => return Err(CodecError::Malformed("ChaseError tag")),
    })
}

fn encode_opt_err(err: &Option<ChaseError>, e: &mut Encoder) {
    match err {
        None => e.u8(0),
        Some(err) => {
            e.u8(1);
            encode_chase_err(err, e);
        }
    }
}

fn decode_opt_err(d: &mut Decoder<'_>) -> Result<Option<ChaseError>, CodecError> {
    match d.u8()? {
        0 => Ok(None),
        1 => Ok(Some(decode_chase_err(d)?)),
        _ => Err(CodecError::Malformed("option tag")),
    }
}

/// Per-mapping compiled state for the chase: compiled std source patterns,
/// target-pattern instruction plans, α′₌ variable classes, and the target
/// DTD's slot tables.
///
/// Mirrors how `SatCache` (consistency) and `ShapeCache` (bounded search)
/// amortize per-schema analysis: build one cache per [`Mapping`] and thread
/// it through every [`canonical_solution_cached`] call — certain answers,
/// solution reduction, composition membership and the bounded
/// absolute-consistency oracle all chase many documents under one mapping.
///
/// The cache must be built from the same mapping later passed to
/// [`canonical_solution_cached`].
pub struct ChaseCache {
    /// Static fragment error (not nested-relational / not tree-shaped /
    /// not fully specified), reported before any firing is examined —
    /// in the same order the reference engine checks.
    pub(super) fragment_err: Option<ChaseError>,
    /// Slot tables and attribute lists per target label.
    pub(super) labels: Vec<LabelInfo>,
    /// Index of the target DTD's root label in `labels`.
    pub(super) root: u32,
    /// One compiled plan per std, in mapping order.
    pub(super) plans: Vec<StdPlan>,
}

/// Slot table for one target label: the nested-relational production as an
/// ordered list of `(child label, multiplicity)` cursors, plus the label's
/// attribute names.
pub(super) struct LabelInfo {
    pub(super) name: Name,
    pub(super) attrs: Vec<Name>,
    /// `(labels index of the child, multiplicity)`, in production order.
    pub(super) slots: Vec<(u32, Mult)>,
}

/// Compiled form of one std: source matcher inputs, α′₌ classes, and the
/// flattened target-instantiation program.
pub(super) struct StdPlan {
    pub(super) source: CompiledPattern,
    /// Canonical display text of the source pattern. [`CompiledPattern`]
    /// does not retain its source, and the serialized form rebuilds the
    /// matcher by reparsing this text (display round-trips through the
    /// pattern parser), so interned variable ids come out identical.
    pub(super) source_text: String,
    /// Source conditions over interned source-variable ids; `None` marks a
    /// comparison over a variable the pattern never binds — it never
    /// holds, so the std has no firings at all.
    pub(super) src_conds: Vec<Option<(CompOp, u32, u32)>>,
    /// For each target-pattern variable in first-occurrence order: its α′₌
    /// class and, if shared with the source pattern, the source id.
    pub(super) tvar_classes: Vec<(u32, Option<u32>)>,
    /// Number of α′₌ classes (over target-pattern and condition variables).
    pub(super) class_count: u32,
    /// `≠` obligations in class space, with their display form.
    pub(super) neqs: Vec<(u32, u32, String)>,
    /// Root-label error (wildcard root / root mismatch), raised when the
    /// std first fires — after the firing's α′₌ resolution, like the
    /// reference.
    pub(super) pre_fail: Option<ChaseError>,
    /// Instantiation program, in the reference's preorder traversal order.
    pub(super) ops: Vec<PlanOp>,
    /// Number of plan nodes (target-pattern nodes); node 0 is the root.
    pub(super) plan_nodes: u32,
}

/// One step of a firing's instantiation walk.
pub(super) enum PlanOp {
    /// Unify the α′₌ class values `classes[k]` into attribute slot `k` of
    /// the arena node bound to plan node `node`.
    Unify { node: u32, classes: Box<[u32]> },
    /// Bind plan node `node`: in slot `slot` under the arena node bound to
    /// plan node `parent`, create a fresh child (`repeatable`) or reuse
    /// the existing one (creating it if absent).
    Child {
        parent: u32,
        node: u32,
        label: u32,
        slot: u32,
        repeatable: bool,
    },
    /// A statically-known failure at this traversal position (attribute
    /// arity mismatch, missing slot, wildcard/descendant sub-pattern).
    Fail(ChaseError),
}

impl ChaseCache {
    /// Compiles the chase tables for `m`.
    pub fn new(m: &Mapping) -> ChaseCache {
        let poisoned = |e: ChaseError| ChaseCache {
            fragment_err: Some(e),
            labels: Vec::new(),
            root: 0,
            plans: Vec::new(),
        };
        let Some(nr) = m.target_dtd.nested_relational() else {
            return poisoned(ChaseError::OutsideFragment(
                "target DTD is not nested-relational".into(),
            ));
        };
        if !nr.is_tree_shaped() {
            return poisoned(ChaseError::OutsideFragment(
                "target DTD is not tree-shaped".into(),
            ));
        }
        for s in &m.stds {
            if !s.target.is_fully_specified() {
                return poisoned(ChaseError::OutsideFragment(format!(
                    "target pattern of `{s}` is not fully specified"
                )));
            }
        }

        // Label table with slot cursors from the productions.
        let mut labels: Vec<LabelInfo> = Vec::new();
        let mut index: HashMap<Name, u32> = HashMap::new();
        for l in m.target_dtd.alphabet() {
            index.entry(l.clone()).or_insert_with(|| {
                labels.push(LabelInfo {
                    name: l.clone(),
                    attrs: m.target_dtd.attrs(l).to_vec(),
                    slots: Vec::new(),
                });
                (labels.len() - 1) as u32
            });
        }
        for info in labels.iter_mut() {
            info.slots = nr
                .slots(&info.name.clone())
                .iter()
                .map(|(l, mult)| (index[l], *mult))
                .collect();
        }
        let root = index[m.target_dtd.root()];

        let plans = m
            .stds
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let source = CompiledPattern::new(&s.source);
                let src_conds = s
                    .source_cond
                    .iter()
                    .map(
                        |c| match (source.var_id(&c.left), source.var_id(&c.right)) {
                            (Some(l), Some(r)) => Some((c.op, l, r)),
                            _ => None,
                        },
                    )
                    .collect();

                // α′₌ classes over target-pattern and condition variables
                // (the partition matches the reference's `firing_values`).
                let tvars = s.target.variables();
                let mut var_ix: HashMap<&Var, usize> = HashMap::new();
                let mut all_vars: Vec<&Var> = Vec::new();
                for v in tvars
                    .iter()
                    .chain(s.target_cond.iter().flat_map(|c| [&c.left, &c.right]))
                {
                    var_ix.entry(v).or_insert_with(|| {
                        all_vars.push(v);
                        all_vars.len() - 1
                    });
                }
                let mut dsu: Vec<usize> = (0..all_vars.len()).collect();
                fn find(dsu: &mut [usize], mut i: usize) -> usize {
                    while dsu[i] != i {
                        dsu[i] = dsu[dsu[i]];
                        i = dsu[i];
                    }
                    i
                }
                for c in &s.target_cond {
                    if c.op == CompOp::Eq {
                        let (a, b) = (
                            find(&mut dsu, var_ix[&c.left]),
                            find(&mut dsu, var_ix[&c.right]),
                        );
                        if a != b {
                            dsu[a] = b;
                        }
                    }
                }
                let mut class_of_root: HashMap<usize, u32> = HashMap::new();
                let mut class_count = 0u32;
                let mut class_for = |dsu: &mut [usize], ix: usize| -> u32 {
                    let r = find(dsu, ix);
                    *class_of_root.entry(r).or_insert_with(|| {
                        class_count += 1;
                        class_count - 1
                    })
                };
                let tvar_classes: Vec<(u32, Option<u32>)> = tvars
                    .iter()
                    .map(|v| (class_for(&mut dsu, var_ix[v]), source.var_id(v)))
                    .collect();
                let neqs: Vec<(u32, u32, String)> = s
                    .target_cond
                    .iter()
                    .filter(|c| c.op == CompOp::Neq)
                    .map(|c| {
                        (
                            class_for(&mut dsu, var_ix[&c.left]),
                            class_for(&mut dsu, var_ix[&c.right]),
                            format!("std #{si}: {c}"),
                        )
                    })
                    .collect();
                let class_of_var: HashMap<&Var, u32> = tvars
                    .iter()
                    .map(|v| (v, class_for(&mut dsu, var_ix[v])))
                    .collect();

                let pre_fail = match &s.target.label {
                    LabelTest::Wildcard => {
                        Some(ChaseError::OutsideFragment("wildcard root".into()))
                    }
                    LabelTest::Label(l) if l != m.target_dtd.root() => {
                        Some(ChaseError::NotEmbeddable(format!(
                            "target pattern of std #{si} is rooted at {l}, \
                             the target DTD root is {}",
                            m.target_dtd.root()
                        )))
                    }
                    LabelTest::Label(_) => None,
                };

                let mut ops = Vec::new();
                let mut plan_nodes = 1u32;
                emit_ops(
                    &s.target,
                    0,
                    root,
                    &labels,
                    &class_of_var,
                    &mut plan_nodes,
                    &mut ops,
                );
                StdPlan {
                    source,
                    source_text: s.source.to_string(),
                    src_conds,
                    tvar_classes,
                    class_count,
                    neqs,
                    pre_fail,
                    ops,
                    plan_nodes,
                }
            })
            .collect();

        ChaseCache {
            fragment_err: None,
            labels,
            root,
            plans,
        }
    }

    /// Serializes the compiled chase tables for an on-disk artifact store.
    ///
    /// Instruction plans, slot tables, and α′₌ classes travel verbatim;
    /// each std's source matcher travels as its canonical pattern text
    /// (compiling a pattern is one cheap traversal — the expensive part of
    /// [`ChaseCache::new`] is the plan emission, which is what we skip).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        encode_opt_err(&self.fragment_err, &mut e);
        e.usize(self.labels.len());
        for info in &self.labels {
            e.str(info.name.as_str());
            e.usize(info.attrs.len());
            for a in &info.attrs {
                e.str(a.as_str());
            }
            e.usize(info.slots.len());
            for &(child, mult) in &info.slots {
                e.u32(child);
                e.u8(match mult {
                    Mult::One => 0,
                    Mult::Opt => 1,
                    Mult::Star => 2,
                    Mult::Plus => 3,
                });
            }
        }
        e.u32(self.root);
        e.usize(self.plans.len());
        for p in &self.plans {
            e.str(&p.source_text);
            e.usize(p.src_conds.len());
            for c in &p.src_conds {
                match c {
                    None => e.u8(0),
                    Some((op, l, r)) => {
                        e.u8(1);
                        e.u8(match op {
                            CompOp::Eq => 0,
                            CompOp::Neq => 1,
                        });
                        e.u32(*l);
                        e.u32(*r);
                    }
                }
            }
            e.usize(p.tvar_classes.len());
            for &(class, src) in &p.tvar_classes {
                e.u32(class);
                match src {
                    None => e.u8(0),
                    Some(sid) => {
                        e.u8(1);
                        e.u32(sid);
                    }
                }
            }
            e.u32(p.class_count);
            e.usize(p.neqs.len());
            for (l, r, what) in &p.neqs {
                e.u32(*l);
                e.u32(*r);
                e.str(what);
            }
            encode_opt_err(&p.pre_fail, &mut e);
            e.u32(p.plan_nodes);
            e.usize(p.ops.len());
            for op in &p.ops {
                match op {
                    PlanOp::Unify { node, classes } => {
                        e.u8(0);
                        e.u32(*node);
                        e.u32s(classes);
                    }
                    PlanOp::Child {
                        parent,
                        node,
                        label,
                        slot,
                        repeatable,
                    } => {
                        e.u8(1);
                        e.u32(*parent);
                        e.u32(*node);
                        e.u32(*label);
                        e.u32(*slot);
                        e.bool(*repeatable);
                    }
                    PlanOp::Fail(err) => {
                        e.u8(2);
                        encode_chase_err(err, &mut e);
                    }
                }
            }
        }
        e.finish()
    }

    /// Inverse of [`ChaseCache::to_bytes`]. Every index the chase loop
    /// later trusts (labels, slots, plan nodes, α′₌ classes, tuple
    /// positions) is re-validated here, so a corrupt payload that survives
    /// the envelope checksum degrades to a [`CodecError`], never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<ChaseCache, CodecError> {
        let mut d = Decoder::new(bytes);
        let fragment_err = decode_opt_err(&mut d)?;
        let n_labels = d.usize()?;
        if n_labels > d.remaining() {
            return Err(CodecError::Truncated);
        }
        let mut labels = Vec::with_capacity(n_labels);
        for _ in 0..n_labels {
            let name = Name::new(d.str()?);
            let n_attrs = d.usize()?;
            if n_attrs > d.remaining() {
                return Err(CodecError::Truncated);
            }
            let attrs = (0..n_attrs)
                .map(|_| Ok(Name::new(d.str()?)))
                .collect::<Result<Vec<_>, CodecError>>()?;
            let n_slots = d.usize()?;
            if n_slots > d.remaining() {
                return Err(CodecError::Truncated);
            }
            let slots = (0..n_slots)
                .map(|_| {
                    let child = d.u32()?;
                    if child as usize >= n_labels {
                        return Err(CodecError::Malformed("slot child out of range"));
                    }
                    let mult = match d.u8()? {
                        0 => Mult::One,
                        1 => Mult::Opt,
                        2 => Mult::Star,
                        3 => Mult::Plus,
                        _ => return Err(CodecError::Malformed("Mult tag")),
                    };
                    Ok((child, mult))
                })
                .collect::<Result<Vec<_>, CodecError>>()?;
            labels.push(LabelInfo { name, attrs, slots });
        }
        let root = d.u32()?;
        if root as usize >= n_labels && !(n_labels == 0 && root == 0) {
            return Err(CodecError::Malformed("root label out of range"));
        }
        let n_plans = d.usize()?;
        if n_plans > d.remaining() {
            return Err(CodecError::Truncated);
        }
        let mut plans = Vec::with_capacity(n_plans);
        for _ in 0..n_plans {
            plans.push(decode_plan(&mut d, &labels, root)?);
        }
        d.expect_end()?;
        Ok(ChaseCache {
            fragment_err,
            labels,
            root,
            plans,
        })
    }

    /// The static fragment error, if the mapping is outside the chase
    /// fragment (reported before any firing is examined).
    pub fn fragment_error(&self) -> Option<&ChaseError> {
        self.fragment_err.as_ref()
    }

    /// Number of std plans (one per std of the source mapping, in order).
    pub fn std_count(&self) -> usize {
        self.plans.len()
    }

    /// Canonical display text of std `i`'s source pattern. Reparsing it
    /// reproduces the compiled source pattern with identical interned
    /// variable ids, so externally-enumerated firing tuples (e.g. from a
    /// streaming pass) line up with this plan's condition and class
    /// indices.
    pub fn source_text(&self, i: usize) -> &str {
        &self.plans[i].source_text
    }

    /// Filters externally-enumerated match tuples of std `i` by the std's
    /// source conditions and canonicalises the result — sorted in
    /// alphabetical variable order, deduplicated — exactly the firing
    /// sequence [`canonical_solution_cached`] obtains from the arena
    /// kernel. Tuples are indexed by the source pattern's interned
    /// variable ids.
    pub(crate) fn canonical_firings(
        &self,
        i: usize,
        tuples: Vec<Box<[Value]>>,
    ) -> Vec<Box<[Value]>> {
        let p = &self.plans[i];
        if p.src_conds.iter().any(Option::is_none) {
            return Vec::new(); // a condition that can never hold
        }
        let mut tuples = tuples;
        tuples.retain(|t| {
            p.src_conds.iter().all(|c| {
                let (op, l, r) = c.expect("dead conditions handled above");
                let (a, b) = (&t[l as usize], &t[r as usize]);
                match op {
                    CompOp::Eq => a == b,
                    CompOp::Neq => a != b,
                }
            })
        });
        // The kernel's row order: value order under the alphabetical
        // variable permutation (see `Matcher::all_match_tuples`).
        let vars = p.source.vars();
        let mut perm: Vec<usize> = (0..vars.len()).collect();
        perm.sort_by(|&a, &b| vars[a].cmp(&vars[b]));
        tuples.sort_unstable_by(|a, b| {
            perm.iter()
                .map(|&i| a[i].cmp(&b[i]))
                .find(|c| *c != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        tuples.dedup();
        tuples
    }

    /// Approximate heap footprint in bytes: slot/attribute tables, compiled
    /// source patterns, and every plan's instruction sequence.
    pub fn approx_bytes(&self) -> u64 {
        let labels: u64 = self
            .labels
            .iter()
            .map(|info| {
                info.name.as_str().len() as u64
                    + info
                        .attrs
                        .iter()
                        .map(|a| a.as_str().len() as u64 + 24)
                        .sum::<u64>()
                    + info.slots.capacity() as u64 * 8
                    + 72
            })
            .sum();
        let plans: u64 = self
            .plans
            .iter()
            .map(|p| {
                p.source.approx_bytes()
                    + p.source_text.len() as u64
                    + p.src_conds.capacity() as u64 * 16
                    + p.tvar_classes.capacity() as u64 * 12
                    + p.neqs
                        .iter()
                        .map(|(_, _, w)| w.len() as u64 + 32)
                        .sum::<u64>()
                    + p.ops
                        .iter()
                        .map(|op| match op {
                            PlanOp::Unify { classes, .. } => 32 + classes.len() as u64 * 4,
                            PlanOp::Child { .. } => 32,
                            PlanOp::Fail(_) => 64,
                        })
                        .sum::<u64>()
                    + 128
            })
            .sum();
        labels + plans + 64
    }
}

/// Decodes one [`StdPlan`], tracking the target label bound to each plan
/// node so slot indices and attribute arities can be checked against the
/// decoded label tables.
fn decode_plan(
    d: &mut Decoder<'_>,
    labels: &[LabelInfo],
    root: u32,
) -> Result<StdPlan, CodecError> {
    let source_text = d.str()?;
    let pat = xmlmap_patterns::parse(&source_text)
        .map_err(|_| CodecError::Malformed("stored pattern text"))?;
    let source = CompiledPattern::new(&pat);
    let n_vars = source.var_count() as u32;
    let n_conds = d.usize()?;
    if n_conds > d.remaining() {
        return Err(CodecError::Truncated);
    }
    let src_conds = (0..n_conds)
        .map(|_| match d.u8()? {
            0 => Ok(None),
            1 => {
                let op = match d.u8()? {
                    0 => CompOp::Eq,
                    1 => CompOp::Neq,
                    _ => return Err(CodecError::Malformed("CompOp tag")),
                };
                let l = d.u32()?;
                let r = d.u32()?;
                if l >= n_vars || r >= n_vars {
                    return Err(CodecError::Malformed("condition variable out of range"));
                }
                Ok(Some((op, l, r)))
            }
            _ => Err(CodecError::Malformed("option tag")),
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let n_tvars = d.usize()?;
    if n_tvars > d.remaining() {
        return Err(CodecError::Truncated);
    }
    let mut tvar_classes = Vec::with_capacity(n_tvars);
    for _ in 0..n_tvars {
        let class = d.u32()?;
        let src = match d.u8()? {
            0 => None,
            1 => Some(d.u32()?),
            _ => return Err(CodecError::Malformed("option tag")),
        };
        tvar_classes.push((class, src));
    }
    let class_count = d.u32()?;
    if tvar_classes
        .iter()
        .any(|&(c, s)| c >= class_count || matches!(s, Some(sid) if sid >= n_vars))
    {
        return Err(CodecError::Malformed("α′₌ class out of range"));
    }
    let n_neqs = d.usize()?;
    if n_neqs > d.remaining() {
        return Err(CodecError::Truncated);
    }
    let neqs = (0..n_neqs)
        .map(|_| {
            let l = d.u32()?;
            let r = d.u32()?;
            if l >= class_count || r >= class_count {
                return Err(CodecError::Malformed("≠ class out of range"));
            }
            Ok((l, r, d.str()?))
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let pre_fail = decode_opt_err(d)?;
    let plan_nodes = d.u32()?;
    let n_ops = d.usize()?;
    if n_ops > d.remaining() {
        return Err(CodecError::Truncated);
    }
    // Which target label each plan node is bound to; node 0 is the root.
    let mut node_label: Vec<Option<u32>> = vec![None; plan_nodes as usize];
    if let Some(slot) = node_label.first_mut() {
        *slot = Some(root);
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let op = match d.u8()? {
            0 => {
                let node = d.u32()?;
                let classes = d.u32s()?.into_boxed_slice();
                let label = *node_label
                    .get(node as usize)
                    .and_then(|l| l.as_ref())
                    .ok_or(CodecError::Malformed("unify on unbound plan node"))?;
                if classes.len() != labels[label as usize].attrs.len()
                    || classes.iter().any(|&c| c >= class_count)
                {
                    return Err(CodecError::Malformed("unify classes"));
                }
                PlanOp::Unify { node, classes }
            }
            1 => {
                let parent = d.u32()?;
                let node = d.u32()?;
                let label = d.u32()?;
                let slot = d.u32()?;
                let repeatable = d.bool()?;
                let plabel = *node_label
                    .get(parent as usize)
                    .and_then(|l| l.as_ref())
                    .ok_or(CodecError::Malformed("child of unbound plan node"))?;
                let slots = &labels[plabel as usize].slots;
                if slot as usize >= slots.len() || slots[slot as usize].0 != label {
                    return Err(CodecError::Malformed("child slot mismatch"));
                }
                match node_label.get_mut(node as usize) {
                    Some(l) => *l = Some(label),
                    None => return Err(CodecError::Malformed("plan node out of range")),
                }
                PlanOp::Child {
                    parent,
                    node,
                    label,
                    slot,
                    repeatable,
                }
            }
            2 => PlanOp::Fail(decode_chase_err(d)?),
            _ => return Err(CodecError::Malformed("PlanOp tag")),
        };
        ops.push(op);
    }
    Ok(StdPlan {
        source,
        source_text,
        src_conds,
        tvar_classes,
        class_count,
        neqs,
        pre_fail,
        ops,
        plan_nodes,
    })
}

/// Flattens `pat` (rooted at plan node `node`, embedded at target label
/// `label`) into instantiation ops, in the reference engine's traversal
/// order. Returns `false` once a static failure op is emitted — everything
/// after it would be unreachable.
fn emit_ops(
    pat: &Pattern,
    node: u32,
    label: u32,
    labels: &[LabelInfo],
    class_of_var: &HashMap<&Var, u32>,
    plan_nodes: &mut u32,
    ops: &mut Vec<PlanOp>,
) -> bool {
    let info = &labels[label as usize];
    if !pat.vars.is_empty() {
        if pat.vars.len() != info.attrs.len() {
            ops.push(PlanOp::Fail(ChaseError::NotEmbeddable(format!(
                "pattern node {pat} has {} variables but element {} has {} attributes",
                pat.vars.len(),
                info.name,
                info.attrs.len()
            ))));
            return false;
        }
        ops.push(PlanOp::Unify {
            node,
            classes: pat.vars.iter().map(|v| class_of_var[v]).collect(),
        });
    }
    for item in &pat.list {
        let ListItem::Seq { members, .. } = item else {
            ops.push(PlanOp::Fail(ChaseError::OutsideFragment(
                "descendant items are not fully specified".into(),
            )));
            return false;
        };
        // Fully-specified patterns have single-member sequences.
        let child = &members[0];
        let LabelTest::Label(l) = &child.label else {
            ops.push(PlanOp::Fail(ChaseError::OutsideFragment(
                "wildcard label".into(),
            )));
            return false;
        };
        let Some((slot, &(clabel, mult))) = info
            .slots
            .iter()
            .enumerate()
            .find(|(_, (ci, _))| labels[*ci as usize].name == *l)
        else {
            ops.push(PlanOp::Fail(ChaseError::NotEmbeddable(format!(
                "{l} is not a child slot of {}",
                info.name
            ))));
            return false;
        };
        let cnode = *plan_nodes;
        *plan_nodes += 1;
        ops.push(PlanOp::Child {
            parent: node,
            node: cnode,
            label: clabel,
            slot: slot as u32,
            repeatable: mult.repeatable(),
        });
        if !emit_ops(child, cnode, clabel, labels, class_of_var, plan_nodes, ops) {
            return false;
        }
    }
    true
}

/// A chase-time value: an interned constant or a union-find null element.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Const(u32),
    Null(u32),
}

/// Interned constants plus a union-find over labelled nulls. Each null
/// class optionally carries the constant it has been unified with;
/// merging two classes bound to distinct constants is the value conflict.
#[derive(Default)]
struct Values<'s> {
    consts: Vec<&'s Value>,
    intern: HashMap<&'s Value, u32>,
    parent: Vec<u32>,
    rank: Vec<u8>,
    bound: Vec<Option<u32>>,
}

impl<'s> Values<'s> {
    fn intern(&mut self, v: &'s Value) -> u32 {
        match self.intern.get(v) {
            Some(&c) => c,
            None => {
                let c = self.consts.len() as u32;
                self.consts.push(v);
                self.intern.insert(v, c);
                c
            }
        }
    }

    fn fresh_null(&mut self) -> Val {
        let n = self.parent.len() as u32;
        self.parent.push(n);
        self.rank.push(0);
        self.bound.push(None);
        Val::Null(n)
    }

    fn find(&mut self, mut n: u32) -> u32 {
        while self.parent[n as usize] != n {
            let gp = self.parent[self.parent[n as usize] as usize];
            self.parent[n as usize] = gp;
            n = gp;
        }
        n
    }

    /// Unifies two values; `false` on constant/constant conflict.
    fn unify(&mut self, a: Val, b: Val) -> bool {
        match (a, b) {
            (Val::Const(x), Val::Const(y)) => x == y,
            (Val::Null(n), Val::Const(c)) | (Val::Const(c), Val::Null(n)) => {
                let r = self.find(n);
                match self.bound[r as usize] {
                    Some(c2) => c2 == c,
                    None => {
                        self.bound[r as usize] = Some(c);
                        true
                    }
                }
            }
            (Val::Null(x), Val::Null(y)) => {
                let (rx, ry) = (self.find(x), self.find(y));
                if rx == ry {
                    return true;
                }
                match (self.bound[rx as usize], self.bound[ry as usize]) {
                    (Some(a), Some(b)) if a != b => false,
                    (bx, by) => {
                        let joint = bx.or(by);
                        let (hi, lo) = if self.rank[rx as usize] >= self.rank[ry as usize] {
                            (rx, ry)
                        } else {
                            (ry, rx)
                        };
                        self.parent[lo as usize] = hi;
                        if self.rank[hi as usize] == self.rank[lo as usize] {
                            self.rank[hi as usize] += 1;
                        }
                        self.bound[hi as usize] = joint;
                        true
                    }
                }
            }
        }
    }

    /// Are the two values forced equal by the final substitution?
    fn same(&mut self, a: Val, b: Val) -> bool {
        let canon = |vals: &mut Self, v: Val| match v {
            Val::Const(c) => Val::Const(c),
            Val::Null(n) => {
                let r = vals.find(n);
                match vals.bound[r as usize] {
                    Some(c) => Val::Const(c),
                    None => Val::Null(r),
                }
            }
        };
        canon(self, a) == canon(self, b)
    }

    /// The output value: the bound constant, or a null labelled by the
    /// class representative (distinct classes ⇒ distinct labels).
    fn resolve(&mut self, v: Val) -> Value {
        match v {
            Val::Const(c) => self.consts[c as usize].clone(),
            Val::Null(n) => {
                let r = self.find(n);
                match self.bound[r as usize] {
                    Some(c) => self.consts[c as usize].clone(),
                    None => Value::Null(r as u64),
                }
            }
        }
    }
}

/// One node of the flat partial-document arena: children are bucketed per
/// production slot, so completion and ordering are a single slot-order
/// sweep rather than repeated child scans.
struct ANode {
    label: u32,
    attrs: Vec<Val>,
    kids: Vec<Vec<u32>>,
}

fn create_node(
    arena: &mut Vec<ANode>,
    labels: &[LabelInfo],
    vals: &mut Values<'_>,
    label: u32,
) -> u32 {
    let info = &labels[label as usize];
    arena.push(ANode {
        label,
        attrs: (0..info.attrs.len()).map(|_| vals.fresh_null()).collect(),
        kids: vec![Vec::new(); info.slots.len()],
    });
    (arena.len() - 1) as u32
}

/// Builds the canonical solution of `source` under `m`, or proves none
/// exists. Fragment: fully-specified stds, nested-relational tree-shaped
/// target DTD; source conditions only filter firings.
///
/// Convenience wrapper over [`canonical_solution_cached`] with a fresh
/// [`ChaseCache`] — callers chasing many documents under one mapping
/// should build the cache once.
pub fn canonical_solution(m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
    canonical_solution_cached(m, source, &ChaseCache::new(m))
}

/// [`canonical_solution`] against a caller-held [`ChaseCache`] built from
/// the same mapping `m`.
pub fn canonical_solution_cached(
    m: &Mapping,
    source: &Tree,
    cache: &ChaseCache,
) -> Result<Tree, ChaseError> {
    if !m.source_dtd.conforms(source) {
        return Err(ChaseError::SourceNotConforming);
    }
    if let Some(e) = &cache.fragment_err {
        return Err(e.clone());
    }
    debug_assert_eq!(
        cache.plans.len(),
        m.stds.len(),
        "cache built from another mapping"
    );

    // Step 1a: firing enumeration through the compiled kernel — read-only
    // and independent per std, so fan out across threads on non-trivial
    // inputs (same gate as `Std::satisfied` / the reference engine). The
    // instantiation loop below stays sequential: it mutates one shared
    // partial document, and firing order is what makes the construction
    // deterministic.
    let enumerate = |p: &StdPlan| -> Vec<Vec<&Value>> {
        if p.src_conds.iter().any(Option::is_none) {
            return Vec::new(); // a condition that can never hold
        }
        let matcher = Matcher::new(source, &p.source);
        let mut tuples = matcher.all_match_tuples();
        tuples.retain(|t| {
            p.src_conds.iter().all(|c| {
                let (op, l, r) = c.expect("dead conditions handled above");
                let (a, b) = (t[l as usize], t[r as usize]);
                match op {
                    CompOp::Eq => a == b,
                    CompOp::Neq => a != b,
                }
            })
        });
        tuples
    };
    let firings: Vec<Vec<Vec<&Value>>> =
        if m.stds.len() > 1 && source.size() >= crate::stds::PAR_NODE_THRESHOLD {
            xmlmap_par::par_map(&cache.plans, enumerate)
        } else {
            cache.plans.iter().map(enumerate).collect()
        };

    let tree = chase_firings(cache, &firings)?;
    debug_assert!(m.target_dtd.conforms(&tree), "chase output must conform");
    Ok(tree)
}

/// [`canonical_solution_cached`] for callers that enumerated the firings
/// themselves — e.g. the streaming chase, which never materialises the
/// source tree. `per_std[i]` holds std `i`'s raw match tuples (indexed by
/// the source pattern's interned variable ids, any order); they are
/// filtered and canonicalised by [`ChaseCache::canonical_firings`] before
/// instantiation, so the construction — null labels included — is
/// identical to the tree-side chase on the same document.
///
/// The caller is responsible for the checks that precede firing
/// enumeration: source conformance and [`ChaseCache::fragment_error`].
pub(crate) fn canonical_solution_from_firings(
    cache: &ChaseCache,
    per_std: Vec<Vec<Box<[Value]>>>,
) -> Result<Tree, ChaseError> {
    debug_assert_eq!(per_std.len(), cache.plans.len());
    let canonical: Vec<Vec<Box<[Value]>>> = per_std
        .into_iter()
        .enumerate()
        .map(|(i, tuples)| cache.canonical_firings(i, tuples))
        .collect();
    let views: Vec<Vec<Vec<&Value>>> = canonical
        .iter()
        .map(|std| std.iter().map(|t| t.iter().collect()).collect())
        .collect();
    chase_firings(cache, &views)
}

/// The chase construction proper: instantiates every firing of every std
/// into the union-find/slot-cursor arena, completes mandatory slots, and
/// materialises the canonical solution. `firings[i]` must be std `i`'s
/// canonical firing sequence (the kernel's sorted, deduplicated,
/// condition-filtered order) — the construction replays it verbatim, so
/// identical sequences yield byte-identical trees.
fn chase_firings(cache: &ChaseCache, firings: &[Vec<Vec<&Value>>]) -> Result<Tree, ChaseError> {
    // Root node with fresh-null attributes.
    let mut vals = Values::default();
    let mut arena: Vec<ANode> = Vec::new();
    create_node(&mut arena, &cache.labels, &mut vals, cache.root);

    // Step 1b: instantiate every firing of every std.
    let mut obligations: Vec<(Val, Val, &String)> = Vec::new();
    let mut class_vals: Vec<Option<Val>> = Vec::new();
    let mut node_map: Vec<u32> = Vec::new();
    for (si, (plan, std_firings)) in cache.plans.iter().zip(firings).enumerate() {
        for tuple in std_firings {
            // α′₌ class values (the reference's `firing_values`): shared
            // variables pin their class to the firing's constant —
            // detecting unsatisfiable equalities — then the remaining
            // classes get fresh nulls.
            class_vals.clear();
            class_vals.resize(plan.class_count as usize, None);
            for &(class, src) in &plan.tvar_classes {
                if let Some(sid) = src {
                    let v = tuple[sid as usize];
                    match class_vals[class as usize] {
                        Some(Val::Const(c)) if vals.consts[c as usize] != v => {
                            return Err(ChaseError::EqualityUnsatisfiable(format!(
                                "std #{si}: α′₌ equates {} and {}",
                                vals.consts[c as usize], v
                            )));
                        }
                        Some(_) => {}
                        None => {
                            let c = vals.intern(v);
                            class_vals[class as usize] = Some(Val::Const(c));
                        }
                    }
                }
            }
            for &(class, _) in &plan.tvar_classes {
                if class_vals[class as usize].is_none() {
                    class_vals[class as usize] = Some(vals.fresh_null());
                }
            }
            for (l, r, what) in &plan.neqs {
                for c in [*l, *r] {
                    if class_vals[c as usize].is_none() {
                        class_vals[c as usize] = Some(vals.fresh_null());
                    }
                }
                obligations.push((
                    class_vals[*l as usize].expect("filled above"),
                    class_vals[*r as usize].expect("filled above"),
                    what,
                ));
            }
            if let Some(e) = &plan.pre_fail {
                return Err(e.clone());
            }
            // Run the instantiation program (the reference's
            // `instantiate`, minus all per-firing pattern traversal).
            node_map.clear();
            node_map.resize(plan.plan_nodes as usize, 0);
            for op in &plan.ops {
                match op {
                    PlanOp::Fail(e) => return Err(e.clone()),
                    PlanOp::Child {
                        parent,
                        node,
                        label,
                        slot,
                        repeatable,
                    } => {
                        let p = node_map[*parent as usize] as usize;
                        let slot = *slot as usize;
                        let id = match arena[p].kids[slot].first() {
                            Some(&id) if !repeatable => id,
                            _ => {
                                let id = create_node(&mut arena, &cache.labels, &mut vals, *label);
                                arena[p].kids[slot].push(id);
                                id
                            }
                        };
                        node_map[*node as usize] = id;
                    }
                    PlanOp::Unify { node, classes } => {
                        let a = node_map[*node as usize] as usize;
                        for (k, &cls) in classes.iter().enumerate() {
                            let nv = class_vals[cls as usize].expect("all classes filled");
                            let old = arena[a].attrs[k];
                            if !vals.unify(old, nv) {
                                let info = &cache.labels[arena[a].label as usize];
                                return Err(ChaseError::ValueConflict(format!(
                                    "attribute {} of {}: {} vs {}",
                                    info.attrs[k],
                                    info.name,
                                    vals.resolve(old),
                                    vals.resolve(nv)
                                )));
                            }
                        }
                    }
                }
            }
        }
    }

    // Step 2: completion — one ordered sweep. Newly created mandatory
    // children are appended to the arena and completed when the cursor
    // reaches them; children are already bucketed per slot, so ordering is
    // implicit. (The reference's multiplicity/stray-child failures cannot
    // arise here: children only ever enter through a production slot, and
    // non-repeatable slots reuse their unique child.)
    let mut i = 0;
    while i < arena.len() {
        let info = &cache.labels[arena[i].label as usize];
        for slot in 0..info.slots.len() {
            let (clabel, mult) = info.slots[slot];
            if arena[i].kids[slot].is_empty() && matches!(mult, Mult::One | Mult::Plus) {
                let id = create_node(&mut arena, &cache.labels, &mut vals, clabel);
                arena[i].kids[slot].push(id);
            }
        }
        i += 1;
    }

    // Step 3: deferred ≠ obligations against class representatives.
    for (a, b, what) in &obligations {
        if vals.same(*a, *b) {
            return Err(ChaseError::InequalityViolated((*what).clone()));
        }
    }

    // Materialize the arena as a document, resolving attribute slots.
    fn attrs_of(
        arena: &[ANode],
        labels: &[LabelInfo],
        vals: &mut Values<'_>,
        node: usize,
    ) -> Vec<(Name, Value)> {
        let info = &labels[arena[node].label as usize];
        info.attrs
            .iter()
            .cloned()
            .zip(arena[node].attrs.iter().map(|&v| vals.resolve(v)))
            .collect()
    }
    fn materialize(
        arena: &[ANode],
        labels: &[LabelInfo],
        vals: &mut Values<'_>,
        node: usize,
        out: &mut Tree,
        at: NodeId,
    ) {
        for slot_kids in &arena[node].kids {
            for &kid in slot_kids {
                let kid = kid as usize;
                let attrs = attrs_of(arena, labels, vals, kid);
                let id = out.add_child(at, labels[arena[kid].label as usize].name.clone(), attrs);
                materialize(arena, labels, vals, kid, out, id);
            }
        }
    }
    let mut tree = Tree::new(cache.labels[cache.root as usize].name.clone());
    let root_attrs = attrs_of(&arena, &cache.labels, &mut vals, 0);
    tree.set_attrs(Tree::ROOT, root_attrs);
    materialize(&arena, &cache.labels, &mut vals, 0, &mut tree, Tree::ROOT);
    Ok(tree)
}
