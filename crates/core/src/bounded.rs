//! Bounded brute-force procedures.
//!
//! Several problems the paper proves undecidable (Thm 5.4, Thm 7.3(2)) or
//! of very high complexity (Thm 6.2) still need *executable* form here: as
//! semi-decision procedures with explicit bounds, and as reference oracles
//! that the fast fragment algorithms are property-tested against.
//!
//! The enumerators are exhaustive up to their bounds:
//!
//! * [`tree_shapes`] — every label shape conforming to a DTD with at most
//!   `max_nodes` nodes (attribute slots carry placeholder nulls);
//! * [`for_each_valued_tree`] — every assignment of values from a pool to a
//!   shape's attribute slots (a pool with as many values as slots covers all
//!   equality types, which is all that matters: patterns compare values
//!   only by `=`/`≠`);
//! * [`solution_exists`] — does a fixed source tree have *some* solution of
//!   bounded size? Complete for the bound because target values can be
//!   restricted to the source's active domain plus fresh values, one per
//!   target attribute slot.

use crate::stds::Mapping;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use xmlmap_codec::{CodecError, Decoder, Encoder};
use xmlmap_dtd::Dtd;
use xmlmap_regex::Nfa;
use xmlmap_trees::{Name, NodeId, Tree, Value};

/// Preorder tree serialization over the public [`Tree`] API (node label,
/// attribute list, child count, children).
pub(crate) fn encode_tree(t: &Tree, e: &mut Encoder) {
    fn node(t: &Tree, n: NodeId, e: &mut Encoder) {
        e.str(t.label(n).as_str());
        let attrs = t.attrs(n);
        e.usize(attrs.len());
        for (a, v) in attrs {
            e.str(a.as_str());
            match v {
                Value::Str(s) => {
                    e.u8(0);
                    e.str(s);
                }
                Value::Int(i) => {
                    e.u8(1);
                    e.u64(*i as u64);
                }
                Value::Null(k) => {
                    e.u8(2);
                    e.u64(*k);
                }
            }
        }
        let kids = t.children(n);
        e.usize(kids.len());
        for &k in kids {
            node(t, k, e);
        }
    }
    node(t, Tree::ROOT, e);
}

pub(crate) fn decode_tree(d: &mut Decoder<'_>) -> Result<Tree, CodecError> {
    fn attrs(d: &mut Decoder<'_>) -> Result<Vec<(Name, Value)>, CodecError> {
        let n = d.usize()?;
        if n > d.remaining() {
            return Err(CodecError::Truncated);
        }
        (0..n)
            .map(|_| {
                let name = Name::new(d.str()?);
                let v = match d.u8()? {
                    0 => Value::Str(d.str()?.into()),
                    1 => Value::Int(d.u64()? as i64),
                    2 => Value::Null(d.u64()?),
                    _ => return Err(CodecError::Malformed("Value tag")),
                };
                Ok((name, v))
            })
            .collect()
    }
    fn children(t: &mut Tree, at: NodeId, d: &mut Decoder<'_>) -> Result<(), CodecError> {
        let n = d.usize()?;
        if n > d.remaining() {
            return Err(CodecError::Truncated);
        }
        for _ in 0..n {
            let label = Name::new(d.str()?);
            let id = t.add_child(at, label, attrs(d)?);
            children(t, id, d)?;
        }
        Ok(())
    }
    let root_label = Name::new(d.str()?);
    let root_attrs = attrs(d)?;
    let mut t = Tree::with_root_attrs(root_label, root_attrs);
    children(&mut t, Tree::ROOT, d)?;
    Ok(t)
}

/// All words accepted by `nfa` with length ≤ `max_len`.
fn accepted_words(nfa: &Nfa<Name>, max_len: usize) -> Vec<Vec<Name>> {
    let mut out = Vec::new();
    // BFS over (state-set, word).
    let mut queue: VecDeque<(Vec<usize>, Vec<Name>)> = VecDeque::new();
    queue.push_back((vec![0], Vec::new()));
    let alphabet: Vec<Name> = {
        let mut v: Vec<Name> = nfa.alphabet().into_iter().collect();
        v.sort();
        v
    };
    while let Some((states, word)) = queue.pop_front() {
        if states.iter().any(|&q| nfa.accepting[q]) {
            out.push(word.clone());
        }
        if word.len() == max_len {
            continue;
        }
        for sym in &alphabet {
            let mut next: Vec<usize> = states
                .iter()
                .flat_map(|&q| {
                    nfa.transitions[q]
                        .iter()
                        .filter(|(a, _)| a == sym)
                        .map(|(_, q2)| *q2)
                })
                .collect();
            next.sort_unstable();
            next.dedup();
            if !next.is_empty() {
                let mut w2 = word.clone();
                w2.push(sym.clone());
                queue.push_back((next, w2));
            }
        }
    }
    out
}

/// All shapes of trees rooted at `label` with at most `budget` nodes.
fn shapes_for(dtd: &Dtd, label: &Name, budget: usize, nulls: &mut u64) -> Vec<Tree> {
    if budget == 0 {
        return Vec::new();
    }
    let make_root = |nulls: &mut u64| {
        let attrs: Vec<(Name, Value)> = dtd
            .attrs(label)
            .iter()
            .map(|a| {
                let v = Value::null(*nulls);
                *nulls += 1;
                (a.clone(), v)
            })
            .collect();
        Tree::with_root_attrs(label.clone(), attrs)
    };
    let epsilon = Nfa::epsilon();
    let nfa = dtd.horizontal(label).unwrap_or(&epsilon);
    let mut out = Vec::new();
    for word in accepted_words(nfa, budget - 1) {
        // Distribute the remaining node budget over the children.
        fn assign(
            dtd: &Dtd,
            word: &[Name],
            k: usize,
            budget_left: usize,
            acc: &mut Vec<Tree>,
            out: &mut Vec<Vec<Tree>>,
            nulls: &mut u64,
        ) {
            if k == word.len() {
                out.push(acc.clone());
                return;
            }
            // Reserve one node for each remaining child.
            let reserve = word.len() - k - 1;
            for sub in shapes_for(dtd, &word[k], budget_left.saturating_sub(reserve), nulls) {
                let used = sub.size();
                acc.push(sub);
                assign(dtd, word, k + 1, budget_left - used, acc, out, nulls);
                acc.pop();
            }
        }
        let mut children_sets = Vec::new();
        assign(
            dtd,
            &word,
            0,
            budget - 1,
            &mut Vec::new(),
            &mut children_sets,
            nulls,
        );
        for children in children_sets {
            let mut t = make_root(nulls);
            for c in &children {
                t.graft(Tree::ROOT, c);
            }
            out.push(t);
        }
    }
    out
}

/// Every label shape conforming to `dtd` with at most `max_nodes` nodes.
/// Attribute slots hold pairwise-distinct placeholder nulls.
pub fn tree_shapes(dtd: &Dtd, max_nodes: usize) -> Vec<Tree> {
    let mut nulls = 0;
    shapes_for(dtd, dtd.root(), max_nodes, &mut nulls)
        .into_iter()
        .filter(|t| dtd.conforms(t))
        .collect()
}

/// Calls `f` with every assignment of values from `pool` to the attribute
/// slots of `shape` (slots are visited in document order). `f` returns
/// `false` to stop; returns `true` iff stopped early.
pub fn for_each_valued_tree(
    shape: &Tree,
    pool: &[Value],
    f: &mut dyn FnMut(&Tree) -> bool,
) -> bool {
    let slots: Vec<(NodeId, Name)> = shape
        .nodes()
        .flat_map(|n| {
            shape
                .attrs(n)
                .iter()
                .map(move |(a, _)| (n, a.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    fn go(
        tree: &mut Tree,
        slots: &[(NodeId, Name)],
        k: usize,
        pool: &[Value],
        f: &mut dyn FnMut(&Tree) -> bool,
    ) -> bool {
        if k == slots.len() {
            return !f(tree);
        }
        for v in pool {
            tree.set_attr(slots[k].0, slots[k].1.as_str(), v.clone());
            if go(tree, slots, k + 1, pool, f) {
                return true;
            }
        }
        false
    }
    let mut tree = shape.clone();
    go(&mut tree, &slots, 0, pool, f)
}

/// The number of attribute slots in a tree.
pub fn attr_slot_count(tree: &Tree) -> usize {
    tree.nodes().map(|n| tree.attrs(n).len()).sum()
}

/// A generic value pool `v1..vk` for exhaustive small-model search: since
/// patterns see values only through equality, `k` distinct values cover all
/// equality types of `k` slots.
pub fn generic_pool(k: usize) -> Vec<Value> {
    (0..k).map(|i| Value::str(format!("v{i}"))).collect()
}

/// Memoizes [`tree_shapes`] per node bound for one DTD. Shape enumeration
/// is exponential in the bound; the bounded procedures below call it for
/// every candidate source, so one cache per search pays it once per bound.
pub struct ShapeCache {
    dtd: Dtd,
    by_bound: Mutex<HashMap<usize, Arc<Vec<Tree>>>>,
}

impl ShapeCache {
    /// A fresh, empty cache for `dtd`.
    pub fn new(dtd: &Dtd) -> ShapeCache {
        ShapeCache {
            dtd: dtd.clone(),
            by_bound: Mutex::new(HashMap::new()),
        }
    }

    /// The DTD this cache enumerates shapes of.
    pub fn dtd(&self) -> &Dtd {
        &self.dtd
    }

    /// [`tree_shapes`]`(dtd, max_nodes)`, memoized.
    pub fn shapes(&self, max_nodes: usize) -> Arc<Vec<Tree>> {
        let mut map = self.by_bound.lock().unwrap();
        map.entry(max_nodes)
            .or_insert_with(|| Arc::new(tree_shapes(&self.dtd, max_nodes)))
            .clone()
    }

    /// Serializes the cache *including* its memoized shape lists — unlike
    /// the other artifact families, the expensive content of a `ShapeCache`
    /// accumulates at query time (shape enumeration is exponential in the
    /// bound), so persisting it is only worthwhile after use. The engine
    /// context therefore writes shape artifacts at flush time, not at
    /// compile time.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.str(&self.dtd.to_string());
        let map = self.by_bound.lock().unwrap();
        let mut bounds: Vec<usize> = map.keys().copied().collect();
        bounds.sort_unstable();
        e.usize(bounds.len());
        for b in bounds {
            e.usize(b);
            let shapes = &map[&b];
            e.usize(shapes.len());
            for t in shapes.iter() {
                encode_tree(t, &mut e);
            }
        }
        e.finish()
    }

    /// Inverse of [`ShapeCache::to_bytes`]: reparses the schema text and
    /// restores every memoized bound.
    pub fn from_bytes(bytes: &[u8]) -> Result<ShapeCache, CodecError> {
        let mut d = Decoder::new(bytes);
        let text = d.str()?;
        let dtd = xmlmap_dtd::parse(&text).map_err(|_| CodecError::Malformed("stored DTD text"))?;
        let n_bounds = d.usize()?;
        if n_bounds > d.remaining() {
            return Err(CodecError::Truncated);
        }
        let mut map = HashMap::new();
        for _ in 0..n_bounds {
            let bound = d.usize()?;
            let n_shapes = d.usize()?;
            if n_shapes > d.remaining() {
                return Err(CodecError::Truncated);
            }
            let shapes = (0..n_shapes)
                .map(|_| decode_tree(&mut d))
                .collect::<Result<Vec<_>, CodecError>>()?;
            map.insert(bound, Arc::new(shapes));
        }
        d.expect_end()?;
        Ok(ShapeCache {
            dtd,
            by_bound: Mutex::new(map),
        })
    }

    /// Approximate heap footprint in bytes: the schema plus every memoized
    /// shape list.
    pub fn approx_bytes(&self) -> u64 {
        let map = self.by_bound.lock().unwrap();
        self.dtd.to_string().len() as u64
            + map
                .values()
                .map(|shapes| shapes.iter().map(Tree::approx_bytes).sum::<u64>() + 64)
                .sum::<u64>()
    }

    /// Are any shape lists memoized yet? Empty caches are not worth
    /// persisting.
    pub fn has_content(&self) -> bool {
        !self.by_bound.lock().unwrap().is_empty()
    }
}

/// Does `source` have a solution under `m` with at most `max_target_nodes`
/// nodes? Values are drawn from the source's active domain plus enough
/// fresh values (one per target slot), which is exhaustive for that size.
///
/// Convenience wrapper over [`solution_exists_cached`] with a fresh cache.
pub fn solution_exists(m: &Mapping, source: &Tree, max_target_nodes: usize) -> Option<Tree> {
    solution_exists_cached(m, source, max_target_nodes, &ShapeCache::new(&m.target_dtd))
}

/// [`solution_exists`] against a caller-held target-shape cache
/// (`shapes` compiled from `m.target_dtd`).
pub fn solution_exists_cached(
    m: &Mapping,
    source: &Tree,
    max_target_nodes: usize,
    shapes: &ShapeCache,
) -> Option<Tree> {
    if !m.source_dtd.conforms(source) {
        return None;
    }
    let mut pool: Vec<Value> = source.data_values().cloned().collect();
    pool.sort();
    pool.dedup();
    for shape in shapes.shapes(max_target_nodes).iter() {
        let slots = attr_slot_count(shape);
        let mut full_pool = pool.clone();
        full_pool.extend((0..slots as u64).map(|i| Value::Null(1_000_000 + i)));
        let mut found: Option<Tree> = None;
        for_each_valued_tree(shape, &full_pool, &mut |t| {
            if m.is_solution(source, t) {
                found = Some(t.clone());
                false
            } else {
                true
            }
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// What the chase proves about `solution_exists(m, t, max_target_nodes)`.
///
/// The canonical solution is decisive in both directions when it applies:
/// a successful chase *is* a solution (so one within the node bound proves
/// existence), and a chase failure other than a fragment violation proves
/// no solution of **any** size exists. Only "canonical solution too large"
/// and "outside the chaseable fragment" fall back to the exhaustive search.
enum ChaseVerdict {
    /// A solution with ≤ the bound's nodes certainly exists.
    Exists,
    /// No solution of any size exists.
    None,
    /// The chase cannot decide; run the bounded search.
    Unknown,
}

fn chase_verdict(
    m: &Mapping,
    source: &Tree,
    max_target_nodes: usize,
    chase: &crate::chase::ChaseCache,
) -> ChaseVerdict {
    match crate::chase::canonical_solution_cached(m, source, chase) {
        Ok(sol) if sol.size() <= max_target_nodes => ChaseVerdict::Exists,
        Ok(_) => ChaseVerdict::Unknown,
        Err(crate::chase::ChaseError::OutsideFragment(_)) => ChaseVerdict::Unknown,
        Err(_) => ChaseVerdict::None,
    }
}

/// Outcome of a bounded search over source documents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundedOutcome {
    /// A witness was found (consistency: a source with a solution;
    /// absolute consistency violation: a source *without* one).
    Witness(Tree),
    /// No witness up to the bounds; the property may still fail beyond them.
    ExhaustedBounds,
}

/// Bounded consistency: searches for `T ⊨ D_s` (≤ `max_source_nodes`) with a
/// solution of ≤ `max_target_nodes` nodes. Sound for "consistent"; the
/// `ExhaustedBounds` outcome is inconclusive (the problem is undecidable in
/// general, Thm 5.4).
pub fn consistent_bounded(
    m: &Mapping,
    max_source_nodes: usize,
    max_target_nodes: usize,
) -> BoundedOutcome {
    let target_shapes = ShapeCache::new(&m.target_dtd);
    let chase = crate::chase::ChaseCache::new(m);
    for shape in tree_shapes(&m.source_dtd, max_source_nodes) {
        let pool = generic_pool(attr_slot_count(&shape).max(1));
        let mut witness = None;
        for_each_valued_tree(&shape, &pool, &mut |t| {
            let exists = match chase_verdict(m, t, max_target_nodes, &chase) {
                ChaseVerdict::Exists => true,
                ChaseVerdict::None => false,
                ChaseVerdict::Unknown => {
                    solution_exists_cached(m, t, max_target_nodes, &target_shapes).is_some()
                }
            };
            if exists {
                witness = Some(t.clone());
                false
            } else {
                true
            }
        });
        if let Some(w) = witness {
            return BoundedOutcome::Witness(w);
        }
    }
    BoundedOutcome::ExhaustedBounds
}

/// Bounded absolute-consistency refutation: searches for a source document
/// (≤ `max_source_nodes`) with **no** solution of ≤ `max_target_nodes`
/// nodes. Sound for "not absolutely consistent" provided `max_target_nodes`
/// is large enough for genuine solutions; used as the reference oracle for
/// the PTIME fragment (Thm 6.3).
pub fn abscons_violation_bounded(
    m: &Mapping,
    max_source_nodes: usize,
    max_target_nodes: usize,
) -> BoundedOutcome {
    let target_shapes = ShapeCache::new(&m.target_dtd);
    let chase = crate::chase::ChaseCache::new(m);
    for shape in tree_shapes(&m.source_dtd, max_source_nodes) {
        let pool = generic_pool(attr_slot_count(&shape).max(1));
        let mut violation = None;
        for_each_valued_tree(&shape, &pool, &mut |t| {
            let exists = match chase_verdict(m, t, max_target_nodes, &chase) {
                ChaseVerdict::Exists => true,
                ChaseVerdict::None => false,
                ChaseVerdict::Unknown => {
                    solution_exists_cached(m, t, max_target_nodes, &target_shapes).is_some()
                }
            };
            if !exists {
                violation = Some(t.clone());
                false
            } else {
                true
            }
        });
        if let Some(w) = violation {
            return BoundedOutcome::Witness(w);
        }
    }
    BoundedOutcome::ExhaustedBounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stds::Std;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    #[test]
    fn shape_enumeration_counts() {
        let d = dtd("root r\nr -> a*");
        let shapes = tree_shapes(&d, 4);
        // r, r[a], r[a,a], r[a,a,a]
        assert_eq!(shapes.len(), 4);
        for t in &shapes {
            assert!(d.conforms(t));
        }

        let d2 = dtd("root r\nr -> a?, b?");
        let sizes: Vec<usize> = tree_shapes(&d2, 3).iter().map(Tree::size).collect();
        assert_eq!(sizes.len(), 4); // ε, a, b, ab
    }

    #[test]
    fn nested_shapes() {
        let d = dtd("root r\nr -> a+\na -> b?");
        let shapes = tree_shapes(&d, 5);
        // a-counts with optional b's under each, total ≤ 5 nodes:
        // r[a] r[a[b]] r[a,a] r[a[b],a] r[a,a[b]] r[a[b],a[b]] r[a,a,a]
        // r[a[b],a,a] r[a,a[b],a] r[a,a,a[b]] r[a,a,a,a]
        assert_eq!(shapes.len(), 11);
        for t in &shapes {
            assert!(d.conforms(t), "{t:?}");
        }
    }

    #[test]
    fn valued_tree_enumeration() {
        let d = dtd("root r\nr -> a, a\na @ v");
        let shapes = tree_shapes(&d, 3);
        assert_eq!(shapes.len(), 1);
        let mut count = 0;
        for_each_valued_tree(&shapes[0], &generic_pool(2), &mut |_| {
            count += 1;
            true
        });
        assert_eq!(count, 4); // 2 slots × 2 values
    }

    #[test]
    fn solution_search_positive() {
        let m = Mapping::new(
            dtd("root r\nr -> a*\na @ v"),
            dtd("root r\nr -> b*\nb @ w"),
            vec![Std::parse("r/a(x) --> r/b(x)").unwrap()],
        );
        let src = {
            let mut t = Tree::new("r");
            t.add_child(Tree::ROOT, "a", [("v", Value::str("1"))]);
            t.add_child(Tree::ROOT, "a", [("v", Value::str("2"))]);
            t
        };
        let sol = solution_exists(&m, &src, 4).expect("solution exists");
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn solution_search_negative() {
        // Target allows only ONE b: two distinct source values unsolvable.
        let m = Mapping::new(
            dtd("root r\nr -> a*\na @ v"),
            dtd("root r\nr -> b\nb @ w"),
            vec![Std::parse("r/a(x) --> r/b(x)").unwrap()],
        );
        let src = {
            let mut t = Tree::new("r");
            t.add_child(Tree::ROOT, "a", [("v", Value::str("1"))]);
            t.add_child(Tree::ROOT, "a", [("v", Value::str("2"))]);
            t
        };
        assert!(solution_exists(&m, &src, 6).is_none());
        // One source value (or none) is fine.
        let src1 = {
            let mut t = Tree::new("r");
            t.add_child(Tree::ROOT, "a", [("v", Value::str("1"))]);
            t
        };
        assert!(solution_exists(&m, &src1, 6).is_some());
    }

    #[test]
    fn bounded_consistency_and_abscons() {
        // The paper's §6 example: source r → a*, target r → a, std
        // r/a(x) → r/a(x). Consistent (empty source works) but NOT
        // absolutely consistent (two distinct values).
        let m = Mapping::new(
            dtd("root r\nr -> a*\na @ v"),
            dtd("root r\nr -> a\na @ v"),
            vec![Std::parse("r/a(x) --> r/a(x)").unwrap()],
        );
        assert!(matches!(
            consistent_bounded(&m, 3, 3),
            BoundedOutcome::Witness(_)
        ));
        let BoundedOutcome::Witness(violation) = abscons_violation_bounded(&m, 3, 4) else {
            panic!("expected an absolute-consistency violation");
        };
        // The violating source has two a-children with distinct values.
        assert_eq!(violation.children(Tree::ROOT).len(), 2);
        assert!(solution_exists(&m, &violation, 4).is_none());
    }

    #[test]
    fn vacuous_mapping_is_absolutely_consistent_up_to_bounds() {
        let m = Mapping::new(
            dtd("root r\nr -> a*\na @ v"),
            dtd("root r\nr -> b*\nb @ w"),
            vec![Std::parse("r/a(x) --> r/b(x)").unwrap()],
        );
        assert_eq!(
            abscons_violation_bounded(&m, 3, 4),
            BoundedOutcome::ExhaustedBounds
        );
    }
}
