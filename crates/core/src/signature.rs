//! Signatures σ and the `SM(σ)` classification (paper §3).
//!
//! An std may use four navigation axes — child `↓` (always present),
//! descendant `↓*`, next-sibling `→`, following-sibling `→*` — plus the
//! comparisons `=` and `≠`. The paper writes `⇓ = {↓, ↓*}`, `⇒ = {→, →*}`,
//! `∼ = {=, ≠}` and studies classes like `SM(⇓)`, `SM(⇓,⇒)`, `SM(⇓,∼)`,
//! `SM(⇓,⇒,∼)`.

use std::fmt;

/// The feature set used by a mapping's stds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Signature {
    /// Descendant axis `↓*` (`//` in patterns).
    pub descendant: bool,
    /// Next-sibling axis `→`.
    pub next_sibling: bool,
    /// Following-sibling axis `→*`.
    pub following_sibling: bool,
    /// Equality: explicit `α₌` conditions or variable reuse.
    pub eq: bool,
    /// Inequality: explicit `α≠` conditions.
    pub neq: bool,
    /// Wildcard label tests (`_`) — tracked because wildcard breaks
    /// composition closure (Prop 8.1) even though it is not part of σ.
    pub wildcard: bool,
}

impl Signature {
    /// The minimal signature: child axis only (`SM(↓)` ⊆ `SM(⇓)`).
    pub const CHILD_ONLY: Signature = Signature {
        descendant: false,
        next_sibling: false,
        following_sibling: false,
        eq: false,
        neq: false,
        wildcard: false,
    };

    /// Vertical navigation only (`⇓`)?
    pub fn is_downward(&self) -> bool {
        !self.next_sibling && !self.following_sibling
    }

    /// Any horizontal navigation (`⇒` or a part of it)?
    pub fn has_horizontal(&self) -> bool {
        self.next_sibling || self.following_sibling
    }

    /// Any data comparison (`∼` or a part of it)?
    pub fn has_data_comparison(&self) -> bool {
        self.eq || self.neq
    }

    /// Union of two signatures.
    pub fn union(self, other: Signature) -> Signature {
        Signature {
            descendant: self.descendant || other.descendant,
            next_sibling: self.next_sibling || other.next_sibling,
            following_sibling: self.following_sibling || other.following_sibling,
            eq: self.eq || other.eq,
            neq: self.neq || other.neq,
            wildcard: self.wildcard || other.wildcard,
        }
    }

    /// Is `self` contained in `other` feature-wise?
    pub fn subset_of(&self, other: &Signature) -> bool {
        (!self.descendant || other.descendant)
            && (!self.next_sibling || other.next_sibling)
            && (!self.following_sibling || other.following_sibling)
            && (!self.eq || other.eq)
            && (!self.neq || other.neq)
            && (!self.wildcard || other.wildcard)
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render in the paper's grouped notation.
        let mut parts: Vec<&str> = Vec::new();
        match self.descendant {
            true => parts.push("⇓"),
            false => parts.push("↓"),
        }
        match (self.next_sibling, self.following_sibling) {
            (true, true) => parts.push("⇒"),
            (true, false) => parts.push("→"),
            (false, true) => parts.push("→*"),
            (false, false) => {}
        }
        match (self.eq, self.neq) {
            (true, true) => parts.push("~"),
            (true, false) => parts.push("="),
            (false, true) => parts.push("≠"),
            (false, false) => {}
        }
        write!(f, "SM({})", parts.join(","))?;
        if self.wildcard {
            write!(f, "[_]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Signature::CHILD_ONLY.to_string(), "SM(↓)");
        let full = Signature {
            descendant: true,
            next_sibling: true,
            following_sibling: true,
            eq: true,
            neq: true,
            wildcard: false,
        };
        assert_eq!(full.to_string(), "SM(⇓,⇒,~)");
        let mixed = Signature {
            descendant: true,
            next_sibling: true,
            following_sibling: false,
            eq: false,
            neq: true,
            wildcard: true,
        };
        assert_eq!(mixed.to_string(), "SM(⇓,→,≠)[_]");
    }

    #[test]
    fn predicates_and_union() {
        let a = Signature {
            descendant: true,
            ..Signature::CHILD_ONLY
        };
        let b = Signature {
            next_sibling: true,
            eq: true,
            ..Signature::CHILD_ONLY
        };
        assert!(a.is_downward());
        assert!(!b.is_downward());
        assert!(!a.has_data_comparison());
        assert!(b.has_data_comparison());
        let u = a.union(b);
        assert!(u.descendant && u.next_sibling && u.eq && !u.neq);
        assert!(a.subset_of(&u) && b.subset_of(&u));
        assert!(!u.subset_of(&a));
    }
}
