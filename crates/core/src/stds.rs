//! Source-to-target dependencies (Definition 3.1) and schema mappings
//! (Definition 3.2).

use crate::cond::{all_hold, Comparison};
use crate::signature::Signature;
use std::collections::BTreeSet;
use std::fmt;
use xmlmap_dtd::Dtd;
use xmlmap_patterns::{eval, CompiledPattern, Matcher, Pattern, Valuation, Var};
use xmlmap_trees::Tree;

/// Combined tree size below which per-std work is kept on the calling
/// thread: table building on tiny trees is cheaper than a thread spawn.
pub(crate) const PAR_NODE_THRESHOLD: usize = 256;

/// An std `π(x̄,ȳ), α₌,≠(x̄,ȳ) → π′(x̄,z̄), α′₌,≠(x̄,z̄)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Std {
    /// Source pattern π.
    pub source: Pattern,
    /// Source condition α₌,≠.
    pub source_cond: Vec<Comparison>,
    /// Target pattern π′.
    pub target: Pattern,
    /// Target condition α′₌,≠.
    pub target_cond: Vec<Comparison>,
}

impl Std {
    /// Builds an std without conditions.
    pub fn new(source: Pattern, target: Pattern) -> Std {
        Std {
            source,
            source_cond: Vec::new(),
            target,
            target_cond: Vec::new(),
        }
    }

    /// Adds a source condition (builder style).
    pub fn when(mut self, c: Comparison) -> Std {
        self.source_cond.push(c);
        self
    }

    /// Adds a target condition (builder style).
    pub fn ensure(mut self, c: Comparison) -> Std {
        self.target_cond.push(c);
        self
    }

    /// Parses `source , conds -> target , conds` with pattern syntax from
    /// `xmlmap-patterns` and condition syntax `x = y, a != b`. The optional
    /// condition block is introduced by `;`:
    ///
    /// ```text
    /// r[a(x) -> a(y)] ; x != y  ->  r[b(x), b(y)] ; x != y
    /// ```
    pub fn parse(input: &str) -> Result<Std, String> {
        // Split on the *std arrow*, which we require to be written `-->`
        // to avoid colliding with the pattern-level `->`.
        let (lhs, rhs) = input
            .split_once("-->")
            .ok_or_else(|| "expected `-->` between source and target".to_string())?;
        let parse_side = |side: &str| -> Result<(Pattern, Vec<Comparison>), String> {
            let (pat_text, cond_text) = match side.split_once(';') {
                Some((p, c)) => (p, c),
                None => (side, ""),
            };
            let pat = xmlmap_patterns::parse(pat_text.trim()).map_err(|e| e.to_string())?;
            let conds = crate::cond::parse_conditions(cond_text)?;
            Ok((pat, conds))
        };
        let (source, source_cond) = parse_side(lhs)?;
        let (target, target_cond) = parse_side(rhs)?;
        Ok(Std {
            source,
            source_cond,
            target,
            target_cond,
        })
    }

    /// The variables shared between source and target (the x̄ of the
    /// definition; universally quantified).
    pub fn shared_vars(&self) -> Vec<Var> {
        let target_vars: BTreeSet<Var> = self.target.variables().into_iter().collect();
        self.source
            .variables()
            .into_iter()
            .filter(|v| target_vars.contains(v))
            .collect()
    }

    /// Variables appearing only on the target side (the z̄; existential).
    pub fn existential_vars(&self) -> Vec<Var> {
        let source_vars: BTreeSet<Var> = self.source.variables().into_iter().collect();
        self.target
            .variables()
            .into_iter()
            .filter(|v| !source_vars.contains(v))
            .collect()
    }

    /// Do `(T, T′)` satisfy this std?
    ///
    /// Both patterns are compiled once and their feasibility tables built
    /// once per tree; every source firing then probes the *same* prepared
    /// target [`Matcher`], so the `O(|T|·|π′|)` table cost is not repaid
    /// per firing. The whole check runs in the interned id space: shared
    /// variables are translated to (source id, target id) pairs and
    /// conditions to id triples up front, so no per-firing `Valuation` is
    /// ever built.
    pub fn satisfied(&self, source_tree: &Tree, target_tree: &Tree) -> bool {
        use crate::cond::CompOp;
        use xmlmap_trees::Value;

        let src_pat = CompiledPattern::new(&self.source);
        let src = Matcher::new(source_tree, &src_pat);
        let tgt_pat = CompiledPattern::new(&self.target);
        let tgt = Matcher::new(target_tree, &tgt_pat);
        // Shared variables (x̄) as dense id pairs.
        let id_pairs: Vec<(usize, usize)> = src_pat
            .vars()
            .iter()
            .enumerate()
            .filter_map(|(si, v)| tgt_pat.var_id(v).map(|ti| (si, ti as usize)))
            .collect();
        // Conditions in id space. `None` marks a comparison over a variable
        // the side can never bind — such comparisons never hold (matching
        // [`Comparison::holds`] on unbound variables).
        let compile =
            |conds: &[Comparison], pat: &CompiledPattern| -> Vec<Option<(CompOp, usize, usize)>> {
                conds
                    .iter()
                    .map(|c| match (pat.var_id(&c.left), pat.var_id(&c.right)) {
                        (Some(l), Some(r)) => Some((c.op, l as usize, r as usize)),
                        _ => None,
                    })
                    .collect()
            };
        let src_conds = compile(&self.source_cond, &src_pat);
        let tgt_conds = compile(&self.target_cond, &tgt_pat);
        // The target side may compare a seeded (shared) variable, so
        // condition checks run on the full dense environment of each side.
        fn holds(conds: &[Option<(CompOp, usize, usize)>], env: &[Option<&Value>]) -> bool {
            conds.iter().all(|c| match c {
                Some((op, l, r)) => match (env[*l], env[*r]) {
                    (Some(a), Some(b)) => match op {
                        CompOp::Eq => a == b,
                        CompOp::Neq => a != b,
                    },
                    _ => false,
                },
                None => false,
            })
        }
        let tgt_vars = tgt_pat.var_count();
        let empty = vec![None; src_pat.var_count()];
        // ∀ source matches passing α: ∃ target match passing α′.
        !src.for_each_match_dense(Tree::ROOT, &empty, &mut |env| {
            if !holds(&src_conds, env) {
                return true; // condition fails ⇒ std does not fire here
            }
            let mut tgt_seed: Vec<Option<&Value>> = vec![None; tgt_vars];
            for &(si, ti) in &id_pairs {
                tgt_seed[ti] = env[si];
            }
            // Continue scanning source matches only while satisfied.
            tgt.for_each_match_dense(Tree::ROOT, &tgt_seed, &mut |tenv| {
                !holds(&tgt_conds, tenv) // stop on first success
            })
        })
    }

    /// All source matches on which this std fires (α₌,≠ included).
    pub fn firings(&self, source_tree: &Tree) -> Vec<Valuation> {
        eval::all_matches(source_tree, &self.source)
            .into_iter()
            .filter(|m| all_hold(&self.source_cond, m))
            .collect()
    }

    /// The features used by this std (child is implicit).
    pub fn signature(&self) -> Signature {
        use crate::cond::CompOp;
        let eq_cond = |cs: &[Comparison]| cs.iter().any(|c| c.op == CompOp::Eq);
        let neq_cond = |cs: &[Comparison]| cs.iter().any(|c| c.op == CompOp::Neq);
        // Variable reuse on the source side is implicit equality. Reuse on
        // the target side is NOT counted: the paper's convention ("as in
        // [4], we do not restrict variable reuse in target patterns") keeps
        // it inside every class, including SM(⇓).
        Signature {
            descendant: self.source.uses_descendant() || self.target.uses_descendant(),
            next_sibling: self.source.uses_next_sibling() || self.target.uses_next_sibling(),
            following_sibling: self.source.uses_following_sibling()
                || self.target.uses_following_sibling(),
            eq: self.source.has_repeated_variable()
                || eq_cond(&self.source_cond)
                || eq_cond(&self.target_cond),
            neq: neq_cond(&self.source_cond) || neq_cond(&self.target_cond),
            wildcard: self.source.uses_wildcard() || self.target.uses_wildcard(),
        }
    }

    /// Is this std fully specified (both patterns in grammar (5))?
    pub fn is_fully_specified(&self) -> bool {
        self.source.is_fully_specified() && self.target.is_fully_specified()
    }
}

impl fmt::Display for Std {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)?;
        if !self.source_cond.is_empty() {
            write!(f, " ; ")?;
            for (i, c) in self.source_cond.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        write!(f, " --> {}", self.target)?;
        if !self.target_cond.is_empty() {
            write!(f, " ; ")?;
            for (i, c) in self.target_cond.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// An XML schema mapping `M = (D_s, D_t, Σ)` (Definition 3.2).
#[derive(Clone, Debug)]
pub struct Mapping {
    /// Source DTD.
    pub source_dtd: Dtd,
    /// Target DTD.
    pub target_dtd: Dtd,
    /// The set Σ of stds.
    pub stds: Vec<Std>,
}

impl Mapping {
    /// Builds a mapping.
    pub fn new(source_dtd: Dtd, target_dtd: Dtd, stds: Vec<Std>) -> Mapping {
        Mapping {
            source_dtd,
            target_dtd,
            stds,
        }
    }

    /// Parses a mapping file with three sections:
    ///
    /// ```text
    /// [source]
    /// root r
    /// r -> a*
    /// a @ v
    ///
    /// [target]
    /// root r
    /// r -> b*
    /// b @ w
    ///
    /// [stds]
    /// r/a(x) --> r/b(x)
    /// ```
    ///
    /// DTD sections use the `xmlmap-dtd` syntax; each non-empty line of
    /// `[stds]` is one std in [`Std::parse`] syntax. `#` starts a comment.
    pub fn parse(input: &str) -> Result<Mapping, String> {
        let mut section = None;
        let mut source = String::new();
        let mut target = String::new();
        let mut stds = Vec::new();
        for (idx, raw) in input.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            match line {
                "[source]" => section = Some(0),
                "[target]" => section = Some(1),
                "[stds]" => section = Some(2),
                _ => match section {
                    Some(0) => {
                        source.push_str(line);
                        source.push('\n');
                    }
                    Some(1) => {
                        target.push_str(line);
                        target.push('\n');
                    }
                    Some(2) => {
                        stds.push(Std::parse(line).map_err(|e| format!("line {}: {e}", idx + 1))?)
                    }
                    _ => {
                        return Err(format!(
                            "line {}: content before the first [section]",
                            idx + 1
                        ))
                    }
                },
            }
        }
        let source_dtd =
            xmlmap_dtd::parse(&source).map_err(|e| format!("[source] section: {e}"))?;
        let target_dtd =
            xmlmap_dtd::parse(&target).map_err(|e| format!("[target] section: {e}"))?;
        Ok(Mapping {
            source_dtd,
            target_dtd,
            stds,
        })
    }

    /// Membership: `(T, T′) ∈ ⟦M⟧` — both trees conform and every std is
    /// satisfied (the problem of Theorem 4.3).
    ///
    /// With several stds over non-trivial trees the satisfaction checks
    /// (each independent, read-only) are fanned out across threads; small
    /// instances stay sequential — thread spawns would dominate there
    /// (e.g. the bounded-enumeration search calls this in a tight loop on
    /// tiny candidate documents).
    pub fn is_solution(&self, source_tree: &Tree, target_tree: &Tree) -> bool {
        if !self.source_dtd.conforms(source_tree) || !self.target_dtd.conforms(target_tree) {
            return false;
        }
        if self.stds.len() > 1 && source_tree.size() + target_tree.size() >= PAR_NODE_THRESHOLD {
            xmlmap_par::par_map(&self.stds, |s| s.satisfied(source_tree, target_tree))
                .into_iter()
                .all(|ok| ok)
        } else {
            self.stds
                .iter()
                .all(|s| s.satisfied(source_tree, target_tree))
        }
    }

    /// The union of the std signatures.
    pub fn signature(&self) -> Signature {
        self.stds
            .iter()
            .map(Std::signature)
            .fold(Signature::CHILD_ONLY, Signature::union)
    }

    /// Are all stds fully specified?
    pub fn is_fully_specified(&self) -> bool {
        self.stds.iter().all(Std::is_fully_specified)
    }
}

impl fmt::Display for Mapping {
    /// Prints the mapping in the `[source]`/`[target]`/`[stds]` file format
    /// accepted by [`Mapping::parse`], so `Display` round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[source]\n{}", self.source_dtd)?;
        writeln!(f, "[target]\n{}", self.target_dtd)?;
        writeln!(f, "[stds]")?;
        for s in &self.stds {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Comparison;
    use xmlmap_trees::tree;

    /// The paper's introduction mapping with order preservation and
    /// inequality: π₃, cn1 ≠ cn2 → π₄.
    fn intro_std() -> Std {
        Std::parse(
            "r[prof(x)[teach[year(y)[course(cn1) -> course(cn2)]], supervise[student(s)]]] \
             ; cn1 != cn2 \
             --> r[course(cn1, y)[taughtby(x)] ->* course(cn2, y)[taughtby(x)], \
                   student(s)[supervisor(x)]]",
        )
        .unwrap()
    }

    fn source_tree() -> Tree {
        tree! {
            "r" [ "prof"("name" = "Ada") [
                "teach" [ "year"("y" = "2008") [
                    "course"("cno" = "cs1"),
                    "course"("cno" = "cs2"),
                ] ],
                "supervise" [ "student"("sid" = "Sue") ],
            ] ]
        }
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = intro_std();
        let s2 = Std::parse(&s.to_string()).unwrap();
        assert_eq!(s, s2);
        assert_eq!(s.source_cond, vec![Comparison::neq("cn1", "cn2")]);
    }

    #[test]
    fn shared_and_existential_vars() {
        let s = Std::parse("r[a(x), b(y)] --> r[c(x, z)]").unwrap();
        let shared: Vec<String> = s.shared_vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(shared, ["x"]);
        let ex: Vec<String> = s.existential_vars().iter().map(|v| v.to_string()).collect();
        assert_eq!(ex, ["z"]);
    }

    #[test]
    fn intro_std_satisfaction_order_preserved() {
        let s = intro_std();
        // Order-preserving target: cs1 before cs2.
        let good = tree! {
            "r" [
                "course"("cno" = "cs1", "year" = "2008") [ "taughtby"("t" = "Ada") ],
                "course"("cno" = "cs2", "year" = "2008") [ "taughtby"("t" = "Ada") ],
                "student"("sid" = "Sue") [ "supervisor"("n" = "Ada") ],
            ]
        };
        assert!(s.satisfied(&source_tree(), &good));

        // Order-reversing target violates the →* requirement.
        let reversed = tree! {
            "r" [
                "course"("cno" = "cs2", "year" = "2008") [ "taughtby"("t" = "Ada") ],
                "course"("cno" = "cs1", "year" = "2008") [ "taughtby"("t" = "Ada") ],
                "student"("sid" = "Sue") [ "supervisor"("n" = "Ada") ],
            ]
        };
        assert!(!s.satisfied(&source_tree(), &reversed));
    }

    #[test]
    fn inequality_prevents_firing() {
        let s = intro_std();
        // Same course twice: cn1 ≠ cn2 never holds, so the std is vacuous
        // and ANY target satisfies it.
        let dup = tree! {
            "r" [ "prof"("name" = "Ada") [
                "teach" [ "year"("y" = "2008") [
                    "course"("cno" = "cs1"),
                    "course"("cno" = "cs1"),
                ] ],
                "supervise" [ "student"("sid" = "Sue") ],
            ] ]
        };
        assert!(s.satisfied(&dup, &tree!("r")));
        assert_eq!(s.firings(&dup).len(), 0);
        assert_eq!(s.firings(&source_tree()).len(), 1);
    }

    #[test]
    fn target_condition_checked() {
        let s = Std::parse("r[a(x)] --> r[b(x, z)] ; x != z").unwrap();
        let src = tree!("r"["a"("v" = "1")]);
        let ok = tree!("r"["b"("v" = "1", "w" = "2")]);
        let bad = tree!("r"["b"("v" = "1", "w" = "1")]);
        assert!(s.satisfied(&src, &ok));
        assert!(!s.satisfied(&src, &bad));
    }

    #[test]
    fn signature_inference() {
        let s = intro_std();
        let sig = s.signature();
        assert!(sig.next_sibling);
        assert!(sig.following_sibling);
        assert!(sig.neq);
        // Target-side reuse of x, y does not count as equality (paper
        // convention); the source side uses each variable once.
        assert!(!sig.eq);
        assert!(!sig.descendant);
        assert!(!sig.wildcard);
        assert!(!s.is_fully_specified());

        let plain = Std::parse("r[a(x)] --> r[b(x)]").unwrap();
        assert_eq!(plain.signature(), Signature::CHILD_ONLY);
        assert!(plain.is_fully_specified());
    }

    #[test]
    fn mapping_membership() {
        let d1 = xmlmap_dtd::parse(
            "root r
             r -> prof*
             prof -> teach, supervise
             teach -> year
             year -> course, course
             supervise -> student*
             prof @ name
             student @ sid
             year @ y
             course @ cno",
        )
        .unwrap();
        let d2 = xmlmap_dtd::parse(
            "root r
             r -> course*, student*
             course -> taughtby
             student -> supervisor
             course @ cno, year
             student @ sid
             taughtby @ teacher
             supervisor @ name",
        )
        .unwrap();
        let m = Mapping::new(d1, d2, vec![intro_std()]);
        let good = tree! {
            "r" [
                "course"("cno" = "cs1", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
                "course"("cno" = "cs2", "year" = "2008") [ "taughtby"("teacher" = "Ada") ],
                "student"("sid" = "Sue") [ "supervisor"("name" = "Ada") ],
            ]
        };
        assert!(m.is_solution(&source_tree(), &good));
        // Non-conforming target: solution fails even if stds hold.
        assert!(!m.is_solution(&source_tree(), &tree!("r"["junk"])));
        // Non-conforming source.
        assert!(!m.is_solution(&tree!("x"), &good));
        assert_eq!(m.signature().to_string(), "SM(↓,⇒,≠)");
    }

    #[test]
    fn display_parses_back() {
        let m = Mapping::new(
            xmlmap_dtd::parse("root r\nr -> a*\na @ v").unwrap(),
            xmlmap_dtd::parse("root w\nw -> b*\nb @ u").unwrap(),
            vec![
                Std::parse("r[a(x) ->* a(y)] ; x != y --> w[b(x), b(y)]").unwrap(),
                Std::parse("r/a(x) --> w/b(z) ; z = x").unwrap(),
            ],
        );
        let reparsed = Mapping::parse(&m.to_string()).unwrap();
        assert_eq!(reparsed.stds, m.stds);
        assert_eq!(reparsed.source_dtd.to_string(), m.source_dtd.to_string());
        assert_eq!(reparsed.target_dtd.to_string(), m.target_dtd.to_string());
    }

    #[test]
    fn mapping_file_round_trip() {
        let text = "
            # a copy mapping
            [source]
            root r
            r -> a*
            a @ v
            [target]
            root r
            r -> b*
            b @ w
            [stds]
            r/a(x) --> r/b(x)
        ";
        let m = Mapping::parse(text).unwrap();
        assert_eq!(m.stds.len(), 1);
        assert_eq!(m.source_dtd.root().as_str(), "r");
        assert!(m.is_fully_specified());
        // Errors: content outside sections, bad std, bad DTD.
        assert!(Mapping::parse("r -> a").is_err());
        assert!(Mapping::parse("[source]\nroot r\n[target]\nroot r\n[stds]\nbogus").is_err());
        assert!(Mapping::parse("[source]\n???\n[target]\nroot r\n[stds]").is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(Std::parse("no arrow here").is_err());
        assert!(Std::parse("r[ --> r").is_err());
        assert!(Std::parse("r ; x < y --> r").is_err());
    }
}
