//! Schema mappings with Skolem functions (paper §8).
//!
//! To close mappings under composition the paper follows \[17\] (Fagin,
//! Kolaitis, Popa, Tan): target positions may hold *terms* built from
//! source variables and function symbols, existentially quantified at the
//! mapping level. The closed class (Thm 8.2) is: **strictly**
//! nested-relational DTDs (only starred element types carry attributes),
//! **fully-specified** stds, equalities only.
//!
//! This module defines the mapping class and a reference semantics.
//! Deciding `(T, T′) ∈ ⟦M⟧` requires guessing the Skolem functions (by
//! Fagin's theorem the problem is NP); [`SkolemMapping::is_solution`]
//! searches function tables over the target's active domain, which is
//! exhaustive for this class — every term occurrence must land on an
//! attribute of `T′`, and the only other constraints are equalities, which
//! never force values outside the domain.

use crate::cond::{CompOp, Comparison};
use crate::stds::Mapping;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use xmlmap_dtd::Dtd;
use xmlmap_patterns::{eval, LabelTest, ListItem, Pattern, Valuation, Var};
use xmlmap_trees::{Name, NodeId, Tree, Value};

/// A term over source variables and Skolem function symbols.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A (source) variable.
    Var(Var),
    /// A function application `f(t₁, …, tₙ)`. Composition produces nested
    /// applications, so arguments are terms, not just variables.
    App(Name, Vec<Term>),
}

impl Term {
    /// Applies a variable renaming.
    pub fn rename(&self, f: &mut impl FnMut(&Var) -> Var) -> Term {
        match self {
            Term::Var(v) => Term::Var(f(v)),
            Term::App(g, args) => Term::App(g.clone(), args.iter().map(|t| t.rename(f)).collect()),
        }
    }

    /// Substitutes variables by terms.
    pub fn substitute(&self, s: &BTreeMap<Var, Term>) -> Term {
        match self {
            Term::Var(v) => s.get(v).cloned().unwrap_or_else(|| Term::Var(v.clone())),
            Term::App(g, args) => {
                Term::App(g.clone(), args.iter().map(|t| t.substitute(s)).collect())
            }
        }
    }

    /// The variables occurring in the term.
    pub fn variables(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::App(_, args) => {
                for a in args {
                    a.variables(out);
                }
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::App(g, args) => {
                write!(f, "{g}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A fully-specified target pattern whose attribute positions hold terms.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TermPattern {
    /// Node label (concrete; the closed class has no wildcards).
    pub label: Name,
    /// The terms filling this node's attribute tuple.
    pub terms: Vec<Term>,
    /// Child pattern nodes.
    pub children: Vec<TermPattern>,
}

impl TermPattern {
    /// A leaf node.
    pub fn leaf(label: impl Into<Name>, terms: Vec<Term>) -> TermPattern {
        TermPattern {
            label: label.into(),
            terms,
            children: Vec::new(),
        }
    }

    /// Adds a child (builder style).
    pub fn child(mut self, c: TermPattern) -> TermPattern {
        self.children.push(c);
        self
    }

    /// Converts a fully-specified [`Pattern`] (variables only) into a
    /// `TermPattern`. Fails on wildcard, `//` or horizontal operators.
    pub fn from_pattern(p: &Pattern) -> Result<TermPattern, String> {
        let LabelTest::Label(label) = &p.label else {
            return Err("wildcard label in a term pattern".into());
        };
        let mut children = Vec::new();
        for item in &p.list {
            match item {
                ListItem::Seq { members, ops } if ops.is_empty() && members.len() == 1 => {
                    children.push(TermPattern::from_pattern(&members[0])?);
                }
                ListItem::Seq { .. } => return Err("horizontal operators in a term pattern".into()),
                ListItem::Descendant(_) => return Err("descendant in a term pattern".into()),
            }
        }
        Ok(TermPattern {
            label: label.clone(),
            terms: p.vars.iter().map(|v| Term::Var(v.clone())).collect(),
            children,
        })
    }

    /// Applies a substitution to all terms.
    pub fn substitute(&self, s: &BTreeMap<Var, Term>) -> TermPattern {
        TermPattern {
            label: self.label.clone(),
            terms: self.terms.iter().map(|t| t.substitute(s)).collect(),
            children: self.children.iter().map(|c| c.substitute(s)).collect(),
        }
    }

    /// All terms in the pattern.
    pub fn all_terms(&self, out: &mut Vec<Term>) {
        out.extend(self.terms.iter().cloned());
        for c in &self.children {
            c.all_terms(out);
        }
    }

    /// Number of pattern nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(TermPattern::size).sum::<usize>()
    }
}

impl fmt::Display for TermPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)?;
        if !self.terms.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.terms.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        if !self.children.is_empty() {
            write!(f, "[")?;
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// An std with Skolem terms on the target side:
/// `φ(x̄), α₌(x̄), eqs(terms) → ψ(terms), eqs′(terms)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SkolemStd {
    /// Source pattern (fully specified).
    pub source: Pattern,
    /// Source variable equalities (`=` only in the closed class).
    pub source_cond: Vec<Comparison>,
    /// Premise equalities among terms (produced by composition).
    pub source_term_eqs: Vec<(Term, Term)>,
    /// Target term pattern.
    pub target: TermPattern,
    /// Conclusion equalities among terms.
    pub target_term_eqs: Vec<(Term, Term)>,
}

impl fmt::Display for SkolemStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)?;
        for c in &self.source_cond {
            write!(f, ", {c}")?;
        }
        for (a, b) in &self.source_term_eqs {
            write!(f, ", {a} = {b}")?;
        }
        write!(f, " --> {}", self.target)?;
        for (a, b) in &self.target_term_eqs {
            write!(f, ", {a} = {b}")?;
        }
        Ok(())
    }
}

/// A schema mapping with Skolem functions (§8).
#[derive(Clone, Debug)]
pub struct SkolemMapping {
    /// Source DTD (strictly nested-relational in the closed class).
    pub source_dtd: Dtd,
    /// Target DTD (strictly nested-relational in the closed class).
    pub target_dtd: Dtd,
    /// The stds.
    pub stds: Vec<SkolemStd>,
}

impl SkolemMapping {
    /// Skolemises an ordinary mapping: each existential target variable `z`
    /// of each std becomes `f_z(x̄)` applied to *all* of the std's source
    /// variables — like the employee-id example of §8.
    ///
    /// Requires fully-specified stds with at most `=` conditions.
    pub fn from_mapping(m: &Mapping) -> Result<SkolemMapping, String> {
        let mut stds = Vec::new();
        for (i, s) in m.stds.iter().enumerate() {
            if s.source_cond.iter().any(|c| c.op == CompOp::Neq)
                || s.target_cond.iter().any(|c| c.op == CompOp::Neq)
            {
                return Err(format!("std #{i} uses ≠, outside the closed class"));
            }
            let target =
                TermPattern::from_pattern(&s.target).map_err(|e| format!("std #{i}: {e}"))?;
            if !s.source.is_fully_specified() {
                return Err(format!("std #{i}: source is not fully specified"));
            }
            let source_vars = s.source.variables();
            let subst: BTreeMap<Var, Term> = s
                .existential_vars()
                .into_iter()
                .map(|z| {
                    let f = Name::new(format!("f_{z}_{i}"));
                    (
                        z,
                        Term::App(f, source_vars.iter().cloned().map(Term::Var).collect()),
                    )
                })
                .collect();
            let target = target.substitute(&subst);
            let as_term = |v: &Var| -> Term {
                subst
                    .get(v)
                    .cloned()
                    .unwrap_or_else(|| Term::Var(v.clone()))
            };
            // Target `=` conditions become term equalities.
            let target_term_eqs = s
                .target_cond
                .iter()
                .map(|c| (as_term(&c.left), as_term(&c.right)))
                .collect();
            stds.push(SkolemStd {
                source: s.source.clone(),
                source_cond: s.source_cond.clone(),
                source_term_eqs: Vec::new(),
                target,
                target_term_eqs,
            });
        }
        Ok(SkolemMapping {
            source_dtd: m.source_dtd.clone(),
            target_dtd: m.target_dtd.clone(),
            stds,
        })
    }

    /// Is the mapping inside the closed class of Thm 8.2 (strictly
    /// nested-relational DTDs, fully-specified stds)?
    pub fn in_closed_class(&self) -> bool {
        self.source_dtd.is_strictly_nested_relational()
            && self.target_dtd.is_strictly_nested_relational()
            && self.stds.iter().all(|s| s.source.is_fully_specified())
    }

    /// Reference semantics: `(T, T′) ∈ ⟦M⟧`? Searches Skolem function
    /// tables over the active domain of `T′` (exhaustive for the closed
    /// class: all term occurrences must equal attributes of `T′`).
    ///
    /// Exponential in the number of distinct ground applications — this is
    /// the NP guess of Fagin's theorem, used as the reference oracle.
    pub fn is_solution(&self, source: &Tree, target: &Tree) -> bool {
        if !self.source_dtd.conforms(source) || !self.target_dtd.conforms(target) {
            return false;
        }
        // Collect ground applications appearing in any firing.
        let mut firings: Vec<(usize, Valuation)> = Vec::new();
        for (i, s) in self.stds.iter().enumerate() {
            for m in eval::all_matches(source, &s.source) {
                if crate::cond::all_hold(&s.source_cond, &m) {
                    firings.push((i, m));
                }
            }
        }
        let mut domain: Vec<Value> = target.data_values().cloned().collect();
        domain.sort();
        domain.dedup();
        if domain.is_empty() {
            domain.push(Value::str("•"));
        }

        // Lazy backtracking over function tables: run the check, and when
        // it hits a ground application not yet in the table, branch on its
        // value. The key space is finite (functions × domain tuples), so
        // this terminates; it is the NP guess of Fagin's theorem.
        fn search(
            this: &SkolemMapping,
            target: &Tree,
            firings: &[(usize, Valuation)],
            domain: &[Value],
            table: &mut BTreeMap<(Name, Vec<Value>), Value>,
        ) -> bool {
            match this.check_with_table(target, firings, table) {
                Check::Satisfied => true,
                Check::Violated => false,
                Check::Missing(key) => {
                    for v in domain {
                        table.insert(key.clone(), v.clone());
                        if search(this, target, firings, domain, table) {
                            return true;
                        }
                    }
                    table.remove(&key);
                    false
                }
            }
        }
        search(self, target, &firings, &domain, &mut BTreeMap::new())
    }

    fn check_with_table(
        &self,
        target: &Tree,
        firings: &[(usize, Valuation)],
        table: &BTreeMap<(Name, Vec<Value>), Value>,
    ) -> Check {
        for (i, m) in firings {
            let s = &self.stds[*i];
            // Premise term equalities must hold for the firing to oblige.
            let mut premise_holds = true;
            for (a, b) in &s.source_term_eqs {
                let x = match eval_ground(a, m, table) {
                    Ok(v) => v,
                    Err(key) => return Check::Missing(key),
                };
                let y = match eval_ground(b, m, table) {
                    Ok(v) => v,
                    Err(key) => return Check::Missing(key),
                };
                if x != y {
                    premise_holds = false;
                    break;
                }
            }
            if !premise_holds {
                continue;
            }
            // Conclusion equalities.
            for (a, b) in &s.target_term_eqs {
                let x = match eval_ground(a, m, table) {
                    Ok(v) => v,
                    Err(key) => return Check::Missing(key),
                };
                let y = match eval_ground(b, m, table) {
                    Ok(v) => v,
                    Err(key) => return Check::Missing(key),
                };
                if x != y {
                    return Check::Violated;
                }
            }
            // Embed the ground target pattern.
            match ground_pattern(&s.target, m, table) {
                Ok(ground) => {
                    if !embeds(&ground, target, Tree::ROOT) {
                        return Check::Violated;
                    }
                }
                Err(key) => return Check::Missing(key),
            }
        }
        Check::Satisfied
    }
}

/// Outcome of a single table check.
enum Check {
    Satisfied,
    Violated,
    /// A ground application is not in the table yet.
    Missing((Name, Vec<Value>)),
}

/// Evaluates a ground term; `Err` carries the first missing table key.
fn eval_ground(
    t: &Term,
    m: &Valuation,
    table: &BTreeMap<(Name, Vec<Value>), Value>,
) -> Result<Value, (Name, Vec<Value>)> {
    match t {
        Term::Var(v) => Ok(m
            .get(v)
            .cloned()
            .expect("std variables are bound by the firing")),
        Term::App(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_ground(a, m, table))
                .collect::<Result<_, _>>()?;
            let key = (f.clone(), vals);
            table.get(&key).cloned().ok_or(key)
        }
    }
}

/// A ground (fully evaluated) version of a term pattern.
struct GroundPattern {
    label: Name,
    values: Vec<Value>,
    children: Vec<GroundPattern>,
}

fn ground_pattern(
    p: &TermPattern,
    m: &Valuation,
    table: &BTreeMap<(Name, Vec<Value>), Value>,
) -> Result<GroundPattern, (Name, Vec<Value>)> {
    Ok(GroundPattern {
        label: p.label.clone(),
        values: p
            .terms
            .iter()
            .map(|t| eval_ground(t, m, table))
            .collect::<Result<Vec<_>, _>>()?,
        children: p
            .children
            .iter()
            .map(|c| ground_pattern(c, m, table))
            .collect::<Result<Vec<_>, _>>()?,
    })
}

/// Does the ground pattern embed at `node` (children may share targets)?
fn embeds(g: &GroundPattern, tree: &Tree, node: NodeId) -> bool {
    if tree.label(node) != &g.label {
        return false;
    }
    if !g.values.is_empty() {
        let attrs: Vec<&Value> = tree.attr_values(node).collect();
        if attrs.len() != g.values.len() || attrs.iter().zip(&g.values).any(|(a, b)| *a != b) {
            return false;
        }
    }
    g.children.iter().all(|c| {
        tree.children(node)
            .iter()
            .any(|&child| embeds(c, tree, child))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stds::Std;
    use xmlmap_trees::tree;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn skolemized(ds: &str, dt: &str, stds: &[&str]) -> SkolemMapping {
        let m = Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        );
        SkolemMapping::from_mapping(&m).unwrap()
    }

    #[test]
    fn skolemisation_replaces_existentials() {
        // §8's employee example: S(name, proj) → T(id, name, office) with
        // id = f(name) — here id is a plain existential, so it becomes
        // f_z(x, y).
        let m = skolemized(
            "root r\nr -> s*\ns @ name, proj",
            "root r\nr -> t*\nt @ id, name, office",
            &["r/s(x, y) --> r/t(z, x, w)"],
        );
        let s = &m.stds[0];
        assert!(matches!(&s.target.children[0].terms[0], Term::App(_, args) if args.len() == 2));
        assert!(matches!(&s.target.children[0].terms[1], Term::Var(v) if v.as_str() == "x"));
        assert!(m.in_closed_class());
    }

    #[test]
    fn is_solution_matches_plain_semantics_when_no_existentials() {
        let plain = Mapping::new(
            dtd("root r\nr -> a*\na @ v"),
            dtd("root r\nr -> b*\nb @ w"),
            vec![Std::parse("r/a(x) --> r/b(x)").unwrap()],
        );
        let sk = SkolemMapping::from_mapping(&plain).unwrap();
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let good = tree!("r" [ "b"("w" = "1"), "b"("w" = "2") ]);
        let bad = tree!("r"["b"("w" = "1")]);
        assert_eq!(plain.is_solution(&src, &good), sk.is_solution(&src, &good));
        assert_eq!(plain.is_solution(&src, &bad), sk.is_solution(&src, &bad));
        assert!(sk.is_solution(&src, &good));
        assert!(!sk.is_solution(&src, &bad));
    }

    #[test]
    fn skolem_functions_force_functional_choices() {
        // r/s(x, y) → r/t(f(x,y), x): same (x, y) ⇒ same id. With the
        // WRONG target (two different ids for equal source tuples after
        // dedup this cannot happen), check the functional constraint via
        // same x different y.
        let m = skolemized(
            "root r\nr -> s*\ns @ name, proj",
            "root r\nr -> t*\nt @ id, name",
            &["r/s(x, y) --> r/t(z, x)"],
        );
        let src = tree! {
            "r" [ "s"("name" = "ada", "proj" = "p1"),
                  "s"("name" = "ada", "proj" = "p2") ]
        };
        // Two distinct ids for the two (name, proj) pairs: allowed, since
        // f_z(ada,p1) and f_z(ada,p2) may differ.
        let two_ids = tree! {
            "r" [ "t"("id" = "i1", "name" = "ada"),
                  "t"("id" = "i2", "name" = "ada") ]
        };
        assert!(m.is_solution(&src, &two_ids));
        // One id reused: also fine (functions may collide).
        let one_id = tree!("r"["t"("id" = "i", "name" = "ada")]);
        assert!(m.is_solution(&src, &one_id));
        // No tuple for ada at all: violated.
        let none = tree!("r"["t"("id" = "i", "name" = "bob")]);
        assert!(!m.is_solution(&src, &none));
    }

    #[test]
    fn shared_function_across_stds() {
        // Hand-built: two stds share f, forcing the same null for the same
        // argument — r/a(x) → r/b(f(x)) and r/a(x) → r/c(f(x)).
        let source = xmlmap_patterns::parse("r/a(x)").unwrap();
        let f = |x: &str| Term::App(Name::new("f"), vec![Term::Var(Var::new(x))]);
        let m = SkolemMapping {
            source_dtd: dtd("root r\nr -> a*\na @ v"),
            target_dtd: dtd("root r\nr -> b*, c*\nb @ w\nc @ w"),
            stds: vec![
                SkolemStd {
                    source: source.clone(),
                    source_cond: vec![],
                    source_term_eqs: vec![],
                    target: TermPattern::leaf("r", vec![])
                        .child(TermPattern::leaf("b", vec![f("x")])),
                    target_term_eqs: vec![],
                },
                SkolemStd {
                    source,
                    source_cond: vec![],
                    source_term_eqs: vec![],
                    target: TermPattern::leaf("r", vec![])
                        .child(TermPattern::leaf("c", vec![f("x")])),
                    target_term_eqs: vec![],
                },
            ],
        };
        let src = tree!("r"["a"("v" = "1")]);
        // b and c must carry the SAME value (both are f(1)).
        let same = tree!("r" [ "b"("w" = "k"), "c"("w" = "k") ]);
        let diff = tree!("r" [ "b"("w" = "k"), "c"("w" = "j") ]);
        assert!(m.is_solution(&src, &same));
        assert!(!m.is_solution(&src, &diff));
    }

    #[test]
    fn term_display() {
        let t = Term::App(
            Name::new("f"),
            vec![
                Term::Var(Var::new("x")),
                Term::App(Name::new("g"), vec![Term::Var(Var::new("y"))]),
            ],
        );
        assert_eq!(t.to_string(), "f(x, g(y))");
        let tp = TermPattern::leaf("r", vec![]).child(TermPattern::leaf("b", vec![t]));
        assert_eq!(tp.to_string(), "r[b(f(x, g(y)))]");
    }

    #[test]
    fn rejects_inequalities() {
        let m = Mapping::new(
            dtd("root r\nr -> a*\na @ v"),
            dtd("root r\nr -> b*\nb @ w"),
            vec![Std::parse("r[a(x), a(y)] ; x != y --> r/b(x)").unwrap()],
        );
        assert!(SkolemMapping::from_mapping(&m).is_err());
    }
}
