//! The persistent compiled-artifact store (DESIGN.md §8.5).
//!
//! A directory of flat files, one per compiled artifact, keyed by a content
//! hash of the artifact's cache key (the canonical display text of the
//! schema, mapping, or schema pair it was compiled from). A process that
//! restarts against the same store — CI shards, repeated CLI batch runs —
//! loads compiled tables off disk instead of re-running NFA densification,
//! subset construction, and plan emission.
//!
//! Every file wraps its payload in an envelope:
//!
//! ```text
//! magic "XMAP" | format version u32 | family tag u8
//! | key (length-prefixed)           -- detects hash collisions
//! | payload (length-prefixed)
//! | checksum u64                    -- over all preceding bytes
//! ```
//!
//! The store is *advisory*: any mismatch — bad magic, other format
//! version, checksum failure, truncation, wrong key — degrades to "not
//! cached" and the caller compiles fresh. Bumping [`FORMAT_VERSION`]
//! whenever any serialized structure changes is the entire migration
//! story: stale artifacts are simply ignored and overwritten.
//!
//! Writes go through a temp file in the same directory followed by a
//! rename, so concurrent readers never observe a half-written artifact.

use std::fs;
use std::hash::Hasher;
use std::io::Write;
use std::path::{Path, PathBuf};
use xmlmap_codec::{checksum, Decoder, Encoder};
use xmlmap_regex::FastHasher;

/// Bump whenever the serialized form of *any* artifact family changes.
pub const FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"XMAP";

/// The compiled-artifact families of the engine caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// `SatCache` — per-schema satisfiability index.
    Sat,
    /// `ChaseCache` — per-mapping chase tables.
    Chase,
    /// `AutomataCache` — per-schema-pair compiled automata.
    Automata,
    /// `ShapeCache` — per-schema memoized shape enumerations.
    Shapes,
    /// `DtdIndex` — per-schema dense content-model NFAs for streaming
    /// validation.
    StreamIndex,
    /// `StreamPattern` — per-pattern streaming plans (never persisted;
    /// the family exists so the in-memory cache has a distinct slot
    /// namespace).
    StreamPlan,
    /// `StreamChasePlan` — per-mapping streaming-chase artifacts (chase
    /// tables + per-std stream plans; the payload is the chase tables,
    /// stream plans are recompiled on decode).
    StreamChase,
    /// `DeltaPlan` — per-mapping incremental-chase artifacts (chase
    /// tables + per-std touch profiles; the payload is the chase tables,
    /// profiles are recomputed from the source-pattern texts on decode).
    DeltaChase,
}

impl Family {
    fn tag(self) -> u8 {
        match self {
            Family::Sat => 0,
            Family::Chase => 1,
            Family::Automata => 2,
            Family::Shapes => 3,
            Family::StreamIndex => 4,
            Family::StreamPlan => 5,
            Family::StreamChase => 6,
            Family::DeltaChase => 7,
        }
    }

    /// Filename prefix for the family.
    pub fn name(self) -> &'static str {
        match self {
            Family::Sat => "sat",
            Family::Chase => "chase",
            Family::Automata => "automata",
            Family::Shapes => "shapes",
            Family::StreamIndex => "streamindex",
            Family::StreamPlan => "streamplan",
            Family::StreamChase => "streamchase",
            Family::DeltaChase => "deltachase",
        }
    }
}

/// Why a stored artifact was not usable. [`LoadError::Missing`] is the
/// ordinary cold-cache case; the other variants are surfaced only as a
/// diagnostic counter (`CacheCounters::disk_errors`), never as an error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// No artifact stored under this key (or a hash-collision slot holding
    /// a different key).
    Missing,
    /// The file exists but its envelope or checksum is damaged.
    Corrupt,
    /// The file was written by a build with a different artifact format.
    VersionMismatch,
}

/// A directory of checksummed compiled artifacts.
#[derive(Clone, Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
}

impl ArtifactStore {
    /// Opens (creating if necessary) the store directory.
    pub fn new(dir: impl AsRef<Path>) -> std::io::Result<ArtifactStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, family: Family, key: &str) -> PathBuf {
        let mut h = FastHasher::default();
        h.write(key.as_bytes());
        self.dir
            .join(format!("{}-{:016x}.bin", family.name(), h.finish()))
    }

    /// Loads the payload stored for `(family, key)`, verifying the
    /// envelope. Never panics on damaged files.
    pub fn load(&self, family: Family, key: &str) -> Result<Vec<u8>, LoadError> {
        let bytes = match fs::read(self.path_for(family, key)) {
            Ok(b) => b,
            Err(_) => return Err(LoadError::Missing),
        };
        if bytes.len() < 8 {
            return Err(LoadError::Corrupt);
        }
        let (body, sum) = bytes.split_at(bytes.len() - 8);
        if checksum(body) != u64::from_le_bytes(sum.try_into().unwrap()) {
            return Err(LoadError::Corrupt);
        }
        let mut d = Decoder::new(body);
        if d.take_magic() != Some(*MAGIC) {
            return Err(LoadError::Corrupt);
        }
        match d.u32() {
            Ok(v) if v == FORMAT_VERSION => {}
            Ok(_) => return Err(LoadError::VersionMismatch),
            Err(_) => return Err(LoadError::Corrupt),
        }
        match d.u8() {
            Ok(t) if t == family.tag() => {}
            Ok(_) | Err(_) => return Err(LoadError::Corrupt),
        }
        match d.str() {
            // Another key hashing to the same file: treat as absent.
            Ok(k) if k != key => return Err(LoadError::Missing),
            Ok(_) => {}
            Err(_) => return Err(LoadError::Corrupt),
        }
        let payload = d.bytes().map_err(|_| LoadError::Corrupt)?;
        d.expect_end().map_err(|_| LoadError::Corrupt)?;
        Ok(payload)
    }

    /// Stores `payload` under `(family, key)` atomically (temp file +
    /// rename). Errors are swallowed — the store is an accelerator, and a
    /// full or read-only disk must never fail an engine operation.
    pub fn save(&self, family: Family, key: &str, payload: &[u8]) {
        let mut e = Encoder::new();
        e.magic(MAGIC);
        e.u32(FORMAT_VERSION);
        e.u8(family.tag());
        e.str(key);
        e.bytes(payload);
        let mut body = e.finish();
        let sum = checksum(&body);
        body.extend_from_slice(&sum.to_le_bytes());

        let path = self.path_for(family, key);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let written = fs::File::create(&tmp)
            .and_then(|mut f| f.write_all(&body))
            .is_ok();
        if written {
            let _ = fs::rename(&tmp, &path);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xmlmap-store-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip() {
        let store = ArtifactStore::new(tmpdir("rt")).unwrap();
        assert_eq!(store.load(Family::Sat, "k"), Err(LoadError::Missing));
        store.save(Family::Sat, "k", b"payload");
        assert_eq!(store.load(Family::Sat, "k").unwrap(), b"payload");
        // Same key, different family: separate slots.
        assert_eq!(store.load(Family::Chase, "k"), Err(LoadError::Missing));
    }

    #[test]
    fn corruption_is_detected_not_fatal() {
        let dir = tmpdir("corrupt");
        let store = ArtifactStore::new(&dir).unwrap();
        store.save(Family::Chase, "key", b"0123456789");
        let path = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();

        // Truncation.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(store.load(Family::Chase, "key"), Err(LoadError::Corrupt));

        // Single byte flip.
        let mut flipped = full.clone();
        flipped[10] ^= 0x40;
        fs::write(&path, &flipped).unwrap();
        assert_eq!(store.load(Family::Chase, "key"), Err(LoadError::Corrupt));

        // Restore: loads again.
        fs::write(&path, &full).unwrap();
        assert_eq!(store.load(Family::Chase, "key").unwrap(), b"0123456789");
    }

    #[test]
    fn version_mismatch_is_reported() {
        let dir = tmpdir("version");
        let store = ArtifactStore::new(&dir).unwrap();
        store.save(Family::Automata, "key", b"x");
        let path = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();

        // Rewrite the envelope with a bumped version and a fixed checksum.
        let mut e = Encoder::new();
        e.magic(MAGIC);
        e.u32(FORMAT_VERSION + 1);
        e.u8(Family::Automata.tag());
        e.str("key");
        e.bytes(b"x");
        let mut body = e.finish();
        let sum = checksum(&body);
        body.extend_from_slice(&sum.to_le_bytes());
        fs::write(&path, &body).unwrap();
        assert_eq!(
            store.load(Family::Automata, "key"),
            Err(LoadError::VersionMismatch)
        );
    }

    #[test]
    fn key_collision_slot_reads_as_missing() {
        let store = ArtifactStore::new(tmpdir("collide")).unwrap();
        store.save(Family::Sat, "key-a", b"a");
        // Forge the path of a *different* key onto key-a's file by writing
        // key-b and then asking for it under key-a's artifact: simplest
        // honest check is that a stored key only answers to itself.
        assert_eq!(store.load(Family::Sat, "key-b"), Err(LoadError::Missing));
        assert_eq!(store.load(Family::Sat, "key-a").unwrap(), b"a");
    }
}
