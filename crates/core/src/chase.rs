//! Canonical-solution construction (the chase).
//!
//! The paper's §9 names "constructing target instances" as the key next
//! step for XML data exchange; for the tractable class the paper builds
//! (fully-specified stds over nested-relational target DTDs, the same
//! class that is closed under composition in §8) the classic chase works:
//!
//! 1. for every std and every firing, instantiate the target pattern into
//!    the partial document — children in **repeatable** slots (`*`/`+`) get
//!    fresh nodes per firing, children in **non-repeatable** slots (`ℓ`,
//!    `ℓ?`) are unified with the existing node (labelled nulls unify with
//!    anything, constants only with themselves);
//! 2. complete the document: missing mandatory children are added with
//!    fresh-null attributes, children are ordered by the production's slot
//!    order;
//! 3. check the deferred `≠` obligations.
//!
//! Failure at any step means **no** solution exists (the chase only merges
//! when the DTD forces it), so [`canonical_solution`] doubles as a
//! per-document solution-existence check — the semantics behind absolute
//! consistency.

use crate::cond::CompOp;
use crate::stds::{Mapping, Std};
use std::collections::{BTreeMap, HashMap};
use xmlmap_dtd::Mult;
use xmlmap_patterns::{LabelTest, ListItem, Pattern, Valuation, Var};
use xmlmap_trees::{Name, NodeId, Tree, Value};

/// Why the chase failed — equivalently, why `source` has no solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseError {
    /// The source document does not conform to the source DTD.
    SourceNotConforming,
    /// The mapping is outside the chaseable fragment.
    OutsideFragment(String),
    /// Two constants were forced into the same attribute slot.
    ValueConflict(String),
    /// A target pattern cannot embed into the target DTD.
    NotEmbeddable(String),
    /// A non-repeatable slot would need two or more children.
    MultiplicityConflict(String),
    /// A target `≠` condition is violated by forced equalities.
    InequalityViolated(String),
    /// An equality condition equates two different source constants.
    EqualityUnsatisfiable(String),
}

impl std::fmt::Display for ChaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaseError::SourceNotConforming => write!(f, "source does not conform"),
            ChaseError::OutsideFragment(s) => write!(f, "outside the chaseable fragment: {s}"),
            ChaseError::ValueConflict(s) => write!(f, "value conflict: {s}"),
            ChaseError::NotEmbeddable(s) => write!(f, "target pattern not embeddable: {s}"),
            ChaseError::MultiplicityConflict(s) => write!(f, "multiplicity conflict: {s}"),
            ChaseError::InequalityViolated(s) => write!(f, "≠ condition violated: {s}"),
            ChaseError::EqualityUnsatisfiable(s) => write!(f, "= condition unsatisfiable: {s}"),
        }
    }
}

impl std::error::Error for ChaseError {}

/// Union-find-ish substitution over labelled nulls.
#[derive(Default)]
struct Subst {
    map: HashMap<u64, Value>,
}

impl Subst {
    fn resolve(&self, v: &Value) -> Value {
        let mut cur = v.clone();
        let mut steps = 0;
        while let Value::Null(k) = cur {
            match self.map.get(&k) {
                Some(next) => {
                    cur = next.clone();
                    steps += 1;
                    debug_assert!(steps <= self.map.len() + 1, "substitution cycle");
                }
                None => break,
            }
        }
        cur
    }

    /// Unifies two values; returns false on constant/constant conflict.
    fn unify(&mut self, a: &Value, b: &Value) -> bool {
        let (ra, rb) = (self.resolve(a), self.resolve(b));
        if ra == rb {
            return true;
        }
        match (ra, rb) {
            (Value::Null(k), other) | (other, Value::Null(k)) => {
                self.map.insert(k, other);
                true
            }
            _ => false,
        }
    }
}

struct Chaser<'m> {
    mapping: &'m Mapping,
    tree: Tree,
    subst: Subst,
    next_null: u64,
    /// Deferred ≠ obligations (checked after all unifications).
    neq_obligations: Vec<(Value, Value, String)>,
}

impl<'m> Chaser<'m> {
    fn fresh(&mut self) -> Value {
        let v = Value::Null(self.next_null);
        self.next_null += 1;
        v
    }

    /// Resolves the values every target variable takes for one firing.
    fn firing_values(
        &mut self,
        std: &Std,
        firing: &Valuation,
        std_idx: usize,
    ) -> Result<BTreeMap<Var, Value>, ChaseError> {
        // Equivalence classes of target variables under α′₌.
        let vars = std.target.variables();
        let mut rep: BTreeMap<Var, Var> = vars.iter().map(|v| (v.clone(), v.clone())).collect();
        fn find(rep: &mut BTreeMap<Var, Var>, v: &Var) -> Var {
            let p = rep.get(v).cloned().unwrap_or_else(|| v.clone());
            if &p == v {
                return p;
            }
            let root = find(rep, &p);
            rep.insert(v.clone(), root.clone());
            root
        }
        for c in &std.target_cond {
            if c.op == CompOp::Eq {
                let (ra, rb) = (find(&mut rep, &c.left), find(&mut rep, &c.right));
                if ra != rb {
                    rep.insert(ra, rb);
                }
            }
        }
        // Value per class: the source binding if any member is shared.
        let mut class_value: BTreeMap<Var, Value> = BTreeMap::new();
        for v in &vars {
            let root = find(&mut rep, v);
            if let Some(bound) = firing.get(v) {
                match class_value.get(&root) {
                    Some(existing) if existing != bound => {
                        return Err(ChaseError::EqualityUnsatisfiable(format!(
                            "std #{std_idx}: α′₌ equates {existing} and {bound}"
                        )));
                    }
                    _ => {
                        class_value.insert(root, bound.clone());
                    }
                }
            }
        }
        let mut out = BTreeMap::new();
        for v in &vars {
            let root = find(&mut rep, v);
            let val = match class_value.get(&root) {
                Some(v) => v.clone(),
                None => {
                    let fresh = self.fresh();
                    class_value.insert(root, fresh.clone());
                    fresh
                }
            };
            out.insert(v.clone(), val);
        }
        // Record ≠ obligations for the final check.
        for c in &std.target_cond {
            if c.op == CompOp::Neq {
                let (a, b) = (out[&c.left].clone(), out[&c.right].clone());
                self.neq_obligations
                    .push((a, b, format!("std #{std_idx}: {c}")));
            }
        }
        Ok(out)
    }

    fn unify_attrs(
        &mut self,
        node: NodeId,
        pattern: &Pattern,
        values: &BTreeMap<Var, Value>,
    ) -> Result<(), ChaseError> {
        if pattern.vars.is_empty() {
            return Ok(()); // no attribute constraint
        }
        let existing: Vec<(Name, Value)> = self.tree.attrs(node).to_vec();
        if existing.len() != pattern.vars.len() {
            return Err(ChaseError::NotEmbeddable(format!(
                "pattern node {pattern} has {} variables but element {} has {} attributes",
                pattern.vars.len(),
                self.tree.label(node),
                existing.len()
            )));
        }
        for ((attr, old), var) in existing.iter().zip(&pattern.vars) {
            let new = values[var].clone();
            if !self.subst.unify(old, &new) {
                return Err(ChaseError::ValueConflict(format!(
                    "attribute {attr} of {}: {} vs {}",
                    self.tree.label(node),
                    self.subst.resolve(old),
                    self.subst.resolve(&new)
                )));
            }
        }
        Ok(())
    }

    /// Creates a node for `label` under `parent` with fresh-null attributes.
    fn create(&mut self, parent: NodeId, label: &Name) -> NodeId {
        let attrs: Vec<(Name, Value)> = self
            .mapping
            .target_dtd
            .attrs(label)
            .iter()
            .map(|a| {
                (a.clone(), {
                    let v = Value::Null(self.next_null);
                    self.next_null += 1;
                    v
                })
            })
            .collect();
        self.tree.add_child(parent, label.clone(), attrs)
    }

    fn instantiate(
        &mut self,
        node: NodeId,
        pattern: &Pattern,
        values: &BTreeMap<Var, Value>,
    ) -> Result<(), ChaseError> {
        self.unify_attrs(node, pattern, values)?;
        let parent_label = self.tree.label(node).clone();
        for item in &pattern.list {
            let ListItem::Seq { members, .. } = item else {
                return Err(ChaseError::OutsideFragment(
                    "descendant items are not fully specified".into(),
                ));
            };
            // Fully-specified patterns have single-member sequences.
            let child_pat = &members[0];
            let LabelTest::Label(label) = &child_pat.label else {
                return Err(ChaseError::OutsideFragment("wildcard label".into()));
            };
            // The slot must exist under the parent label.
            let nr = self
                .mapping
                .target_dtd
                .nested_relational()
                .expect("checked in canonical_solution");
            let Some((_, mult)) = nr
                .slots(&parent_label)
                .iter()
                .find(|(l, _)| l == label)
                .cloned()
            else {
                return Err(ChaseError::NotEmbeddable(format!(
                    "{label} is not a child slot of {parent_label}"
                )));
            };
            let child_node = if mult.repeatable() {
                self.create(node, label)
            } else {
                // The unique per-parent node: reuse if present.
                match self
                    .tree
                    .children(node)
                    .iter()
                    .find(|&&c| self.tree.label(c) == label)
                    .copied()
                {
                    Some(c) => c,
                    None => self.create(node, label),
                }
            };
            self.instantiate(child_node, child_pat, values)?;
        }
        Ok(())
    }

    /// Adds missing mandatory children, recursively, and orders children by
    /// the production's slot order.
    fn complete(&mut self, node: NodeId) -> Result<(), ChaseError> {
        let label = self.tree.label(node).clone();
        let nr = self
            .mapping
            .target_dtd
            .nested_relational()
            .expect("checked in canonical_solution");
        let slots: Vec<(Name, Mult)> = nr.slots(&label).to_vec();
        // Count children per label; verify every child has a slot.
        let mut by_label: BTreeMap<Name, Vec<NodeId>> = BTreeMap::new();
        for &c in self.tree.children(node) {
            by_label
                .entry(self.tree.label(c).clone())
                .or_default()
                .push(c);
        }
        let mut ordered: Vec<NodeId> = Vec::new();
        for (slot_label, mult) in &slots {
            let kids = by_label.remove(slot_label).unwrap_or_default();
            match (mult, kids.len()) {
                (Mult::One | Mult::Opt, n) if n > 1 => {
                    return Err(ChaseError::MultiplicityConflict(format!(
                        "{n} children labelled {slot_label} under {label}, slot allows one"
                    )));
                }
                (Mult::One | Mult::Plus, 0) => {
                    ordered.push(self.create(node, slot_label));
                }
                _ => {}
            }
            ordered.extend(kids);
        }
        if let Some((stray, _)) = by_label.into_iter().next() {
            return Err(ChaseError::NotEmbeddable(format!(
                "{stray} is not a child slot of {label}"
            )));
        }
        self.reorder_children(node, ordered);
        for c in self.tree.children(node).to_vec() {
            self.complete(c)?;
        }
        Ok(())
    }

    fn reorder_children(&mut self, node: NodeId, ordered: Vec<NodeId>) {
        // Rebuild the child list in slot order (same multiset of ids).
        debug_assert_eq!(ordered.len(), self.tree.children(node).len());
        self.tree.set_children(node, ordered);
    }
}

/// Builds the canonical solution of `source` under `m`, or proves none
/// exists. Fragment: fully-specified stds, nested-relational tree-shaped
/// target DTD, no *source-side* inequalities restrictions are needed —
/// source conditions only filter firings and are handled by [`Std::firings`].
pub fn canonical_solution(m: &Mapping, source: &Tree) -> Result<Tree, ChaseError> {
    if !m.source_dtd.conforms(source) {
        return Err(ChaseError::SourceNotConforming);
    }
    let Some(nr) = m.target_dtd.nested_relational() else {
        return Err(ChaseError::OutsideFragment(
            "target DTD is not nested-relational".into(),
        ));
    };
    if !nr.is_tree_shaped() {
        return Err(ChaseError::OutsideFragment(
            "target DTD is not tree-shaped".into(),
        ));
    }
    for s in &m.stds {
        if !s.target.is_fully_specified() {
            return Err(ChaseError::OutsideFragment(format!(
                "target pattern of `{s}` is not fully specified"
            )));
        }
    }

    // Root node with fresh-null attributes.
    let mut chaser = Chaser {
        mapping: m,
        tree: Tree::new(m.target_dtd.root().clone()),
        subst: Subst::default(),
        next_null: 0,
        neq_obligations: Vec::new(),
    };
    let root_attrs: Vec<(Name, Value)> = m
        .target_dtd
        .attrs(m.target_dtd.root())
        .iter()
        .map(|a| {
            (a.clone(), {
                let v = Value::Null(chaser.next_null);
                chaser.next_null += 1;
                v
            })
        })
        .collect();
    chaser.tree.set_attrs(Tree::ROOT, root_attrs);

    // Match enumeration per std is read-only and independent, so fan it
    // out across threads on non-trivial inputs; the instantiation loop
    // below stays sequential (it mutates one shared partial document, and
    // firing order is what makes the construction deterministic).
    let firings_per_std: Vec<Vec<Valuation>> =
        if m.stds.len() > 1 && source.size() >= crate::stds::PAR_NODE_THRESHOLD {
            xmlmap_par::par_map(&m.stds, |s| s.firings(source))
        } else {
            m.stds.iter().map(|s| s.firings(source)).collect()
        };

    for (si, (s, firings)) in m.stds.iter().zip(firings_per_std).enumerate() {
        for firing in firings {
            let values = chaser.firing_values(s, &firing, si)?;
            // The target pattern is rooted at the document root.
            let LabelTest::Label(root_label) = &s.target.label else {
                return Err(ChaseError::OutsideFragment("wildcard root".into()));
            };
            if root_label != m.target_dtd.root() {
                return Err(ChaseError::NotEmbeddable(format!(
                    "target pattern of std #{si} is rooted at {root_label}, \
                     the target DTD root is {}",
                    m.target_dtd.root()
                )));
            }
            chaser.instantiate(Tree::ROOT, &s.target, &values)?;
        }
    }
    chaser.complete(Tree::ROOT)?;

    // Deferred ≠ obligations under the final substitution.
    for (a, b, what) in &chaser.neq_obligations {
        if chaser.subst.resolve(a) == chaser.subst.resolve(b) {
            return Err(ChaseError::InequalityViolated(what.clone()));
        }
    }

    // Apply the substitution to the document.
    let mut tree = chaser.tree.clone();
    for node in tree.nodes().collect::<Vec<_>>() {
        let resolved: Vec<(Name, Value)> = tree
            .attrs(node)
            .iter()
            .map(|(a, v)| (a.clone(), chaser.subst.resolve(v)))
            .collect();
        tree.set_attrs(node, resolved);
    }
    debug_assert!(m.target_dtd.conforms(&tree), "chase output must conform");
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stds::Std;
    use xmlmap_dtd::Dtd;
    use xmlmap_trees::tree;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
        Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        )
    }

    #[test]
    fn basic_copy_mapping() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let sol = canonical_solution(&m, &src).unwrap();
        assert!(m.is_solution(&src, &sol));
        assert_eq!(sol.children(Tree::ROOT).len(), 2);
    }

    #[test]
    fn completion_fills_mandatory_nodes() {
        // Even with no firings, the target skeleton must exist.
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b, c?\nb -> d\nd @ w",
            &["r/a(x) --> r/b/d(x)"],
        );
        let sol = canonical_solution(&m, &tree!("r")).unwrap();
        assert!(m.target_dtd.conforms(&sol));
        assert_eq!(sol.size(), 3); // r, b, d — d's attribute is a null
        let d_node = sol.children(sol.children(Tree::ROOT)[0])[0];
        assert!(sol.attr(d_node, "w").unwrap().is_null());

        // With a firing, the shared value lands in d.
        let src = tree!("r"["a"("v" = "42")]);
        let sol = canonical_solution(&m, &src).unwrap();
        let d_node = sol.children(sol.children(Tree::ROOT)[0])[0];
        assert_eq!(sol.attr(d_node, "w"), Some(&Value::str("42")));
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn rigid_conflict_has_no_solution() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b\nb @ w",
            &["r/a(x) --> r/b(x)"],
        );
        let src = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let err = canonical_solution(&m, &src).unwrap_err();
        assert!(matches!(err, ChaseError::ValueConflict(_)), "{err}");
        // Agrees with the bounded oracle.
        assert!(crate::bounded::solution_exists(&m, &src, 4).is_none());
        // One value is fine.
        let src1 = tree!("r" [ "a"("v" = "1"), "a"("v" = "1") ]);
        let sol = canonical_solution(&m, &src1).unwrap();
        assert!(m.is_solution(&src1, &sol));
    }

    #[test]
    fn repeatable_slots_keep_tuples_separate() {
        let m = mapping(
            "root r\nr -> a*\na @ v, w",
            "root r\nr -> b*\nb -> c\nb @ x\nc @ y",
            &["r/a(x, y) --> r/b(x)/c(y)"],
        );
        let src = tree! {
            "r" [ "a"("v" = "1", "w" = "one"), "a"("v" = "1", "w" = "uno") ]
        };
        let sol = canonical_solution(&m, &src).unwrap();
        assert!(m.is_solution(&src, &sol));
        // Two b nodes even though their x values coincide: the chase only
        // merges when the DTD forces it.
        assert_eq!(sol.children(Tree::ROOT).len(), 2);
    }

    #[test]
    fn existential_variables_get_nulls() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ x, y",
            &["r/a(x) --> r/b(x, z)"],
        );
        let src = tree!("r"["a"("v" = "1")]);
        let sol = canonical_solution(&m, &src).unwrap();
        let b = sol.children(Tree::ROOT)[0];
        assert_eq!(sol.attr(b, "x"), Some(&Value::str("1")));
        assert!(sol.attr(b, "y").unwrap().is_null());
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn target_equalities_propagate() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ x, y",
            &["r/a(x) --> r[b(x, z)] ; z = x"],
        );
        let src = tree!("r"["a"("v" = "7")]);
        let sol = canonical_solution(&m, &src).unwrap();
        let b = sol.children(Tree::ROOT)[0];
        assert_eq!(sol.attr(b, "y"), Some(&Value::str("7")));
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn target_inequality_violation_detected() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ x, y",
            &["r/a(x) --> r[b(x, z)] ; z = x, z != x"],
        );
        let src = tree!("r"["a"("v" = "7")]);
        let err = canonical_solution(&m, &src).unwrap_err();
        assert!(matches!(err, ChaseError::InequalityViolated(_)), "{err}");
    }

    #[test]
    fn satisfiable_inequality_passes() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b\nb @ x, y",
            &["r/a(x) --> r[b(x, z)] ; z != x"],
        );
        let src = tree!("r"["a"("v" = "7")]);
        let sol = canonical_solution(&m, &src).unwrap();
        assert!(m.is_solution(&src, &sol));
    }

    #[test]
    fn unembeddable_pattern() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b",
            &["r/a(x) --> r/nosuch(x)"],
        );
        let src = tree!("r"["a"("v" = "1")]);
        assert!(matches!(
            canonical_solution(&m, &src),
            Err(ChaseError::NotEmbeddable(_))
        ));
    }

    #[test]
    fn outside_fragment_errors() {
        let m = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r/a(x) --> r//b(x)"],
        );
        assert!(matches!(
            canonical_solution(&m, &tree!("r"["a"("v" = "1")])),
            Err(ChaseError::OutsideFragment(_))
        ));
        let m2 = mapping(
            "root r\nr -> a\na @ v",
            "root r\nr -> b|c",
            &["r/a(x) --> r/b"],
        );
        assert!(matches!(
            canonical_solution(&m2, &tree!("r"["a"("v" = "1")])),
            Err(ChaseError::OutsideFragment(_))
        ));
    }

    #[test]
    fn source_conditions_filter_firings() {
        let m = mapping(
            "root r\nr -> a, a\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r[a(x) -> a(y)] ; x != y --> r/b(x)"],
        );
        // Equal values: std does not fire; canonical solution is skeletal.
        let src_eq = tree!("r" [ "a"("v" = "1"), "a"("v" = "1") ]);
        let sol = canonical_solution(&m, &src_eq).unwrap();
        assert_eq!(sol.size(), 1);
        // Distinct values: fires once.
        let src_ne = tree!("r" [ "a"("v" = "1"), "a"("v" = "2") ]);
        let sol = canonical_solution(&m, &src_ne).unwrap();
        assert_eq!(sol.size(), 2);
        assert!(m.is_solution(&src_ne, &sol));
    }
}
