//! Consistency of schema mappings (paper §5).
//!
//! `CONS(σ)`: given `M = (D_s, D_t, Σ)`, is `⟦M⟧ ≠ ∅`?
//!
//! | fragment | procedure | paper result |
//! |---|---|---|
//! | no data comparisons (σ ⊆ {⇓,⇒}) | [`consistent`] via the type-fixpoint engine | EXPTIME-complete (Fact 5.1, Thm 5.2) |
//! | + nested-relational DTDs, σ ⊆ {⇓} | [`consistent_nr_ptime`] | PTIME (Fact 5.1) |
//! | with `=`/`≠` | [`consistent_bounded`](crate::bounded::consistent_bounded) semi-procedure | undecidable (Thm 5.4); NEXPTIME-complete over NR DTDs (Thm 5.5) |
//!
//! The data-free procedure is justified by the all-equal-values reduction:
//! without `≠` anywhere and without equalities *restricting source
//! firings*, a mapping is consistent iff its value-stripped version is —
//! give every attribute the same constant and both witnesses carry over.

use crate::signature::Signature;
use crate::stds::Mapping;
use std::collections::BTreeSet;
use xmlmap_patterns::sat::{self, BudgetExceeded, SatCache};
use xmlmap_patterns::Pattern;
use xmlmap_trees::Tree;

/// Result of a consistency check.
#[derive(Clone, Debug)]
pub enum ConsAnswer {
    /// The mapping is consistent; a witness pair is attached.
    Consistent {
        /// A source document with a solution.
        source: Tree,
        /// One of its solutions.
        target: Tree,
    },
    /// No source document has a solution.
    Inconsistent,
}

impl ConsAnswer {
    /// Boolean view.
    pub fn is_consistent(&self) -> bool {
        matches!(self, ConsAnswer::Consistent { .. })
    }
}

/// Why the exact procedures do not apply to a mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConsError {
    /// The mapping uses data comparisons that make consistency undecidable
    /// in general (Thm 5.4). Use the bounded semi-procedure.
    DataComparisons(Signature),
    /// The exploration budget was exhausted (the problem is
    /// EXPTIME-complete; adversarial inputs blow up).
    Budget(BudgetExceeded),
}

impl std::fmt::Display for ConsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsError::DataComparisons(sig) => write!(
                f,
                "consistency is undecidable for {sig} (Thm 5.4); use consistent_bounded"
            ),
            ConsError::Budget(b) => write!(f, "{b}"),
        }
    }
}

impl std::error::Error for ConsError {}

/// Does the mapping qualify for the exact (data-free) procedure?
///
/// Requirements: no `≠` conditions anywhere, no `=` conditions on the
/// source, no repeated source variables. Target-side equality (explicit or
/// by reuse) is fine: the all-equal valuation satisfies it.
pub fn data_free(m: &Mapping) -> bool {
    m.stds.iter().all(|s| {
        s.source_cond.is_empty()
            && !s.source.has_repeated_variable()
            && s.target_cond
                .iter()
                .all(|c| c.op == crate::cond::CompOp::Eq)
    })
}

/// `CONS(⇓,⇒)` — Theorem 5.2 / Fact 5.1: exact consistency for mappings
/// without data comparisons, via achievable match sets.
///
/// The mapping is consistent iff some achievable source match set `J` has a
/// satisfiable target side `D_t ∧ {π′_j : j ∈ J}`. Returns witness trees.
///
/// Convenience wrapper over [`consistent_cached`] with fresh caches; when
/// probing one schema pair repeatedly, build the [`SatCache`]s once.
pub fn consistent(m: &Mapping, budget: usize) -> Result<ConsAnswer, ConsError> {
    let src = SatCache::new(&m.source_dtd).with_context("consistency (source match sets)");
    let tgt = SatCache::new(&m.target_dtd).with_context("consistency (target side)");
    consistent_cached(m, &src, &tgt, budget)
}

/// [`consistent`] against caller-held [`SatCache`]s (`src` compiled from
/// `m.source_dtd`, `tgt` from `m.target_dtd`).
///
/// Instead of one satisfiability run per candidate match set `J` (up to
/// `2^n`), a single joint run over *all* target patterns enumerates the
/// achievable target match sets `K`; the target side of `J` is satisfiable
/// iff some achievable `K ⊇ J` — its witness matches every pattern of `J`,
/// and conversely any tree matching all of `J` realises an exact match set
/// containing `J`.
pub fn consistent_cached(
    m: &Mapping,
    src: &SatCache,
    tgt: &SatCache,
    budget: usize,
) -> Result<ConsAnswer, ConsError> {
    if !data_free(m) {
        return Err(ConsError::DataComparisons(m.signature()));
    }
    let sources: Vec<&Pattern> = m.stds.iter().map(|s| &s.source).collect();
    let match_sets = src
        .achievable_match_sets(&sources, budget)
        .map_err(ConsError::Budget)?;

    // Try smaller match sets first: fewer target obligations.
    let mut ordered: Vec<&(BTreeSet<usize>, Tree)> = match_sets.iter().collect();
    ordered.sort_by_key(|(j, _)| j.len());

    // An achievable empty match set fires nothing: consistent iff the
    // target DTD has any conforming tree (skips the joint run below).
    if let Some((_, source_witness)) = ordered.first().filter(|(j, _)| j.is_empty()) {
        return Ok(
            match tgt
                .satisfiable_all(&[], budget)
                .map_err(ConsError::Budget)?
            {
                Some(target_witness) => ConsAnswer::Consistent {
                    source: source_witness.clone(),
                    target: target_witness,
                },
                None => ConsAnswer::Inconsistent, // target DTD unsatisfiable
            },
        );
    }

    let targets: Vec<&Pattern> = m.stds.iter().map(|s| &s.target).collect();
    let ks = tgt
        .achievable_match_sets(&targets, budget)
        .map_err(ConsError::Budget)?;
    for (j, source_witness) in ordered {
        if let Some((_, target_witness)) = ks.iter().find(|(k, _)| j.is_subset(k)) {
            return Ok(ConsAnswer::Consistent {
                source: source_witness.clone(),
                target: target_witness.clone(),
            });
        }
    }
    Ok(ConsAnswer::Inconsistent)
}

/// The minimal document of a nested-relational DTD: mandatory slots only
/// (`ℓ` and `ℓ⁺` get one child, `ℓ?`/`ℓ*` get none), all attributes equal.
pub fn minimal_nr_tree(dtd: &xmlmap_dtd::Dtd) -> Option<Tree> {
    let nr = dtd.nested_relational()?;
    fn fill(
        dtd: &xmlmap_dtd::Dtd,
        nr: &xmlmap_dtd::NestedRelationalView,
        tree: &mut Tree,
        at: xmlmap_trees::NodeId,
        label: &xmlmap_trees::Name,
    ) {
        for (child, mult) in nr.slots(label) {
            if matches!(mult, xmlmap_dtd::Mult::One | xmlmap_dtd::Mult::Plus) {
                let node = tree.add_child(
                    at,
                    child.clone(),
                    dtd.attrs(child)
                        .iter()
                        .map(|a| (a.clone(), xmlmap_trees::Value::str("d"))),
                );
                fill(dtd, nr, tree, node, child);
            }
        }
    }
    let mut tree = Tree::with_root_attrs(
        dtd.root().clone(),
        dtd.attrs(dtd.root())
            .iter()
            .map(|a| (a.clone(), xmlmap_trees::Value::str("d"))),
    );
    fill(dtd, &nr, &mut tree, Tree::ROOT, dtd.root());
    Some(tree)
}

/// `CONS(⇓)` over nested-relational DTDs — the PTIME case of Fact 5.1.
///
/// Over nested-relational DTDs, downward patterns are preserved under the
/// embedding of the minimal document into any conforming document, so the
/// match set `J₀` of the minimal document is contained in every achievable
/// match set. Consistency then reduces to: every std fired by the minimal
/// document has a satisfiable target side (satisfiability of a conjunction
/// over an NR DTD is satisfiability of each conjunct).
///
/// Returns `None` if the mapping is outside the fragment (non-NR DTDs,
/// horizontal axes, or data comparisons).
pub fn consistent_nr_ptime(m: &Mapping) -> Option<bool> {
    if !data_free(m) || m.signature().has_horizontal() {
        return None;
    }
    let t0 = minimal_nr_tree(&m.source_dtd)?;
    m.target_dtd.nested_relational()?;
    let mut ok = true;
    for s in &m.stds {
        if xmlmap_patterns::matches(&t0, &s.source) {
            match xmlmap_patterns::sat::satisfiable_nr(&m.target_dtd, &s.target) {
                Some(sat) => ok &= sat,
                None => return None, // pattern outside the downward fragment
            }
        }
    }
    Some(ok)
}

/// Consistency of composition — `CONSCOMP(σ)` (Thm 7.1), exact for
/// data-free mappings: is `⟦M⟧ ∘ ⟦M′⟧ ≠ ∅`?
///
/// For each achievable source match set `J` of `M`, the middle document
/// must satisfy all fired targets of `M` while its own match set `K` over
/// `M′`'s sources leaves `M′`'s target side satisfiable. The middle
/// analysis runs the type-fixpoint engine over `D₂` with both pattern
/// families at once.
pub fn composition_consistent(
    m12: &Mapping,
    m23: &Mapping,
    budget: usize,
) -> Result<bool, ConsError> {
    let src = SatCache::new(&m12.source_dtd).with_context("composition consistency (source)");
    let mid = SatCache::new(&m12.target_dtd).with_context("composition consistency (middle)");
    let tgt = SatCache::new(&m23.target_dtd).with_context("composition consistency (target)");
    composition_consistent_cached(m12, m23, &src, &mid, &tgt, budget)
}

/// [`composition_consistent`] against caller-held [`SatCache`]s (`src` for
/// `m12.source_dtd`, `mid` for the shared middle schema, `tgt` for
/// `m23.target_dtd`). The final side uses one joint run over all Σ23
/// targets, as in [`consistent_cached`].
pub fn composition_consistent_cached(
    m12: &Mapping,
    m23: &Mapping,
    src: &SatCache,
    mid: &SatCache,
    tgt: &SatCache,
    budget: usize,
) -> Result<bool, ConsError> {
    if !data_free(m12) || !data_free(m23) {
        return Err(ConsError::DataComparisons(
            m12.signature().union(m23.signature()),
        ));
    }
    let sources1: Vec<&Pattern> = m12.stds.iter().map(|s| &s.source).collect();
    let js = src
        .achievable_match_sets(&sources1, budget)
        .map_err(ConsError::Budget)?;

    // Middle patterns: Σ12 targets (must hold when fired) + Σ23 sources
    // (their exact match set drives Σ23's obligations).
    let n12 = m12.stds.len();
    let mut middle: Vec<&Pattern> = m12.stds.iter().map(|s| &s.target).collect();
    middle.extend(m23.stds.iter().map(|s| &s.source));
    let middle_sets = mid
        .achievable_match_sets(&middle, budget)
        .map_err(ConsError::Budget)?;

    // Viable Σ23 obligation sets: some achievable source J is covered by a
    // middle match set inducing them.
    let mut viable: Vec<BTreeSet<usize>> = Vec::new();
    for (mset, _) in middle_sets.iter() {
        // The middle document must match every fired Σ12 target...
        if !js.iter().any(|(j, _)| j.iter().all(|i| mset.contains(i))) {
            continue;
        }
        // ...and its Σ23 match set K determines the final obligations.
        let k: BTreeSet<usize> = mset
            .iter()
            .filter(|&&x| x >= n12)
            .map(|&x| x - n12)
            .collect();
        if !viable.contains(&k) {
            viable.push(k);
        }
    }
    final_side_satisfiable(m23, tgt, viable, budget)
}

/// Is some obligation set's target side `D_t ∧ {targets of K}` satisfiable?
/// One joint run over all targets answers every `K` at once (`K` is
/// satisfiable iff some achievable target match set contains it).
fn final_side_satisfiable(
    m: &Mapping,
    tgt: &SatCache,
    mut obligations: Vec<BTreeSet<usize>>,
    budget: usize,
) -> Result<bool, ConsError> {
    if obligations.is_empty() {
        return Ok(false);
    }
    obligations.sort_by_key(|k| k.len());
    if obligations[0].is_empty() {
        // Nothing fired: satisfiable iff the target DTD has any tree — and
        // if it has none, no other obligation set can do better.
        return Ok(tgt
            .satisfiable_all(&[], budget)
            .map_err(ConsError::Budget)?
            .is_some());
    }
    let targets: Vec<&Pattern> = m.stds.iter().map(|s| &s.target).collect();
    let ks = tgt
        .achievable_match_sets(&targets, budget)
        .map_err(ConsError::Budget)?;
    Ok(obligations
        .iter()
        .any(|k| ks.iter().any(|(kk, _)| k.is_subset(kk))))
}

/// Consistency of an n-fold composition `⟦M₁⟧ ∘ … ∘ ⟦Mₙ⟧` (Prop 7.2),
/// exact for data-free mappings.
///
/// Generalises [`composition_consistent`]: walk the chain left to right,
/// tracking which *sets of fired-target obligations* are achievable at each
/// schema. At schema `i` the engine enumerates achievable match sets over
/// the pattern family (targets of `Mᵢ` ∪ sources of `Mᵢ₊₁`); a middle
/// match set is viable iff it covers some currently-achievable obligation
/// set, and it induces the obligation set for the next schema.
pub fn composition_chain_consistent(chain: &[&Mapping], budget: usize) -> Result<bool, ConsError> {
    let Some((first, rest)) = chain.split_first() else {
        return Ok(true); // the empty composition is the identity
    };
    for m in chain {
        if !data_free(m) {
            return Err(ConsError::DataComparisons(m.signature()));
        }
    }
    // Obligation sets achievable at the current schema boundary: the sets
    // of target patterns of the previous mapping that must hold.
    let sources: Vec<&Pattern> = first.stds.iter().map(|s| &s.source).collect();
    let js = sat::achievable_match_sets(&first.source_dtd, &sources, budget)
        .map_err(ConsError::Budget)?;
    let mut obligations: Vec<BTreeSet<usize>> = js.into_iter().map(|(j, _)| j).collect();
    obligations.sort();
    obligations.dedup();

    let mut prev = *first;
    for m in rest {
        // Patterns at the shared middle schema: prev's targets + m's sources.
        let n_prev = prev.stds.len();
        let mut middle: Vec<&Pattern> = prev.stds.iter().map(|s| &s.target).collect();
        middle.extend(m.stds.iter().map(|s| &s.source));
        let middle_sets = sat::achievable_match_sets(&prev.target_dtd, &middle, budget)
            .map_err(ConsError::Budget)?;
        let mut next: Vec<BTreeSet<usize>> = Vec::new();
        for (mset, _) in &middle_sets {
            let satisfies_some_obligation = obligations
                .iter()
                .any(|j| j.iter().all(|i| mset.contains(i)));
            if !satisfies_some_obligation {
                continue;
            }
            let k: BTreeSet<usize> = mset
                .iter()
                .filter(|&&x| x >= n_prev)
                .map(|&x| x - n_prev)
                .collect();
            if !next.contains(&k) {
                next.push(k);
            }
        }
        if next.is_empty() {
            return Ok(false);
        }
        obligations = next;
        prev = *m;
    }
    // Final schema: some obligation set must have a satisfiable target side
    // (one joint run over all of prev's targets).
    let tgt = SatCache::new(&prev.target_dtd).with_context("chain consistency (final side)");
    final_side_satisfiable(prev, &tgt, obligations, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stds::Std;
    use xmlmap_dtd::Dtd;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn mapping(ds: &str, dt: &str, stds: &[&str]) -> Mapping {
        Mapping::new(
            dtd(ds),
            dtd(dt),
            stds.iter().map(|s| Std::parse(s).unwrap()).collect(),
        )
    }

    const BUDGET: usize = 500_000;

    #[test]
    fn intro_inconsistency_example() {
        // §1: target changes to r → courses, students — course nodes can no
        // longer be children of the root, so the mapping is inconsistent
        // ... unless no source document fires the std. Here prof is starred
        // so the empty source works: the std never fires. Force firing with
        // prof+ to reproduce the paper's inconsistency.
        let m = mapping(
            "root r
             r -> prof+
             prof -> course
             course @ cno",
            "root r
             r -> courses
             courses -> course*
             course @ cno",
            &["r/prof/course(c) --> r/course(c)"],
        );
        let ans = consistent(&m, BUDGET).unwrap();
        assert!(!ans.is_consistent());

        // The corrected std (courses in between) is consistent.
        let fixed = mapping(
            "root r
             r -> prof+
             prof -> course
             course @ cno",
            "root r
             r -> courses
             courses -> course*
             course @ cno",
            &["r/prof/course(c) --> r/courses/course(c)"],
        );
        let ans = consistent(&fixed, BUDGET).unwrap();
        let ConsAnswer::Consistent { source, target } = &ans else {
            panic!("should be consistent");
        };
        assert!(fixed.is_solution(source, target));
    }

    #[test]
    fn vacuous_when_source_optional() {
        // Same shapes but prof*: empty source fires nothing ⇒ consistent.
        let m = mapping(
            "root r\nr -> prof*\nprof -> course\ncourse @ cno",
            "root r\nr -> courses\ncourses -> course*\ncourse @ cno",
            &["r/prof/course(c) --> r/course(c)"],
        );
        let ans = consistent(&m, BUDGET).unwrap();
        assert!(ans.is_consistent());
        let ConsAnswer::Consistent { source, target } = ans else {
            unreachable!()
        };
        assert!(m.is_solution(&source, &target));
        assert_eq!(source.size(), 1); // the empty document
    }

    #[test]
    fn horizontal_consistency() {
        // Source forces a before b; target std demands b ->* a: the target
        // DTD fixes the order a, b, so the mapping is inconsistent whenever
        // the source fires — and the source always fires.
        let m = mapping(
            "root r\nr -> a, b\na @ v\nb @ v",
            "root r\nr -> a, b\na @ v\nb @ v",
            &["r[a(x) -> b(y)] --> r[b(y) ->* a(x)]"],
        );
        assert!(!consistent(&m, BUDGET).unwrap().is_consistent());

        let ok = mapping(
            "root r\nr -> a, b\na @ v\nb @ v",
            "root r\nr -> a, b\na @ v\nb @ v",
            &["r[a(x) -> b(y)] --> r[a(x) ->* b(y)]"],
        );
        assert!(consistent(&ok, BUDGET).unwrap().is_consistent());
    }

    #[test]
    fn rejects_data_comparisons() {
        let m = mapping(
            "root r\nr -> a*\na @ v",
            "root r\nr -> b*\nb @ w",
            &["r[a(x), a(y)] ; x != y --> r/b(x)"],
        );
        assert!(matches!(
            consistent(&m, BUDGET),
            Err(ConsError::DataComparisons(_))
        ));
    }

    #[test]
    fn nr_ptime_agrees_with_general() {
        let cases = [
            (
                "root r\nr -> a, b*\na @ v",
                "root r\nr -> c\nc @ w",
                vec!["r/a(x) --> r/c(x)"],
                true,
            ),
            (
                // source a is mandatory, target needs an impossible shape
                "root r\nr -> a\na @ v",
                "root r\nr -> c\nc @ w",
                vec!["r/a(x) --> r/c(x)/c(y)"],
                false,
            ),
            (
                // fired only if optional branch present ⇒ still consistent
                "root r\nr -> a?\na @ v",
                "root r\nr -> c\nc @ w",
                vec!["r/a(x) --> r/d(x)"],
                true,
            ),
        ];
        for (ds, dt, stds, expect) in cases {
            let m = mapping(ds, dt, &stds);
            let fast = consistent_nr_ptime(&m).expect("inside fragment");
            let slow = consistent(&m, BUDGET).unwrap().is_consistent();
            assert_eq!(fast, slow, "{stds:?}");
            assert_eq!(fast, expect, "{stds:?}");
        }
    }

    #[test]
    fn nr_ptime_outside_fragment() {
        // Horizontal axis: not applicable.
        let m = mapping(
            "root r\nr -> a, b",
            "root r\nr -> a, b",
            &["r[a -> b] --> r[a]"],
        );
        assert!(consistent_nr_ptime(&m).is_none());
        // Non-NR DTD (disjunction).
        let m2 = mapping("root r\nr -> a|b", "root r\nr -> c", &["r/a --> r/c"]);
        assert!(consistent_nr_ptime(&m2).is_none());
    }

    #[test]
    fn chain_consistency_matches_pairwise() {
        let m12 = mapping("root r\nr -> a", "root m\nm -> b", &["r/a --> m/b"]);
        let m23 = mapping("root m\nm -> b", "root w\nw -> c", &["m/b --> w/c"]);
        let m34 = mapping("root w\nw -> c", "root z\nz -> d?", &["w/c --> z/d"]);
        assert!(composition_chain_consistent(&[&m12, &m23, &m34], BUDGET).unwrap());
        // Break the last link: the fired obligation has no satisfiable target.
        let m34bad = mapping("root w\nw -> c", "root z\nz -> d?", &["w/c --> z/d/d"]);
        assert!(!composition_chain_consistent(&[&m12, &m23, &m34bad], BUDGET).unwrap());
        // Pairwise special case agrees with composition_consistent.
        assert_eq!(
            composition_chain_consistent(&[&m12, &m23], BUDGET).unwrap(),
            composition_consistent(&m12, &m23, BUDGET).unwrap()
        );
        assert_eq!(
            composition_chain_consistent(&[&m23, &m34bad], BUDGET).unwrap(),
            composition_consistent(&m23, &m34bad, BUDGET).unwrap()
        );
        // Length-one chain = plain consistency.
        assert_eq!(
            composition_chain_consistent(&[&m12], BUDGET).unwrap(),
            consistent(&m12, BUDGET).unwrap().is_consistent()
        );
        // Empty chain is trivially consistent.
        assert!(composition_chain_consistent(&[], BUDGET).unwrap());
    }

    #[test]
    fn conscomp_basic() {
        // M12: a → b; M23: b → c. Composition consistent.
        let m12 = mapping("root r\nr -> a", "root r\nr -> b", &["r/a --> r/b"]);
        let m23 = mapping("root r\nr -> b", "root r\nr -> c", &["r/b --> r/c"]);
        assert!(composition_consistent(&m12, &m23, BUDGET).unwrap());

        // Incompatible middle: M12 needs b at the root's child, M23's
        // source DTD is the same, but M23 maps b to an impossible target.
        let m23bad = mapping(
            "root r\nr -> b",
            "root r\nr -> c",
            &["r/b --> r/c/c"], // c below c is impossible: c → ε
        );
        assert!(!composition_consistent(&m12, &m23bad, BUDGET).unwrap());
    }

    #[test]
    fn conscomp_consistent_parts_inconsistent_whole() {
        // M12 forces the middle to contain b1; M23 fires on b1 and demands
        // an impossible final target. Each mapping alone is consistent
        // (M23's source b1 is optional), but the composition is not.
        let m12 = mapping("root r\nr -> a", "root m\nm -> b1", &["r/a --> m/b1"]);
        let m23 = mapping("root m\nm -> b1?", "root w\nw -> c?", &["m/b1 --> w/c/c"]);
        assert!(consistent(&m12, BUDGET).unwrap().is_consistent());
        assert!(consistent(&m23, BUDGET).unwrap().is_consistent());
        assert!(!composition_consistent(&m12, &m23, BUDGET).unwrap());
    }
}
