#![warn(missing_docs)]

//! # xmlmap-core
//!
//! The primary contribution of *XML Schema Mappings* (Amano, Libkin,
//! Murlak; PODS 2009): expressive schema mappings between DTDs, their
//! membership problem, static analysis (consistency and absolute
//! consistency), and composition (semantic and syntactic, with Skolem
//! functions).

pub mod abscons;
pub mod batch;
pub mod bounded;
pub mod chase;
pub mod compose;
pub mod cond;
pub mod consistency;
pub mod engine;
pub mod exchange;
pub mod serve;
pub mod signature;
pub mod skolem;
pub mod stds;
pub mod store;
pub mod stream;

pub use abscons::{abscons_nr_ptime, abscons_structural, abscons_structural_cached, AbsConsAnswer};
pub use batch::{
    parse_jobfile, render_batch, render_results, run_batch, run_job, BatchJob, JobKind, JobParser,
    JobResult,
};
pub use bounded::{
    abscons_violation_bounded, consistent_bounded, solution_exists, solution_exists_cached,
    tree_shapes, BoundedOutcome, ShapeCache,
};
pub use chase::{
    canonical_solution, canonical_solution_cached, parse_updates, ChaseCache, ChaseError,
    DeltaPlan, DeltaStats, IncrementalChase, Update,
};
pub use compose::{compose, composition_member, composition_member_cached, ComposeError};
pub use cond::{all_hold, parse_conditions, CompOp, Comparison};
pub use consistency::{
    composition_chain_consistent, composition_consistent, composition_consistent_cached,
    consistent, consistent_cached, consistent_nr_ptime, minimal_nr_tree, ConsAnswer, ConsError,
};
pub use engine::{CacheCounters, EngineContext, EngineStats};
pub use exchange::{
    certain_answers, certain_answers_cached, nest_solution, reduce_solution, reduced_solution,
    reduced_solution_cached, CertainAnswersError,
};
pub use serve::{
    serve, Endpoint, Response, ServeClient, ServeConfig, ServeSummary, ShutdownHandle,
};
pub use signature::Signature;
pub use skolem::{SkolemMapping, SkolemStd, Term, TermPattern};
pub use stds::{Mapping, Std};
pub use store::{ArtifactStore, Family, LoadError};
pub use stream::{
    chase_stream, stream_document, StreamChaseError, StreamChaseOutcome, StreamChasePlan,
    StreamJobError, StreamOutcome, UnstreamableStd,
};
