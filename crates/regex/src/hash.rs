//! A multiply-xor hasher for dense integer keys.
//!
//! The compiled automata kernels intern millions of tiny keys — bitset
//! words, dense id pairs — through `HashMap`s, where `SipHash`'s per-call
//! overhead dominates the actual probe. [`FastHasher`] folds each 8-byte
//! lane with a rotate-xor-multiply round (the `FxHash` recipe), a few
//! instructions per word. It is *not* DoS-resistant: use it only for
//! interned internal state, never for keys an adversary controls.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Rotate-xor-multiply [`Hasher`] over 8-byte lanes. See the module doc.
#[derive(Clone, Copy, Default)]
pub struct FastHasher(u64);

/// Odd constant close to `2^64 / φ`, the usual Fibonacci-hashing
/// multiplier: consecutive ids spread across the high bits.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut lane = [0u8; 8];
            lane[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(lane));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(K);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (deterministic, zero-seeded).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` with [`FastHasher`] — drop-in for interning tables.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// `HashSet` with [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_roundtrip() {
        let mut m: FastHashMap<Box<[u64]>, usize> = FastHashMap::default();
        for i in 0..1000u64 {
            m.insert(vec![i, i * 17].into_boxed_slice(), i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m[&vec![i, i * 17].into_boxed_slice()], i as usize);
        }
    }

    #[test]
    fn hash_is_deterministic() {
        use std::hash::BuildHasher;
        let build = FastBuildHasher::default();
        let key: (u32, Box<[u64]>) = (7, vec![1, 2, 3].into_boxed_slice());
        assert_eq!(build.hash_one(&key), build.hash_one(key.clone()));
    }
}
