#![warn(missing_docs)]

//! # xmlmap-regex
//!
//! Regular expressions over element-type alphabets, with Glushkov NFAs and
//! subset-construction DFAs. This is the word-automaton substrate used by
//! DTD conformance checking, hedge automata and the consistency procedures
//! of *XML Schema Mappings* (PODS 2009).

pub mod ast;
pub mod dfa;
pub mod hash;
pub mod nfa;

pub use ast::{parse, Regex, RegexParseError};
pub use dfa::{DenseDfa, Determinizer, Dfa};
pub use hash::{FastBuildHasher, FastHashMap, FastHashSet, FastHasher};
pub use nfa::Nfa;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use xmlmap_trees::Name;

    /// A small random regex over the alphabet {a, b, c}.
    fn arb_regex() -> impl Strategy<Value = Regex> {
        let leaf = prop_oneof![
            Just(Regex::Epsilon),
            Just(Regex::symbol("a")),
            Just(Regex::symbol("b")),
            Just(Regex::symbol("c")),
        ];
        leaf.prop_recursive(4, 24, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(x, y)| Regex::Concat(Box::new(x), Box::new(y))),
                (inner.clone(), inner.clone())
                    .prop_map(|(x, y)| Regex::Alt(Box::new(x), Box::new(y))),
                inner.clone().prop_map(Regex::star),
                inner.clone().prop_map(Regex::plus),
                inner.prop_map(Regex::opt),
            ]
        })
    }

    fn arb_word() -> impl Strategy<Value = Vec<Name>> {
        proptest::collection::vec(
            prop_oneof![
                Just(Name::new("a")),
                Just(Name::new("b")),
                Just(Name::new("c"))
            ],
            0..6,
        )
    }

    /// Reference matcher: naive recursive membership on the AST.
    fn matches_ref(r: &Regex, w: &[Name]) -> bool {
        match r {
            Regex::Empty => false,
            Regex::Epsilon => w.is_empty(),
            Regex::Symbol(a) => w.len() == 1 && &w[0] == a,
            Regex::Concat(x, y) => {
                (0..=w.len()).any(|i| matches_ref(x, &w[..i]) && matches_ref(y, &w[i..]))
            }
            Regex::Alt(x, y) => matches_ref(x, w) || matches_ref(y, w),
            Regex::Star(x) => {
                w.is_empty()
                    || (1..=w.len()).any(|i| matches_ref(x, &w[..i]) && matches_ref(r, &w[i..]))
            }
            Regex::Plus(x) => {
                let star = Regex::Star(x.clone());
                (1..=w.len()).any(|i| matches_ref(x, &w[..i]) && matches_ref(&star, &w[i..]))
                    || matches_ref(x, w)
            }
            Regex::Opt(x) => w.is_empty() || matches_ref(x, w),
        }
    }

    proptest! {
        /// Glushkov NFA membership agrees with the naive AST matcher.
        #[test]
        fn nfa_agrees_with_reference(r in arb_regex(), w in arb_word()) {
            let nfa = Nfa::from_regex(&r);
            prop_assert_eq!(nfa.accepts(&w), matches_ref(&r, &w));
        }

        /// Determinisation preserves the language.
        #[test]
        fn dfa_agrees_with_nfa(r in arb_regex(), w in arb_word()) {
            let nfa = Nfa::from_regex(&r);
            let alphabet = vec![Name::new("a"), Name::new("b"), Name::new("c")];
            let dfa = Dfa::determinize(&nfa, alphabet);
            prop_assert_eq!(dfa.accepts(&w), nfa.accepts(&w));
        }

        /// Complement really is complement (over the declared alphabet).
        #[test]
        fn complement_is_pointwise_negation(r in arb_regex(), w in arb_word()) {
            let nfa = Nfa::from_regex(&r);
            let alphabet = vec![Name::new("a"), Name::new("b"), Name::new("c")];
            let dfa = Dfa::determinize(&nfa, alphabet);
            prop_assert_eq!(dfa.complement().accepts(&w), !dfa.accepts(&w));
        }

        /// Display → parse round-trips the AST's language (on sampled words).
        #[test]
        fn display_parse_round_trip(r in arb_regex(), w in arb_word()) {
            let reparsed = parse(&r.to_string()).unwrap();
            prop_assert_eq!(matches_ref(&reparsed, &w), matches_ref(&r, &w));
        }

        /// `nullable` agrees with ε-membership; `shortest_word` is accepted
        /// and is no longer than any sampled accepted word.
        #[test]
        fn nullable_and_shortest(r in arb_regex(), w in arb_word()) {
            prop_assert_eq!(r.nullable(), matches_ref(&r, &[]));
            let nfa = Nfa::from_regex(&r);
            match nfa.shortest_word() {
                None => {
                    prop_assert!(r.is_empty_language());
                    prop_assert!(!matches_ref(&r, &w));
                }
                Some(s) => {
                    prop_assert!(matches_ref(&r, &s));
                    if matches_ref(&r, &w) {
                        prop_assert!(s.len() <= w.len());
                    }
                }
            }
        }

        /// NFA intersection is language intersection.
        #[test]
        fn intersection_is_conjunction(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
            let n1 = Nfa::from_regex(&r1);
            let n2 = Nfa::from_regex(&r2);
            prop_assert_eq!(
                n1.intersect(&n2).accepts(&w),
                n1.accepts(&w) && n2.accepts(&w)
            );
        }

        /// NFA concatenation is language concatenation.
        #[test]
        fn concat_is_product(r1 in arb_regex(), r2 in arb_regex(), w in arb_word()) {
            let n1 = Nfa::from_regex(&r1);
            let n2 = Nfa::from_regex(&r2);
            let cat = n1.concat(&n2);
            let expected = (0..=w.len())
                .any(|i| n1.accepts(&w[..i]) && n2.accepts(&w[i..]));
            prop_assert_eq!(cat.accepts(&w), expected);
        }
    }
}
