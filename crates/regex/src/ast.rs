//! Regular expressions over element-type alphabets.
//!
//! DTD productions map element types to regular expressions over `Γ − {r}`
//! (paper §2). The grammar used by the textual parser is DTD-flavoured:
//!
//! ```text
//! alt  := cat ('|' cat)*
//! cat  := rep (',' rep)*
//! rep  := atom ('*' | '+' | '?')*
//! atom := name | '(' alt ')' | 'eps' | 'empty'
//! ```
//!
//! so `teach, supervise`, `course, course`, `prof*`, `b1|b2` and
//! `c1?, c2?, c3?` all parse as in the paper.

use std::collections::BTreeSet;
use std::fmt;
use xmlmap_trees::Name;

/// A regular expression over an alphabet of [`Name`]s.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Epsilon,
    /// A single symbol.
    Symbol(Name),
    /// Concatenation.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star.
    Star(Box<Regex>),
    /// One or more.
    Plus(Box<Regex>),
    /// Zero or one.
    Opt(Box<Regex>),
}

impl Regex {
    /// `Symbol` from anything name-like.
    pub fn symbol(s: impl Into<Name>) -> Regex {
        Regex::Symbol(s.into())
    }

    /// Concatenation of a sequence (empty sequence is ε).
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut it = parts.into_iter();
        match it.next() {
            None => Regex::Epsilon,
            Some(first) => it.fold(first, |acc, r| Regex::Concat(Box::new(acc), Box::new(r))),
        }
    }

    /// Alternation of a sequence (empty sequence is ∅).
    pub fn alt(parts: impl IntoIterator<Item = Regex>) -> Regex {
        let mut it = parts.into_iter();
        match it.next() {
            None => Regex::Empty,
            Some(first) => it.fold(first, |acc, r| Regex::Alt(Box::new(acc), Box::new(r))),
        }
    }

    /// Kleene star.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// One-or-more.
    pub fn plus(self) -> Regex {
        Regex::Plus(Box::new(self))
    }

    /// Zero-or-one.
    pub fn opt(self) -> Regex {
        Regex::Opt(Box::new(self))
    }

    /// Does the language contain the empty word?
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Symbol(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Opt(_) => true,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
            Regex::Plus(a) => a.nullable(),
        }
    }

    /// Is the language empty?
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Symbol(_) => false,
            Regex::Concat(a, b) => a.is_empty_language() || b.is_empty_language(),
            Regex::Alt(a, b) => a.is_empty_language() && b.is_empty_language(),
            Regex::Star(_) | Regex::Opt(_) => false, // both contain ε
            Regex::Plus(a) => a.is_empty_language(),
        }
    }

    /// The set of symbols mentioned (not necessarily all usable).
    pub fn symbols(&self) -> BTreeSet<Name> {
        let mut out = BTreeSet::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut BTreeSet<Name>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Symbol(n) => {
                out.insert(n.clone());
            }
            Regex::Concat(a, b) | Regex::Alt(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
            Regex::Star(a) | Regex::Plus(a) | Regex::Opt(a) => a.collect_symbols(out),
        }
    }

    /// A shortest word in the language, if the language is non-empty.
    pub fn shortest_word(&self) -> Option<Vec<Name>> {
        match self {
            Regex::Empty => None,
            Regex::Epsilon => Some(Vec::new()),
            Regex::Symbol(n) => Some(vec![n.clone()]),
            Regex::Concat(a, b) => {
                let mut w = a.shortest_word()?;
                w.extend(b.shortest_word()?);
                Some(w)
            }
            Regex::Alt(a, b) => match (a.shortest_word(), b.shortest_word()) {
                (Some(x), Some(y)) => Some(if x.len() <= y.len() { x } else { y }),
                (Some(x), None) => Some(x),
                (None, y) => y,
            },
            Regex::Star(_) | Regex::Opt(_) => Some(Vec::new()),
            Regex::Plus(a) => a.shortest_word(),
        }
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Precedence: alt (1) < cat (2) < postfix (3).
        fn go(r: &Regex, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
            match r {
                Regex::Empty => write!(f, "empty"),
                Regex::Epsilon => write!(f, "eps"),
                Regex::Symbol(n) => write!(f, "{n}"),
                Regex::Alt(a, b) => {
                    let need = prec > 1;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 1)?;
                    write!(f, "|")?;
                    go(b, f, 1)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Concat(a, b) => {
                    let need = prec > 2;
                    if need {
                        write!(f, "(")?;
                    }
                    go(a, f, 2)?;
                    write!(f, ", ")?;
                    go(b, f, 2)?;
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Regex::Star(a) => {
                    go(a, f, 3)?;
                    write!(f, "*")
                }
                Regex::Plus(a) => {
                    go(a, f, 3)?;
                    write!(f, "+")
                }
                Regex::Opt(a) => {
                    go(a, f, 3)?;
                    write!(f, "?")
                }
            }
        }
        go(self, f, 0)
    }
}

/// Errors raised by the regex parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for RegexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for RegexParseError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, RegexParseError> {
        Err(RegexParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn alt(&mut self) -> Result<Regex, RegexParseError> {
        let mut r = self.cat()?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                let rhs = self.cat()?;
                r = Regex::Alt(Box::new(r), Box::new(rhs));
            } else {
                return Ok(r);
            }
        }
    }

    fn cat(&mut self) -> Result<Regex, RegexParseError> {
        let mut r = self.rep()?;
        loop {
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.pos += 1;
                let rhs = self.rep()?;
                r = Regex::Concat(Box::new(r), Box::new(rhs));
            } else {
                return Ok(r);
            }
        }
    }

    fn rep(&mut self) -> Result<Regex, RegexParseError> {
        let mut r = self.atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.pos += 1;
                    r = r.star();
                }
                Some(b'+') => {
                    self.pos += 1;
                    r = r.plus();
                }
                Some(b'?') => {
                    self.pos += 1;
                    r = r.opt();
                }
                _ => return Ok(r),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, RegexParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let r = self.alt()?;
                self.skip_ws();
                if self.peek() == Some(b')') {
                    self.pos += 1;
                    Ok(r)
                } else {
                    self.err("expected ')'")
                }
            }
            Some(b) if b.is_ascii_alphanumeric() || b == b'_' => {
                let start = self.pos;
                while let Some(b) = self.peek() {
                    if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                let word = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
                match word {
                    "eps" | "epsilon" => Ok(Regex::Epsilon),
                    "empty" => Ok(Regex::Empty),
                    _ => Ok(Regex::symbol(word)),
                }
            }
            _ => self.err("expected a symbol, '(' or 'eps'"),
        }
    }
}

/// Parses the DTD-flavoured regex syntax described at the module level.
pub fn parse(input: &str) -> Result<Regex, RegexParseError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    // An entirely empty production body denotes ε, matching `ℓ → ε` DTD rules.
    if p.pos == p.input.len() {
        return Ok(Regex::Epsilon);
    }
    let r = p.alt()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return p.err("trailing input");
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Regex {
        parse(s).unwrap()
    }

    #[test]
    fn parses_paper_productions() {
        assert_eq!(p("prof*"), Regex::symbol("prof").star());
        assert_eq!(
            p("teach, supervise"),
            Regex::concat([Regex::symbol("teach"), Regex::symbol("supervise")])
        );
        assert_eq!(
            p("course, course"),
            Regex::concat([Regex::symbol("course"), Regex::symbol("course")])
        );
        assert_eq!(
            p("b1|b2"),
            Regex::alt([Regex::symbol("b1"), Regex::symbol("b2")])
        );
        assert_eq!(
            p("c1?, c2?, c3?"),
            Regex::concat([
                Regex::symbol("c1").opt(),
                Regex::symbol("c2").opt(),
                Regex::symbol("c3").opt()
            ])
        );
        assert_eq!(p(""), Regex::Epsilon);
        assert_eq!(p("eps"), Regex::Epsilon);
    }

    #[test]
    fn display_round_trips() {
        for s in [
            "prof*",
            "teach, supervise",
            "(a|b)*, c+",
            "a, (b, c)?",
            "a|b|c",
            "eps",
            "empty",
            "course, student*",
        ] {
            let r = p(s);
            assert_eq!(p(&r.to_string()), r, "round-tripping {s}");
        }
    }

    #[test]
    fn nullable() {
        assert!(p("a*").nullable());
        assert!(p("a?, b?").nullable());
        assert!(!p("a, b*").nullable());
        assert!(p("a|eps").nullable());
        assert!(!p("a+").nullable());
        assert!(!Regex::Empty.nullable());
    }

    #[test]
    fn emptiness() {
        assert!(Regex::Empty.is_empty_language());
        assert!(p("a, empty").is_empty_language());
        assert!(!p("a|empty").is_empty_language());
        assert!(!p("empty*").is_empty_language()); // contains ε
        assert!(!p("a").is_empty_language());
    }

    #[test]
    fn shortest_words() {
        assert_eq!(p("a*").shortest_word(), Some(vec![]));
        assert_eq!(
            p("a, b|c").shortest_word().map(|w| w.len()),
            Some(1) // alternation binds loosest: (a,b)|c — shortest is "c"
        );
        assert_eq!(p("a+, b").shortest_word().map(|w| w.len()), Some(2));
        assert_eq!(Regex::Empty.shortest_word(), None);
    }

    #[test]
    fn precedence() {
        // comma binds tighter than |
        assert_eq!(
            p("a, b|c"),
            Regex::alt([
                Regex::concat([Regex::symbol("a"), Regex::symbol("b")]),
                Regex::symbol("c")
            ])
        );
        // postfix binds tighter than comma
        assert_eq!(
            p("a, b*"),
            Regex::concat([Regex::symbol("a"), Regex::symbol("b").star()])
        );
    }

    #[test]
    fn parse_errors() {
        assert!(parse("(a").is_err());
        assert!(parse("a,,b").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("*").is_err());
    }

    #[test]
    fn symbol_collection() {
        let syms = p("(a|b)*, c, a").symbols();
        let names: Vec<&str> = syms.iter().map(|n| n.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }
}
