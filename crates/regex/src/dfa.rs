//! Deterministic finite automata over an explicit, finite alphabet.
//!
//! Determinisation is needed wherever the consistency procedures reason
//! about *non*-matches: the type-fixpoint engine must find child words that
//! satisfy exactly a prescribed set of sequence constraints, which requires
//! complementing constraint automata. A [`Dfa`] is always total over its
//! declared alphabet (a sink state is added as needed), so complementation
//! is just flipping accepting states.

use crate::nfa::Nfa;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::Hash;

/// A complete DFA over an explicit alphabet.
#[derive(Clone, Debug)]
pub struct Dfa<A> {
    /// The alphabet; transition tables are indexed by position in this list.
    pub alphabet: Vec<A>,
    /// Number of states; `0` is the start state.
    pub num_states: usize,
    /// `accepting[q]` iff q is final.
    pub accepting: Vec<bool>,
    /// `delta[q][i]` is the successor of `q` on `alphabet[i]`.
    pub delta: Vec<Vec<usize>>,
}

impl<A: Clone + Eq + Hash> Dfa<A> {
    /// Subset construction. Transitions of `nfa` on symbols outside
    /// `alphabet` are ignored (they can never fire on words over `alphabet`).
    pub fn determinize(nfa: &Nfa<A>, alphabet: Vec<A>) -> Dfa<A> {
        let sym_index: HashMap<&A, usize> =
            alphabet.iter().enumerate().map(|(i, a)| (a, i)).collect();
        let k = alphabet.len();

        // Pre-index NFA transitions by (state, symbol index).
        let mut by_sym: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); k]; nfa.num_states];
        for (q, ts) in nfa.transitions.iter().enumerate() {
            for (a, q2) in ts {
                if let Some(&i) = sym_index.get(a) {
                    by_sym[q][i].push(*q2);
                }
            }
        }

        let start: BTreeSet<usize> = BTreeSet::from([0]);
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut sets: Vec<BTreeSet<usize>> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert(start.clone(), 0);
        sets.push(start.clone());
        queue.push_back(start);
        let mut delta: Vec<Vec<usize>> = Vec::new();

        while let Some(set) = queue.pop_front() {
            let mut row = Vec::with_capacity(k);
            for (i, _) in alphabet.iter().enumerate() {
                let mut next = BTreeSet::new();
                for &q in &set {
                    next.extend(by_sym[q][i].iter().copied());
                }
                let to = *index.entry(next.clone()).or_insert_with(|| {
                    sets.push(next.clone());
                    queue.push_back(next);
                    sets.len() - 1
                });
                row.push(to);
            }
            delta.push(row);
        }

        let accepting = sets
            .iter()
            .map(|s| s.iter().any(|&q| nfa.accepting[q]))
            .collect();
        Dfa {
            alphabet,
            num_states: sets.len(),
            accepting,
            delta,
        }
    }

    /// Complement (valid because the DFA is complete over its alphabet).
    pub fn complement(&self) -> Dfa<A> {
        Dfa {
            alphabet: self.alphabet.clone(),
            num_states: self.num_states,
            accepting: self.accepting.iter().map(|b| !b).collect(),
            delta: self.delta.clone(),
        }
    }

    /// Does the DFA accept `word`? Words containing symbols outside the
    /// alphabet are rejected.
    pub fn accepts(&self, word: &[A]) -> bool {
        let mut q = 0usize;
        for sym in word {
            match self.alphabet.iter().position(|a| a == sym) {
                Some(i) => q = self.delta[q][i],
                None => return false,
            }
        }
        self.accepting[q]
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.reachable().iter().all(|&q| !self.accepting[q])
    }

    /// Is the language all of `alphabet*`?
    pub fn is_universal(&self) -> bool {
        self.reachable().iter().all(|&q| self.accepting[q])
    }

    fn reachable(&self) -> Vec<usize> {
        let mut seen = vec![false; self.num_states];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut out = Vec::new();
        while let Some(q) = queue.pop_front() {
            out.push(q);
            for &q2 in &self.delta[q] {
                if !seen[q2] {
                    seen[q2] = true;
                    queue.push_back(q2);
                }
            }
        }
        out
    }

    /// View as an NFA (e.g. to reuse product constructions).
    pub fn to_nfa(&self) -> Nfa<A> {
        Nfa {
            num_states: self.num_states,
            accepting: self.accepting.clone(),
            transitions: self
                .delta
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .map(|(i, &q)| (self.alphabet[i].clone(), q))
                        .collect()
                })
                .collect(),
        }
    }

    /// Synchronous product; both DFAs must share the same alphabet order.
    /// `combine` merges acceptance (e.g. `&&` for intersection).
    pub fn product(&self, other: &Dfa<A>, combine: impl Fn(bool, bool) -> bool) -> Dfa<A> {
        assert!(
            self.alphabet == other.alphabet,
            "product requires identical alphabets"
        );
        let k = self.alphabet.len();
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert((0, 0), 0);
        pairs.push((0, 0));
        queue.push_back((0, 0));
        let mut delta: Vec<Vec<usize>> = Vec::new();
        while let Some((p, q)) = queue.pop_front() {
            let mut row = Vec::with_capacity(k);
            for (i, _) in self.alphabet.iter().enumerate() {
                let key = (self.delta[p][i], other.delta[q][i]);
                let to = *index.entry(key).or_insert_with(|| {
                    pairs.push(key);
                    queue.push_back(key);
                    pairs.len() - 1
                });
                row.push(to);
            }
            delta.push(row);
        }
        let accepting = pairs
            .iter()
            .map(|&(p, q)| combine(self.accepting[p], other.accepting[q]))
            .collect();
        Dfa {
            alphabet: self.alphabet.clone(),
            num_states: pairs.len(),
            accepting,
            delta,
        }
    }
}

/// A determinized, flat-table DFA over the dense symbol alphabet
/// `0..num_symbols` — the export format consumed by the compiled
/// hedge-automata engine (`xmlmap-automata`), where horizontal languages
/// range over interned vertical-state ids.
///
/// Unlike [`Dfa`], the alphabet is implicit (dense `usize` ids), the
/// transition table is a single row-major `Vec<u32>`, and each state
/// carries a *liveness* flag (`live[q]` iff an accepting state is
/// reachable from `q`) so downstream subset constructions can prune dead
/// branches instead of dragging complete-DFA sink states along.
#[derive(Clone, Debug)]
pub struct DenseDfa {
    /// Alphabet size; symbols are `0..num_symbols`.
    pub num_symbols: usize,
    /// Number of DFA states; `0` is the start state.
    pub num_states: usize,
    /// Row-major successor table: `delta[q * num_symbols + s]`.
    pub delta: Vec<u32>,
    /// `accepting[q]` iff `q` is final.
    pub accepting: Vec<bool>,
    /// `live[q]` iff some accepting state is reachable from `q`.
    pub live: Vec<bool>,
    /// Sorted symbols with at least one transition in the source NFA (all
    /// others lead straight to the dead sink from every state).
    pub used_symbols: Vec<u32>,
}

impl DenseDfa {
    /// Subset construction over the dense alphabet `0..num_symbols`,
    /// with `u64`-word bitset subset states hash-consed during discovery.
    /// NFA transitions on symbols `>= num_symbols` are ignored.
    ///
    /// Convenience wrapper over [`Determinizer::run`] with a fresh
    /// workspace; batch callers (one DFA per automaton rule) should reuse
    /// one [`Determinizer`] instead.
    pub fn determinize(nfa: &Nfa<usize>, num_symbols: usize) -> DenseDfa {
        Determinizer::new().run(nfa, num_symbols)
    }

    /// The successor of state `q` on symbol `s`.
    #[inline]
    pub fn step(&self, q: u32, s: u32) -> u32 {
        self.delta[q as usize * self.num_symbols + s as usize]
    }

    /// Approximate heap footprint in bytes (transition table, flag
    /// vectors, used-symbol list). Feeds the engine caches' memory
    /// accounting; the row-major `delta` dominates.
    pub fn approx_bytes(&self) -> u64 {
        (self.delta.capacity() * 4
            + self.accepting.capacity()
            + self.live.capacity()
            + self.used_symbols.capacity() * 4) as u64
    }
}

/// Reusable subset-construction workspace for [`DenseDfa::determinize`].
///
/// Compiling a hedge automaton determinizes one horizontal NFA per rule;
/// with a fresh workspace each call, the fixed allocation cost (intern
/// tables, successor masks, traversal scratch) dominates for the small
/// NFAs typical of DTD productions. One `Determinizer` reused across rules
/// pays it once. NFAs of at most 64 states — the overwhelmingly common
/// case — additionally take a fast path where subset states are plain
/// `u64` keys instead of boxed word slices.
#[derive(Default)]
pub struct Determinizer {
    // Single-word fast path: subsets are bare u64s.
    index1: crate::hash::FastHashMap<u64, u32>,
    sets1: Vec<u64>,
    // General path: subsets are boxed word slices.
    index: crate::hash::FastHashMap<Box<[u64]>, u32>,
    sets: Vec<Box<[u64]>>,
    // Shared scratch.
    succ: Vec<u64>,
    slot_of: Vec<u32>,
    indeg: Vec<u32>,
    fill: Vec<u32>,
    preds: Vec<u32>,
    stack: Vec<u32>,
}

impl Determinizer {
    /// An empty workspace.
    pub fn new() -> Determinizer {
        Determinizer::default()
    }

    /// Determinizes `nfa` over the dense alphabet `0..num_symbols`.
    /// Transitions on symbols `>= num_symbols` are ignored.
    pub fn run(&mut self, nfa: &Nfa<usize>, num_symbols: usize) -> DenseDfa {
        let mut used_symbols: Vec<u32> = nfa
            .transitions
            .iter()
            .flat_map(|ts| ts.iter())
            .filter(|&&(s, _)| s < num_symbols)
            .map(|&(s, _)| s as u32)
            .collect();
        used_symbols.sort_unstable();
        used_symbols.dedup();
        // Symbol → slot in `used_symbols`. Stale entries from a previous
        // run are harmless: only this run's used symbols are ever read.
        self.slot_of.resize(num_symbols, u32::MAX);
        for (slot, &s) in used_symbols.iter().enumerate() {
            self.slot_of[s as usize] = slot as u32;
        }
        let (delta, accepting) = if nfa.num_states <= 64 {
            self.discover1(nfa, num_symbols, &used_symbols)
        } else {
            self.discover(nfa, num_symbols, &used_symbols)
        };
        let live = self.liveness(num_symbols, &used_symbols, &delta, &accepting);
        DenseDfa {
            num_symbols,
            num_states: accepting.len(),
            delta,
            accepting,
            live,
            used_symbols,
        }
    }

    /// Discovery fast path for NFAs of at most 64 states: subsets are
    /// single `u64` words — no allocation anywhere in the hot loop.
    fn discover1(
        &mut self,
        nfa: &Nfa<usize>,
        num_symbols: usize,
        used: &[u32],
    ) -> (Vec<u32>, Vec<bool>) {
        let n = nfa.num_states;
        // succ[slot * n + q] = bitset of q's successors on used[slot], so
        // each subset transition is an OR over the subset's bits.
        self.succ.clear();
        self.succ.resize(used.len() * n, 0);
        for (q, ts) in nfa.transitions.iter().enumerate() {
            for &(s, q2) in ts {
                if s < num_symbols {
                    self.succ[self.slot_of[s] as usize * n + q] |= 1 << q2;
                }
            }
        }
        let mut accept_mask = 0u64;
        for (q, &acc) in nfa.accepting.iter().enumerate() {
            if acc {
                accept_mask |= 1 << q;
            }
        }

        self.index1.clear();
        self.sets1.clear();
        self.sets1.push(1);
        self.index1.insert(1, 0);
        // The dead sink (empty subset) backs every unused symbol; interned
        // lazily so NFAs that never die don't carry it.
        let mut sink: Option<u32> = None;
        let mut delta: Vec<u32> = Vec::new();
        let mut si = 0usize;
        while si < self.sets1.len() {
            let row_base = delta.len();
            delta.resize(row_base + num_symbols, u32::MAX);
            let cur = self.sets1[si];
            for (slot, &s) in used.iter().enumerate() {
                let base = slot * n;
                let mut next = 0u64;
                let mut x = cur;
                while x != 0 {
                    next |= self.succ[base + x.trailing_zeros() as usize];
                    x &= x - 1;
                }
                let to = if next != 0 {
                    match self.index1.get(&next) {
                        Some(&id) => id,
                        None => {
                            let id = self.sets1.len() as u32;
                            self.sets1.push(next);
                            self.index1.insert(next, id);
                            id
                        }
                    }
                } else {
                    *sink.get_or_insert_with(|| {
                        let id = self.sets1.len() as u32;
                        self.sets1.push(0);
                        self.index1.insert(0, id);
                        id
                    })
                };
                delta[row_base + s as usize] = to;
            }
            si += 1;
        }
        // Unused symbols (and the sink's own row) all point at the sink;
        // materialize it only if something needs it.
        if sink.is_none() && delta.contains(&u32::MAX) {
            let id = self.sets1.len() as u32;
            self.sets1.push(0);
            sink = Some(id);
        }
        let num_states = self.sets1.len();
        delta.resize(num_states * num_symbols, u32::MAX);
        if let Some(sk) = sink {
            for slot in delta.iter_mut() {
                if *slot == u32::MAX {
                    *slot = sk;
                }
            }
        }
        let accepting = self.sets1.iter().map(|&s| s & accept_mask != 0).collect();
        (delta, accepting)
    }

    /// General discovery: subset states are `u64`-word slices, hash-consed
    /// so a key is allocated once per discovered state, not per transition.
    fn discover(
        &mut self,
        nfa: &Nfa<usize>,
        num_symbols: usize,
        used: &[u32],
    ) -> (Vec<u32>, Vec<bool>) {
        let n = nfa.num_states;
        let words = n.div_ceil(64);
        self.succ.clear();
        self.succ.resize(used.len() * n * words, 0);
        for (q, ts) in nfa.transitions.iter().enumerate() {
            for &(s, q2) in ts {
                if s < num_symbols {
                    let base = (self.slot_of[s] as usize * n + q) * words;
                    self.succ[base + q2 / 64] |= 1 << (q2 % 64);
                }
            }
        }
        let mut accept_mask = vec![0u64; words];
        for (q, &acc) in nfa.accepting.iter().enumerate() {
            if acc {
                accept_mask[q / 64] |= 1 << (q % 64);
            }
        }

        let mut start = vec![0u64; words].into_boxed_slice();
        start[0] |= 1;
        self.index.clear();
        self.sets.clear();
        self.sets.push(start.clone());
        self.index.insert(start, 0);
        let mut sink: Option<u32> = None;
        let mut delta: Vec<u32> = Vec::new();
        let mut cur = vec![0u64; words];
        let mut next_set = vec![0u64; words];
        let mut si = 0usize;
        while si < self.sets.len() {
            let row_base = delta.len();
            delta.resize(row_base + num_symbols, u32::MAX);
            cur.copy_from_slice(&self.sets[si]);
            for (slot, &s) in used.iter().enumerate() {
                next_set.iter_mut().for_each(|w| *w = 0);
                for (w, &word) in cur.iter().enumerate() {
                    let mut x = word;
                    while x != 0 {
                        let q = w * 64 + x.trailing_zeros() as usize;
                        x &= x - 1;
                        let base = (slot * n + q) * words;
                        for (dst, &src) in next_set.iter_mut().zip(&self.succ[base..base + words]) {
                            *dst |= src;
                        }
                    }
                }
                let to = if next_set.iter().any(|&w| w != 0) {
                    match self.index.get(next_set.as_slice()) {
                        Some(&id) => id,
                        None => {
                            let key: Box<[u64]> = next_set.clone().into_boxed_slice();
                            let id = self.sets.len() as u32;
                            self.sets.push(key.clone());
                            self.index.insert(key, id);
                            id
                        }
                    }
                } else {
                    *sink.get_or_insert_with(|| {
                        let empty: Box<[u64]> = vec![0u64; words].into_boxed_slice();
                        let id = self.sets.len() as u32;
                        self.sets.push(empty.clone());
                        self.index.insert(empty, id);
                        id
                    })
                };
                delta[row_base + s as usize] = to;
            }
            si += 1;
        }
        if sink.is_none() && delta.contains(&u32::MAX) {
            let empty: Box<[u64]> = vec![0u64; words].into_boxed_slice();
            let id = self.sets.len() as u32;
            self.sets.push(empty);
            sink = Some(id);
        }
        let num_states = self.sets.len();
        delta.resize(num_states * num_symbols, u32::MAX);
        if let Some(sk) = sink {
            for slot in delta.iter_mut() {
                if *slot == u32::MAX {
                    *slot = sk;
                }
            }
        }
        let accepting = self
            .sets
            .iter()
            .map(|set| set.iter().zip(&accept_mask).any(|(&a, &b)| a & b != 0))
            .collect();
        (delta, accepting)
    }

    /// Liveness (reverse reachability from accepting states) over a flat
    /// CSR predecessor array — two passes over delta, no per-state Vecs.
    fn liveness(
        &mut self,
        num_symbols: usize,
        used: &[u32],
        delta: &[u32],
        accepting: &[bool],
    ) -> Vec<bool> {
        let num_states = accepting.len();
        self.indeg.clear();
        self.indeg.resize(num_states + 1, 0);
        for q in 0..num_states {
            for &s in used {
                let to = delta[q * num_symbols + s as usize] as usize;
                self.indeg[to + 1] += 1;
            }
        }
        for i in 0..num_states {
            self.indeg[i + 1] += self.indeg[i];
        }
        self.preds.clear();
        self.preds.resize(self.indeg[num_states] as usize, 0);
        self.fill.clear();
        self.fill.extend_from_slice(&self.indeg);
        for q in 0..num_states {
            for &s in used {
                let to = delta[q * num_symbols + s as usize] as usize;
                self.preds[self.fill[to] as usize] = q as u32;
                self.fill[to] += 1;
            }
        }
        let mut live = accepting.to_vec();
        self.stack.clear();
        self.stack
            .extend((0..num_states as u32).filter(|&q| accepting[q as usize]));
        while let Some(q) = self.stack.pop() {
            let (lo, hi) = (
                self.indeg[q as usize] as usize,
                self.indeg[q as usize + 1] as usize,
            );
            for &p in &self.preds[lo..hi] {
                if !live[p as usize] {
                    live[p as usize] = true;
                    self.stack.push(p);
                }
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use xmlmap_trees::Name;

    fn dfa(s: &str, alphabet: &[&str]) -> Dfa<Name> {
        let nfa = Nfa::from_regex(&parse(s).unwrap());
        Dfa::determinize(&nfa, alphabet.iter().map(Name::new).collect())
    }

    fn word(s: &str) -> Vec<Name> {
        s.split_whitespace().map(Name::new).collect()
    }

    #[test]
    fn determinize_preserves_language() {
        let d = dfa("(a|b)*, c+", &["a", "b", "c"]);
        assert!(d.accepts(&word("c")));
        assert!(d.accepts(&word("a b a c c")));
        assert!(!d.accepts(&word("a b")));
        assert!(!d.accepts(&word("c a")));
        assert!(!d.accepts(&word("d"))); // outside alphabet
    }

    #[test]
    fn complement_flips_membership() {
        let d = dfa("a, b", &["a", "b"]);
        let c = d.complement();
        assert!(!c.accepts(&word("a b")));
        assert!(c.accepts(&word("")));
        assert!(c.accepts(&word("b a")));
        assert!(c.accepts(&word("a b a")));
    }

    #[test]
    fn emptiness_and_universality() {
        let never = dfa("empty", &["a"]);
        assert!(never.is_empty());
        assert!(never.complement().is_universal());
        let all = dfa("a*", &["a"]);
        assert!(all.is_universal());
        assert!(all.complement().is_empty());
        let some = dfa("a, a", &["a"]);
        assert!(!some.is_empty());
        assert!(!some.is_universal());
    }

    #[test]
    fn product_intersection_and_union() {
        let x = dfa("a*, b", &["a", "b"]);
        let y = dfa("a, b*", &["a", "b"]);
        let both = x.product(&y, |p, q| p && q);
        assert!(both.accepts(&word("a b")));
        assert!(!both.accepts(&word("a a b")));
        let either = x.product(&y, |p, q| p || q);
        assert!(either.accepts(&word("a a b")));
        assert!(either.accepts(&word("a")));
        assert!(!either.accepts(&word("b a")));
    }

    #[test]
    fn dfa_nfa_round_trip() {
        let d = dfa("(a, b)*", &["a", "b"]);
        let n = d.to_nfa();
        for w in ["", "a b", "a b a b"] {
            assert!(n.accepts(&word(w)), "{w}");
        }
        for w in ["a", "b a", "a b a"] {
            assert!(!n.accepts(&word(w)), "{w}");
        }
    }

    #[test]
    fn subset_blowup_still_correct() {
        // (a|b)*, a, (a|b), (a|b): membership determined by 3rd-from-last.
        let d = dfa("(a|b)*, a, (a|b), (a|b)", &["a", "b"]);
        assert!(d.accepts(&word("a b b")));
        assert!(d.accepts(&word("b b a a a")));
        assert!(!d.accepts(&word("b a a")));
        assert!(d.num_states >= 8, "expected full subset blowup");
    }
}
