//! Deterministic finite automata over an explicit, finite alphabet.
//!
//! Determinisation is needed wherever the consistency procedures reason
//! about *non*-matches: the type-fixpoint engine must find child words that
//! satisfy exactly a prescribed set of sequence constraints, which requires
//! complementing constraint automata. A [`Dfa`] is always total over its
//! declared alphabet (a sink state is added as needed), so complementation
//! is just flipping accepting states.

use crate::nfa::Nfa;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::hash::Hash;

/// A complete DFA over an explicit alphabet.
#[derive(Clone, Debug)]
pub struct Dfa<A> {
    /// The alphabet; transition tables are indexed by position in this list.
    pub alphabet: Vec<A>,
    /// Number of states; `0` is the start state.
    pub num_states: usize,
    /// `accepting[q]` iff q is final.
    pub accepting: Vec<bool>,
    /// `delta[q][i]` is the successor of `q` on `alphabet[i]`.
    pub delta: Vec<Vec<usize>>,
}

impl<A: Clone + Eq + Hash> Dfa<A> {
    /// Subset construction. Transitions of `nfa` on symbols outside
    /// `alphabet` are ignored (they can never fire on words over `alphabet`).
    pub fn determinize(nfa: &Nfa<A>, alphabet: Vec<A>) -> Dfa<A> {
        let sym_index: HashMap<&A, usize> =
            alphabet.iter().enumerate().map(|(i, a)| (a, i)).collect();
        let k = alphabet.len();

        // Pre-index NFA transitions by (state, symbol index).
        let mut by_sym: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); k]; nfa.num_states];
        for (q, ts) in nfa.transitions.iter().enumerate() {
            for (a, q2) in ts {
                if let Some(&i) = sym_index.get(a) {
                    by_sym[q][i].push(*q2);
                }
            }
        }

        let start: BTreeSet<usize> = BTreeSet::from([0]);
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut sets: Vec<BTreeSet<usize>> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert(start.clone(), 0);
        sets.push(start.clone());
        queue.push_back(start);
        let mut delta: Vec<Vec<usize>> = Vec::new();

        while let Some(set) = queue.pop_front() {
            let mut row = Vec::with_capacity(k);
            for (i, _) in alphabet.iter().enumerate() {
                let mut next = BTreeSet::new();
                for &q in &set {
                    next.extend(by_sym[q][i].iter().copied());
                }
                let to = *index.entry(next.clone()).or_insert_with(|| {
                    sets.push(next.clone());
                    queue.push_back(next);
                    sets.len() - 1
                });
                row.push(to);
            }
            delta.push(row);
        }

        let accepting = sets
            .iter()
            .map(|s| s.iter().any(|&q| nfa.accepting[q]))
            .collect();
        Dfa {
            alphabet,
            num_states: sets.len(),
            accepting,
            delta,
        }
    }

    /// Complement (valid because the DFA is complete over its alphabet).
    pub fn complement(&self) -> Dfa<A> {
        Dfa {
            alphabet: self.alphabet.clone(),
            num_states: self.num_states,
            accepting: self.accepting.iter().map(|b| !b).collect(),
            delta: self.delta.clone(),
        }
    }

    /// Does the DFA accept `word`? Words containing symbols outside the
    /// alphabet are rejected.
    pub fn accepts(&self, word: &[A]) -> bool {
        let mut q = 0usize;
        for sym in word {
            match self.alphabet.iter().position(|a| a == sym) {
                Some(i) => q = self.delta[q][i],
                None => return false,
            }
        }
        self.accepting[q]
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.reachable().iter().all(|&q| !self.accepting[q])
    }

    /// Is the language all of `alphabet*`?
    pub fn is_universal(&self) -> bool {
        self.reachable().iter().all(|&q| self.accepting[q])
    }

    fn reachable(&self) -> Vec<usize> {
        let mut seen = vec![false; self.num_states];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut out = Vec::new();
        while let Some(q) = queue.pop_front() {
            out.push(q);
            for &q2 in &self.delta[q] {
                if !seen[q2] {
                    seen[q2] = true;
                    queue.push_back(q2);
                }
            }
        }
        out
    }

    /// View as an NFA (e.g. to reuse product constructions).
    pub fn to_nfa(&self) -> Nfa<A> {
        Nfa {
            num_states: self.num_states,
            accepting: self.accepting.clone(),
            transitions: self
                .delta
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .map(|(i, &q)| (self.alphabet[i].clone(), q))
                        .collect()
                })
                .collect(),
        }
    }

    /// Synchronous product; both DFAs must share the same alphabet order.
    /// `combine` merges acceptance (e.g. `&&` for intersection).
    pub fn product(&self, other: &Dfa<A>, combine: impl Fn(bool, bool) -> bool) -> Dfa<A> {
        assert!(
            self.alphabet == other.alphabet,
            "product requires identical alphabets"
        );
        let k = self.alphabet.len();
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert((0, 0), 0);
        pairs.push((0, 0));
        queue.push_back((0, 0));
        let mut delta: Vec<Vec<usize>> = Vec::new();
        while let Some((p, q)) = queue.pop_front() {
            let mut row = Vec::with_capacity(k);
            for (i, _) in self.alphabet.iter().enumerate() {
                let key = (self.delta[p][i], other.delta[q][i]);
                let to = *index.entry(key).or_insert_with(|| {
                    pairs.push(key);
                    queue.push_back(key);
                    pairs.len() - 1
                });
                row.push(to);
            }
            delta.push(row);
        }
        let accepting = pairs
            .iter()
            .map(|&(p, q)| combine(self.accepting[p], other.accepting[q]))
            .collect();
        Dfa {
            alphabet: self.alphabet.clone(),
            num_states: pairs.len(),
            accepting,
            delta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use xmlmap_trees::Name;

    fn dfa(s: &str, alphabet: &[&str]) -> Dfa<Name> {
        let nfa = Nfa::from_regex(&parse(s).unwrap());
        Dfa::determinize(&nfa, alphabet.iter().map(Name::new).collect())
    }

    fn word(s: &str) -> Vec<Name> {
        s.split_whitespace().map(Name::new).collect()
    }

    #[test]
    fn determinize_preserves_language() {
        let d = dfa("(a|b)*, c+", &["a", "b", "c"]);
        assert!(d.accepts(&word("c")));
        assert!(d.accepts(&word("a b a c c")));
        assert!(!d.accepts(&word("a b")));
        assert!(!d.accepts(&word("c a")));
        assert!(!d.accepts(&word("d"))); // outside alphabet
    }

    #[test]
    fn complement_flips_membership() {
        let d = dfa("a, b", &["a", "b"]);
        let c = d.complement();
        assert!(!c.accepts(&word("a b")));
        assert!(c.accepts(&word("")));
        assert!(c.accepts(&word("b a")));
        assert!(c.accepts(&word("a b a")));
    }

    #[test]
    fn emptiness_and_universality() {
        let never = dfa("empty", &["a"]);
        assert!(never.is_empty());
        assert!(never.complement().is_universal());
        let all = dfa("a*", &["a"]);
        assert!(all.is_universal());
        assert!(all.complement().is_empty());
        let some = dfa("a, a", &["a"]);
        assert!(!some.is_empty());
        assert!(!some.is_universal());
    }

    #[test]
    fn product_intersection_and_union() {
        let x = dfa("a*, b", &["a", "b"]);
        let y = dfa("a, b*", &["a", "b"]);
        let both = x.product(&y, |p, q| p && q);
        assert!(both.accepts(&word("a b")));
        assert!(!both.accepts(&word("a a b")));
        let either = x.product(&y, |p, q| p || q);
        assert!(either.accepts(&word("a a b")));
        assert!(either.accepts(&word("a")));
        assert!(!either.accepts(&word("b a")));
    }

    #[test]
    fn dfa_nfa_round_trip() {
        let d = dfa("(a, b)*", &["a", "b"]);
        let n = d.to_nfa();
        for w in ["", "a b", "a b a b"] {
            assert!(n.accepts(&word(w)), "{w}");
        }
        for w in ["a", "b a", "a b a"] {
            assert!(!n.accepts(&word(w)), "{w}");
        }
    }

    #[test]
    fn subset_blowup_still_correct() {
        // (a|b)*, a, (a|b), (a|b): membership determined by 3rd-from-last.
        let d = dfa("(a|b)*, a, (a|b), (a|b)", &["a", "b"]);
        assert!(d.accepts(&word("a b b")));
        assert!(d.accepts(&word("b b a a a")));
        assert!(!d.accepts(&word("b a a")));
        assert!(d.num_states >= 8, "expected full subset blowup");
    }
}
