//! Nondeterministic finite automata over an arbitrary symbol type.
//!
//! The consistency procedures of the paper reason about *horizontal
//! languages*: words of children under a node. Sometimes the alphabet is the
//! set of element types, sometimes it is a lifted alphabet of
//! `(label, type)` pairs (see the type-fixpoint engine in `xmlmap-patterns`),
//! so the automaton is generic over the symbol type `A`.
//!
//! Construction from a [`Regex`] uses the Glushkov (position) automaton: one
//! state per symbol occurrence plus an initial state, no ε-transitions.

use crate::ast::Regex;
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use xmlmap_trees::Name;

/// An NFA with a single start state and no ε-transitions.
#[derive(Clone, Debug)]
pub struct Nfa<A> {
    /// Number of states; states are `0..num_states` and `0` is the start.
    pub num_states: usize,
    /// `accepting[q]` iff q is final.
    pub accepting: Vec<bool>,
    /// Outgoing transitions per state.
    pub transitions: Vec<Vec<(A, usize)>>,
}

impl<A: Clone + Eq + Hash> Nfa<A> {
    /// An NFA accepting only the empty word.
    pub fn epsilon() -> Self {
        Nfa {
            num_states: 1,
            accepting: vec![true],
            transitions: vec![Vec::new()],
        }
    }

    /// An NFA with the empty language.
    pub fn empty() -> Self {
        Nfa {
            num_states: 1,
            accepting: vec![false],
            transitions: vec![Vec::new()],
        }
    }

    /// Does the automaton accept `word`?
    pub fn accepts(&self, word: &[A]) -> bool {
        let mut current: HashSet<usize> = HashSet::from([0]);
        for sym in word {
            let mut next = HashSet::new();
            for &q in &current {
                for (a, q2) in &self.transitions[q] {
                    if a == sym {
                        next.insert(*q2);
                    }
                }
            }
            if next.is_empty() {
                return false;
            }
            current = next;
        }
        current.iter().any(|&q| self.accepting[q])
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.num_states];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(q) = queue.pop_front() {
            if self.accepting[q] {
                return false;
            }
            for (_, q2) in &self.transitions[q] {
                if !seen[*q2] {
                    seen[*q2] = true;
                    queue.push_back(*q2);
                }
            }
        }
        true
    }

    /// Approximate heap footprint in bytes (flag vector plus transition
    /// lists; symbol payloads are counted at their inline size only, so
    /// interned `Name`s are not double-counted).
    pub fn approx_bytes(&self) -> u64 {
        let per_edge = std::mem::size_of::<(A, usize)>();
        (self.accepting.capacity()
            + self
                .transitions
                .iter()
                .map(|ts| ts.capacity() * per_edge)
                .sum::<usize>()) as u64
    }

    /// A shortest accepted word, if any (BFS).
    pub fn shortest_word(&self) -> Option<Vec<A>> {
        if self.accepting[0] {
            return Some(Vec::new());
        }
        let mut pred: Vec<Option<(usize, A)>> = vec![None; self.num_states];
        let mut seen = vec![false; self.num_states];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        while let Some(q) = queue.pop_front() {
            for (a, q2) in &self.transitions[q] {
                if !seen[*q2] {
                    seen[*q2] = true;
                    pred[*q2] = Some((q, a.clone()));
                    if self.accepting[*q2] {
                        // Reconstruct.
                        let mut word = Vec::new();
                        let mut cur = *q2;
                        while let Some((p, a)) = pred[cur].clone() {
                            word.push(a);
                            cur = p;
                        }
                        word.reverse();
                        return Some(word);
                    }
                    queue.push_back(*q2);
                }
            }
        }
        None
    }

    /// Product automaton for language intersection.
    pub fn intersect(&self, other: &Nfa<A>) -> Nfa<A> {
        // States are pairs reachable from (0,0), discovered on the fly.
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut order: Vec<(usize, usize)> = Vec::new();
        let mut queue = VecDeque::new();
        index.insert((0, 0), 0);
        order.push((0, 0));
        queue.push_back((0, 0));
        let mut transitions: Vec<Vec<(A, usize)>> = vec![Vec::new()];
        while let Some((p, q)) = queue.pop_front() {
            let from = index[&(p, q)];
            for (a, p2) in &self.transitions[p] {
                for (b, q2) in &other.transitions[q] {
                    if a == b {
                        let key = (*p2, *q2);
                        let to = *index.entry(key).or_insert_with(|| {
                            order.push(key);
                            transitions.push(Vec::new());
                            queue.push_back(key);
                            order.len() - 1
                        });
                        transitions[from].push((a.clone(), to));
                    }
                }
            }
        }
        let accepting = order
            .iter()
            .map(|&(p, q)| self.accepting[p] && other.accepting[q])
            .collect();
        Nfa {
            num_states: order.len(),
            accepting,
            transitions,
        }
    }

    /// Concatenation: `self · other`.
    pub fn concat(&self, other: &Nfa<A>) -> Nfa<A> {
        let offset = self.num_states;
        let num_states = self.num_states + other.num_states;
        let mut transitions: Vec<Vec<(A, usize)>> = Vec::with_capacity(num_states);
        for q in 0..self.num_states {
            let mut out = self.transitions[q].clone();
            // From every state of `self` that can end the first part,
            // also start the second part (emulating ε into other's start).
            if self.accepting[q] {
                out.extend(
                    other.transitions[0]
                        .iter()
                        .map(|(a, t)| (a.clone(), t + offset)),
                );
            }
            transitions.push(out);
        }
        for q in 0..other.num_states {
            transitions.push(
                other.transitions[q]
                    .iter()
                    .map(|(a, t)| (a.clone(), t + offset))
                    .collect(),
            );
        }
        let mut accepting = vec![false; num_states];
        let other_null = other.accepting[0];
        for (q, acc) in accepting.iter_mut().take(self.num_states).enumerate() {
            *acc = self.accepting[q] && other_null;
        }
        accepting[offset..].copy_from_slice(&other.accepting);
        Nfa {
            num_states,
            accepting,
            transitions,
        }
    }

    /// Applies a symbol homomorphism to every transition.
    pub fn map<B: Clone + Eq + Hash>(&self, mut f: impl FnMut(&A) -> B) -> Nfa<B> {
        Nfa {
            num_states: self.num_states,
            accepting: self.accepting.clone(),
            transitions: self
                .transitions
                .iter()
                .map(|ts| ts.iter().map(|(a, q)| (f(a), *q)).collect())
                .collect(),
        }
    }

    /// Inverse homomorphism: replaces each transition on `a` by one
    /// transition for every symbol in `f(a)`.
    pub fn expand<B: Clone + Eq + Hash>(&self, mut f: impl FnMut(&A) -> Vec<B>) -> Nfa<B> {
        Nfa {
            num_states: self.num_states,
            accepting: self.accepting.clone(),
            transitions: self
                .transitions
                .iter()
                .map(|ts| {
                    ts.iter()
                        .flat_map(|(a, q)| f(a).into_iter().map(move |b| (b, *q)))
                        .collect()
                })
                .collect(),
        }
    }

    /// The set of symbols appearing on transitions.
    pub fn alphabet(&self) -> HashSet<A> {
        self.transitions
            .iter()
            .flat_map(|ts| ts.iter().map(|(a, _)| a.clone()))
            .collect()
    }
}

impl Nfa<Name> {
    /// Glushkov (position) automaton of a regex: `n+1` states for `n` symbol
    /// occurrences, no ε-transitions, language-equivalent to the regex.
    pub fn from_regex(regex: &Regex) -> Nfa<Name> {
        // Linearise: assign positions 1..=n to symbol occurrences.
        let mut symbols_at = vec![Name::new("")]; // dummy for position 0
        let info = glushkov(regex, &mut symbols_at);

        let n = symbols_at.len(); // positions 0..n (0 = start)
        let mut transitions: Vec<Vec<(Name, usize)>> = vec![Vec::new(); n];
        for &p in &info.first {
            transitions[0].push((symbols_at[p].clone(), p));
        }
        for (p, nexts) in &info.follow {
            for &q in nexts {
                transitions[*p].push((symbols_at[q].clone(), q));
            }
        }
        let mut accepting = vec![false; n];
        accepting[0] = info.nullable;
        for &p in &info.last {
            accepting[p] = true;
        }
        Nfa {
            num_states: n,
            accepting,
            transitions,
        }
    }
}

struct GlushkovInfo {
    nullable: bool,
    first: Vec<usize>,
    last: Vec<usize>,
    follow: HashMap<usize, Vec<usize>>,
}

fn glushkov(regex: &Regex, symbols_at: &mut Vec<Name>) -> GlushkovInfo {
    match regex {
        Regex::Empty => GlushkovInfo {
            nullable: false,
            first: vec![],
            last: vec![],
            follow: HashMap::new(),
        },
        Regex::Epsilon => GlushkovInfo {
            nullable: true,
            first: vec![],
            last: vec![],
            follow: HashMap::new(),
        },
        Regex::Symbol(name) => {
            let p = symbols_at.len();
            symbols_at.push(name.clone());
            GlushkovInfo {
                nullable: false,
                first: vec![p],
                last: vec![p],
                follow: HashMap::new(),
            }
        }
        Regex::Concat(a, b) => {
            let ia = glushkov(a, symbols_at);
            let ib = glushkov(b, symbols_at);
            let mut follow = ia.follow;
            for (k, v) in ib.follow {
                follow.entry(k).or_default().extend(v);
            }
            for &l in &ia.last {
                follow
                    .entry(l)
                    .or_default()
                    .extend(ib.first.iter().copied());
            }
            let mut first = ia.first;
            if ia.nullable {
                first.extend(ib.first.iter().copied());
            }
            let mut last = ib.last;
            if ib.nullable {
                last.extend(ia.last.iter().copied());
            }
            GlushkovInfo {
                nullable: ia.nullable && ib.nullable,
                first,
                last,
                follow,
            }
        }
        Regex::Alt(a, b) => {
            let ia = glushkov(a, symbols_at);
            let ib = glushkov(b, symbols_at);
            let mut follow = ia.follow;
            for (k, v) in ib.follow {
                follow.entry(k).or_default().extend(v);
            }
            let mut first = ia.first;
            first.extend(ib.first);
            let mut last = ia.last;
            last.extend(ib.last);
            GlushkovInfo {
                nullable: ia.nullable || ib.nullable,
                first,
                last,
                follow,
            }
        }
        Regex::Star(a) | Regex::Plus(a) => {
            let ia = glushkov(a, symbols_at);
            let mut follow = ia.follow;
            for &l in &ia.last {
                follow
                    .entry(l)
                    .or_default()
                    .extend(ia.first.iter().copied());
            }
            GlushkovInfo {
                nullable: matches!(regex, Regex::Star(_)) || ia.nullable,
                first: ia.first,
                last: ia.last,
                follow,
            }
        }
        Regex::Opt(a) => {
            let ia = glushkov(a, symbols_at);
            GlushkovInfo {
                nullable: true,
                first: ia.first,
                last: ia.last,
                follow: ia.follow,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn nfa(s: &str) -> Nfa<Name> {
        Nfa::from_regex(&parse(s).unwrap())
    }

    fn word(s: &str) -> Vec<Name> {
        s.split_whitespace().map(Name::new).collect()
    }

    #[test]
    fn glushkov_matches_simple_languages() {
        let a = nfa("a*");
        assert!(a.accepts(&word("")));
        assert!(a.accepts(&word("a a a")));
        assert!(!a.accepts(&word("a b")));

        let m = nfa("teach, supervise");
        assert!(m.accepts(&word("teach supervise")));
        assert!(!m.accepts(&word("supervise teach")));
        assert!(!m.accepts(&word("teach")));

        let opt = nfa("c1?, c2?, c3?");
        for w in ["", "c1", "c2", "c3", "c1 c2", "c1 c3", "c2 c3", "c1 c2 c3"] {
            assert!(opt.accepts(&word(w)), "{w}");
        }
        assert!(!opt.accepts(&word("c2 c1")));
        assert!(!opt.accepts(&word("c1 c1")));
    }

    #[test]
    fn glushkov_handles_nesting() {
        let r = nfa("(a|b)*, c+");
        assert!(r.accepts(&word("c")));
        assert!(r.accepts(&word("a b a c c")));
        assert!(!r.accepts(&word("a b")));
        assert!(!r.accepts(&word("c a")));
    }

    #[test]
    fn emptiness_and_shortest() {
        assert!(Nfa::<Name>::empty().is_empty());
        assert!(!Nfa::<Name>::epsilon().is_empty());
        assert_eq!(Nfa::<Name>::epsilon().shortest_word(), Some(vec![]));
        assert!(nfa("a, b").shortest_word() == Some(word("a b")));
        let from_empty = Nfa::from_regex(&Regex::Empty);
        assert!(from_empty.is_empty());
        assert_eq!(from_empty.shortest_word(), None);
    }

    #[test]
    fn intersection() {
        let x = nfa("a*, b");
        let y = nfa("a, b*");
        let both = x.intersect(&y);
        assert!(both.accepts(&word("a b")));
        assert!(!both.accepts(&word("b")));
        assert!(!both.accepts(&word("a a b")));
        assert!(!both.is_empty());

        let disjoint = nfa("a").intersect(&nfa("b"));
        assert!(disjoint.is_empty());
    }

    #[test]
    fn concatenation() {
        let ab = nfa("a?").concat(&nfa("b"));
        assert!(ab.accepts(&word("a b")));
        assert!(ab.accepts(&word("b")));
        assert!(!ab.accepts(&word("a")));
        let aa = nfa("a*").concat(&nfa("a"));
        assert!(aa.accepts(&word("a")));
        assert!(aa.accepts(&word("a a a")));
        assert!(!aa.accepts(&word("")));
    }

    #[test]
    fn map_and_expand() {
        let n = nfa("a, b");
        let upper = n.map(|x| Name::new(x.as_str().to_uppercase()));
        assert!(upper.accepts(&word("A B")));
        // Expand each symbol x to {x1, x2}.
        let exp = n.expand(|x| vec![Name::new(format!("{x}1")), Name::new(format!("{x}2"))]);
        assert!(exp.accepts(&word("a1 b2")));
        assert!(exp.accepts(&word("a2 b1")));
        assert!(!exp.accepts(&word("a b")));
    }

    #[test]
    fn alphabet_collection() {
        let n = nfa("(a|b)*, c");
        let mut alpha: Vec<String> = n.alphabet().iter().map(|x| x.to_string()).collect();
        alpha.sort();
        assert_eq!(alpha, ["a", "b", "c"]);
    }
}
