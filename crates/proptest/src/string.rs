//! A tiny regex-shaped string generator.
//!
//! Upstream proptest treats string literals as full regexes; this subset
//! supports what the repo's strategies use: literal characters, character
//! classes `[a-z0-9_]` (ranges and literals, including a literal space),
//! and the quantifiers `{m,n}`, `{n}`, `?`, `*`, `+` (the unbounded ones
//! are capped at 8 repetitions).

use crate::test_runner::TestRng;
use rand::Rng as _;

/// One generatable unit of the pattern.
enum Atom {
    /// A fixed character.
    Literal(char),
    /// A set of candidate characters.
    Class(Vec<char>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Class(cs) => cs[rng.gen_range(0..cs.len())],
        }
    }
}

/// Generates a string matching the regex subset; panics on unsupported
/// syntax (better a loud error than silently wrong test data).
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated class in regex {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad range in regex {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in regex {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("trailing backslash in regex {pattern:?}"));
                i += 2;
                Atom::Literal(c)
            }
            c if "(){}|*+?".contains(c) => {
                panic!("unsupported regex syntax {c:?} in {pattern:?}")
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional quantifier.
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in regex {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("quantifier lower bound"),
                        hi.trim().parse::<usize>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        let count = rng.gen_range(lo..=hi);
        for _ in 0..count {
            out.push(atom.sample(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(0xfeed)
    }

    #[test]
    fn identifier_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-z][a-z0-9_]{0,6}", &mut r);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn printable_pattern() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[ -~]{0,8}", &mut r);
            assert!(s.chars().count() <= 8);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn literals_and_counts() {
        let mut r = rng();
        assert_eq!(sample_regex("abc", &mut r), "abc");
        assert_eq!(sample_regex("a{3}", &mut r), "aaa");
        let s = sample_regex("x[01]{2}", &mut r);
        assert_eq!(s.len(), 3);
        assert!(s.starts_with('x'));
    }
}
