//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this small deterministic replacement implementing the parts of the
//! proptest API the repo uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, [`strategy::Just`], tuple and
//! string-regex strategies,
//! `any::<T>()`, `collection::{vec, btree_map}`, and the `proptest!`,
//! `prop_oneof!`, `prop_compose!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failing cases report their seed
//! so they can be replayed by fixing `PROPTEST_SEED`), and generation is
//! driven by the in-repo `rand` shim. Case counts and the rejection
//! semantics of `prop_assume!` match upstream closely enough for the
//! repo's suites.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The conventional glob-import module.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_compose, prop_oneof, proptest};
}

/// One-of strategy choice. Upstream supports `weight => strategy` arms; this
/// subset picks uniformly among unweighted arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts inside a proptest case; failure aborts the case (not the whole
/// process) with the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Discards the current case (it does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)*),
            ));
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a test running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __test_name = concat!(module_path!(), "::", stringify!($name));
            let __base = $crate::test_runner::base_seed(__test_name);
            let mut __accepted: u32 = 0;
            let mut __attempt: u64 = 0;
            while __accepted < __config.cases {
                __attempt += 1;
                if __attempt > (__config.cases as u64) * 32 + 64 {
                    panic!(
                        "{__test_name}: too many cases rejected by prop_assume! \
                         ({__accepted}/{} accepted after {__attempt} attempts)",
                        __config.cases
                    );
                }
                let __case_seed = __base ^ __attempt.wrapping_mul(0x9e3779b97f4a7c15);
                let mut __rng = $crate::test_runner::TestRng::from_seed(__case_seed);
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "{__test_name}: case failed (replay with \
                             PROPTEST_SEED={__base} attempt {__attempt}):\n{msg}"
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Declares a function returning a composed strategy:
/// `fn name()(binding in strategy, ...) -> Type { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)
        ($($arg:ident in $strat:expr),+ $(,)?)
        -> $ret:ty
        $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> $crate::strategy::BoxedStrategy<$ret> {
            $crate::strategy::Strategy::prop_map(
                ($($strat,)+),
                move |($($arg,)+)| $body,
            )
        }
    };
}
