//! The [`Strategy`] trait and the combinators the repo uses.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::rc::Rc;

/// A generator of values of type `Self::Value`.
///
/// Unlike upstream proptest there is no shrinking: a strategy is just a
/// clonable sampler. `prop_map`, `prop_flat_map` and `prop_recursive`
/// return [`BoxedStrategy`] for simplicity.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.sample(rng)))
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
    where
        Self: 'static,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        BoxedStrategy::new(move |rng| f(self.sample(rng)).sample(rng))
    }

    /// Recursive structures: `self` is the leaf case, `recurse` builds one
    /// level on top of a strategy for the level below. `depth` bounds the
    /// recursion; the size hints of the upstream API are accepted and
    /// ignored. Each level mixes in the leaf case so sizes vary.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.clone().boxed();
        for _ in 0..depth {
            let deeper = recurse(level).boxed();
            let leaf = self.clone().boxed();
            level = BoxedStrategy::new(move |rng| {
                // 1-in-4 leaf keeps expected sizes finite and varied.
                if rng.gen_range(0..4u32) == 0 {
                    leaf.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            });
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy::new(move |rng| self.sample(rng))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    sampler: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    /// Wraps a sampling closure.
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy {
            sampler: Rc::new(f),
        }
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            sampler: Rc::clone(&self.sampler),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sampler)(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].sample(rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// String literals are regex strategies (see [`crate::string`] for the
/// supported subset).
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

/// Types with a canonical uniform strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Samples a uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A uniform strategy for any [`Arbitrary`] type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}
