//! Test-runner types: configuration, case outcomes, and the deterministic
//! per-case RNG.

use rand::prelude::*;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases (the upstream constructor).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` (does not count).
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Builds a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Builds a failure.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }
}

/// The `Result` type proptest case bodies implicitly return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG driving strategy sampling — deterministic per (test, attempt).
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator for one test case.
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// The base seed for a test: `PROPTEST_SEED` if set, otherwise a stable
/// hash of the fully-qualified test name (so runs are reproducible and
/// different tests see different streams).
pub fn base_seed(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = s.trim().parse::<u64>() {
            return n;
        }
    }
    // FNV-1a.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}
