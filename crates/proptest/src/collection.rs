//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::{BoxedStrategy, Strategy};
use rand::Rng as _;
use std::collections::BTreeMap;
use std::ops::Range;

/// A vector of `range`-many elements drawn from `element`.
pub fn vec<S>(element: S, range: Range<usize>) -> BoxedStrategy<Vec<S::Value>>
where
    S: Strategy + 'static,
{
    assert!(range.start < range.end, "empty size range");
    BoxedStrategy::new(move |rng| {
        let n = rng.gen_range(range.clone());
        (0..n).map(|_| element.sample(rng)).collect()
    })
}

/// A map of at most `range.end - 1` entries (duplicate keys collapse, as
/// upstream's post-dedup sizes also may fall short of the draw).
pub fn btree_map<K, V>(
    keys: K,
    values: V,
    range: Range<usize>,
) -> BoxedStrategy<BTreeMap<K::Value, V::Value>>
where
    K: Strategy + 'static,
    V: Strategy + 'static,
    K::Value: Ord,
{
    assert!(range.start < range.end, "empty size range");
    BoxedStrategy::new(move |rng| {
        let n = rng.gen_range(range.clone());
        (0..n)
            .map(|_| (keys.sample(rng), values.sample(rng)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_sizes_in_range() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn map_respects_bound() {
        let s = btree_map(any::<u8>(), any::<u8>(), 0..4);
        let mut rng = TestRng::from_seed(4);
        for _ in 0..100 {
            assert!(s.sample(&mut rng).len() < 4);
        }
    }
}
