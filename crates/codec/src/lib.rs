//! A hand-rolled flat binary codec for compiled engine artifacts.
//!
//! The compiled artifacts of the engine caches — interned label tables,
//! dense NFA/DFA transition arrays, bitset arenas, chase instruction
//! plans — are already flat by design, so their on-disk form is a direct
//! dump: little-endian fixed-width integers, length-prefixed sequences and
//! strings, no schema language and no external dependencies (the repo's
//! zero-deps posture, see DESIGN.md §7).
//!
//! The codec is *versioned at the envelope*, not per field: the persistent
//! artifact store (`xmlmap_core::store`) wraps every payload in a magic +
//! format-version + checksum envelope and discards the whole entry on any
//! mismatch, so decoders here can assume a payload produced by the same
//! build and still must never panic on corrupt bytes — every read is
//! bounds-checked and returns [`CodecError`] instead.
//!
//! [`Encoder`] writes into a growable buffer; [`Decoder`] reads back with
//! explicit cursor checks. [`checksum`] is the same rotate-xor-multiply
//! fold as `xmlmap_regex::FastHasher` — not cryptographic, exactly enough
//! to catch truncation and bit rot.

/// Why a payload failed to decode. Callers treat any variant as "artifact
/// unusable, fall back to a fresh compile" — never an error surfaced to
/// the user.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// A tag, count, or cross-field invariant is out of range.
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Rotate-xor-multiply fold over 8-byte little-endian lanes (the
/// `FastHasher` recipe). Deterministic across runs and platforms.
pub fn checksum(bytes: &[u8]) -> u64 {
    const K: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h = 0xA5A5_A5A5_5A5A_5A5Au64;
    for chunk in bytes.chunks(8) {
        let mut lane = [0u8; 8];
        lane[..chunk.len()].copy_from_slice(chunk);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(lane)).wrapping_mul(K);
    }
    // Fold the length in so trailing-zero truncations cannot collide.
    (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(K)
}

/// Append-only artifact writer.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` values travel as `u64` (platform-independent).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Fixed 4-byte magic marker (no length prefix).
    pub fn magic(&mut self, m: &[u8; 4]) {
        self.buf.extend_from_slice(m);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed `u32` sequence (dense transition tables).
    pub fn u32s(&mut self, vs: &[u32]) {
        self.usize(vs.len());
        for &v in vs {
            self.u32(v);
        }
    }

    /// Length-prefixed `u64` sequence (bitset words).
    pub fn u64s(&mut self, vs: &[u64]) {
        self.usize(vs.len());
        for &v in vs {
            self.u64(v);
        }
    }

    /// Length-prefixed bool sequence (one byte per flag; acceptance and
    /// liveness vectors are small next to the transition tables).
    pub fn bools(&mut self, vs: &[bool]) {
        self.usize(vs.len());
        for &v in vs {
            self.bool(v);
        }
    }
}

/// Bounds-checked artifact reader over a borrowed buffer.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches payloads that
    /// decode "successfully" into a prefix of themselves.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::Malformed("trailing bytes"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Malformed("bool tag")),
        }
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A `u64` that must fit a `usize` *and* be a plausible element count:
    /// anything larger than the remaining byte count is corrupt (every
    /// element takes at least one byte), which stops hostile counts from
    /// provoking huge allocations before the read that would catch them.
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Malformed("count overflows usize"))
    }

    fn count(&mut self, elem_size: usize) -> Result<usize, CodecError> {
        let n = self.usize()?;
        match n.checked_mul(elem_size) {
            Some(b) if b <= self.remaining() => Ok(n),
            _ => Err(CodecError::Truncated),
        }
    }

    /// Reads a fixed 4-byte magic marker; `None` on truncation.
    pub fn take_magic(&mut self) -> Option<[u8; 4]> {
        self.take(4).ok().map(|s| s.try_into().unwrap())
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let n = self.count(1)?;
        std::str::from_utf8(self.take(n)?)
            .map(str::to_string)
            .map_err(|_| CodecError::Malformed("string is not UTF-8"))
    }

    /// Length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let n = self.count(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Length-prefixed `u32` sequence.
    pub fn u32s(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    /// Length-prefixed `u64` sequence.
    pub fn u64s(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.count(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    /// Length-prefixed bool sequence.
    pub fn bools(&mut self) -> Result<Vec<bool>, CodecError> {
        let n = self.count(1)?;
        (0..n).map(|_| self.bool()).collect()
    }
}

/// Length-delimited framing over byte streams — the wire format of
/// `xmlmap serve`.
///
/// A frame is a 4-byte little-endian payload length followed by the
/// payload bytes. The reader distinguishes three stream states a server
/// loop cares about: a complete [`frame::ReadFrame::Frame`], a clean
/// [`frame::ReadFrame::Eof`] at a frame boundary, and
/// [`frame::ReadFrame::Idle`] when a read timeout fired before *any* byte
/// of the next frame arrived (so a poll loop can check a shutdown flag
/// without desynchronizing the stream). Once the first byte of a frame
/// has been consumed the reader commits: it retries timeouts until the
/// frame completes, up to [`frame::STALL_RETRY_LIMIT`] consecutive
/// timeouts, after which the frame is
/// reported as corrupt (`InvalidData`) — a half-written frame must never
/// be silently resynchronized.
pub mod frame {
    use std::io::{self, Read, Write};

    /// Hard ceiling a reader enforces on the advertised payload length.
    /// Requests are job lines and responses are JSON rows, so anything
    /// near this is corruption, not traffic.
    pub const MAX_FRAME: u32 = 4 * 1024 * 1024;

    /// Consecutive mid-frame read timeouts tolerated before the frame is
    /// declared stalled. With the ~20ms poll timeouts the server uses,
    /// this bounds a dead mid-frame peer to a few seconds of patience.
    pub const STALL_RETRY_LIMIT: u32 = 100;

    /// What [`read`] found on the stream.
    #[derive(Debug)]
    pub enum ReadFrame {
        /// A complete frame payload.
        Frame(Vec<u8>),
        /// The peer closed the stream at a frame boundary.
        Eof,
        /// A read timeout fired with no byte of the next frame consumed;
        /// the stream is still synchronized — poll and retry.
        Idle,
    }

    /// Writes one length-delimited frame.
    pub fn write(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&n| n <= MAX_FRAME)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large")
            })?;
        w.write_all(&len.to_le_bytes())?;
        w.write_all(payload)?;
        w.flush()
    }

    /// Fills `buf`, retrying timeouts; `commit` is whether earlier bytes
    /// of the current frame were already consumed (controls Idle vs
    /// stall handling).
    fn read_exact_patient(
        r: &mut impl Read,
        buf: &mut [u8],
        mut committed: bool,
    ) -> io::Result<Option<bool>> {
        let mut filled = 0;
        let mut stalls = 0u32;
        while filled < buf.len() {
            match r.read(&mut buf[filled..]) {
                Ok(0) => {
                    return if committed {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        ))
                    } else {
                        Ok(None) // clean EOF at a frame boundary
                    };
                }
                Ok(n) => {
                    filled += n;
                    committed = true;
                    stalls = 0;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if !committed {
                        return Ok(Some(false)); // Idle: nothing consumed yet
                    }
                    stalls += 1;
                    if stalls >= STALL_RETRY_LIMIT {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "frame stalled mid-transfer",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(Some(true))
    }

    /// Reads one frame. `Ok(Idle)` is only possible when the stream has a
    /// read timeout configured; blocking streams return `Frame` or `Eof`.
    pub fn read(r: &mut impl Read, max_len: u32) -> io::Result<ReadFrame> {
        let mut len_buf = [0u8; 4];
        match read_exact_patient(r, &mut len_buf, false)? {
            None => return Ok(ReadFrame::Eof),
            Some(false) => return Ok(ReadFrame::Idle),
            Some(true) => {}
        }
        let len = u32::from_le_bytes(len_buf);
        if len > max_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds the {max_len}-byte limit"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        match read_exact_patient(r, &mut payload, true)? {
            Some(_) => Ok(ReadFrame::Frame(payload)),
            None => unreachable!("committed reads never report clean EOF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Encoder::new();
        e.u8(7);
        e.bool(true);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 1);
        e.usize(42);
        e.str("hédge");
        e.bytes(&[1, 2, 3]);
        e.u32s(&[5, 6, 7]);
        e.u64s(&[u64::MAX]);
        e.bools(&[true, false, true]);
        let buf = e.finish();

        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert!(d.bool().unwrap());
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.usize().unwrap(), 42);
        assert_eq!(d.str().unwrap(), "hédge");
        assert_eq!(d.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(d.u32s().unwrap(), vec![5, 6, 7]);
        assert_eq!(d.u64s().unwrap(), vec![u64::MAX]);
        assert_eq!(d.bools().unwrap(), vec![true, false, true]);
        d.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.str("hello world");
        e.u64s(&[1, 2, 3]);
        let buf = e.finish();
        // Every proper prefix must fail cleanly.
        for cut in 0..buf.len() {
            let mut d = Decoder::new(&buf[..cut]);
            let r = d.str().and_then(|_| d.u64s());
            assert!(r.is_err(), "prefix of {cut} bytes decoded");
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // a length prefix promising 2^64 elements
        let buf = e.finish();
        assert_eq!(
            Decoder::new(&buf).u64s().unwrap_err(),
            CodecError::Truncated
        );
        assert_eq!(Decoder::new(&buf).str().unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn bad_bool_tag_is_malformed() {
        let buf = vec![2u8];
        assert!(matches!(
            Decoder::new(&buf).bool().unwrap_err(),
            CodecError::Malformed(_)
        ));
    }

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        frame::write(&mut buf, b"first").unwrap();
        frame::write(&mut buf, b"").unwrap();
        frame::write(&mut buf, b"third frame").unwrap();
        let mut r = std::io::Cursor::new(buf);
        for expect in [&b"first"[..], b"", b"third frame"] {
            match frame::read(&mut r, frame::MAX_FRAME).unwrap() {
                frame::ReadFrame::Frame(p) => assert_eq!(p, expect),
                other => panic!("expected a frame, got {other:?}"),
            }
        }
        assert!(matches!(
            frame::read(&mut r, frame::MAX_FRAME).unwrap(),
            frame::ReadFrame::Eof
        ));
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        frame::write(&mut buf, b"payload").unwrap();
        for cut in 1..buf.len() {
            let mut r = std::io::Cursor::new(&buf[..cut]);
            let err = frame::read(&mut r, frame::MAX_FRAME).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "cut {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_is_invalid_data() {
        let buf = u32::MAX.to_le_bytes().to_vec();
        let err = frame::read(&mut std::io::Cursor::new(buf), frame::MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let err =
            frame::write(&mut Vec::new(), &vec![0u8; frame::MAX_FRAME as usize + 1]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }

    #[test]
    fn checksum_detects_flips_and_truncation() {
        let data = b"compiled artifact payload".to_vec();
        let base = checksum(&data);
        assert_eq!(base, checksum(&data), "deterministic");
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 0x40;
            assert_ne!(checksum(&flipped), base, "flip at {i} undetected");
        }
        assert_ne!(checksum(&data[..data.len() - 1]), base);
        // Zero-padding to the same lane boundary must also be caught.
        let mut padded = data.clone();
        padded.push(0);
        assert_ne!(checksum(&padded), base);
    }
}
