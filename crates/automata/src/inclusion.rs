//! Language inclusion for hedge automata, with counterexample extraction —
//! and DTD *subschema* checking on top.
//!
//! Inclusion `L(A) ⊆ L(B)` is decided by the classic product-with-
//! determinised-complement construction, specialised to unranked trees:
//! the algorithm computes the realizable pairs `(q_A, S_B)` — some tree has
//! an `A`-run reaching `q_A` while the (deterministic) subset of `B`-states
//! reachable on it is exactly `S_B` — as a least fixpoint. A realizable
//! pair with `q_A` accepting and `S_B` disjoint from `B`'s accepting states
//! is a counterexample, reconstructed as an actual tree.
//!
//! The state space is exponential in `B` (inclusion for tree automata is
//! EXPTIME-complete), so the exploration carries an explicit budget.

use crate::hedge::HedgeAutomaton;
use std::collections::{BTreeSet, HashMap, VecDeque};
use xmlmap_dtd::Dtd;
use xmlmap_trees::{Name, NodeId, Tree, Value};

/// The inclusion exploration exceeded its budget; the answer is unknown.
///
/// Mirrors `xmlmap_patterns`' `BudgetExceeded`: the exhausted budget, the
/// states actually explored at abort, and the operation that gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionBudgetExceeded {
    /// The exhausted budget (machine states explored).
    pub budget: usize,
    /// States actually explored when the engine gave up (≥ budget).
    pub states_explored: usize,
    /// Which operation blew the budget (`"inclusion check"` or
    /// `"subschema check"`).
    pub operation: String,
}

impl std::fmt::Display for InclusionBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} exceeded its budget of {} states ({} states explored at abort)",
            self.operation, self.budget, self.states_explored
        )
    }
}

impl std::error::Error for InclusionBudgetExceeded {}

/// A realizable pair: an `A`-state together with the deterministic `B`
/// subset, plus the witness word that produced it.
struct PairInfo {
    label: Name,
    qa: usize,
    sb: BTreeSet<usize>,
    /// Children realisation (ids of earlier realizable pairs).
    word: Vec<usize>,
}

/// Decides `L(a) ⊆ L(b)` over trees labelled from `alphabet`.
///
/// Returns `Ok(None)` when included, `Ok(Some(t))` with `t ∈ L(a) ∖ L(b)`
/// otherwise. Both automata's rules on labels outside `alphabet` are
/// ignored (such trees are outside the compared universe).
pub fn inclusion_counterexample(
    a: &HedgeAutomaton,
    b: &HedgeAutomaton,
    alphabet: &[Name],
    budget: usize,
) -> Result<Option<Tree>, InclusionBudgetExceeded> {
    let mut pairs: Vec<PairInfo> = Vec::new();
    let mut pair_index: HashMap<(Name, usize, BTreeSet<usize>), usize> = HashMap::new();
    let mut explored = 0usize;

    loop {
        let frozen = pairs.len();
        let mut discovered: Vec<PairInfo> = Vec::new();

        for label in alphabet {
            let a_rules: Vec<_> = a.rules.iter().filter(|r| &r.label == label).collect();
            let b_rules: Vec<_> = b.rules.iter().filter(|r| &r.label == label).collect();
            for rule in &a_rules {
                // Machine state: (subset of the A-rule NFA, per-B-rule NFA
                // subsets). Words range over realizable pairs < frozen.
                #[derive(Clone, PartialEq, Eq, Hash)]
                struct MState {
                    a: BTreeSet<usize>,
                    b: Vec<BTreeSet<usize>>,
                }
                let initial = MState {
                    a: BTreeSet::from([0usize]),
                    b: vec![BTreeSet::from([0usize]); b_rules.len()],
                };
                let mut index: HashMap<MState, usize> = HashMap::new();
                let mut states = vec![initial.clone()];
                let mut parent: Vec<Option<(usize, usize)>> = vec![None];
                let mut queue = VecDeque::from([0usize]);
                index.insert(initial, 0);
                let mut emitted: BTreeSet<BTreeSet<usize>> = BTreeSet::new();

                while let Some(si) = queue.pop_front() {
                    explored += 1;
                    if explored > budget {
                        return Err(InclusionBudgetExceeded {
                            budget,
                            states_explored: explored,
                            operation: "inclusion check".into(),
                        });
                    }
                    let st = states[si].clone();

                    // Complete word: the A-rule accepts here.
                    if st.a.iter().any(|&q| rule.horizontal.accepting[q]) {
                        // The deterministic B-subset: all B-states whose
                        // rule accepts along this word.
                        let sb: BTreeSet<usize> = b_rules
                            .iter()
                            .zip(&st.b)
                            .filter(|(br, bs)| bs.iter().any(|&q| br.horizontal.accepting[q]))
                            .map(|(br, _)| br.state)
                            .collect();
                        let key = (label.clone(), rule.state, sb.clone());
                        if emitted.insert(sb.clone()) && !pair_index.contains_key(&key) {
                            let mut word = Vec::new();
                            let mut cur = si;
                            while let Some((prev, pid)) = parent[cur] {
                                word.push(pid);
                                cur = prev;
                            }
                            word.reverse();
                            discovered.push(PairInfo {
                                label: label.clone(),
                                qa: rule.state,
                                sb,
                                word,
                            });
                        }
                    }

                    // Transitions on realizable pairs.
                    for (pid, p) in pairs.iter().enumerate().take(frozen) {
                        // A part: advance on the child's A-state.
                        let mut na = BTreeSet::new();
                        for &q in &st.a {
                            for (sym, q2) in &rule.horizontal.transitions[q] {
                                if *sym == p.qa {
                                    na.insert(*q2);
                                }
                            }
                        }
                        if na.is_empty() {
                            continue;
                        }
                        // B part: advance each B-rule's subset on any state
                        // in the child's deterministic B-subset.
                        let nb: Vec<BTreeSet<usize>> = b_rules
                            .iter()
                            .zip(&st.b)
                            .map(|(br, bs)| {
                                let mut next = BTreeSet::new();
                                for &q in bs {
                                    for (sym, q2) in &br.horizontal.transitions[q] {
                                        if p.sb.contains(sym) {
                                            next.insert(*q2);
                                        }
                                    }
                                }
                                next
                            })
                            .collect();
                        let next = MState { a: na, b: nb };
                        if !index.contains_key(&next) {
                            let ni = states.len();
                            index.insert(next.clone(), ni);
                            states.push(next);
                            parent.push(Some((si, pid)));
                            queue.push_back(ni);
                        }
                    }
                }
            }
        }

        let mut grew = false;
        for info in discovered {
            let key = (info.label.clone(), info.qa, info.sb.clone());
            if let std::collections::hash_map::Entry::Vacant(e) = pair_index.entry(key) {
                e.insert(pairs.len());
                pairs.push(info);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }

    // A counterexample: accepting for A, rejecting for B.
    let bad = pairs
        .iter()
        .position(|p| a.accepting[p.qa] && p.sb.iter().all(|&q| !b.accepting[q]));
    Ok(bad.map(|root| build_tree(&pairs, root)))
}

fn build_tree(pairs: &[PairInfo], root: usize) -> Tree {
    fn attach(pairs: &[PairInfo], tree: &mut Tree, at: NodeId, id: usize) {
        for &child in &pairs[id].word {
            let node = tree.add_elem(at, pairs[child].label.clone());
            attach(pairs, tree, node, child);
        }
    }
    let mut tree = Tree::new(pairs[root].label.clone());
    attach(pairs, &mut tree, Tree::ROOT, root);
    tree
}

/// Why one DTD is not a subschema of another.
#[derive(Debug, Clone)]
pub enum SubschemaViolation {
    /// A document conforming to the first DTD but not the second (labels
    /// only; its attributes are filled per the first DTD).
    Document(Tree),
    /// A label reachable in the first DTD whose attribute list differs.
    AttributeMismatch {
        /// The offending element type.
        label: Name,
        /// Attribute list in the first DTD.
        left: Vec<Name>,
        /// Attribute list in the second DTD.
        right: Vec<Name>,
    },
}

/// Is every document conforming to `d1` also conforming to `d2`?
///
/// Checks label-language inclusion via [`inclusion_counterexample`] and
/// attribute-list equality on `d1`-reachable labels. Returns the violation
/// if any — a concrete counterexample document, or the first mismatched
/// attribute list.
pub fn subschema(
    d1: &Dtd,
    d2: &Dtd,
    budget: usize,
) -> Result<Option<SubschemaViolation>, InclusionBudgetExceeded> {
    // Attribute compatibility on reachable labels.
    for label in d1.reachable() {
        if d1.attrs(&label) != d2.attrs(&label) {
            return Ok(Some(SubschemaViolation::AttributeMismatch {
                left: d1.attrs(&label).to_vec(),
                right: d2.attrs(&label).to_vec(),
                label,
            }));
        }
    }
    let a = HedgeAutomaton::from_dtd(d1);
    let b = HedgeAutomaton::from_dtd(d2);
    let mut alphabet: Vec<Name> = d1.alphabet().cloned().collect();
    for l in d2.alphabet() {
        if !alphabet.contains(l) {
            alphabet.push(l.clone());
        }
    }
    let counterexample = inclusion_counterexample(&a, &b, &alphabet, budget).map_err(|e| {
        InclusionBudgetExceeded {
            operation: "subschema check".into(),
            ..e
        }
    })?;
    match counterexample {
        None => Ok(None),
        Some(mut t) => {
            // Fill the counterexample's attributes per d1 so it genuinely
            // conforms to d1.
            let nodes: Vec<NodeId> = t.nodes().collect();
            for n in nodes {
                let label = t.label(n).clone();
                let attrs: Vec<(Name, Value)> = d1
                    .attrs(&label)
                    .iter()
                    .map(|a| (a.clone(), Value::str("d")))
                    .collect();
                t.set_attrs(n, attrs);
            }
            debug_assert!(d1.conforms(&t));
            debug_assert!(!d2.conforms(&t));
            Ok(Some(SubschemaViolation::Document(t)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 1_000_000;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    #[test]
    fn widening_a_production_is_a_superschema() {
        let narrow = dtd("root r\nr -> a, b");
        let wide = dtd("root r\nr -> a?, b+, c*");
        assert!(subschema(&narrow, &wide, BUDGET).unwrap().is_none());
        // The converse fails; the counterexample conforms to wide only.
        let v = subschema(&wide, &narrow, BUDGET)
            .unwrap()
            .expect("violation");
        let SubschemaViolation::Document(t) = v else {
            panic!("expected a document violation");
        };
        assert!(wide.conforms(&t));
        assert!(!narrow.conforms(&t));
    }

    #[test]
    fn identical_schemas_include_both_ways() {
        let d = dtd("root r\nr -> (a|b)*, c?\na -> c*");
        assert!(subschema(&d, &d, BUDGET).unwrap().is_none());
    }

    #[test]
    fn attribute_mismatch_detected() {
        let d1 = dtd("root r\nr -> a\na @ x");
        let d2 = dtd("root r\nr -> a\na @ x, y");
        let v = subschema(&d1, &d2, BUDGET).unwrap().expect("violation");
        assert!(matches!(v, SubschemaViolation::AttributeMismatch { .. }));
    }

    #[test]
    fn unreachable_labels_do_not_matter() {
        // `orphan` differs but is unreachable in d1.
        let d1 = dtd("root r\nr -> a\norphan @ z");
        let d2 = dtd("root r\nr -> a|b");
        assert!(subschema(&d1, &d2, BUDGET).unwrap().is_none());
    }

    #[test]
    fn recursive_schema_inclusion() {
        let list = dtd("root r\nr -> item\nitem -> item?");
        let tree_shape = dtd("root r\nr -> item\nitem -> item*");
        assert!(subschema(&list, &tree_shape, BUDGET).unwrap().is_none());
        let v = subschema(&tree_shape, &list, BUDGET)
            .unwrap()
            .expect("violation");
        let SubschemaViolation::Document(t) = v else {
            panic!()
        };
        // Some node has two item children.
        assert!(t.nodes().any(|n| t.children(n).len() >= 2));
    }

    #[test]
    fn horizontal_order_differences() {
        let ab = dtd("root r\nr -> a, b");
        let ba = dtd("root r\nr -> b, a");
        let v = subschema(&ab, &ba, BUDGET).unwrap().expect("violation");
        let SubschemaViolation::Document(t) = v else {
            panic!()
        };
        assert!(ab.conforms(&t) && !ba.conforms(&t));
    }

    #[test]
    fn raw_inclusion_counterexample() {
        let a = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x*"));
        let b = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x?"));
        let alphabet = vec![Name::new("r"), Name::new("x")];
        // r[x,x] ∈ L(a) ∖ L(b).
        let t = inclusion_counterexample(&a, &b, &alphabet, BUDGET)
            .unwrap()
            .expect("not included");
        assert!(a.accepts(&t));
        assert!(!b.accepts(&t));
        // And the converse inclusion holds.
        assert!(inclusion_counterexample(&b, &a, &alphabet, BUDGET)
            .unwrap()
            .is_none());
    }

    #[test]
    fn budget_error_reports_operation_and_exploration() {
        let a = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x*"));
        let b = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x?"));
        let alphabet = vec![Name::new("r"), Name::new("x")];
        let err = inclusion_counterexample(&a, &b, &alphabet, 1).unwrap_err();
        assert_eq!(err.budget, 1);
        assert!(err.states_explored > err.budget);
        assert_eq!(
            err.to_string(),
            format!(
                "inclusion check exceeded its budget of 1 states \
                 ({} states explored at abort)",
                err.states_explored
            )
        );
        // Through `subschema`, the operation name reflects the caller.
        let err = subschema(&dtd("root r\nr -> x*"), &dtd("root r\nr -> x?"), 1).unwrap_err();
        assert_eq!(err.operation, "subschema check");
        assert!(err.to_string().starts_with("subschema check exceeded"));
    }
}
