//! Language inclusion for hedge automata, with counterexample extraction —
//! and DTD *subschema* checking on top.
//!
//! Inclusion `L(A) ⊆ L(B)` is decided by the classic product-with-
//! determinised-complement construction, specialised to unranked trees:
//! the algorithm computes the realizable pairs `(q_A, S_B)` — some tree has
//! an `A`-run reaching `q_A` while the (deterministic) subset of `B`-states
//! reachable on it is exactly `S_B` — as a least fixpoint. A realizable
//! pair with `q_A` accepting and `S_B` disjoint from `B`'s accepting states
//! is a counterexample, reconstructed as an actual tree.
//!
//! The state space is exponential in `B` (inclusion for tree automata is
//! EXPTIME-complete), so the exploration carries an explicit budget.
//!
//! The fixpoint itself runs in the compiled engine (`crate::compiled`):
//! horizontals pre-determinized into flat DFA tables, `S_B` as hash-consed
//! bitsets, realizable pairs pruned to per-`q_A` antichains. The original
//! set-based exploration is preserved as
//! [`crate::reference::inclusion_counterexample`] for differential testing.

use crate::compiled::{self, CompiledAutomaton};
use crate::hedge::HedgeAutomaton;
use xmlmap_dtd::Dtd;
use xmlmap_trees::{Name, NodeId, Tree, Value};

/// The inclusion exploration exceeded its budget; the answer is unknown.
///
/// Mirrors `xmlmap_patterns`' `BudgetExceeded`: the exhausted budget, the
/// states actually explored at abort, and the operation that gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionBudgetExceeded {
    /// The exhausted budget (machine states explored).
    pub budget: usize,
    /// States actually explored when the engine gave up (≥ budget).
    pub states_explored: usize,
    /// Which operation blew the budget (`"inclusion check"` or
    /// `"subschema check"`).
    pub operation: String,
}

impl std::fmt::Display for InclusionBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} exceeded its budget of {} states ({} states explored at abort)",
            self.operation, self.budget, self.states_explored
        )
    }
}

impl std::error::Error for InclusionBudgetExceeded {}

/// Decides `L(a) ⊆ L(b)` over trees labelled from `alphabet`.
///
/// Returns `Ok(None)` when included, `Ok(Some(t))` with `t ∈ L(a) ∖ L(b)`
/// otherwise. Both automata's rules on labels outside `alphabet` are
/// ignored (such trees are outside the compared universe).
///
/// Compiles both automata and runs the engine's antichain fixpoint; for
/// repeated checks against the same pair of schemas, prefer
/// [`crate::AutomataCache`], which compiles once and memoizes verdicts.
pub fn inclusion_counterexample(
    a: &HedgeAutomaton,
    b: &HedgeAutomaton,
    alphabet: &[Name],
    budget: usize,
) -> Result<Option<Tree>, InclusionBudgetExceeded> {
    let ca = CompiledAutomaton::new(a, alphabet);
    let cb = CompiledAutomaton::new(b, alphabet);
    compiled::inclusion(&ca, &cb, budget)
}

/// Why one DTD is not a subschema of another.
#[derive(Debug, Clone)]
pub enum SubschemaViolation {
    /// A document conforming to the first DTD but not the second (labels
    /// only; its attributes are filled per the first DTD).
    Document(Tree),
    /// A label reachable in the first DTD whose attribute list differs.
    AttributeMismatch {
        /// The offending element type.
        label: Name,
        /// Attribute list in the first DTD.
        left: Vec<Name>,
        /// Attribute list in the second DTD.
        right: Vec<Name>,
    },
}

/// Is every document conforming to `d1` also conforming to `d2`?
///
/// Checks label-language inclusion via [`inclusion_counterexample`] and
/// attribute-list equality on `d1`-reachable labels. Returns the violation
/// if any — a concrete counterexample document, or the first mismatched
/// attribute list.
///
/// The attribute check exists because the underlying automata see only the
/// label structure: as [`HedgeAutomaton::from_dtd`] documents, attribute
/// lists are not modelled by the automata, so subschema checking layers
/// the per-label attribute comparison on top of language inclusion (and
/// fills the counterexample's attributes per `d1` afterwards).
pub fn subschema(
    d1: &Dtd,
    d2: &Dtd,
    budget: usize,
) -> Result<Option<SubschemaViolation>, InclusionBudgetExceeded> {
    let mut alphabet: Vec<Name> = d1.alphabet().cloned().collect();
    for l in d2.alphabet() {
        if !alphabet.contains(l) {
            alphabet.push(l.clone());
        }
    }
    let a = CompiledAutomaton::new(&HedgeAutomaton::from_dtd(d1), &alphabet);
    let b = CompiledAutomaton::new(&HedgeAutomaton::from_dtd(d2), &alphabet);
    subschema_of_automata(d1, d2, &a, &b, budget)
}

/// [`subschema`] over pre-compiled automata — the
/// [`AutomataCache`](crate::cache::AutomataCache) path, where DTD→automaton
/// compilation and horizontal determinization are paid once per schema pair
/// instead of per check.
pub(crate) fn subschema_of_automata(
    d1: &Dtd,
    d2: &Dtd,
    a: &CompiledAutomaton,
    b: &CompiledAutomaton,
    budget: usize,
) -> Result<Option<SubschemaViolation>, InclusionBudgetExceeded> {
    // Attribute compatibility on reachable labels.
    for label in d1.reachable() {
        if d1.attrs(&label) != d2.attrs(&label) {
            return Ok(Some(SubschemaViolation::AttributeMismatch {
                left: d1.attrs(&label).to_vec(),
                right: d2.attrs(&label).to_vec(),
                label,
            }));
        }
    }
    let counterexample =
        compiled::inclusion(a, b, budget).map_err(|e| InclusionBudgetExceeded {
            operation: "subschema check".into(),
            ..e
        })?;
    match counterexample {
        None => Ok(None),
        Some(mut t) => {
            // Fill the counterexample's attributes per d1 so it genuinely
            // conforms to d1.
            let nodes: Vec<NodeId> = t.nodes().collect();
            for n in nodes {
                let label = t.label(n).clone();
                let attrs: Vec<(Name, Value)> = d1
                    .attrs(&label)
                    .iter()
                    .map(|a| (a.clone(), Value::str("d")))
                    .collect();
                t.set_attrs(n, attrs);
            }
            debug_assert!(d1.conforms(&t));
            debug_assert!(!d2.conforms(&t));
            Ok(Some(SubschemaViolation::Document(t)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: usize = 1_000_000;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    #[test]
    fn widening_a_production_is_a_superschema() {
        let narrow = dtd("root r\nr -> a, b");
        let wide = dtd("root r\nr -> a?, b+, c*");
        assert!(subschema(&narrow, &wide, BUDGET).unwrap().is_none());
        // The converse fails; the counterexample conforms to wide only.
        let v = subschema(&wide, &narrow, BUDGET)
            .unwrap()
            .expect("violation");
        let SubschemaViolation::Document(t) = v else {
            panic!("expected a document violation");
        };
        assert!(wide.conforms(&t));
        assert!(!narrow.conforms(&t));
    }

    #[test]
    fn identical_schemas_include_both_ways() {
        let d = dtd("root r\nr -> (a|b)*, c?\na -> c*");
        assert!(subschema(&d, &d, BUDGET).unwrap().is_none());
    }

    #[test]
    fn attribute_mismatch_detected() {
        let d1 = dtd("root r\nr -> a\na @ x");
        let d2 = dtd("root r\nr -> a\na @ x, y");
        let v = subschema(&d1, &d2, BUDGET).unwrap().expect("violation");
        assert!(matches!(v, SubschemaViolation::AttributeMismatch { .. }));
    }

    #[test]
    fn unreachable_labels_do_not_matter() {
        // `orphan` differs but is unreachable in d1.
        let d1 = dtd("root r\nr -> a\norphan @ z");
        let d2 = dtd("root r\nr -> a|b");
        assert!(subschema(&d1, &d2, BUDGET).unwrap().is_none());
    }

    #[test]
    fn recursive_schema_inclusion() {
        let list = dtd("root r\nr -> item\nitem -> item?");
        let tree_shape = dtd("root r\nr -> item\nitem -> item*");
        assert!(subschema(&list, &tree_shape, BUDGET).unwrap().is_none());
        let v = subschema(&tree_shape, &list, BUDGET)
            .unwrap()
            .expect("violation");
        let SubschemaViolation::Document(t) = v else {
            panic!()
        };
        // Some node has two item children.
        assert!(t.nodes().any(|n| t.children(n).len() >= 2));
    }

    #[test]
    fn horizontal_order_differences() {
        let ab = dtd("root r\nr -> a, b");
        let ba = dtd("root r\nr -> b, a");
        let v = subschema(&ab, &ba, BUDGET).unwrap().expect("violation");
        let SubschemaViolation::Document(t) = v else {
            panic!()
        };
        assert!(ab.conforms(&t) && !ba.conforms(&t));
    }

    #[test]
    fn raw_inclusion_counterexample() {
        let a = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x*"));
        let b = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x?"));
        let alphabet = vec![Name::new("r"), Name::new("x")];
        // r[x,x] ∈ L(a) ∖ L(b).
        let t = inclusion_counterexample(&a, &b, &alphabet, BUDGET)
            .unwrap()
            .expect("not included");
        assert!(a.accepts(&t));
        assert!(!b.accepts(&t));
        // And the converse inclusion holds.
        assert!(inclusion_counterexample(&b, &a, &alphabet, BUDGET)
            .unwrap()
            .is_none());
    }

    #[test]
    fn budget_error_reports_operation_and_exploration() {
        let a = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x*"));
        let b = HedgeAutomaton::from_dtd(&dtd("root r\nr -> x?"));
        let alphabet = vec![Name::new("r"), Name::new("x")];
        let err = inclusion_counterexample(&a, &b, &alphabet, 1).unwrap_err();
        assert_eq!(err.budget, 1);
        assert!(err.states_explored > err.budget);
        assert_eq!(
            err.to_string(),
            format!(
                "inclusion check exceeded its budget of 1 states \
                 ({} states explored at abort)",
                err.states_explored
            )
        );
        // Through `subschema`, the operation name reflects the caller.
        let err = subschema(&dtd("root r\nr -> x*"), &dtd("root r\nr -> x?"), 1).unwrap_err();
        assert_eq!(err.operation, "subschema check");
        assert!(err.to_string().starts_with("subschema check exceeded"));
    }
}
