//! Unranked (hedge) tree automata.
//!
//! A nondeterministic bottom-up automaton over unranked trees: a finite set
//! of states, and rules `(ℓ, q, L)` where `L` is a regular *horizontal
//! language* over states. A run assigns state `q` to an ℓ-labelled node iff
//! some rule `(ℓ, q, L)` accepts the left-to-right word of its children's
//! states. The paper's EXPTIME consistency procedures (Thm 5.2, Thm 7.1)
//! are "non-emptiness of a product of tree automata"; this module provides
//! exactly those primitives: membership, product, emptiness — the latter
//! with witness-tree extraction, which is also how consistency checkers
//! produce concrete counterexample documents.

use std::collections::{HashMap, HashSet, VecDeque};
use xmlmap_dtd::Dtd;
use xmlmap_regex::Nfa;
use xmlmap_trees::{Name, NodeId, Tree};

/// A transition rule: an ℓ-labelled node may take state `state` if the word
/// of its children's states belongs to `horizontal`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Node label this rule applies to.
    pub label: Name,
    /// State assigned to the node.
    pub state: usize,
    /// Horizontal language over child states.
    pub horizontal: Nfa<usize>,
}

/// A nondeterministic bottom-up hedge automaton.
#[derive(Clone, Debug)]
pub struct HedgeAutomaton {
    /// Number of states (`0..num_states`).
    pub num_states: usize,
    /// Transition rules.
    pub rules: Vec<Rule>,
    /// `accepting[q]` iff a tree whose root evaluates to `q` is accepted.
    pub accepting: Vec<bool>,
}

impl HedgeAutomaton {
    /// Compiles a DTD into an equivalent automaton: one state per element
    /// type, the root's state accepting. Attribute lists are not modelled
    /// (automata see only the label structure).
    pub fn from_dtd(dtd: &Dtd) -> HedgeAutomaton {
        let labels: Vec<Name> = dtd.alphabet().cloned().collect();
        let index: HashMap<&Name, usize> = labels.iter().enumerate().map(|(i, l)| (l, i)).collect();
        let rules = labels
            .iter()
            .enumerate()
            .map(|(q, l)| Rule {
                label: l.clone(),
                state: q,
                horizontal: Nfa::from_regex(dtd.production(l)).map(|name| index[name]),
            })
            .collect();
        let mut accepting = vec![false; labels.len()];
        accepting[index[dtd.root()]] = true;
        HedgeAutomaton {
            num_states: labels.len(),
            rules,
            accepting,
        }
    }

    /// The set of states reachable at each node of `tree`, bottom-up.
    fn state_sets(&self, tree: &Tree) -> HashMap<NodeId, HashSet<usize>> {
        // Group rules by label for quick lookup.
        let mut by_label: HashMap<&Name, Vec<&Rule>> = HashMap::new();
        for r in &self.rules {
            by_label.entry(&r.label).or_default().push(r);
        }
        let mut sets: HashMap<NodeId, HashSet<usize>> = HashMap::new();
        // Process in reverse document order so children precede parents.
        let order: Vec<NodeId> = tree.nodes().collect();
        for &node in order.iter().rev() {
            let mut states = HashSet::new();
            if let Some(rules) = by_label.get(tree.label(node)) {
                let child_sets: Vec<&HashSet<usize>> =
                    tree.children(node).iter().map(|c| &sets[c]).collect();
                for rule in rules {
                    if accepts_sets(&rule.horizontal, &child_sets) {
                        states.insert(rule.state);
                    }
                }
            }
            sets.insert(node, states);
        }
        sets
    }

    /// Does the automaton accept `tree`?
    pub fn accepts(&self, tree: &Tree) -> bool {
        self.state_sets(tree)[&Tree::ROOT]
            .iter()
            .any(|&q| self.accepting[q])
    }

    /// Product automaton: accepts the intersection of the two languages.
    pub fn product(&self, other: &HedgeAutomaton) -> HedgeAutomaton {
        let pair = |q1: usize, q2: usize| q1 * other.num_states + q2;
        let mut rules = Vec::new();
        for r1 in &self.rules {
            for r2 in &other.rules {
                if r1.label != r2.label {
                    continue;
                }
                // Horizontal product over the paired state alphabet: lift
                // each automaton to pair symbols, then intersect.
                let h1 = r1
                    .horizontal
                    .expand(|&q1| (0..other.num_states).map(|q2| pair(q1, q2)).collect());
                let h2 = r2
                    .horizontal
                    .expand(|&q2| (0..self.num_states).map(|q1| pair(q1, q2)).collect());
                rules.push(Rule {
                    label: r1.label.clone(),
                    state: pair(r1.state, r2.state),
                    horizontal: h1.intersect(&h2),
                });
            }
        }
        let num_states = self.num_states * other.num_states;
        let mut accepting = vec![false; num_states];
        for (q1, &a1) in self.accepting.iter().enumerate() {
            for (q2, &a2) in other.accepting.iter().enumerate() {
                accepting[pair(q1, q2)] = a1 && a2;
            }
        }
        HedgeAutomaton {
            num_states,
            rules,
            accepting,
        }
    }

    /// Union automaton: accepts the union of the two languages (disjoint
    /// sum of states and rules).
    pub fn union(&self, other: &HedgeAutomaton) -> HedgeAutomaton {
        let offset = self.num_states;
        let mut rules = self.rules.clone();
        rules.extend(other.rules.iter().map(|r| Rule {
            label: r.label.clone(),
            state: r.state + offset,
            horizontal: r.horizontal.map(|&q| q + offset),
        }));
        let mut accepting = self.accepting.clone();
        accepting.extend(other.accepting.iter().copied());
        HedgeAutomaton {
            num_states: self.num_states + other.num_states,
            rules,
            accepting,
        }
    }

    /// Emptiness check with witness extraction: returns a smallest-effort
    /// accepted tree, or `None` when the language is empty.
    pub fn witness(&self) -> Option<Tree> {
        // Fixpoint of inhabited states; for each newly inhabited state,
        // remember (rule index, child-state word) to rebuild a witness.
        let mut inhabited: HashSet<usize> = HashSet::new();
        let mut builder: HashMap<usize, (usize, Vec<usize>)> = HashMap::new();
        loop {
            let mut grew = false;
            for (ri, rule) in self.rules.iter().enumerate() {
                if inhabited.contains(&rule.state) {
                    continue;
                }
                if let Some(word) = shortest_word_over(&rule.horizontal, &inhabited) {
                    inhabited.insert(rule.state);
                    builder.insert(rule.state, (ri, word));
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        let root_state =
            (0..self.num_states).find(|&q| self.accepting[q] && inhabited.contains(&q))?;

        fn build(
            a: &HedgeAutomaton,
            builder: &HashMap<usize, (usize, Vec<usize>)>,
            state: usize,
            tree: &mut Tree,
            at: Option<NodeId>,
        ) -> NodeId {
            let (ri, word) = &builder[&state];
            let rule = &a.rules[*ri];
            let node = match at {
                None => Tree::ROOT, // the root label is set by the caller
                Some(p) => tree.add_elem(p, rule.label.clone()),
            };
            for &child_state in word {
                build(a, builder, child_state, tree, Some(node));
            }
            node
        }

        let (ri, _) = &builder[&root_state];
        let mut tree = Tree::new(self.rules[*ri].label.clone());
        build(self, &builder, root_state, &mut tree, None);
        Some(tree)
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.witness().is_none()
    }
}

/// NFA simulation where position `i` of the word may be any state drawn from
/// `sets[i]` (used for membership over child state-sets).
fn accepts_sets(nfa: &Nfa<usize>, sets: &[&HashSet<usize>]) -> bool {
    let mut current: HashSet<usize> = HashSet::from([0]);
    for set in sets {
        let mut next = HashSet::new();
        for &q in &current {
            for (sym, q2) in &nfa.transitions[q] {
                if set.contains(sym) {
                    next.insert(*q2);
                }
            }
        }
        if next.is_empty() {
            return false;
        }
        current = next;
    }
    current.iter().any(|&q| nfa.accepting[q])
}

/// A shortest word of `nfa` using only symbols from `allowed` (BFS).
fn shortest_word_over(nfa: &Nfa<usize>, allowed: &HashSet<usize>) -> Option<Vec<usize>> {
    if nfa.accepting[0] {
        return Some(Vec::new());
    }
    let mut pred: Vec<Option<(usize, usize)>> = vec![None; nfa.num_states];
    let mut seen = vec![false; nfa.num_states];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    while let Some(q) = queue.pop_front() {
        for (sym, q2) in &nfa.transitions[q] {
            if allowed.contains(sym) && !seen[*q2] {
                seen[*q2] = true;
                pred[*q2] = Some((q, *sym));
                if nfa.accepting[*q2] {
                    let mut word = Vec::new();
                    let mut cur = *q2;
                    while let Some((p, s)) = pred[cur] {
                        word.push(s);
                        cur = p;
                    }
                    word.reverse();
                    return Some(word);
                }
                queue.push_back(*q2);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_trees::tree;

    fn d1() -> Dtd {
        xmlmap_dtd::parse(
            "root r
             r -> prof*
             prof -> teach, supervise
             teach -> year
             year -> course, course
             supervise -> student*",
        )
        .unwrap()
    }

    #[test]
    fn dtd_automaton_membership() {
        let a = HedgeAutomaton::from_dtd(&d1());
        let good = tree! {
            "r" [ "prof" [
                "teach" [ "year" [ "course", "course" ] ],
                "supervise" [ "student", "student" ],
            ] ]
        };
        assert!(a.accepts(&good));
        assert!(a.accepts(&tree!("r")));
        assert!(!a.accepts(&tree!("prof")));
        let bad = tree!("r" [ "prof" [ "teach", "supervise" ] ]);
        assert!(!a.accepts(&bad)); // teach must contain a year
    }

    #[test]
    fn witness_conforms_to_dtd() {
        let d = d1();
        let a = HedgeAutomaton::from_dtd(&d);
        let w = a.witness().expect("DTD language non-empty");
        // Attributes are not modelled; compare label structure only.
        let stripped = xmlmap_dtd::parse(
            "root r
             r -> prof*
             prof -> teach, supervise
             teach -> year
             year -> course, course
             supervise -> student*",
        )
        .unwrap();
        assert!(stripped.conforms(&w));
        // Smallest witness: r alone (prof* allows zero professors).
        assert_eq!(w.size(), 1);
    }

    #[test]
    fn mandatory_children_in_witness() {
        let d = xmlmap_dtd::parse("root r\nr -> a+\na -> b, c").unwrap();
        let a = HedgeAutomaton::from_dtd(&d);
        let w = a.witness().unwrap();
        assert!(d.conforms(&w));
        assert_eq!(w.size(), 4); // r, a, b, c
    }

    #[test]
    fn empty_language() {
        // r needs an `a` child, and `a` needs an `r`... which is forbidden.
        // Simpler: mutual recursion with no base case.
        let d = xmlmap_dtd::parse("root r\nr -> a\na -> b\nb -> a").unwrap();
        let auto = HedgeAutomaton::from_dtd(&d);
        assert!(auto.is_empty());
    }

    #[test]
    fn product_is_intersection() {
        let da = xmlmap_dtd::parse("root r\nr -> a*, b?").unwrap();
        let db = xmlmap_dtd::parse("root r\nr -> a?, b").unwrap();
        let pa = HedgeAutomaton::from_dtd(&da);
        let pb = HedgeAutomaton::from_dtd(&db);
        let prod = pa.product(&pb);

        let both = tree!("r" [ "a", "b" ]);
        let only_a = tree!("r" [ "a", "a" ]);
        let only_b = tree!("r"["b"]);
        assert!(prod.accepts(&both));
        assert!(prod.accepts(&only_b));
        assert!(!prod.accepts(&only_a)); // db forbids two a's
        let w = prod.witness().unwrap();
        assert!(pa.accepts(&w) && pb.accepts(&w));
    }

    #[test]
    fn product_emptiness() {
        let da = xmlmap_dtd::parse("root r\nr -> a").unwrap();
        let db = xmlmap_dtd::parse("root r\nr -> b").unwrap();
        let prod = HedgeAutomaton::from_dtd(&da).product(&HedgeAutomaton::from_dtd(&db));
        assert!(prod.is_empty());
    }

    #[test]
    fn union_is_language_union() {
        let da = xmlmap_dtd::parse("root r\nr -> a").unwrap();
        let db = xmlmap_dtd::parse("root r\nr -> b").unwrap();
        let u = HedgeAutomaton::from_dtd(&da).union(&HedgeAutomaton::from_dtd(&db));
        assert!(u.accepts(&tree!("r"["a"])));
        assert!(u.accepts(&tree!("r"["b"])));
        assert!(!u.accepts(&tree!("r" [ "a", "b" ])));
        assert!(!u.accepts(&tree!("r")));
        let w = u.witness().unwrap();
        assert!(u.accepts(&w));
    }

    #[test]
    fn recursive_dtd_witness() {
        let d = xmlmap_dtd::parse("root r\nr -> a\na -> a?").unwrap();
        let auto = HedgeAutomaton::from_dtd(&d);
        let w = auto.witness().unwrap();
        assert!(d.conforms(&w));
        assert_eq!(w.size(), 2); // r[a]
    }
}
