//! Unranked (hedge) tree automata.
//!
//! A nondeterministic bottom-up automaton over unranked trees: a finite set
//! of states, and rules `(ℓ, q, L)` where `L` is a regular *horizontal
//! language* over states. A run assigns state `q` to an ℓ-labelled node iff
//! some rule `(ℓ, q, L)` accepts the left-to-right word of its children's
//! states. The paper's EXPTIME consistency procedures (Thm 5.2, Thm 7.1)
//! are "non-emptiness of a product of tree automata"; this module provides
//! exactly those primitives: membership, product, emptiness — the latter
//! with witness-tree extraction, which is also how consistency checkers
//! produce concrete counterexample documents.

use crate::compiled::{self, CompiledAutomaton};
use std::collections::HashMap;
use xmlmap_dtd::Dtd;
use xmlmap_regex::Nfa;
use xmlmap_trees::{Name, Tree};

/// A transition rule: an ℓ-labelled node may take state `state` if the word
/// of its children's states belongs to `horizontal`.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Node label this rule applies to.
    pub label: Name,
    /// State assigned to the node.
    pub state: usize,
    /// Horizontal language over child states.
    pub horizontal: Nfa<usize>,
}

/// A nondeterministic bottom-up hedge automaton.
#[derive(Clone, Debug)]
pub struct HedgeAutomaton {
    /// Number of states (`0..num_states`).
    pub num_states: usize,
    /// Transition rules.
    pub rules: Vec<Rule>,
    /// `accepting[q]` iff a tree whose root evaluates to `q` is accepted.
    pub accepting: Vec<bool>,
}

impl HedgeAutomaton {
    /// Compiles a DTD into an equivalent automaton: one state per element
    /// type, the root's state accepting. Attribute lists are not modelled
    /// (automata see only the label structure).
    pub fn from_dtd(dtd: &Dtd) -> HedgeAutomaton {
        let labels: Vec<Name> = dtd.alphabet().cloned().collect();
        let index: HashMap<&Name, usize> = labels.iter().enumerate().map(|(i, l)| (l, i)).collect();
        let rules = labels
            .iter()
            .enumerate()
            .map(|(q, l)| Rule {
                label: l.clone(),
                state: q,
                // Reuse the DTD's pre-compiled Glushkov automaton instead
                // of re-running regex compilation per label; labels used
                // without a declaration have the ε production.
                horizontal: match dtd.horizontal(l) {
                    Some(nfa) => nfa.map(|name| index[name]),
                    None => Nfa::epsilon(),
                },
            })
            .collect();
        let mut accepting = vec![false; labels.len()];
        accepting[index[dtd.root()]] = true;
        HedgeAutomaton {
            num_states: labels.len(),
            rules,
            accepting,
        }
    }

    /// Does the automaton accept `tree`?
    ///
    /// Routed through the compiled engine (`crate::compiled`): rules are
    /// interned and their horizontals determinized, then each node runs a
    /// bitset DFA-subset simulation over its children's state sets.
    pub fn accepts(&self, tree: &Tree) -> bool {
        CompiledAutomaton::from_hedge(self).accepts(tree)
    }

    /// Product automaton: accepts the intersection of the two languages.
    ///
    /// Built by the compiled engine: a fixpoint discovers the *inhabited*
    /// state pairs and only those become states of the result, so rules
    /// for unreachable pairs are never materialized (the restriction is
    /// language-preserving — every state in any run is realized by its
    /// subtree). The reference construction over the full pair space
    /// survives as [`crate::reference::product`].
    pub fn product(&self, other: &HedgeAutomaton) -> HedgeAutomaton {
        compiled::product(self, other)
    }

    /// Union automaton: accepts the union of the two languages (disjoint
    /// sum of states and rules).
    pub fn union(&self, other: &HedgeAutomaton) -> HedgeAutomaton {
        let offset = self.num_states;
        let mut rules = self.rules.clone();
        rules.extend(other.rules.iter().map(|r| Rule {
            label: r.label.clone(),
            state: r.state + offset,
            horizontal: r.horizontal.map(|&q| q + offset),
        }));
        let mut accepting = self.accepting.clone();
        accepting.extend(other.accepting.iter().copied());
        HedgeAutomaton {
            num_states: self.num_states + other.num_states,
            rules,
            accepting,
        }
    }

    /// Emptiness check with witness extraction: returns a smallest-effort
    /// accepted tree, or `None` when the language is empty.
    ///
    /// Routed through the compiled engine: a dependency-driven worklist
    /// over the determinized rule tables (a rule is re-examined only when
    /// a vertical state its DFA reads becomes inhabited).
    pub fn witness(&self) -> Option<Tree> {
        CompiledAutomaton::from_hedge(self).witness()
    }

    /// Is the language empty?
    pub fn is_empty(&self) -> bool {
        self.witness().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_trees::tree;

    fn d1() -> Dtd {
        xmlmap_dtd::parse(
            "root r
             r -> prof*
             prof -> teach, supervise
             teach -> year
             year -> course, course
             supervise -> student*",
        )
        .unwrap()
    }

    #[test]
    fn dtd_automaton_membership() {
        let a = HedgeAutomaton::from_dtd(&d1());
        let good = tree! {
            "r" [ "prof" [
                "teach" [ "year" [ "course", "course" ] ],
                "supervise" [ "student", "student" ],
            ] ]
        };
        assert!(a.accepts(&good));
        assert!(a.accepts(&tree!("r")));
        assert!(!a.accepts(&tree!("prof")));
        let bad = tree!("r" [ "prof" [ "teach", "supervise" ] ]);
        assert!(!a.accepts(&bad)); // teach must contain a year
    }

    #[test]
    fn witness_conforms_to_dtd() {
        let d = d1();
        let a = HedgeAutomaton::from_dtd(&d);
        let w = a.witness().expect("DTD language non-empty");
        // Attributes are not modelled; compare label structure only.
        let stripped = xmlmap_dtd::parse(
            "root r
             r -> prof*
             prof -> teach, supervise
             teach -> year
             year -> course, course
             supervise -> student*",
        )
        .unwrap();
        assert!(stripped.conforms(&w));
        // Smallest witness: r alone (prof* allows zero professors).
        assert_eq!(w.size(), 1);
    }

    #[test]
    fn mandatory_children_in_witness() {
        let d = xmlmap_dtd::parse("root r\nr -> a+\na -> b, c").unwrap();
        let a = HedgeAutomaton::from_dtd(&d);
        let w = a.witness().unwrap();
        assert!(d.conforms(&w));
        assert_eq!(w.size(), 4); // r, a, b, c
    }

    #[test]
    fn empty_language() {
        // r needs an `a` child, and `a` needs an `r`... which is forbidden.
        // Simpler: mutual recursion with no base case.
        let d = xmlmap_dtd::parse("root r\nr -> a\na -> b\nb -> a").unwrap();
        let auto = HedgeAutomaton::from_dtd(&d);
        assert!(auto.is_empty());
    }

    #[test]
    fn product_is_intersection() {
        let da = xmlmap_dtd::parse("root r\nr -> a*, b?").unwrap();
        let db = xmlmap_dtd::parse("root r\nr -> a?, b").unwrap();
        let pa = HedgeAutomaton::from_dtd(&da);
        let pb = HedgeAutomaton::from_dtd(&db);
        let prod = pa.product(&pb);

        let both = tree!("r" [ "a", "b" ]);
        let only_a = tree!("r" [ "a", "a" ]);
        let only_b = tree!("r"["b"]);
        assert!(prod.accepts(&both));
        assert!(prod.accepts(&only_b));
        assert!(!prod.accepts(&only_a)); // db forbids two a's
        let w = prod.witness().unwrap();
        assert!(pa.accepts(&w) && pb.accepts(&w));
    }

    #[test]
    fn product_emptiness() {
        let da = xmlmap_dtd::parse("root r\nr -> a").unwrap();
        let db = xmlmap_dtd::parse("root r\nr -> b").unwrap();
        let prod = HedgeAutomaton::from_dtd(&da).product(&HedgeAutomaton::from_dtd(&db));
        assert!(prod.is_empty());
    }

    #[test]
    fn union_is_language_union() {
        let da = xmlmap_dtd::parse("root r\nr -> a").unwrap();
        let db = xmlmap_dtd::parse("root r\nr -> b").unwrap();
        let u = HedgeAutomaton::from_dtd(&da).union(&HedgeAutomaton::from_dtd(&db));
        assert!(u.accepts(&tree!("r"["a"])));
        assert!(u.accepts(&tree!("r"["b"])));
        assert!(!u.accepts(&tree!("r" [ "a", "b" ])));
        assert!(!u.accepts(&tree!("r")));
        let w = u.witness().unwrap();
        assert!(u.accepts(&w));
    }

    #[test]
    fn recursive_dtd_witness() {
        let d = xmlmap_dtd::parse("root r\nr -> a\na -> a?").unwrap();
        let auto = HedgeAutomaton::from_dtd(&d);
        let w = auto.witness().unwrap();
        assert!(d.conforms(&w));
        assert_eq!(w.size(), 2); // r[a]
    }
}
