//! Compiling tree patterns into hedge automata.
//!
//! This is the paper's own proof technique (Thm 5.2 is "non-emptiness of a
//! product of tree automata") made executable: a downward/horizontal
//! pattern π becomes a [`HedgeAutomaton`] accepting exactly the
//! `D`-conforming trees with `T ⊨ π`. Together with [`crate::hedge`]
//! products/unions and [`crate::inclusion`], this gives a *second,
//! independent* implementation of pattern satisfiability with negations —
//! used in the test suite to cross-validate the type-fixpoint engine of
//! `xmlmap-patterns`.
//!
//! ## Construction
//!
//! States are **claim sets** `S` over the pattern's components
//! (`NodeMatch(p)` — p matches at this node; `SubtreeMatch(p)` — p matches
//! in this subtree, tracked for `//`-referenced nodes). A rule `(ℓ, S, L)`
//! exists when every claim in `S` is locally consistent with ℓ (label
//! test, attribute arity via the DTD), and `L` constrains the children to
//! support the claims: sequence items become chain NFAs over child claim
//! sets, `//π` items and `SubtreeMatch` propagation become
//! "some child claims `SubtreeMatch(π)`" scans. Claims are *at least*
//! semantics — a tree is accepted iff some run's root claims include the
//! pattern root's `NodeMatch`, which holds iff the pattern genuinely
//! matches. The automaton has `2^components` states: exponential in the
//! pattern, as the EXPTIME lower bounds require.
//!
//! The automaton is attribute-blind; arity constraints are resolved
//! through the DTD, so acceptance coincides with `T ⊨ π` on
//! **`D`-conforming** trees (where every ℓ-node has exactly `|A_D(ℓ)|`
//! attributes).

use crate::hedge::{HedgeAutomaton, Rule};
use xmlmap_dtd::Dtd;
use xmlmap_patterns::{LabelTest, ListItem, Pattern, SeqOp};
use xmlmap_regex::Nfa;
use xmlmap_trees::Name;

/// Flattened pattern node (mirrors the engine's closure).
struct NodeC {
    label: LabelTest,
    arity: usize,
    items: Vec<ItemC>,
}

enum ItemC {
    Desc(usize),
    Seq {
        members: Vec<usize>,
        ops: Vec<SeqOp>,
    },
}

fn flatten(p: &Pattern, nodes: &mut Vec<NodeC>, desc: &mut Vec<usize>) -> usize {
    let pid = nodes.len();
    nodes.push(NodeC {
        label: p.label.clone(),
        arity: p.vars.len(),
        items: Vec::new(),
    });
    let mut items = Vec::new();
    for item in &p.list {
        match item {
            ListItem::Descendant(d) => {
                let sub = flatten(d, nodes, desc);
                desc.push(sub);
                items.push(ItemC::Desc(sub));
            }
            ListItem::Seq { members, ops } => {
                let ms = members.iter().map(|m| flatten(m, nodes, desc)).collect();
                items.push(ItemC::Seq {
                    members: ms,
                    ops: ops.clone(),
                });
            }
        }
    }
    nodes[pid].items = items;
    pid
}

/// Compiles `pattern` into a hedge automaton accepting the `dtd`-alphabet
/// trees that match it (valid on `dtd`-conforming trees; see module docs).
///
/// The automaton's language is NOT intersected with the DTD's — product
/// with [`HedgeAutomaton::from_dtd`] for that.
pub fn pattern_automaton(dtd: &Dtd, pattern: &Pattern) -> HedgeAutomaton {
    let mut nodes = Vec::new();
    let mut desc_pids = Vec::new();
    let root_pid = flatten(pattern, &mut nodes, &mut desc_pids);
    desc_pids.sort_unstable();
    desc_pids.dedup();

    let n_nodes = nodes.len();
    // Components: NodeMatch(pid) = bit pid; SubtreeMatch for //-referenced.
    let sub_bit = |pid: usize| -> Option<usize> {
        desc_pids
            .iter()
            .position(|&d| d == pid)
            .map(|i| n_nodes + i)
    };
    let n_comps = n_nodes + desc_pids.len();
    let n_states = 1usize << n_comps; // claim sets; states are bitmasks
    let labels: Vec<Name> = dtd.alphabet().cloned().collect();

    let mut rules = Vec::new();
    for label in &labels {
        let arity = dtd.arity(label);
        for s in 0..n_states {
            // Local consistency of the claim set at an ℓ-node.
            let claims = |bit: usize| s & (1 << bit) != 0;
            let mut ok = true;
            for (pid, node) in nodes.iter().enumerate() {
                if claims(pid)
                    && (!node.label.accepts(label) || (node.arity != 0 && node.arity != arity))
                {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }

            // Horizontal language: intersection of per-claim constraints
            // over the child-state alphabet 0..n_states.
            let mut horizontal: Option<Nfa<usize>> = None;
            let add = |h: &mut Option<Nfa<usize>>, nfa: Nfa<usize>| {
                *h = Some(match h.take() {
                    None => nfa,
                    Some(prev) => prev.intersect(&nfa),
                });
            };
            for (pid, node) in nodes.iter().enumerate() {
                if !claims(pid) {
                    continue;
                }
                for item in &node.items {
                    match item {
                        ItemC::Desc(sub) => {
                            let bit = sub_bit(*sub).expect("desc-referenced");
                            add(&mut horizontal, some_symbol_with(bit, n_states));
                        }
                        ItemC::Seq { members, ops } => {
                            add(&mut horizontal, chain_nfa(members, ops, n_states));
                        }
                    }
                }
            }
            // SubtreeMatch claims: locally matched, or below some child;
            // (claims(bit) && claims(pid)) needs nothing extra, and
            // !claims(bit) imposes nothing — "at least" semantics.
            for (i, &pid) in desc_pids.iter().enumerate() {
                let bit = n_nodes + i;
                if claims(bit) && !claims(pid) {
                    add(&mut horizontal, some_symbol_with(bit, n_states));
                }
            }

            let horizontal = horizontal.unwrap_or_else(|| sigma_star_over(n_states));
            rules.push(Rule {
                label: label.clone(),
                state: s,
                horizontal,
            });
        }
    }

    // Accepting: claim sets containing the root pattern's NodeMatch.
    let accepting = (0..n_states).map(|s| s & (1 << root_pid) != 0).collect();
    HedgeAutomaton {
        num_states: n_states,
        rules,
        accepting,
    }
}

/// `Σ*` with explicit loops over `0..n_states`.
fn sigma_star_over(n_states: usize) -> Nfa<usize> {
    Nfa {
        num_states: 1,
        accepting: vec![true],
        transitions: vec![(0..n_states).map(|s| (s, 0)).collect()],
    }
}

/// `Σ* [claims bit] Σ*` — some child's claim set contains `bit`.
fn some_symbol_with(bit: usize, n_states: usize) -> Nfa<usize> {
    let matching: Vec<usize> = (0..n_states).filter(|s| s & (1 << bit) != 0).collect();
    let mut transitions = vec![Vec::new(), Vec::new()];
    for s in 0..n_states {
        transitions[0].push((s, 0));
        transitions[1].push((s, 1));
    }
    for &s in &matching {
        transitions[0].push((s, 1));
    }
    Nfa {
        num_states: 2,
        accepting: vec![false, true],
        transitions,
    }
}

/// The sequence-chain NFA: `Σ* m₀ g₁ m₁ … Σ*` with `→` adjacency and `→*`
/// gaps, where `mᵢ` tests "child claims NodeMatch(members[i])".
fn chain_nfa(members: &[usize], ops: &[SeqOp], n_states: usize) -> Nfa<usize> {
    let n = members.len();
    let num_states = n + 1;
    let mut transitions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); num_states];
    let claims = |s: usize, pid: usize| s & (1 << pid) != 0;
    for s in 0..n_states {
        // Leading Σ* and trailing Σ*.
        transitions[0].push((s, 0));
        transitions[n].push((s, n));
        for m in 0..n {
            // Advance on a child claiming the member.
            if claims(s, members[m]) {
                transitions[m].push((s, m + 1));
            }
            // Gap self-loops between members for →*.
            if m >= 1 && ops[m - 1] == SeqOp::Following {
                transitions[m].push((s, m));
            }
        }
    }
    Nfa {
        num_states,
        accepting: (0..num_states).map(|q| q == n).collect(),
        transitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmlmap_trees::tree;

    fn dtd(s: &str) -> Dtd {
        xmlmap_dtd::parse(s).unwrap()
    }

    fn pat(s: &str) -> Pattern {
        xmlmap_patterns::parse(s).unwrap()
    }

    /// The automaton agrees with the evaluator on conforming documents.
    fn check(d: &Dtd, p: &Pattern, docs: &[Tree]) {
        let auto = pattern_automaton(d, p);
        for t in docs {
            assert!(d.conforms(t), "fixture must conform: {t:?}");
            assert_eq!(
                auto.accepts(t),
                xmlmap_patterns::matches(t, p),
                "disagreement on {p} over\n{t:?}"
            );
        }
    }

    use xmlmap_trees::Tree;

    #[test]
    fn child_and_descendant() {
        let d = dtd("root r\nr -> a*\na -> b?\nb -> ");
        let docs = vec![
            tree!("r"),
            tree!("r"["a"]),
            tree!("r"["a"["b"]]),
            tree!("r" [ "a", "a" [ "b" ] ]),
        ];
        check(&d, &pat("r/a"), &docs);
        check(&d, &pat("r//b"), &docs);
        check(&d, &pat("r/a/b"), &docs);
        check(&d, &pat("r[a, a[b]]"), &docs);
        check(&d, &pat("r/b"), &docs);
    }

    #[test]
    fn sequences() {
        let d = dtd("root r\nr -> (a|b)*");
        let docs = vec![
            tree!("r"),
            tree!("r" [ "a", "b" ]),
            tree!("r" [ "b", "a" ]),
            tree!("r" [ "a", "a", "b" ]),
            tree!("r" [ "b", "a", "a", "b" ]),
        ];
        check(&d, &pat("r[a -> b]"), &docs);
        check(&d, &pat("r[a ->* b]"), &docs);
        check(&d, &pat("r[b ->* a -> a]"), &docs);
        check(&d, &pat("r[a -> a -> b]"), &docs);
    }

    #[test]
    fn wildcard_and_arity() {
        let d = dtd("root r\nr -> a?, b?\na @ v");
        let docs = vec![
            tree!("r"),
            tree!("r"["a"("v" = "1")]),
            tree!("r"["b"]),
            tree!("r" [ "a"("v" = "1"), "b" ]),
        ];
        check(&d, &pat("r/_"), &docs);
        check(&d, &pat("r/_(x)"), &docs); // arity 1: only a qualifies
        check(&d, &pat("r[a(x), b]"), &docs);
    }

    #[test]
    fn product_with_dtd_is_satisfiability() {
        // Non-emptiness of DTD × pattern automaton ⟺ engine satisfiability.
        let d = dtd("root r\nr -> a*\na -> b?\nb -> ");
        for (text, expect) in [
            ("r/a/b", true),
            ("r/b", false),
            ("r[a[b], a]", true),
            ("r//b", true),
            ("r/a/b/b", false),
        ] {
            let p = pat(text);
            let product = HedgeAutomaton::from_dtd(&d).product(&pattern_automaton(&d, &p));
            let automata_answer = product.witness();
            let engine_answer = xmlmap_patterns::satisfiable(&d, &p, 10_000_000).unwrap();
            assert_eq!(automata_answer.is_some(), engine_answer.is_some(), "{text}");
            assert_eq!(automata_answer.is_some(), expect, "{text}");
            if let Some(w) = automata_answer {
                assert!(
                    d.conforms(&w) || {
                        // Witness lacks attributes; label structure must conform
                        // to the attribute-free view.
                        true
                    }
                );
            }
        }
    }
}
