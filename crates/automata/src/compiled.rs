//! The compiled hedge-automata engine.
//!
//! Everything here operates on a [`CompiledAutomaton`]: labels interned to
//! dense ids, every rule's horizontal NFA pre-determinized into a flat
//! [`DenseDfa`] table (once per automaton), and all state sets represented
//! as `u64`-word bitsets — the same representation strategy as
//! `xmlmap_patterns::sat_compiled`. On top of that substrate:
//!
//! * **Membership** simulates each rule's DFA with a bitset subset of DFA
//!   states per node (positions of the child word range over child state
//!   *sets*, so determinism in the word alphabet still leaves a subset in
//!   the DFA), pruning dead DFA states as it goes.
//! * **Emptiness/witness** runs a dependency-driven worklist over rules:
//!   a rule is re-examined only when a vertical state its DFA actually
//!   reads becomes inhabited, and each examination is a BFS over the flat
//!   DFA table instead of an NFA re-simulation.
//! * **Product** never materializes the `n₁·n₂` pair space: a fixpoint
//!   discovers the *inhabited* pairs, per-(label, rule, rule) machines walk
//!   the product of the two pre-determinized DFAs over inhabited-pair
//!   symbols, and the output automaton's states are exactly the inhabited
//!   pairs (any state occurring in any run is realized by its subtree, so
//!   the restriction preserves the language).
//! * **Inclusion** `L(A) ⊆ L(B)` keeps the classic realizable-pairs least
//!   fixpoint but with machine states `(q_A, S_B)` where `q_A` is a single
//!   pre-determinized A-DFA state and `S_B` concatenates per-B-rule DFA
//!   subsets into one hash-consed bitset. Realizable pairs are pruned to an
//!   *antichain*: per A-state, only ⊆-minimal B-subsets are kept alive
//!   (stepping and emission are monotone in `S_B` and the counterexample
//!   condition is downward-closed, so minimal elements decide the verdict);
//!   subsumed pairs are retired in place so already-recorded witness words
//!   stay valid. Machines are re-expanded only via a dependency worklist
//!   (an A-rule wakes only for pairs whose A-state its DFA reads), carry
//!   persistent frontiers across rounds (settled states catch up on new
//!   pairs; fresh states settle against all pairs), and large frontiers fan
//!   out over `xmlmap_par` with a deterministic sequential merge.

use crate::hedge::{HedgeAutomaton, Rule};
use crate::inclusion::InclusionBudgetExceeded;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use xmlmap_codec::{CodecError, Decoder, Encoder};
use xmlmap_regex::{DenseDfa, Determinizer, FastHashMap, FastHashSet, Nfa};
use xmlmap_trees::{Name, NodeId, Tree};

/// Flat-table serialization of a [`DenseDfa`]; all fields are public in
/// `xmlmap_regex`, so the codec lives here next to its only consumer.
pub(crate) fn encode_dense_dfa(dfa: &DenseDfa, e: &mut Encoder) {
    e.usize(dfa.num_symbols);
    e.usize(dfa.num_states);
    e.u32s(&dfa.delta);
    e.bools(&dfa.accepting);
    e.bools(&dfa.live);
    e.u32s(&dfa.used_symbols);
}

pub(crate) fn decode_dense_dfa(d: &mut Decoder<'_>) -> Result<DenseDfa, CodecError> {
    let num_symbols = d.usize()?;
    let num_states = d.usize()?;
    let delta = d.u32s()?;
    let accepting = d.bools()?;
    let live = d.bools()?;
    let used_symbols = d.u32s()?;
    if delta.len() != num_symbols * num_states
        || accepting.len() != num_states
        || live.len() != num_states
        || delta.iter().any(|&t| t as usize >= num_states)
        || used_symbols.iter().any(|&s| s as usize >= num_symbols)
    {
        return Err(CodecError::Malformed("DenseDfa tables"));
    }
    Ok(DenseDfa {
        num_symbols,
        num_states,
        delta,
        accepting,
        live,
        used_symbols,
    })
}

/// Serialization of the sparse horizontal NFA kept on uncompiled
/// [`HedgeAutomaton`] rules (symbols are vertical state ids).
fn encode_nfa_usize(nfa: &Nfa<usize>, e: &mut Encoder) {
    e.usize(nfa.num_states);
    e.bools(&nfa.accepting);
    for row in &nfa.transitions {
        e.usize(row.len());
        for &(sym, to) in row {
            e.usize(sym);
            e.usize(to);
        }
    }
}

fn decode_nfa_usize(d: &mut Decoder<'_>) -> Result<Nfa<usize>, CodecError> {
    let num_states = d.usize()?;
    let accepting = d.bools()?;
    if accepting.len() != num_states || num_states > d.remaining() {
        return Err(CodecError::Malformed("Nfa header"));
    }
    let transitions: Vec<Vec<(usize, usize)>> = (0..num_states)
        .map(|_| {
            let n = d.usize()?;
            if n > d.remaining() {
                return Err(CodecError::Truncated);
            }
            (0..n)
                .map(|_| {
                    let sym = d.usize()?;
                    let to = d.usize()?;
                    if to >= num_states {
                        return Err(CodecError::Malformed("Nfa transition target"));
                    }
                    Ok((sym, to))
                })
                .collect()
        })
        .collect::<Result<_, _>>()?;
    Ok(Nfa {
        num_states,
        accepting,
        transitions,
    })
}

pub(crate) fn encode_hedge(h: &HedgeAutomaton, e: &mut Encoder) {
    e.usize(h.num_states);
    e.usize(h.rules.len());
    for r in &h.rules {
        e.str(r.label.as_str());
        e.usize(r.state);
        encode_nfa_usize(&r.horizontal, e);
    }
    e.bools(&h.accepting);
}

pub(crate) fn decode_hedge(d: &mut Decoder<'_>) -> Result<HedgeAutomaton, CodecError> {
    let num_states = d.usize()?;
    let n_rules = d.usize()?;
    if n_rules > d.remaining() {
        return Err(CodecError::Truncated);
    }
    let rules: Vec<Rule> = (0..n_rules)
        .map(|_| {
            let label = Name::new(d.str()?);
            let state = d.usize()?;
            if state >= num_states {
                return Err(CodecError::Malformed("rule state out of range"));
            }
            let horizontal = decode_nfa_usize(d)?;
            Ok(Rule {
                label,
                state,
                horizontal,
            })
        })
        .collect::<Result<_, _>>()?;
    let accepting = d.bools()?;
    if accepting.len() != num_states {
        return Err(CodecError::Malformed("accepting length"));
    }
    Ok(HedgeAutomaton {
        num_states,
        rules,
        accepting,
    })
}

/// Minimum machines in a round before the frontier fans out over threads.
const PAR_MACHINE_GATE: usize = 4;
/// Minimum total machines before parallelism is considered at all (tiny
/// instances never pay thread overhead).
const PAR_TOTAL_GATE: usize = 16;

/// Machine-state count up to which an [`IncMachine`] probes its interned
/// states by linear scan instead of allocating a hash index (see
/// `IncMachine::index`).
const LINEAR_SCAN_MAX: usize = 16;

#[inline]
fn get_bit(bits: &[u64], i: usize) -> bool {
    bits[i / 64] >> (i % 64) & 1 == 1
}

#[inline]
fn set_bit(bits: &mut [u64], i: usize) {
    bits[i / 64] |= 1 << (i % 64);
}

/// Calls `f` with the index of every set bit.
#[inline]
fn for_each_bit(bits: &[u64], mut f: impl FnMut(usize)) {
    for (w, &word) in bits.iter().enumerate() {
        let mut x = word;
        while x != 0 {
            let b = x.trailing_zeros() as usize;
            f(w * 64 + b);
            x &= x - 1;
        }
    }
}

/// `x ⊆ y`, bitwise.
#[inline]
fn is_subset(x: &[u64], y: &[u64]) -> bool {
    x.iter().zip(y).all(|(&a, &b)| a & !b == 0)
}

#[inline]
fn is_disjoint(x: &[u64], y: &[u64]) -> bool {
    x.iter().zip(y).all(|(&a, &b)| a & b == 0)
}

/// Content hash of a bitset, for hash-bucketed interning against a flat
/// arena (avoids boxing a key per probe). Same fold as
/// [`xmlmap_regex::hash::FastHasher`].
#[inline]
fn hash64(bits: &[u64]) -> u64 {
    let mut h = 0u64;
    for &w in bits {
        h = (h.rotate_left(5) ^ w).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    h
}

/// One rule of a compiled automaton: the assigned vertical state and the
/// pre-determinized horizontal DFA over vertical-state symbols.
pub(crate) struct CompiledRule {
    pub(crate) state: u32,
    pub(crate) dfa: DenseDfa,
}

/// A [`HedgeAutomaton`] compiled for the engine: dense label ids, rules
/// grouped by label, horizontals determinized, accepting states as a mask.
pub(crate) struct CompiledAutomaton {
    pub(crate) num_states: usize,
    pub(crate) state_words: usize,
    pub(crate) labels: Vec<Name>,
    label_id: HashMap<Name, u32>,
    /// Rules grouped by dense label id.
    pub(crate) rules: Vec<Vec<CompiledRule>>,
    pub(crate) accepting: Vec<bool>,
    pub(crate) accepting_mask: Box<[u64]>,
}

impl CompiledAutomaton {
    /// Compiles `h` over the given label universe; rules on labels outside
    /// `alphabet` are dropped (reference semantics: such trees are outside
    /// the compared universe).
    pub(crate) fn new(h: &HedgeAutomaton, alphabet: &[Name]) -> CompiledAutomaton {
        let labels: Vec<Name> = alphabet.to_vec();
        let label_id: HashMap<Name, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i as u32))
            .collect();
        let mut rules: Vec<Vec<CompiledRule>> = (0..labels.len()).map(|_| Vec::new()).collect();
        let mut det = Determinizer::new();
        for r in &h.rules {
            if let Some(&lid) = label_id.get(&r.label) {
                rules[lid as usize].push(CompiledRule {
                    state: r.state as u32,
                    dfa: det.run(&r.horizontal, h.num_states),
                });
            }
        }
        let state_words = h.num_states.div_ceil(64).max(1);
        let mut accepting_mask = vec![0u64; state_words].into_boxed_slice();
        for (q, &acc) in h.accepting.iter().enumerate() {
            if acc {
                set_bit(&mut accepting_mask, q);
            }
        }
        CompiledAutomaton {
            num_states: h.num_states,
            state_words,
            labels,
            label_id,
            rules,
            accepting: h.accepting.clone(),
            accepting_mask,
        }
    }

    /// Compiles over the automaton's own rule labels (first-seen order).
    pub(crate) fn from_hedge(h: &HedgeAutomaton) -> CompiledAutomaton {
        let mut alphabet: Vec<Name> = Vec::new();
        let mut seen: HashSet<&Name> = HashSet::new();
        for r in &h.rules {
            if seen.insert(&r.label) {
                alphabet.push(r.label.clone());
            }
        }
        CompiledAutomaton::new(h, &alphabet)
    }

    /// Serializes every compiled table verbatim — the determinized
    /// per-rule DFAs are the expensive part of [`CompiledAutomaton::new`]
    /// and come back without re-running subset construction.
    pub(crate) fn encode(&self, e: &mut Encoder) {
        e.usize(self.num_states);
        e.usize(self.state_words);
        e.usize(self.labels.len());
        for l in &self.labels {
            e.str(l.as_str());
        }
        for rules in &self.rules {
            e.usize(rules.len());
            for r in rules {
                e.u32(r.state);
                encode_dense_dfa(&r.dfa, e);
            }
        }
        e.bools(&self.accepting);
        e.u64s(&self.accepting_mask);
    }

    /// Inverse of [`CompiledAutomaton::encode`]; the label-id map is
    /// rebuilt from the label table.
    pub(crate) fn decode(d: &mut Decoder<'_>) -> Result<CompiledAutomaton, CodecError> {
        let num_states = d.usize()?;
        let state_words = d.usize()?;
        if state_words != num_states.div_ceil(64).max(1) {
            return Err(CodecError::Malformed("CompiledAutomaton state words"));
        }
        let n_labels = d.usize()?;
        if n_labels > d.remaining() {
            return Err(CodecError::Truncated);
        }
        let labels: Vec<Name> = (0..n_labels)
            .map(|_| Ok(Name::new(d.str()?)))
            .collect::<Result<_, CodecError>>()?;
        let label_id: HashMap<Name, u32> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.clone(), i as u32))
            .collect();
        let rules: Vec<Vec<CompiledRule>> = (0..n_labels)
            .map(|_| {
                let n = d.usize()?;
                if n > d.remaining() {
                    return Err(CodecError::Truncated);
                }
                (0..n)
                    .map(|_| {
                        let state = d.u32()?;
                        if state as usize >= num_states {
                            return Err(CodecError::Malformed("rule state out of range"));
                        }
                        Ok(CompiledRule {
                            state,
                            dfa: decode_dense_dfa(d)?,
                        })
                    })
                    .collect()
            })
            .collect::<Result<_, _>>()?;
        let accepting = d.bools()?;
        let accepting_mask = d.u64s()?.into_boxed_slice();
        if accepting.len() != num_states || accepting_mask.len() != state_words {
            return Err(CodecError::Malformed("CompiledAutomaton acceptance"));
        }
        Ok(CompiledAutomaton {
            num_states,
            state_words,
            labels,
            label_id,
            rules,
            accepting,
            accepting_mask,
        })
    }

    /// Approximate heap footprint in bytes (label tables plus every
    /// rule's determinized DFA).
    pub(crate) fn approx_bytes(&self) -> u64 {
        self.labels
            .iter()
            .map(|l| 2 * l.as_str().len() as u64 + 40)
            .sum::<u64>()
            + self
                .rules
                .iter()
                .flat_map(|rs| rs.iter())
                .map(|r| r.dfa.approx_bytes() + 8)
                .sum::<u64>()
            + self.accepting.capacity() as u64
            + self.accepting_mask.len() as u64 * 8
    }

    /// Does the automaton accept `tree`?
    pub(crate) fn accepts(&self, tree: &Tree) -> bool {
        let words = self.state_words;
        let mut sets: HashMap<NodeId, Box<[u64]>> = HashMap::new();
        let order: Vec<NodeId> = tree.nodes().collect();
        for &node in order.iter().rev() {
            let mut states = vec![0u64; words].into_boxed_slice();
            if let Some(&lid) = self.label_id.get(tree.label(node)) {
                let child_sets: Vec<&[u64]> = tree
                    .children(node)
                    .iter()
                    .map(|c| sets[c].as_ref())
                    .collect();
                for rule in &self.rules[lid as usize] {
                    if run_word(&rule.dfa, &child_sets) {
                        set_bit(&mut states, rule.state as usize);
                    }
                }
            }
            sets.insert(node, states);
        }
        !is_disjoint(&sets[&Tree::ROOT], &self.accepting_mask)
    }

    /// Emptiness with witness extraction over the compiled tables.
    pub(crate) fn witness(&self) -> Option<Tree> {
        let mut inhabited = vec![0u64; self.state_words];
        // builder[q] = (label id, rule index within label, child word).
        let mut builder: Vec<Option<(u32, usize, Vec<u32>)>> = vec![None; self.num_states];

        // Global rule list + dependency lists: a rule is re-examined only
        // when a symbol its DFA reads becomes inhabited.
        let all_rules: Vec<(u32, usize)> = self
            .rules
            .iter()
            .enumerate()
            .flat_map(|(lid, rs)| (0..rs.len()).map(move |ri| (lid as u32, ri)))
            .collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); self.num_states];
        for (gi, &(lid, ri)) in all_rules.iter().enumerate() {
            for &s in &self.rules[lid as usize][ri].dfa.used_symbols {
                dependents[s as usize].push(gi);
            }
        }
        let mut in_queue = vec![true; all_rules.len()];
        let mut queue: std::collections::VecDeque<usize> = (0..all_rules.len()).collect();
        while let Some(gi) = queue.pop_front() {
            in_queue[gi] = false;
            let (lid, ri) = all_rules[gi];
            let rule = &self.rules[lid as usize][ri];
            if get_bit(&inhabited, rule.state as usize) {
                continue;
            }
            if let Some(word) = shortest_dfa_word(&rule.dfa, &inhabited) {
                set_bit(&mut inhabited, rule.state as usize);
                builder[rule.state as usize] = Some((lid, ri, word));
                for &dep in &dependents[rule.state as usize] {
                    if !in_queue[dep] {
                        in_queue[dep] = true;
                        queue.push_back(dep);
                    }
                }
            }
        }

        let root_state =
            (0..self.num_states).find(|&q| self.accepting[q] && get_bit(&inhabited, q))?;

        fn build(
            a: &CompiledAutomaton,
            builder: &[Option<(u32, usize, Vec<u32>)>],
            state: usize,
            tree: &mut Tree,
            at: Option<NodeId>,
        ) {
            let (lid, _, word) = builder[state]
                .as_ref()
                .expect("inhabited state has builder");
            let node = match at {
                None => Tree::ROOT, // the root label is set by the caller
                Some(p) => tree.add_elem(p, a.labels[*lid as usize].clone()),
            };
            for &child_state in word {
                build(a, builder, child_state as usize, tree, Some(node));
            }
        }

        let (lid, _, _) = builder[root_state].as_ref().unwrap();
        let mut tree = Tree::new(self.labels[*lid as usize].clone());
        build(self, &builder, root_state, &mut tree, None);
        Some(tree)
    }
}

/// DFA-subset simulation where word position `i` may be any symbol from
/// `child_sets[i]`; dead DFA states are pruned eagerly.
fn run_word(dfa: &DenseDfa, child_sets: &[&[u64]]) -> bool {
    if !dfa.live[0] {
        return false;
    }
    let dwords = dfa.num_states.div_ceil(64).max(1);
    let mut cur = vec![0u64; dwords];
    cur[0] = 1;
    let mut next = vec![0u64; dwords];
    for cs in child_sets {
        next.iter_mut().for_each(|w| *w = 0);
        let mut any = false;
        for_each_bit(&cur, |q| {
            for_each_bit(cs, |s| {
                let t = dfa.step(q as u32, s as u32) as usize;
                if dfa.live[t] {
                    set_bit(&mut next, t);
                    any = true;
                }
            });
        });
        if !any {
            return false;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    let mut accepted = false;
    for_each_bit(&cur, |q| accepted |= dfa.accepting[q]);
    accepted
}

/// A shortest word of `dfa` using only symbols in the `allowed` bitset
/// (BFS over the flat table, with predecessor tracking).
fn shortest_dfa_word(dfa: &DenseDfa, allowed: &[u64]) -> Option<Vec<u32>> {
    if dfa.accepting[0] {
        return Some(Vec::new());
    }
    if !dfa.live[0] {
        return None;
    }
    let mut pred: Vec<(u32, u32)> = vec![(u32::MAX, u32::MAX); dfa.num_states];
    let mut seen = vec![false; dfa.num_states];
    seen[0] = true;
    let mut queue = std::collections::VecDeque::from([0u32]);
    while let Some(q) = queue.pop_front() {
        for &s in &dfa.used_symbols {
            if !get_bit(allowed, s as usize) {
                continue;
            }
            let t = dfa.step(q, s) as usize;
            if !seen[t] && dfa.live[t] {
                seen[t] = true;
                pred[t] = (q, s);
                if dfa.accepting[t] {
                    let mut word = Vec::new();
                    let mut cur = t;
                    while pred[cur].0 != u32::MAX {
                        let (p, sym) = pred[cur];
                        word.push(sym);
                        cur = p as usize;
                    }
                    word.reverse();
                    return Some(word);
                }
                queue.push_back(t as u32);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Product
// ---------------------------------------------------------------------------

/// One (label, a-rule, b-rule) machine: the reachable product of the two
/// pre-determinized DFAs over inhabited-pair symbols. Frontiers persist
/// across rounds: `settled` states have been stepped on pairs
/// `0..caught_up`; fresh states settle against everything.
struct ProdMachine {
    lid: u32,
    ra: usize,
    rb: usize,
    states: Vec<(u32, u32)>,
    index: FastHashMap<(u32, u32), u32>,
    settled: usize,
    caught_up: usize,
    emitted: bool,
    inert: bool,
}

struct ProdCore {
    a: CompiledAutomaton,
    b: CompiledAutomaton,
    /// Inhabited pairs of vertical states, in discovery order.
    pairs: Vec<(u32, u32)>,
}

fn prod_expand(core: &ProdCore, m: &mut ProdMachine) -> Option<(u32, u32)> {
    if m.inert {
        return None;
    }
    let da = &core.a.rules[m.lid as usize][m.ra].dfa;
    let db = &core.b.rules[m.lid as usize][m.rb].dfa;
    let total = core.pairs.len();

    let step = |m: &mut ProdMachine, si: usize, lo: usize, hi: usize| {
        for pid in lo..hi {
            let (s1, s2) = core.pairs[pid];
            let (qa, qb) = m.states[si];
            let ta = da.step(qa, s1);
            if !da.live[ta as usize] {
                continue;
            }
            let tb = db.step(qb, s2);
            if !db.live[tb as usize] {
                continue;
            }
            if !m.index.contains_key(&(ta, tb)) {
                let ni = m.states.len() as u32;
                m.index.insert((ta, tb), ni);
                m.states.push((ta, tb));
            }
        }
    };

    // Settled states catch up on pairs discovered since last round.
    if m.caught_up < total {
        for si in 0..m.settled {
            step(m, si, m.caught_up, total);
        }
    }
    m.caught_up = total;
    // Fresh states settle against all pairs.
    let mut emit = None;
    while m.settled < m.states.len() {
        let si = m.settled;
        m.settled += 1;
        let (qa, qb) = m.states[si];
        if !m.emitted && da.accepting[qa as usize] && db.accepting[qb as usize] {
            m.emitted = true;
            let sa = core.a.rules[m.lid as usize][m.ra].state;
            let sb = core.b.rules[m.lid as usize][m.rb].state;
            emit = Some((sa, sb));
        }
        step(m, si, 0, total);
    }
    emit
}

/// Product automaton over inhabited pairs only.
pub(crate) fn product(ha: &HedgeAutomaton, hb: &HedgeAutomaton) -> HedgeAutomaton {
    // Shared label universe: labels with rules on both sides (only those
    // can produce product rules or states).
    let hb_labels: HashSet<&Name> = hb.rules.iter().map(|r| &r.label).collect();
    let mut alphabet: Vec<Name> = Vec::new();
    let mut seen: HashSet<&Name> = HashSet::new();
    for r in &ha.rules {
        if hb_labels.contains(&r.label) && seen.insert(&r.label) {
            alphabet.push(r.label.clone());
        }
    }
    let core_a = CompiledAutomaton::new(ha, &alphabet);
    let core_b = CompiledAutomaton::new(hb, &alphabet);

    let mut machines: Vec<Mutex<ProdMachine>> = Vec::new();
    for lid in 0..alphabet.len() {
        for ra in 0..core_a.rules[lid].len() {
            for rb in 0..core_b.rules[lid].len() {
                let da = &core_a.rules[lid][ra].dfa;
                let db = &core_b.rules[lid][rb].dfa;
                let inert = !da.live[0] || !db.live[0];
                machines.push(Mutex::new(ProdMachine {
                    lid: lid as u32,
                    ra,
                    rb,
                    states: vec![(0, 0)],
                    index: FastHashMap::from_iter([((0, 0), 0)]),
                    settled: 0,
                    caught_up: 0,
                    emitted: false,
                    inert,
                }));
            }
        }
    }
    // Wake lists: machine `mi` cares about pair (s1, s2) iff its A-DFA
    // reads s1 and its B-DFA reads s2 (everything else steps to a dead
    // sink and is pruned anyway).
    type UsedMasks = (Box<[u64]>, Box<[u64]>);
    let used: Vec<UsedMasks> = machines
        .iter()
        .map(|m| {
            let m = m.lock().unwrap();
            let da = &core_a.rules[m.lid as usize][m.ra].dfa;
            let db = &core_b.rules[m.lid as usize][m.rb].dfa;
            let mut ua = vec![0u64; core_a.state_words].into_boxed_slice();
            for &s in &da.used_symbols {
                set_bit(&mut ua, s as usize);
            }
            let mut ub = vec![0u64; core_b.state_words].into_boxed_slice();
            for &s in &db.used_symbols {
                set_bit(&mut ub, s as usize);
            }
            (ua, ub)
        })
        .collect();

    let mut core = ProdCore {
        a: core_a,
        b: core_b,
        pairs: Vec::new(),
    };
    let mut pair_index: FastHashMap<(u32, u32), u32> = FastHashMap::default();
    let mut dirty: Vec<bool> = vec![true; machines.len()];
    loop {
        let dirty_idx: Vec<usize> = (0..machines.len()).filter(|&i| dirty[i]).collect();
        if dirty_idx.is_empty() {
            break;
        }
        for &i in &dirty_idx {
            dirty[i] = false;
        }
        let gate = machines.len() >= PAR_TOTAL_GATE && dirty_idx.len() >= PAR_MACHINE_GATE;
        let emissions: Vec<Option<(u32, u32)>> =
            xmlmap_par::par_map_gated(&dirty_idx, gate, |&mi| {
                prod_expand(&core, &mut machines[mi].lock().unwrap())
            });
        for pair in emissions.into_iter().flatten() {
            if pair_index.contains_key(&pair) {
                continue;
            }
            pair_index.insert(pair, core.pairs.len() as u32);
            core.pairs.push(pair);
            for (mi, (ua, ub)) in used.iter().enumerate() {
                if get_bit(ua, pair.0 as usize) && get_bit(ub, pair.1 as usize) {
                    dirty[mi] = true;
                }
            }
        }
    }

    // Materialize: states are the inhabited pairs; each emitting machine
    // becomes one rule whose horizontal is its explored DFA product.
    let num_states = core.pairs.len();
    let mut accepting = vec![false; num_states];
    for (pid, &(q1, q2)) in core.pairs.iter().enumerate() {
        accepting[pid] = core.a.accepting[q1 as usize] && core.b.accepting[q2 as usize];
    }
    let mut rules = Vec::new();
    for m in &machines {
        let m = m.lock().unwrap();
        if !m.emitted {
            continue;
        }
        let da = &core.a.rules[m.lid as usize][m.ra].dfa;
        let db = &core.b.rules[m.lid as usize][m.rb].dfa;
        let mut transitions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); m.states.len()];
        let mut horizontal_accepting = vec![false; m.states.len()];
        for (si, &(qa, qb)) in m.states.iter().enumerate() {
            horizontal_accepting[si] = da.accepting[qa as usize] && db.accepting[qb as usize];
            for (pid, &(s1, s2)) in core.pairs.iter().enumerate() {
                let ta = da.step(qa, s1);
                if !da.live[ta as usize] {
                    continue;
                }
                let tb = db.step(qb, s2);
                if !db.live[tb as usize] {
                    continue;
                }
                // The fixpoint settled every state against every pair, so
                // the target is always interned.
                let target = m.index[&(ta, tb)];
                transitions[si].push((pid, target as usize));
            }
        }
        let sa = core.a.rules[m.lid as usize][m.ra].state;
        let sb = core.b.rules[m.lid as usize][m.rb].state;
        rules.push(Rule {
            label: core.a.labels[m.lid as usize].clone(),
            state: pair_index[&(sa, sb)] as usize,
            horizontal: Nfa {
                num_states: m.states.len(),
                accepting: horizontal_accepting,
                transitions,
            },
        });
    }
    HedgeAutomaton {
        num_states,
        rules,
        accepting,
    }
}

// ---------------------------------------------------------------------------
// Inclusion
// ---------------------------------------------------------------------------

/// A realizable pair: A-state `qa` reached on some tree whose deterministic
/// B-subset is `sb` (an id into the hash-consed set arena), with the child
/// realisation recorded for counterexample reconstruction. `retired` pairs
/// were subsumed by a ⊆-smaller `sb` for the same `qa`; they stay in the
/// arena (their words may back later witnesses) but are no longer stepped.
struct IncPair {
    lid: u32,
    qa: u32,
    sb: u32,
    word: Vec<u32>,
    retired: bool,
}

/// Bit layout of the concatenated per-B-rule DFA subsets for one label.
struct BLayout {
    /// Start bit of each B-rule's block.
    offsets: Vec<usize>,
    /// Words per machine-state B-part.
    words: usize,
    /// Block index owning each bit.
    bit_block: Vec<u32>,
    /// Accepting DFA states of all blocks (for emission), concatenated;
    /// block `blk` owns `acc_flat[acc_ranges[blk]..acc_ranges[blk + 1]]`.
    acc_flat: Vec<u32>,
    acc_ranges: Vec<u32>,
}

struct IncCore<'x> {
    a: &'x CompiledAutomaton,
    b: &'x CompiledAutomaton,
    layouts: Vec<BLayout>,
    /// Hash-consed `S_B` bitsets over B's vertical states.
    sb_sets: Vec<Box<[u64]>>,
    pairs: Vec<IncPair>,
}

/// One (label, a-rule) machine of the inclusion fixpoint.
struct IncMachine {
    lid: u32,
    ri: usize,
    /// A-DFA state per machine state.
    a_states: Vec<u32>,
    /// Flat B-parts, `layout.words` words per machine state.
    b_bits: Vec<u64>,
    /// Hash-bucketed interning of `(A-state, B-part)` machine states:
    /// candidates under `(a_state, hash64(b_part))` are confirmed by
    /// comparing against `b_bits` — no per-probe key allocation. Built
    /// lazily: while the machine has at most [`LINEAR_SCAN_MAX`] states
    /// (the common case on realistic schemas) it stays empty and probes
    /// scan the arena directly, so tiny machines never touch a hash table.
    index: FastHashMap<(u32, u64), Vec<u32>>,
    /// `(previous machine state, pair id)`; `u32::MAX` marks the root.
    parent: Vec<(u32, u32)>,
    settled: usize,
    caught_up: usize,
    /// B-subsets already emitted by this machine.
    emitted: FastHashSet<Box<[u64]>>,
    inert: bool,
}

/// A candidate realizable pair produced by one machine during a round.
struct IncCandidate {
    lid: u32,
    qa: u32,
    sb_bits: Box<[u64]>,
    word: Vec<u32>,
}

fn inc_expand(
    core: &IncCore,
    m: &mut IncMachine,
    budget: usize,
    explored: &AtomicUsize,
) -> Result<Vec<IncCandidate>, InclusionBudgetExceeded> {
    let mut out = Vec::new();
    if m.inert {
        return Ok(out);
    }
    let rule = &core.a.rules[m.lid as usize][m.ri];
    let layout = &core.layouts[m.lid as usize];
    let b_rules = &core.b.rules[m.lid as usize];
    let bw = layout.words;
    let total = core.pairs.len();

    // Scratch buffers reused across every step of this call: `src` snapshots
    // the source B-part (the arena may grow mid-step), `nb` accumulates the
    // successor B-part before it is (rarely) interned.
    let mut src = vec![0u64; bw];
    let mut nb = vec![0u64; bw];
    let mut step = |m: &mut IncMachine, si: usize, lo: usize, hi: usize| {
        // Loop-invariant across the pair sweep: the source state's A-part
        // and a snapshot of its B-part (the arena may grow mid-sweep).
        let qa_src = m.a_states[si];
        src.copy_from_slice(&m.b_bits[si * bw..(si + 1) * bw]);
        // `nb` depends only on `(si, p.sb)` — not on `p.qa` — so it is
        // recomputed only when the swept pair's S_B changes.
        let mut nb_sb = u32::MAX;
        for pid in lo..hi {
            let p = &core.pairs[pid];
            if p.retired {
                continue;
            }
            let ta = rule.dfa.step(qa_src, p.qa);
            if !rule.dfa.live[ta as usize] {
                continue;
            }
            if p.sb != nb_sb {
                nb_sb = p.sb;
                let sb = &core.sb_sets[p.sb as usize];
                nb.fill(0);
                for_each_bit(&src, |bit| {
                    let blk = layout.bit_block[bit] as usize;
                    let q = (bit - layout.offsets[blk]) as u32;
                    let dfa = &b_rules[blk].dfa;
                    for_each_bit(sb, |s| {
                        let t = dfa.step(q, s as u32) as usize;
                        // Dead B-DFA states never accept, so dropping them
                        // cannot change any emitted S_B.
                        if dfa.live[t] {
                            set_bit(&mut nb, layout.offsets[blk] + t);
                        }
                    });
                });
            }
            let known = if m.index.is_empty() {
                (0..m.a_states.len())
                    .any(|c| m.a_states[c] == ta && m.b_bits[c * bw..(c + 1) * bw] == nb[..])
            } else {
                m.index.get(&(ta, hash64(&nb))).is_some_and(|cands| {
                    cands.iter().any(|&c| {
                        let base = c as usize * bw;
                        m.b_bits[base..base + bw] == nb[..]
                    })
                })
            };
            if !known {
                let ni = m.a_states.len() as u32;
                m.a_states.push(ta);
                m.b_bits.extend_from_slice(&nb);
                m.parent.push((si as u32, pid as u32));
                if !m.index.is_empty() {
                    m.index.entry((ta, hash64(&nb))).or_default().push(ni);
                } else if m.a_states.len() > LINEAR_SCAN_MAX {
                    // Crossed the threshold: build the index for every
                    // state interned so far; maintained incrementally after.
                    for c in 0..m.a_states.len() {
                        let h = hash64(&m.b_bits[c * bw..(c + 1) * bw]);
                        m.index
                            .entry((m.a_states[c], h))
                            .or_default()
                            .push(c as u32);
                    }
                }
            }
        }
    };

    // Settled states catch up on pairs discovered since last round.
    if m.caught_up < total {
        for si in 0..m.settled {
            step(m, si, m.caught_up, total);
        }
    }
    m.caught_up = total;
    // Fresh states settle against all pairs (and may emit).
    while m.settled < m.a_states.len() {
        let si = m.settled;
        m.settled += 1;
        let n = explored.fetch_add(1, Ordering::Relaxed) + 1;
        if n > budget {
            return Err(InclusionBudgetExceeded {
                budget,
                states_explored: n,
                operation: "inclusion check".into(),
            });
        }
        if rule.dfa.accepting[m.a_states[si] as usize] {
            // Complete word: the deterministic B-subset is the set of
            // B-states whose rule accepts along it.
            let mut sb = vec![0u64; core.b.state_words].into_boxed_slice();
            for (blk, br) in b_rules.iter().enumerate() {
                let base = si * bw;
                let accs = &layout.acc_flat
                    [layout.acc_ranges[blk] as usize..layout.acc_ranges[blk + 1] as usize];
                if accs
                    .iter()
                    .any(|&q| get_bit(&m.b_bits[base..base + bw], layout.offsets[blk] + q as usize))
                {
                    set_bit(&mut sb, br.state as usize);
                }
            }
            if !m.emitted.contains(&sb) {
                m.emitted.insert(sb.clone());
                let mut word = Vec::new();
                let mut cur = si as u32;
                while m.parent[cur as usize].0 != u32::MAX {
                    let (prev, pid) = m.parent[cur as usize];
                    word.push(pid);
                    cur = prev;
                }
                word.reverse();
                out.push(IncCandidate {
                    lid: m.lid,
                    qa: rule.state,
                    sb_bits: sb,
                    word,
                });
            }
        }
        step(m, si, 0, total);
    }
    Ok(out)
}

/// Decides `L(a) ⊆ L(b)` over the compiled automata (which must share a
/// label universe — compile both with the same `alphabet`).
pub(crate) fn inclusion(
    a: &CompiledAutomaton,
    b: &CompiledAutomaton,
    budget: usize,
) -> Result<Option<Tree>, InclusionBudgetExceeded> {
    // Per-label layout of the concatenated B-subset bitsets.
    let layouts: Vec<BLayout> = b
        .rules
        .iter()
        .map(|b_rules| {
            let mut offsets = Vec::with_capacity(b_rules.len());
            let mut bit_block = Vec::new();
            let mut acc_flat = Vec::new();
            let mut acc_ranges = Vec::with_capacity(b_rules.len() + 1);
            acc_ranges.push(0);
            let mut bits = 0usize;
            for (blk, r) in b_rules.iter().enumerate() {
                offsets.push(bits);
                bits += r.dfa.num_states;
                bit_block.resize(bits, blk as u32);
                acc_flat
                    .extend((0..r.dfa.num_states as u32).filter(|&q| r.dfa.accepting[q as usize]));
                acc_ranges.push(acc_flat.len() as u32);
            }
            BLayout {
                offsets,
                words: bits.div_ceil(64).max(1),
                bit_block,
                acc_flat,
                acc_ranges,
            }
        })
        .collect();

    let mut machines: Vec<Mutex<IncMachine>> = Vec::new();
    for (lid, a_rules) in a.rules.iter().enumerate() {
        for (ri, rule) in a_rules.iter().enumerate() {
            let layout = &layouts[lid];
            let inert = !rule.dfa.live[0];
            // Initial B-part: every B-rule's DFA at its start state
            // (dead starts pruned — those rules can never accept).
            let mut b0 = vec![0u64; layout.words];
            for (blk, br) in b.rules[lid].iter().enumerate() {
                if br.dfa.live[0] {
                    set_bit(&mut b0, layout.offsets[blk]);
                }
            }
            machines.push(Mutex::new(IncMachine {
                lid: lid as u32,
                ri,
                a_states: vec![0],
                b_bits: b0,
                index: FastHashMap::default(),
                parent: vec![(u32::MAX, u32::MAX)],
                settled: 0,
                caught_up: 0,
                emitted: FastHashSet::default(),
                inert,
            }));
        }
    }
    // Wake lists: machine `mi` cares about a new pair iff its A-DFA reads
    // the pair's A-state (other symbols step A to a dead sink).
    let mut deps_a: Vec<Vec<usize>> = vec![Vec::new(); a.num_states];
    for (mi, m) in machines.iter().enumerate() {
        let m = m.lock().unwrap();
        for &s in &a.rules[m.lid as usize][m.ri].dfa.used_symbols {
            deps_a[s as usize].push(mi);
        }
    }

    let mut core = IncCore {
        a,
        b,
        layouts,
        sb_sets: Vec::new(),
        pairs: Vec::new(),
    };
    let mut sb_index: FastHashMap<Box<[u64]>, u32> = FastHashMap::default();
    let mut pair_index: FastHashMap<(u32, u32, u32), u32> = FastHashMap::default();
    // Alive (⊆-minimal) pair ids per A-state.
    let mut antichain: Vec<Vec<u32>> = vec![Vec::new(); a.num_states];
    let mut dirty: Vec<bool> = vec![true; machines.len()];
    let explored = AtomicUsize::new(0);

    loop {
        let dirty_idx: Vec<usize> = (0..machines.len()).filter(|&i| dirty[i]).collect();
        if dirty_idx.is_empty() {
            return Ok(None);
        }
        for &i in &dirty_idx {
            dirty[i] = false;
        }
        let gate = machines.len() >= PAR_TOTAL_GATE && dirty_idx.len() >= PAR_MACHINE_GATE;
        let results: Vec<Result<Vec<IncCandidate>, InclusionBudgetExceeded>> =
            xmlmap_par::par_map_gated(&dirty_idx, gate, |&mi| {
                inc_expand(&core, &mut machines[mi].lock().unwrap(), budget, &explored)
            });
        let mut candidates = Vec::new();
        let mut err: Option<InclusionBudgetExceeded> = None;
        for r in results {
            match r {
                Ok(cs) => candidates.extend(cs),
                Err(e) => match &err {
                    Some(p) if e.states_explored <= p.states_explored => {}
                    _ => err = Some(e),
                },
            }
        }
        if let Some(e) = err {
            return Err(e);
        }

        // Deterministic sequential merge, in machine order.
        for cand in candidates {
            let sb_id = match sb_index.get(&cand.sb_bits) {
                Some(&id) => id,
                None => {
                    let id = core.sb_sets.len() as u32;
                    sb_index.insert(cand.sb_bits.clone(), id);
                    core.sb_sets.push(cand.sb_bits.clone());
                    id
                }
            };
            let key = (cand.lid, cand.qa, sb_id);
            if pair_index.contains_key(&key) {
                continue;
            }
            // Antichain: a pair dominated by an alive ⊆-smaller S_B for
            // the same A-state adds nothing (stepping and emission are
            // monotone in S_B; the counterexample condition is
            // downward-closed, and the dominator was already checked).
            let chain = &mut antichain[cand.qa as usize];
            if chain.iter().any(|&pid| {
                is_subset(
                    &core.sb_sets[core.pairs[pid as usize].sb as usize],
                    &cand.sb_bits,
                )
            }) {
                continue;
            }
            // Retire alive pairs strictly subsumed by the new one.
            let retired: Vec<u32> = chain
                .iter()
                .copied()
                .filter(|&pid| {
                    is_subset(
                        &cand.sb_bits,
                        &core.sb_sets[core.pairs[pid as usize].sb as usize],
                    )
                })
                .collect();
            chain.retain(|pid| !retired.contains(pid));
            for pid in retired {
                core.pairs[pid as usize].retired = true;
            }

            let pid = core.pairs.len() as u32;
            pair_index.insert(key, pid);
            antichain[cand.qa as usize].push(pid);
            let counterexample =
                a.accepting[cand.qa as usize] && is_disjoint(&cand.sb_bits, &b.accepting_mask);
            core.pairs.push(IncPair {
                lid: cand.lid,
                qa: cand.qa,
                sb: sb_id,
                word: cand.word,
                retired: false,
            });
            if counterexample {
                return Ok(Some(build_tree(&core, pid as usize)));
            }
            for &mi in &deps_a[cand.qa as usize] {
                dirty[mi] = true;
            }
        }
    }
}

fn build_tree(core: &IncCore, root: usize) -> Tree {
    fn attach(core: &IncCore, tree: &mut Tree, at: NodeId, id: usize) {
        for &child in &core.pairs[id].word {
            let node = tree.add_elem(
                at,
                core.a.labels[core.pairs[child as usize].lid as usize].clone(),
            );
            attach(core, tree, node, child as usize);
        }
    }
    let mut tree = Tree::new(core.a.labels[core.pairs[root].lid as usize].clone());
    attach(core, &mut tree, Tree::ROOT, root);
    tree
}
